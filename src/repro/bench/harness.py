"""Sweep drivers regenerating the paper's experiments.

Each function runs one experiment protocol over a list of place counts and
returns structured results; the ``benchmarks/`` targets print them as
paper-style tables/series and compare against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.nonresilient import (
    GnmfNonResilient,
    LinRegNonResilient,
    LogRegNonResilient,
    PageRankNonResilient,
)
from repro.apps.resilient import (
    GnmfResilient,
    LinRegResilient,
    LogRegResilient,
    PageRankResilient,
)
from repro.bench import calibration
from repro.resilience.executor import (
    ExecutionReport,
    IterativeExecutor,
    RestoreMode,
)
from repro.runtime.runtime import Runtime

#: app name → (non-resilient class, resilient class, workload factory, cost factory)
APP_REGISTRY = {
    "linreg": (
        LinRegNonResilient,
        LinRegResilient,
        calibration.regression_bench_workload,
        calibration.regression_cost,
    ),
    "logreg": (
        LogRegNonResilient,
        LogRegResilient,
        calibration.regression_bench_workload,
        calibration.regression_cost,
    ),
    "pagerank": (
        PageRankNonResilient,
        PageRankResilient,
        calibration.pagerank_bench_workload,
        calibration.pagerank_cost,
    ),
    # Extension application (not in the paper's evaluation).
    "gnmf": (
        GnmfNonResilient,
        GnmfResilient,
        calibration.gnmf_bench_workload,
        calibration.gnmf_cost,
    ),
}


@dataclass
class SweepSeries:
    """One experiment series over the place axis."""

    places: List[int]
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, name: str, value: float) -> None:
        self.values.setdefault(name, []).append(value)


def run_overhead_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
) -> SweepSeries:
    """Figs. 2-4 protocol: time/iteration, resilient vs non-resilient X10.

    The *same* non-resilient GML benchmark runs under both runtimes (no
    checkpointing involved); the difference is pure resilient-finish
    bookkeeping.
    """
    NonRes, _Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    places_list = places_list or calibration.places_axis()
    series = SweepSeries(places=list(places_list))
    for places in places_list:
        for resilient, label in ((False, "non-resilient finish"), (True, "resilient finish")):
            rt = Runtime(places, cost=cost_factory(), resilient=resilient)
            app = NonRes(rt, wl)
            t0 = rt.now()
            app.run()
            per_iter_ms = (rt.now() - t0) / iterations * 1e3
            series.add(label, per_iter_ms)
    return series


def run_checkpoint_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
    checkpoint_interval: int = 10,
) -> SweepSeries:
    """Table III protocol: mean checkpoint time, no failures.

    30 iterations with a checkpoint every 10 → three checkpoints per run;
    read-only inputs are saved only in the first one.
    """
    _NonRes, Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    places_list = places_list or calibration.places_axis()
    series = SweepSeries(places=list(places_list))
    for places in places_list:
        rt = Runtime(places, cost=cost_factory(), resilient=True)
        app = Res(rt, wl)
        report = IterativeExecutor(
            rt, app, checkpoint_interval=checkpoint_interval
        ).run()
        series.add("mean checkpoint (ms)", report.mean_checkpoint_time * 1e3)
        series.add("checkpoints", float(report.checkpoints))
    return series


def run_checkpoint_mode_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
    checkpoint_interval: int = 5,
) -> Dict[str, object]:
    """Blocking vs overlapped checkpointing, no failures.

    The same resilient application runs twice per place count: once with
    the paper's blocking checkpoints and once with the engine's overlapped
    mode (backup transfers scheduled on the communication resources
    concurrently with the next iterations' compute).  The series report
    the checkpoint *stall* — the time the application was actually blocked
    by checkpointing — and the end-to-end total, per mode.

    Returns ``{"series": SweepSeries, "reports": {mode: {places: report}}}``.
    """
    _NonRes, Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    places_list = places_list or calibration.places_axis()
    series = SweepSeries(places=list(places_list))
    reports: Dict[str, Dict[int, ExecutionReport]] = {
        "blocking": {},
        "overlapped": {},
    }
    for places in places_list:
        for ckpt_mode in ("blocking", "overlapped"):
            rt = Runtime(places, cost=cost_factory(), resilient=True)
            app = Res(rt, wl)
            report = IterativeExecutor(
                rt,
                app,
                checkpoint_interval=checkpoint_interval,
                checkpoint_mode=ckpt_mode,
            ).run()
            series.add(f"{ckpt_mode} stall (ms)", report.checkpoint_stall_time * 1e3)
            series.add(f"{ckpt_mode} total (s)", report.total_time)
            reports[ckpt_mode][places] = report
    return {"series": series, "reports": reports}


@dataclass
class RestoreRunResult:
    """One Fig. 5-7 data point: a full run with one injected failure."""

    places: int
    mode: str
    report: ExecutionReport

    @property
    def total_s(self) -> float:
        return self.report.total_time


def run_restore_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
    checkpoint_interval: int = 10,
    failure_iteration: int = 15,
    modes: Optional[List[RestoreMode]] = None,
) -> Dict[str, SweepSeries]:
    """Figs. 5-7 protocol: total runtime for 30 iterations with a single
    place failure at iteration 15 and checkpoints every 10 iterations,
    under each restoration mode, plus the non-resilient no-failure
    baseline.

    Returns ``{series_label: SweepSeries}`` with one series per mode; the
    per-point ExecutionReports (for Table IV) ride along in ``reports``.
    """
    NonRes, Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    places_list = places_list or calibration.places_axis()
    modes = modes or [
        RestoreMode.SHRINK_REBALANCE,
        RestoreMode.SHRINK,
        RestoreMode.REPLACE_REDUNDANT,
    ]

    series = SweepSeries(places=list(places_list))
    reports: Dict[str, Dict[int, ExecutionReport]] = {m.value: {} for m in modes}

    for places in places_list:
        victim = places // 2  # a mid-axis non-zero place
        for mode in modes:
            spares = 1 if mode == RestoreMode.REPLACE_REDUNDANT else 0
            rt = Runtime(places, cost=cost_factory(), resilient=True, spares=spares)
            app = Res(rt, wl)
            rt.injector.kill_at_iteration(victim, iteration=failure_iteration)
            report = IterativeExecutor(
                rt, app, checkpoint_interval=checkpoint_interval, mode=mode
            ).run()
            series.add(mode.value, report.total_time)
            reports[mode.value][places] = report
        # Non-resilient, no-failure baseline.
        rt = Runtime(places, cost=cost_factory(), resilient=False)
        app = NonRes(rt, wl)
        t0 = rt.now()
        app.run()
        series.add("non-resilient (no failure)", rt.now() - t0)

    return {"series": series, "reports": reports}


def table4_from_reports(
    reports: Dict[str, Dict[int, ExecutionReport]], places: int = 44
) -> Dict[str, Dict[str, float]]:
    """Table IV: C% and R% of total time at the given place count."""
    out: Dict[str, Dict[str, float]] = {}
    for mode, by_places in reports.items():
        report = by_places[places]
        out[mode] = {
            "C%": report.checkpoint_pct,
            "R%": report.restore_pct,
        }
    return out
