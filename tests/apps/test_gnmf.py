"""Tests for the GNMF extension application."""

import numpy as np
import pytest

from repro.apps.data import GnmfWorkload
from repro.apps.nonresilient.gnmf import GnmfNonResilient
from repro.apps.resilient.gnmf import GnmfResilient
from repro.resilience.executor import IterativeExecutor, NonResilientExecutor, RestoreMode
from repro.runtime import CostModel, Runtime


def make_rt(n=3, **kw):
    return Runtime(n, cost=CostModel.zero(), **kw)


def numpy_gnmf_step(V, W, H, eps=1e-12):
    """Reference Lee-Seung multiplicative updates."""
    H = H * (W.T @ V) / np.maximum(W.T @ W @ H, eps)
    W = W * (V @ H.T) / np.maximum(W @ (H @ H.T), eps)
    return W, H


class TestAlgorithm:
    def test_matches_numpy_reference(self):
        rt = make_rt()
        wl = GnmfWorkload.small(iterations=5)
        app = GnmfNonResilient(rt, wl)
        V = app.V.to_dense().data
        W, H = app.factors()
        for _ in range(5):
            W, H = numpy_gnmf_step(V, W, H)
        app.run()
        Wa, Ha = app.factors()
        assert np.allclose(Wa, W, atol=1e-8)
        assert np.allclose(Ha, H, atol=1e-8)

    def test_reconstruction_error_decreases(self):
        rt = make_rt()
        app = GnmfNonResilient(rt, GnmfWorkload.small(iterations=15))
        e0 = app.reconstruction_error()
        app.run()
        assert app.reconstruction_error() < e0 * 0.6

    def test_factors_stay_nonnegative(self):
        rt = make_rt()
        app = GnmfNonResilient(rt, GnmfWorkload.small(iterations=10))
        app.run()
        W, H = app.factors()
        assert W.min() >= 0.0
        assert H.min() >= 0.0

    def test_replicas_consistent_after_run(self):
        rt = make_rt()
        app = GnmfNonResilient(rt, GnmfWorkload.small(iterations=4))
        app.run()
        assert app.H.replicas_consistent(1e-12)

    def test_resilient_equals_nonresilient_without_failure(self):
        wl = GnmfWorkload.small(iterations=8)
        rt1, rt2 = make_rt(), make_rt()
        a = GnmfNonResilient(rt1, wl)
        NonResilientExecutor(rt1, a).run()
        b = GnmfResilient(rt2, wl)
        IterativeExecutor(rt2, b, checkpoint_interval=3).run()
        Wa, Ha = a.factors()
        Wb, Hb = b.factors()
        assert np.array_equal(Wa, Wb)
        assert np.array_equal(Ha, Hb)


class TestFailureRecovery:
    @pytest.mark.parametrize(
        "mode",
        [
            RestoreMode.SHRINK,
            RestoreMode.SHRINK_REBALANCE,
            RestoreMode.REPLACE_REDUNDANT,
            RestoreMode.REPLACE_ELASTIC,
        ],
        ids=lambda m: m.value,
    )
    def test_failure_matches_failure_free(self, mode):
        wl = GnmfWorkload.small(iterations=10)
        base_rt = make_rt(4)
        base = GnmfNonResilient(base_rt, wl)
        base.run()
        Wb, Hb = base.factors()

        spares = 1 if mode == RestoreMode.REPLACE_REDUNDANT else 0
        rt = make_rt(4, resilient=True, spares=spares)
        app = GnmfResilient(rt, wl)
        rt.injector.kill_at_iteration(2, iteration=6)
        report = IterativeExecutor(rt, app, checkpoint_interval=4, mode=mode).run()
        assert report.restores == 1
        Wa, Ha = app.factors()
        if mode in (RestoreMode.REPLACE_REDUNDANT, RestoreMode.REPLACE_ELASTIC):
            assert np.array_equal(Wa, Wb)
            assert np.array_equal(Ha, Hb)
        else:
            assert np.allclose(Wa, Wb, atol=1e-8)
            assert np.allclose(Ha, Hb, atol=1e-8)

    def test_read_only_input_saved_once(self):
        rt = make_rt(3, resilient=True)
        app = GnmfResilient(rt, GnmfWorkload.small(iterations=9))
        ex = IterativeExecutor(rt, app, checkpoint_interval=4)
        ex.run()
        latest = ex.store.latest()
        assert app.V in latest.read_only
        assert app.W in latest.snapshots
        assert app.H in latest.snapshots
