"""One shared memo of failure-free reference answers.

Both verification paths need the same thing: the answer a non-resilient
run of the application produces on a zero-cost runtime, to compare a
recovered run against.  The chaos campaigns used to recompute it per
campaign (``repro.chaos._failure_free_result``) while the multi-job
service kept its own per-instance ``BaselineCache`` — so multi-stream
serves and back-to-back campaigns recomputed identical baselines.  This
module is the single memo behind both.

Results depend only on the non-resilient class, the workload parameters
and the group size — never on the cost model, on failures, or on which
concrete place ids ran the job — so the memo key is exactly that triple.
Workloads are frozen dataclasses, so their ``repr`` is a canonical,
process-stable description of every data-generation parameter.

Cached arrays are frozen (``writeable=False``): every caller compares
against the baseline, nobody may mutate the shared copy.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.resilience.executor import NonResilientExecutor
from repro.runtime.cost import CostModel
from repro.runtime.factory import make_runtime

_memo: Dict[Tuple[str, int, str], np.ndarray] = {}


def failure_free_result(
    registry: Dict[str, Tuple[type, type, Callable, Callable]],
    app: str,
    places: int,
    iterations: int,
) -> np.ndarray:
    """The failure-free answer of *app* from *registry* at this shape.

    *registry* is an app table in the shared ``(non-resilient class,
    resilient class, workload factory, result accessor)`` convention —
    ``repro.chaos.CHAOS_APPS`` and ``repro.service.jobs.SERVICE_APPS``
    both qualify; their different workload factories key to different
    memo entries even for the same app name.
    """
    nonres_cls, _, wl_factory, result_of = registry[app]
    workload = wl_factory(iterations)
    key = (nonres_cls.__qualname__, places, repr(workload))
    cached = _memo.get(key)
    if cached is None:
        rt = make_runtime(places, cost=CostModel.zero())
        instance = nonres_cls(rt, workload)
        NonResilientExecutor(rt, instance).run()
        cached = np.asarray(result_of(instance))
        cached.setflags(write=False)
        _memo[key] = cached
    return cached


def clear() -> None:
    """Drop every memoized baseline (test isolation)."""
    _memo.clear()
