"""The application resilient store (paper Listing 4, §V-A1).

An :class:`AppResilientStore` builds *consistent application snapshots*: a
checkpoint is valid only if the snapshots of **all** participating GML
objects were created successfully; a failure mid-checkpoint cancels the
whole attempt and the previous committed checkpoint remains the recovery
point.  After a successful commit, the previous checkpoint's (non-read-only)
snapshots are deleted — coordinated checkpointing needs only the latest one.

``save_read_only`` implements the paper's optimization for immutable inputs
(the training matrix, the link graph): an existing snapshot of a read-only
object is *reused* across checkpoints, so it is created once, in the first
checkpoint, and never re-saved (visible in Table III: PageRank checkpoints
are far cheaper than its matrix size would suggest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.placement import ParityPlacement, ReplicaPlacement
from repro.resilience.snapshot import DistObjectSnapshot, Snapshottable
from repro.runtime.runtime import Runtime
from repro.util.validation import require


@dataclass
class AppSnapshot:
    """One committed application checkpoint: object → snapshot, plus the
    iteration it captures (needed to roll the loop counter back)."""

    snapshots: Dict[Snapshottable, DistObjectSnapshot] = field(default_factory=dict)
    read_only: Dict[Snapshottable, DistObjectSnapshot] = field(default_factory=dict)
    iteration: int = 0

    def all_objects(self) -> List[Snapshottable]:
        return list(self.snapshots) + list(self.read_only)

    def all_snapshots(self) -> List[DistObjectSnapshot]:
        return list(self.snapshots.values()) + list(self.read_only.values())


class AppResilientStore:
    """Atomic multi-object snapshot store (Listing 4's API).

    Usage (Listing 5)::

        store.start_new_snapshot()
        store.save_read_only(G)
        store.save_read_only(U)
        store.save(P)
        store.commit(iteration=k)
        ...
        store.restore()          # after remake()s, reload all saved objects
    """

    def __init__(
        self,
        runtime: Runtime,
        replicas: Optional[int] = None,
        placement: Optional[ReplicaPlacement] = None,
        stable_fallback: Optional[bool] = None,
        delta: bool = False,
    ):
        self.runtime = runtime
        if isinstance(placement, ParityPlacement) and (replicas or 0) > 1:
            raise ValueError(
                "placement=parity replaces per-key replicas with one XOR "
                f"parity block per group; replicas must be <= 1, got "
                f"{replicas} (shrink the parity group via parity:g to buy "
                "more protection instead of double-paying)"
            )
        #: Store-level replication knobs; ``None`` leaves each object's own
        #: snapshot configuration untouched, a value overrides all of them.
        self.replicas = replicas
        self.placement = placement
        self.stable_fallback = stable_fallback
        #: Incremental (dirty-partition-only) checkpointing: ``save`` hands
        #: each object its last committed snapshot as the delta base, so
        #: unchanged partitions are adopted by reference instead of copied.
        #: Off by default — full checkpoints are the paper-parity mode.
        self.delta = delta
        self.snapshots: List[AppSnapshot] = []
        self._in_progress: Optional[AppSnapshot] = None
        self._read_only_registry: Dict[Snapshottable, DistObjectSnapshot] = {}
        #: Lifetime delta-save accounting (partitions / logical bytes).
        self.delta_clean_partitions = 0
        self.delta_dirty_partitions = 0
        self.delta_clean_bytes = 0.0
        self.delta_dirty_bytes = 0.0

    def _configure(self, obj: Snapshottable) -> None:
        """Push the store-level replication policy onto one object."""
        if self.replicas is not None:
            obj.snapshot_backups = self.replicas
        if self.placement is not None:
            obj.snapshot_placement = self.placement
        if isinstance(getattr(obj, "snapshot_placement", None), ParityPlacement):
            # Parity stores group blocks, not per-key backups.
            obj.snapshot_backups = 0
        if self.stable_fallback is not None:
            obj.snapshot_stable_fallback = self.stable_fallback

    # -- checkpoint construction ------------------------------------------------

    def start_new_snapshot(self) -> None:
        """Begin a new application checkpoint attempt."""
        require(self._in_progress is None, "a snapshot is already in progress")
        self._in_progress = AppSnapshot()

    def save(self, obj: Snapshottable) -> None:
        """Snapshot a mutable object into the in-progress checkpoint.

        In delta mode the object's last *committed* snapshot is offered as
        the base: partitions it can prove unchanged (same mutation token,
        full redundancy set intact) are adopted by reference, so the
        checkpoint pays for dirty bytes only.
        """
        require(self._in_progress is not None, "call start_new_snapshot() first")
        require(obj not in self._in_progress.snapshots, "object already saved")
        self._configure(obj)
        base = None
        if self.delta:
            latest = self.latest()
            if latest is not None:
                base = latest.snapshots.get(obj)
        # ``base=`` is passed only when one exists, so objects predating
        # the delta protocol (no ``base`` parameter) keep working in full
        # mode.
        snap = obj.make_snapshot(base=base) if base is not None else obj.make_snapshot()
        self._in_progress.snapshots[obj] = snap
        clean = len(getattr(snap, "clean_keys", ()))
        self.delta_clean_partitions += clean
        self.delta_dirty_partitions += getattr(snap, "num_keys", clean) - clean
        self.delta_clean_bytes += getattr(snap, "clean_nbytes", 0.0)
        self.delta_dirty_bytes += getattr(snap, "total_nbytes", 0.0) - getattr(
            snap, "clean_nbytes", 0.0
        )

    def save_read_only(self, obj: Snapshottable) -> None:
        """Snapshot an immutable object, reusing an existing snapshot if any.

        If the previous read-only snapshot can no longer be safely shared —
        an in-memory copy was lost to a failure and there is no stable tier
        behind it — a fresh snapshot is taken (the reuse is an optimization,
        not a correctness assumption).
        """
        require(self._in_progress is not None, "call start_new_snapshot() first")
        self._configure(obj)
        existing = self._read_only_registry.get(obj)
        if existing is not None and existing.reusable():
            self._in_progress.read_only[obj] = existing
            return
        # First save, or the old snapshot lost copies to a failure: take a
        # fresh one so the next failure cannot destroy the last copy.  The
        # old snapshot stays alive until commit — the previous committed
        # checkpoint may still need it if this attempt is cancelled.
        snapshot = obj.make_snapshot()
        self._read_only_registry[obj] = snapshot
        self._in_progress.read_only[obj] = snapshot

    def commit(self, iteration: int = 0) -> None:
        """Atomically publish the in-progress checkpoint.

        Deletes the previous checkpoint's mutable snapshots (read-only ones
        stay in the registry for reuse).
        """
        require(self._in_progress is not None, "no snapshot in progress")
        self._in_progress.iteration = iteration
        previous = self.latest()
        self.snapshots.append(self._in_progress)
        self._in_progress = None
        if previous is not None:
            for snap in previous.snapshots.values():
                snap.delete()
            # Read-only snapshots superseded by a fresh re-save are now
            # unreferenced and can be freed too.
            current = set(id(s) for s in self.latest().read_only.values())
            for snap in previous.read_only.values():
                if id(snap) not in current:
                    snap.delete()

    def cancel_snapshot(self) -> None:
        """Discard a failed checkpoint attempt, freeing partial snapshots.

        Read-only snapshots newly created during the attempt are kept in
        the registry (they are still valid and reusable); mutable partial
        snapshots are deleted.
        """
        if self._in_progress is None:
            return
        for snap in self._in_progress.snapshots.values():
            snap.delete()
        self._in_progress = None

    # -- recovery ------------------------------------------------------------

    def latest(self) -> Optional[AppSnapshot]:
        """The most recent committed checkpoint (None before the first)."""
        return self.snapshots[-1] if self.snapshots else None

    @property
    def latest_iteration(self) -> int:
        """Iteration captured by the latest committed checkpoint."""
        latest = self.latest()
        require(latest is not None, "no committed checkpoint")
        return latest.iteration

    def restore(self) -> None:
        """Reload every object of the latest checkpoint (Listing 5 L14).

        The caller must already have ``remake()``-d the objects over the
        new place group; restore then routes each object's saved partitions
        to their new homes.
        """
        latest = self.latest()
        require(latest is not None, "no committed checkpoint to restore")
        for obj, snap in latest.read_only.items():
            obj.restore_snapshot(snap)
        for obj, snap in latest.snapshots.items():
            obj.restore_snapshot(snap)

    def verify_integrity(self) -> Dict[str, int]:
        """Scrub the latest committed checkpoint: checksum every copy.

        Quarantines every corrupt copy found (all tiers, not just the
        first clean one per key) and returns
        ``{"clean": ..., "quarantined": ...}`` copy counts.
        """
        latest = self.latest()
        clean = quarantined = 0
        if latest is not None:
            for snap in list(latest.snapshots.values()) + list(
                latest.read_only.values()
            ):
                c, q = snap.verify_all()
                clean += c
                quarantined += q
        return {"clean": clean, "quarantined": quarantined}

    def quarantined_copies(self) -> int:
        """Total snapshot copies quarantined across the store's lifetime."""
        seen = set()
        total = 0
        for app_snap in self.snapshots:
            for snap in app_snap.all_snapshots():
                if id(snap) not in seen:
                    seen.add(id(snap))
                    total += len(snap.quarantined)
        return total

    @property
    def in_progress(self) -> bool:
        """True while a checkpoint attempt is open."""
        return self._in_progress is not None

    def total_checkpoint_bytes(self) -> float:
        """Bytes held by the latest checkpoint (double-store counted once)."""
        latest = self.latest()
        if latest is None:
            return 0.0
        return sum(s.total_nbytes for s in latest.snapshots.values()) + sum(
            s.total_nbytes for s in latest.read_only.values()
        )

    def total_stored_bytes(self) -> float:
        """Physical bytes of the latest checkpoint across every tier —
        replicas and disk copies multiply, parity adds its ``~1/g``
        overhead once (the bytes-vs-recoverability frontier's x-axis)."""
        latest = self.latest()
        if latest is None:
            return 0.0
        return sum(s.stored_nbytes() for s in latest.all_snapshots())
