"""The virtual-time cost model.

All timing in the simulator is *charged* from operation parameters (flop
counts, byte volumes, message counts) using the rates collected here, rather
than measured from the host machine.  ``repro.bench.calibration`` fixes the
rates from the paper's measured two-place points (see EXPERIMENTS.md); unit
tests use :meth:`CostModel.zero` (pure functional behaviour) or
:meth:`CostModel.unit` (easily assertable accounting).

The model distinguishes the components the paper's evaluation isolates:

* per-message **latency** and per-byte **bandwidth** of the transport;
* per-task **spawn/join** CPU cost at the finish home (this is what makes
  even *non-resilient* time/iteration grow with places — GML's collectives
  fan out from one place);
* the per-event cost of the serialized **place-zero bookkeeping ledger**
  used by resilient finish (this is the paper's "Resilient X10 overhead");
* a **flop rate** for compute and a **copy rate** for local memory movement.

``logical_scale`` decouples the physical arrays (kept small so the test
suite is fast) from the logical problem size whose time we charge: all
flop/byte charges are multiplied by it.  Benchmarks use it to charge the
paper's full problem sizes while computing on proportionally smaller data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class CostModel:
    """Rates for the virtual-time charge model (all times in seconds)."""

    #: Seconds per floating-point operation (inverse of sustained flop/s).
    flop_time: float = 0.0
    #: One-way network latency per message.
    latency: float = 0.0
    #: Seconds per byte on the wire (inverse of bandwidth).
    byte_time: float = 0.0
    #: CPU cost at the spawning place to launch one remote task.
    task_spawn_time: float = 0.0
    #: CPU cost at the finish home to process one task-termination message.
    task_join_time: float = 0.0
    #: Serialized processing cost per bookkeeping event at place zero
    #: (only charged when the runtime is resilient).
    ledger_event_time: float = 0.0
    #: Seconds per byte for local memory copies (snapshot local copy, etc.).
    memcpy_byte_time: float = 0.0
    #: Effective slowdown of sparse (irregular-access) flops relative to
    #: dense BLAS flops: CSR SpMV streams indices and gathers randomly, so
    #: its per-entry cost is several times a dense multiply-add.
    sparse_flop_factor: float = 1.0
    #: Places hosted per physical node (0 = every place on its own node,
    #: no NIC sharing).  Places map to nodes in consecutive blocks — the
    #: X10 convention of launching several places per host — and all
    #: cross-node transfers of one node serialize through its NIC.
    places_per_node: int = 0
    #: Seconds per byte for *intra-node* transfers (shared memory /
    #: loopback); only used when ``places_per_node`` > 0.
    shm_byte_time: float = 0.0
    #: Seconds per byte to/from reliable stable storage (a shared
    #: distributed filesystem).  Only used by the stable-store snapshot
    #: variant; 0 keeps disk access free for functional tests.
    disk_byte_time: float = 0.0
    #: Seconds per byte to checksum snapshot payloads (CRC pass at save
    #: and verify); 0 keeps integrity checking free for functional tests.
    checksum_byte_time: float = 0.0
    #: Multiplier applied to all flop/byte charges (logical problem scale).
    logical_scale: float = 1.0

    def __post_init__(self) -> None:
        # Per-instance memo tables for the byte-keyed charge helpers.  The
        # simulator charges the same handful of payload sizes millions of
        # times per campaign (partition sizes are fixed per run), so each
        # helper caches value-by-nbytes; rates are frozen, so entries can
        # never go stale.  object.__setattr__ because the dataclass is
        # frozen; the tables are not fields, so eq/repr/replace ignore them.
        for table in ("_msg_memo", "_memcpy_memo", "_disk_memo", "_cksum_memo", "_shm_memo"):
            object.__setattr__(self, table, {})
        # With every rate zero no charge can ever be nonzero, whatever the
        # multipliers say — the hot paths consult this to skip virtual-time
        # arithmetic that provably computes 0.0 (see Runtime.finish_tasks).
        object.__setattr__(
            self,
            "is_zero",
            not (
                self.flop_time
                or self.latency
                or self.byte_time
                or self.task_spawn_time
                or self.task_join_time
                or self.ledger_event_time
                or self.memcpy_byte_time
                or self.shm_byte_time
                or self.disk_byte_time
                or self.checksum_byte_time
            ),
        )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def zero() -> "CostModel":
        """All-zero rates: virtual time never advances (functional tests)."""
        return CostModel()

    @staticmethod
    def unit() -> "CostModel":
        """Unit rates for accounting tests: every component costs 1.0."""
        return CostModel(
            flop_time=1.0,
            latency=1.0,
            byte_time=1.0,
            task_spawn_time=1.0,
            task_join_time=1.0,
            ledger_event_time=1.0,
            memcpy_byte_time=1.0,
        )

    @staticmethod
    def laptop() -> "CostModel":
        """A generic commodity-cluster profile for the examples."""
        return CostModel(
            flop_time=5e-10,       # ~2 Gflop/s per place, one worker thread
            latency=50e-6,         # sockets transport over GigE
            byte_time=1e-9,        # ~1 GB/s
            task_spawn_time=5e-6,
            task_join_time=5e-6,
            ledger_event_time=20e-6,
            memcpy_byte_time=0.2e-9,
        )

    # -- charge helpers ----------------------------------------------------

    def flops(self, n: float) -> float:
        """Time to execute *n* floating-point operations."""
        return self.flop_time * n * self.logical_scale

    def message(self, nbytes: float = 0.0) -> float:
        """Wire time of one message carrying *nbytes* of payload (memoized)."""
        memo = self._msg_memo
        t = memo.get(nbytes)
        if t is None:
            t = memo[nbytes] = self.latency + self.byte_time * nbytes * self.logical_scale
        return t

    def memcpy(self, nbytes: float) -> float:
        """Time of a local memory copy of *nbytes* (memoized)."""
        memo = self._memcpy_memo
        t = memo.get(nbytes)
        if t is None:
            t = memo[nbytes] = self.memcpy_byte_time * nbytes * self.logical_scale
        return t

    def shm_message(self, nbytes: float = 0.0) -> float:
        """Wire time of one intra-node (shared-memory) message (memoized)."""
        memo = self._shm_memo
        t = memo.get(nbytes)
        if t is None:
            t = memo[nbytes] = self.latency + self.shm_byte_time * nbytes * self.logical_scale
        return t

    def disk(self, nbytes: float) -> float:
        """Time to read or write *nbytes* on stable storage (memoized)."""
        memo = self._disk_memo
        t = memo.get(nbytes)
        if t is None:
            t = memo[nbytes] = self.disk_byte_time * nbytes * self.logical_scale
        return t

    def checksum(self, nbytes: float) -> float:
        """Time to checksum *nbytes* of snapshot payload (memoized)."""
        memo = self._cksum_memo
        t = memo.get(nbytes)
        if t is None:
            t = memo[nbytes] = self.checksum_byte_time * nbytes * self.logical_scale
        return t

    def node_of(self, place_id: int) -> int:
        """The physical node hosting a place (block placement)."""
        if self.places_per_node <= 0:
            return place_id
        return place_id // self.places_per_node

    def scaled_bytes(self, nbytes: float) -> float:
        """Logical byte volume corresponding to a physical payload size."""
        return nbytes * self.logical_scale

    def with_scale(self, scale: float) -> "CostModel":
        """Copy of this model with a different logical scale."""
        return replace(self, logical_scale=scale)

    def with_rates(self, **kwargs: float) -> "CostModel":
        """Copy of this model with selected rates overridden."""
        return replace(self, **kwargs)


def validate_cost_model(model: CostModel) -> Optional[str]:
    """Return an error message if any rate is negative, else ``None``."""
    for name in (
        "flop_time",
        "latency",
        "byte_time",
        "task_spawn_time",
        "task_join_time",
        "ledger_event_time",
        "memcpy_byte_time",
        "sparse_flop_factor",
        "places_per_node",
        "shm_byte_time",
        "disk_byte_time",
        "checksum_byte_time",
        "logical_scale",
    ):
        if getattr(model, name) < 0:
            return f"cost rate {name} must be >= 0"
    return None
