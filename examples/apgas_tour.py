"""A tour of the APGAS substrate — the paper's §II constructs in Python.

Shows the X10 programming model the reproduction is built on: places,
``finish`` / ``async at`` task parallelism, GlobalRef and
PlaceLocalHandle remote references, failure semantics, and the virtual
clock that makes timing deterministic.

Run:  python examples/apgas_tour.py
"""

from repro import CostModel, DeadPlaceException, Place, Runtime
from repro.runtime import finish
from repro.runtime.globalref import GlobalRef, PlaceLocalHandle

rt = Runtime(nplaces=4, cost=CostModel.laptop(), resilient=True)
print(f"world: {rt.world.ids}")

# -- finish / async at (Listing in §II) -------------------------------------
# Every place computes a partial sum; the finish blocks until all complete.
with finish(rt, label="partial-sums") as f:
    handles = [
        f.async_at(place, lambda ctx: sum(range(ctx.place.id * 100)))
        for place in rt.world
    ]
partials = [h.result() for h in handles]
print(f"partials gathered through the finish: {partials}")

# -- GlobalRef: a remote object only dereferenceable at its home ------------
counter = GlobalRef(rt, Place(2), value={"hits": 0})

def bump(ctx):
    counter(ctx)["hits"] += 1

for _ in range(3):
    rt.at(Place(2), bump)
print("GlobalRef state:", rt.at(Place(2), lambda ctx: dict(counter(ctx))))

# -- PlaceLocalHandle: one value per place, remade after failure ------------
plh = PlaceLocalHandle(rt, rt.world, init=lambda ctx: [ctx.place.id] * 2)
print("PLH values:", rt.finish_all(rt.world, lambda ctx: plh.local(ctx)))

# -- failure semantics -------------------------------------------------------
rt.kill(3)
try:
    with finish(rt) as f:
        for place in rt.world:
            f.async_at(place, lambda ctx: None)
except DeadPlaceException as exc:
    print(f"finish surfaced the failure: place {exc.place_id} is dead")

survivors = rt.live_world()
plh.remake(survivors, init=lambda ctx: "rebuilt")
print("PLH after remake over survivors:", survivors.ids)

# -- deterministic virtual time ----------------------------------------------
print(f"virtual time: {rt.now() * 1e3:.3f} ms "
      f"({rt.stats.finishes} finishes, {rt.stats.messages} messages)")
print("re-running this script reproduces these numbers exactly.")
