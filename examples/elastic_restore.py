"""Replace-Elastic: the paper's future-work mode, implemented.

§V-B closes with a planned fourth mode that uses Elastic X10 to create new
places on demand instead of reserving spares up-front.  The simulator
supports dynamic place creation (`Runtime.add_place`), so the executor's
REPLACE_ELASTIC mode demonstrates it: every failure is answered by booting
a brand-new place that inherits the dead place's group index, keeping the
data layout (and so the numerics) identical to a failure-free run —
without paying for idle spares.

Run:  python examples/elastic_restore.py
"""

import numpy as np

from repro import Runtime
from repro.apps import LogRegNonResilient, LogRegResilient, RegressionWorkload
from repro.bench.calibration import cluster_2015
from repro.resilience import IterativeExecutor, RestoreMode

workload = RegressionWorkload(
    features=50, examples_per_place=300, iterations=24, blocks_per_place=2
)

ref_rt = Runtime(5, cost=cluster_2015())
reference = LogRegNonResilient(ref_rt, workload)
reference.run()

rt = Runtime(5, cost=cluster_2015(), resilient=True)
app = LogRegResilient(rt, workload)
# Three failures over the run — each one answered by a fresh place.
rt.injector.kill_at_iteration(1, iteration=5)
rt.injector.kill_at_iteration(3, iteration=11)
rt.injector.kill_at_iteration(4, iteration=19)

report = IterativeExecutor(
    rt, app, checkpoint_interval=4, mode=RestoreMode.REPLACE_ELASTIC
).run()

print(f"failures observed: {report.failures_observed}, restores: {report.restores}")
print(f"final place group: {app.places.ids} (ids >= 5 were created elastically)")
print(f"group size held at {app.places.size} throughout — no idle spares reserved")
err = np.abs(app.model() - reference.model()).max()
print(f"model vs failure-free run: max |Δ| = {err:.3e}")
assert np.array_equal(app.model(), reference.model()), "elastic recovery must be exact"
print("bitwise identical to the failure-free model ✓")
