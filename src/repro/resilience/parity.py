"""Erasure-coded parity tier for the snapshot store (ROADMAP item 1).

Replication pays ``k x`` checkpoint bytes to survive ``k`` losses per key.
ReStore (arXiv:2203.01107) and the extreme-scale multigrid resilience work
(arXiv:1506.06185) both observe that *single* losses — by far the common
case — are recoverable from a parity code at a fraction of that footprint.
:class:`ParityObjectSnapshot` implements the XOR variant: partitions are
grouped in runs of ``g`` consecutive group indices, and each group stores
one parity block — the XOR of the members' serialized bytes, zero-padded
to the longest member — on a place *outside* the group (chosen through
``resolve_offsets``, so the block never co-resides with a member primary).

Recovery ladder for a key: primary -> **parity-reconstruct** (XOR the
group's parity block with every surviving peer) -> stable disk ->
``DataLossError``.  Any single loss per group is absorbed in memory at
``~(1 + 1/g)x`` checkpoint bytes; two losses in one group before a repair
exceed the code's strength and fall through to disk or a documented loss.

Parity blocks are first-class copies of the integrity machinery: they
carry a CRC-32, are verified before any reconstruction, participate in
``verify_all``, and a corrupt block is quarantined with fall-through to
the next tier.  Delta checkpointing composes: XOR is incremental, so an
unchanged group adopts its base parity block by reference at zero virtual
cost, and a partly-dirty group charges transfers for the dirty members
only.  :meth:`ParityObjectSnapshot.repair` is the scrub pass — after a
recovery it re-materializes lost primaries from the parity tier and
rebuilds missing parity blocks so protection does not erode across a long
campaign.

Simulation note: XOR blocks are *really* computed over the members' byte
streams (reconstruction re-materializes the payload and is
checksum-verified against the original), while the virtual-time charge
follows the cost model's dirty-bytes accounting — the same
wall-work/modeled-cost split the rest of the store uses.  When every
member of a group is a single-contiguous-array payload (``Vector``,
``DenseMatrix``, or a bare ndarray) the stream is the **raw NumPy
buffer** viewed as ``uint8`` — no pickling, no padding beyond the group
maximum, and reconstruction rebuilds the payload from the recorded
``(class, dtype, shape)`` codec.  Ragged payloads (multi-array sparse
partitions, containers) fall back to the pickled encoding per group; the
CRC gates and the block-size accounting are the same in both modes, only
the byte stream differs.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.resilience.placement import ParityPlacement, ReplicaPlacement
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime.exceptions import DataLossError, SnapshotCorruptionError
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.bytesize import payload_nbytes
from repro.util.checksum import corrupt_payload, memoized_checksum
from repro.util.validation import require
from repro.util.versioning import freeze_payload

#: Sentinel "tier" for a group's parity block (the stable tier is -1).
PARITY_TIER = -2


def _pickled(payload: Any) -> bytes:
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _raw_codec(payload: Any) -> Optional[Tuple[tuple, np.ndarray]]:
    """``(codec, flat uint8 view)`` for single-array payloads, else None.

    The raw XOR fast path applies to payloads whose bytes are exactly one
    C-contiguous NumPy buffer: a bare ndarray, or a wrapper (``Vector``,
    ``DenseMatrix``) whose ``payload_arrays()`` is its sole ``.data``
    array and whose constructor rebuilds from that array.  The codec
    ``(cls_or_None, dtype_str, shape)`` is everything reconstruction
    needs; ragged payloads (sparse partitions, containers) return None
    and the group falls back to the pickled encoding.
    """
    if type(payload) is np.ndarray:
        arr, cls = payload, None
    else:
        arrays = getattr(payload, "payload_arrays", None)
        if arrays is None:
            return None
        backing = arrays()
        if len(backing) != 1 or backing[0] is not getattr(payload, "data", None):
            return None
        arr, cls = backing[0], type(payload)
    if type(arr) is not np.ndarray or not arr.flags.c_contiguous:
        return None
    return (cls, arr.dtype.str, arr.shape), arr.view(np.uint8).reshape(-1)


class ParityObjectSnapshot(DistObjectSnapshot):
    """Snapshot whose redundancy is one XOR parity block per key group.

    Keys keep their tier-0 primary; instead of per-key replicas
    (``backups`` is forced to 0) each group of up to ``g`` consecutive
    keys XORs its members into ``("snapp", id, gidx)`` on the group's
    parity place.  Reconstructed payloads are materialized on that place
    under ``("snapr", id, key)`` so ``fetch`` reads them like any other
    in-memory copy.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: PlaceGroup,
        meta: Optional[Dict[str, Any]] = None,
        placement: Optional[ReplicaPlacement] = None,
        stable_fallback: bool = False,
    ):
        placement = placement if placement is not None else ParityPlacement()
        require(
            isinstance(placement, ParityPlacement),
            f"ParityObjectSnapshot requires a ParityPlacement, got {placement!r}",
        )
        super().__init__(
            runtime,
            group,
            meta,
            backups=0,
            placement=placement,
            stable_fallback=stable_fallback,
        )
        #: Members per parity group (capped so a group-external place exists).
        self._span = placement.group_span(group.size)
        #: Group indices whose parity block has been built (or adopted).
        self._parity: Set[int] = set()
        #: CRC-32 per parity block, recorded at build time.
        self._parity_checksums: Dict[int, int] = {}
        #: Stream length per key (the truncation bound at reconstruct):
        #: raw buffer bytes in raw mode, pickled length in fallback mode.
        self._parity_lengths: Dict[int, int] = {}
        #: Groups whose block XORs raw NumPy buffers (vs pickled blobs).
        self._parity_raw: Set[int] = set()
        #: Per-key ``(cls, dtype, shape)`` rebuild recipe for raw groups.
        self._parity_codecs: Dict[int, tuple] = {}
        #: Base snapshot donating clean partitions (delta saves).
        self._parity_base: Optional["ParityObjectSnapshot"] = None
        #: Bytes held in parity blocks (the ~1/g overhead; part of
        #: ``total_nbytes``).
        self.parity_nbytes = 0.0
        #: Reads satisfied by XOR reconstruction instead of a copy.
        self.parity_reads = 0

    # -- group geometry ----------------------------------------------------

    def _parity_key(self, gidx: int) -> tuple:
        return ("snapp", self.snap_id, gidx)

    def _recon_key(self, key: int) -> tuple:
        return ("snapr", self.snap_id, key)

    def _parity_group(self, key: int) -> int:
        return key // self._span

    def _group_members(self, gidx: int) -> List[int]:
        start = gidx * self._span
        return list(range(start, min(start + self._span, self.group.size)))

    def _saved_members(self, gidx: int) -> List[int]:
        return [m for m in self._group_members(gidx) if m in self._saved_keys]

    def _parity_place(self, gidx: int):
        members = self._group_members(gidx)
        index = self.placement.parity_index(
            gidx * self._span, len(members), self.group.size
        )
        return self.group[index]

    def _canonical(self, gidx: int) -> Tuple[int, int]:
        """The ``(key, tier)`` bookkeeping entry for a group's parity block
        (anchored to the group's first member)."""
        return (self._group_members(gidx)[0], PARITY_TIER)

    def _groups(self) -> List[int]:
        return sorted({self._parity_group(key) for key in self._saved_keys})

    # -- saving ------------------------------------------------------------

    def save_from(
        self, ctx: PlaceContext, key: int, payload: Any, token: Optional[Any] = None
    ) -> None:
        super().save_from(ctx, key, payload, token)
        self._after_key_saved(key)

    def save_clean_from(
        self, ctx: PlaceContext, key: int, base: "DistObjectSnapshot"
    ) -> None:
        self._parity_base = base
        super().save_clean_from(ctx, key, base)
        self._parity_lengths[key] = base._parity_lengths.get(key, 0)
        if key in base._parity_codecs:
            self._parity_codecs[key] = base._parity_codecs[key]
        self._after_key_saved(key)

    def _after_key_saved(self, key: int) -> None:
        """Seal the key's parity group once every member has been saved.

        An all-clean group whose base parity block survives adopts it by
        reference (zero virtual cost — the XOR of unchanged bytes is
        unchanged).  Otherwise the block is rebuilt; with an intact base
        the XOR update is incremental, so only dirty members are charged.
        """
        gidx = self._parity_group(key)
        if gidx in self._parity:
            return
        members = self._group_members(gidx)
        if any(m not in self._saved_keys for m in members):
            return
        base = self._parity_base
        base_ok = (
            base is not None
            and gidx in base._parity
            and self.runtime.is_alive(base._parity_place(gidx).id)
            and self.runtime.heap_of(base._parity_place(gidx).id).contains(
                base._parity_key(gidx)
            )
        )
        if base_ok and all(m in self.clean_keys for m in members):
            self._adopt_parity(gidx, base)
            return
        parity_place = self._parity_place(gidx)
        if not self.runtime.is_alive(parity_place.id):
            # No home for the block: the group runs unprotected until a
            # repair pass (key_intact stays False, forcing dirty re-saves).
            return
        dirty = [m for m in members if m not in self.clean_keys]
        self._build_parity(gidx, charge_keys=dirty if base_ok else members)

    def _adopt_parity(self, gidx: int, base: "ParityObjectSnapshot") -> None:
        rt = self.runtime
        parity_place = base._parity_place(gidx)
        block = rt.heap_of(parity_place.id).get(base._parity_key(gidx))
        rt.heap_of(parity_place.id).put(self._parity_key(gidx), block)
        self._parity_checksums[gidx] = base._parity_checksums[gidx]
        if gidx in base._parity_raw:
            self._parity_raw.add(gidx)
        else:
            self._parity_raw.discard(gidx)
        if base._canonical(gidx) in base._verified:
            self._verified.add(self._canonical(gidx))
        self._parity.add(gidx)
        nbytes = payload_nbytes(block)
        self.parity_nbytes += nbytes
        self.total_nbytes += nbytes

    def _build_parity(self, gidx: int, charge_keys: List[int]) -> None:
        """Compute and store the group's XOR block; charge *charge_keys*.

        The XOR always runs over every member (wall-clock work), but the
        virtual-time charge covers only *charge_keys* — all members on a
        fresh build, the dirty members alone when an intact base block
        makes the update incremental.
        """
        rt = self.runtime
        cost = rt.cost
        members = self._saved_members(gidx)
        parity_place = self._parity_place(gidx)
        payloads = {
            m: rt.heap_of(self.group[m].id).get(self._primary_key(m))
            for m in members
        }
        raw = {m: _raw_codec(p) for m, p in payloads.items()}
        streams: Dict[int, np.ndarray] = {}
        if all(rc is not None for rc in raw.values()):
            # Raw mode: XOR the members' contiguous buffers directly — no
            # pickling, no per-member blob materialization.
            self._parity_raw.add(gidx)
            for m, rc in raw.items():
                self._parity_codecs[m] = rc[0]
                streams[m] = rc[1]
        else:
            self._parity_raw.discard(gidx)
            for m in members:
                self._parity_codecs.pop(m, None)
                streams[m] = np.frombuffer(_pickled(payloads[m]), dtype=np.uint8)
        for m, stream in streams.items():
            self._parity_lengths[m] = stream.size
        maxlen = max(stream.size for stream in streams.values())
        acc = np.zeros(maxlen, dtype=np.uint8)
        for stream in streams.values():
            acc[: stream.size] ^= stream
        acc.setflags(write=False)
        charged_bytes = 0
        for m in charge_keys:
            if m not in streams:
                continue
            nbytes = streams[m].size
            src = self.group[m].id
            if src != parity_place.id:
                arrive = rt.engine.transfer(
                    src, parity_place.id, nbytes, rt.clock.now(src)
                )
                rt.clock.set_at_least(parity_place.id, arrive)
                rt.stats.messages += 1
                rt.stats.bytes_sent += cost.scaled_bytes(nbytes)
            charged_bytes += nbytes
        rt.clock.advance(
            parity_place.id, cost.flops(charged_bytes) + cost.checksum(maxlen)
        )
        rt.heap_of(parity_place.id).put(self._parity_key(gidx), acc)
        self._parity_checksums[gidx] = memoized_checksum(acc, None)
        self._verified.add(self._canonical(gidx))
        self._parity.add(gidx)
        self.parity_nbytes += maxlen
        self.total_nbytes += maxlen

    def stored_nbytes(self) -> float:
        """Physical bytes: each partition once, plus the parity blocks
        (the ``~(1 + 1/g)x`` footprint), plus the optional disk copies."""
        logical = self.total_nbytes - self.parity_nbytes
        return self.total_nbytes + (logical if self.stable_fallback else 0.0)

    # -- delta compatibility ----------------------------------------------

    def delta_compatible(self, base: "DistObjectSnapshot") -> bool:
        return super().delta_compatible(base) and base._span == self._span

    def key_intact(self, key: int) -> bool:
        """Conservative: the key's primary, its group's parity block, and
        every peer primary must survive — a degraded group must re-save
        dirty so the next checkpoint rebuilds full protection."""
        if not super().key_intact(key):
            return False
        rt = self.runtime
        gidx = self._parity_group(key)
        if gidx not in self._parity:
            return False
        parity_place = self._parity_place(gidx)
        if not rt.is_alive(parity_place.id) or not rt.heap_of(
            parity_place.id
        ).contains(self._parity_key(gidx)):
            return False
        for m in self._saved_members(gidx):
            place = self.group[m]
            if not rt.is_alive(place.id) or not rt.heap_of(place.id).contains(
                self._primary_key(m)
            ):
                return False
        return True

    # -- locating / reconstruction ----------------------------------------

    def locate(self, key: int) -> Tuple[int, tuple]:
        """Primary -> parity-reconstruct -> stable, verified at each rung."""
        require(key in self._saved_keys, f"snapshot has no key {key}")
        rt = self.runtime
        primary = self.group[key]
        quarantined_before = len(self.quarantined)
        if rt.is_alive(primary.id) and rt.heap_of(primary.id).contains(
            self._primary_key(key)
        ):
            if self._verify_copy(key, 0, primary.id, self._primary_key(key)):
                return primary.id, self._primary_key(key)
        hit = self._locate_via_parity(key)
        if hit is not None:
            return hit
        if key in self._stable:
            if self._verify_copy(key, self.STABLE_TIER, self.STABLE_TIER, None):
                return self.STABLE_TIER, ("stable", self.snap_id, key)
        if len(self.quarantined) > quarantined_before:
            raise SnapshotCorruptionError(
                f"every surviving copy of snapshot key {key} failed checksum "
                f"verification and was quarantined "
                f"({len(self.quarantined) - quarantined_before} this search)"
            )
        raise DataLossError(
            f"primary and parity tiers of snapshot key {key} lost (primary "
            f"{primary}; >=2 members of parity group "
            f"{self._parity_group(key)} gone before repair; no stable-"
            f"storage tier)"
        )

    def _verify_parity_block(self, gidx: int) -> bool:
        """Checksum the group's parity block; quarantine on mismatch."""
        canon = self._canonical(gidx)
        if canon in self._verified:
            return True
        rt = self.runtime
        parity_place = self._parity_place(gidx)
        block = rt.heap_of(parity_place.id).get(self._parity_key(gidx))
        rt.clock.advance(
            parity_place.id, rt.cost.checksum(payload_nbytes(block))
        )
        if memoized_checksum(block, None) == self._parity_checksums.get(gidx):
            self._verified.add(canon)
            return True
        rt.heap_of(parity_place.id).remove_if_present(self._parity_key(gidx))
        self._parity.discard(gidx)
        self.quarantined.append(canon)
        return False

    def _locate_via_parity(self, key: int) -> Optional[Tuple[int, tuple]]:
        """Reconstruct *key* from its group's parity block, if possible.

        Requires the (verified) parity block plus a verified primary for
        every peer; any hole means the loss exceeds the code's strength
        and the caller falls through to the stable tier.  The payload is
        materialized on the parity place and checked against the key's
        save-time CRC before being offered — a garbled reconstruction is
        quarantined, never returned.
        """
        rt = self.runtime
        gidx = self._parity_group(key)
        parity_place = self._parity_place(gidx)
        recon_key = self._recon_key(key)
        if rt.is_alive(parity_place.id) and rt.heap_of(parity_place.id).contains(
            recon_key
        ):
            return parity_place.id, recon_key
        if gidx not in self._parity:
            return None
        if not rt.is_alive(parity_place.id) or not rt.heap_of(
            parity_place.id
        ).contains(self._parity_key(gidx)):
            return None
        if not self._verify_parity_block(gidx):
            return None
        peers = [m for m in self._saved_members(gidx) if m != key]
        for m in peers:
            place = self.group[m]
            if not rt.is_alive(place.id) or not rt.heap_of(place.id).contains(
                self._primary_key(m)
            ):
                return None
            if not self._verify_copy(m, 0, place.id, self._primary_key(m)):
                return None
        cost = rt.cost
        raw = gidx in self._parity_raw
        block = rt.heap_of(parity_place.id).get(self._parity_key(gidx))
        acc = np.array(block, dtype=np.uint8)
        xored = payload_nbytes(block)
        for m in peers:
            payload = rt.heap_of(self.group[m].id).get(self._primary_key(m))
            if raw:
                rc = _raw_codec(payload)
                if rc is None:
                    # A peer no longer matches the raw encoding the block
                    # was built with — the XOR equation cannot be solved.
                    return None
                stream = rc[1]
            else:
                stream = np.frombuffer(_pickled(payload), dtype=np.uint8)
            if stream.size > acc.size:
                # The member's byte stream outgrew the block since it was
                # built — a re-materialized primary whose serialized form
                # drifted (possible in the pickled encoding only; raw
                # buffers are value-determined).  The XOR equation no
                # longer covers the member: drop the stale block so the
                # next checkpoint or repair pass rebuilds it, and fall
                # through to the next tier.
                nb = payload_nbytes(block)
                self.parity_nbytes -= nb
                self.total_nbytes -= nb
                rt.heap_of(parity_place.id).remove_if_present(
                    self._parity_key(gidx)
                )
                self._parity.discard(gidx)
                self._verified.discard(self._canonical(gidx))
                return None
            acc[: stream.size] ^= stream
            xored += stream.size
            src = self.group[m].id
            if src != parity_place.id:
                arrive = rt.engine.transfer(
                    src, parity_place.id, stream.size, rt.clock.now(src)
                )
                rt.clock.set_at_least(parity_place.id, arrive)
                rt.stats.messages += 1
                rt.stats.bytes_sent += cost.scaled_bytes(stream.size)
        length = self._parity_lengths.get(key)
        if length is None or length > acc.size:
            self.quarantined.append(self._canonical(gidx))
            return None
        if raw:
            codec = self._parity_codecs.get(key)
            if codec is None:
                self.quarantined.append(self._canonical(gidx))
                return None
            cls, dtype, shape = codec
            data = (
                np.frombuffer(acc[:length].tobytes(), dtype=np.dtype(dtype))
                .reshape(shape)
                .copy()
            )
            payload = data if cls is None else cls(data)
        else:
            payload = pickle.loads(acc[:length].tobytes())
        freeze_payload(payload)
        nbytes = payload_nbytes(payload)
        rt.clock.advance(
            parity_place.id,
            cost.flops(xored) + cost.memcpy(nbytes) + cost.checksum(nbytes),
        )
        if memoized_checksum(payload, None) != self._expected_checksum(key):
            # The block XORed clean but the result does not hash to the
            # partition saved — a silently corrupt peer slipped through.
            # Quarantine the block and fall through to the next tier.
            rt.heap_of(parity_place.id).remove_if_present(self._parity_key(gidx))
            self._parity.discard(gidx)
            self._verified.discard(self._canonical(gidx))
            self.quarantined.append(self._canonical(gidx))
            return None
        rt.heap_of(parity_place.id).put(recon_key, payload)
        self._verified.add((key, 0))
        self.parity_reads += 1
        rt.stats.parity_reconstructions += 1
        return parity_place.id, recon_key

    # -- corruption / integrity -------------------------------------------

    def tiers(self, key: int) -> List[int]:
        """0 = primary, :data:`PARITY_TIER` = the group's parity block
        (reported on the group's first member only, so a corruption sweep
        strikes each block at per-copy odds), stable last."""
        out = super().tiers(key)
        gidx = self._parity_group(key)
        if (
            key == self._group_members(gidx)[0]
            and gidx in self._parity
            and self.runtime.is_alive(self._parity_place(gidx).id)
            and self.runtime.heap_of(self._parity_place(gidx).id).contains(
                self._parity_key(gidx)
            )
        ):
            insert_at = 1 if 0 in out else 0
            out.insert(insert_at, PARITY_TIER)
        return out

    def corrupt_copy(self, key: int, tier: int) -> bool:
        if tier != PARITY_TIER:
            return super().corrupt_copy(key, tier)
        rt = self.runtime
        gidx = self._parity_group(key)
        if gidx not in self._parity:
            return False
        parity_place = self._parity_place(gidx)
        if not rt.is_alive(parity_place.id):
            return False
        heap = rt.heap_of(parity_place.id)
        if not heap.contains(self._parity_key(gidx)):
            return False
        heap.put(self._parity_key(gidx), corrupt_payload(heap.get(self._parity_key(gidx))))
        self._verified.discard(self._canonical(gidx))
        return True

    def verify_all(self) -> Tuple[int, int]:
        clean = 0
        before = len(self.quarantined)
        for key in self.saved_keys():
            for tier in self.tiers(key):
                if tier == self.STABLE_TIER:
                    ok = self._verify_copy(key, tier, self.STABLE_TIER, None)
                elif tier == PARITY_TIER:
                    ok = self._verify_parity_block(self._parity_group(key))
                else:
                    ok = self._verify_copy(
                        key, 0, self.group[key].id, self._primary_key(key)
                    )
                if ok:
                    clean += 1
        return clean, len(self.quarantined) - before

    # -- health ------------------------------------------------------------

    def fully_redundant(self) -> bool:
        if not super().fully_redundant():
            return False
        rt = self.runtime
        for gidx in self._groups():
            if gidx not in self._parity:
                return False
            parity_place = self._parity_place(gidx)
            if not rt.is_alive(parity_place.id) or not rt.heap_of(
                parity_place.id
            ).contains(self._parity_key(gidx)):
                return False
        return True

    def recoverable(self) -> bool:
        """Presence-based (no reconstruction side effects): every key has a
        live primary, a stable copy, or a complete parity equation."""
        rt = self.runtime

        def _present(key: int) -> bool:
            place = self.group[key]
            return rt.is_alive(place.id) and rt.heap_of(place.id).contains(
                self._primary_key(key)
            )

        for key in self._saved_keys:
            if _present(key):
                continue
            if key in self._stable:
                continue
            gidx = self._parity_group(key)
            parity_place = self._parity_place(gidx)
            if (
                gidx in self._parity
                and rt.is_alive(parity_place.id)
                and (
                    rt.heap_of(parity_place.id).contains(self._parity_key(gidx))
                    or rt.heap_of(parity_place.id).contains(self._recon_key(key))
                )
                and all(
                    _present(m) for m in self._saved_members(gidx) if m != key
                )
            ):
                continue
            return False
        return True

    def placement_ok(self) -> bool:
        if not super().placement_ok():
            return False
        if self.group.size <= 1:
            return True
        for gidx in self._groups():
            member_places = {self.group[m].id for m in self._saved_members(gidx)}
            if self._parity_place(gidx).id in member_places:
                return False
        return True

    # -- scrub / repair -----------------------------------------------------

    def repair(self, new_group: Optional[PlaceGroup] = None) -> int:
        """Re-materialize lost copies after a recovery (the scrub pass).

        With *new_group* (same size, spares installed at the dead members'
        indices) the snapshot is first re-anchored, so lost primaries have
        live homes again.  Each missing primary is refilled from the best
        surviving tier (parity reconstruction or disk), then missing
        parity blocks are rebuilt from the now-complete member set — both
        fully charged through the engine.  Returns the number of copies
        re-materialized; raises ``DeadPlaceException`` if a place dies
        mid-scrub (the executor's retry loop folds that into the next
        recovery round).
        """
        rt = self.runtime
        if (
            new_group is not None
            and new_group.size == self.group.size
            and new_group.ids != self.group.ids
        ):
            self.rebind_group(new_group)
        if new_group is not None:
            # Scrub mode: the caller installed a fully-live replacement
            # group, so any dead member now means a *new* failure — abort
            # (fail fast) instead of silently leaving holes behind.
            for place in self.group:
                rt.check_alive(place.id)
        repaired = 0
        refilled_groups: Set[int] = set()
        for key in sorted(self._saved_keys):
            home = self.group[key]
            if not rt.is_alive(home.id):
                continue
            if rt.heap_of(home.id).contains(self._primary_key(key)):
                continue
            try:
                src_id, heap_key = self.locate(key)
            except DataLossError:
                continue
            if src_id == self.STABLE_TIER:
                payload = self._stable[key]
                rt.engine.stable_read(home.id, payload_nbytes(payload))
            else:
                payload = rt.heap_of(src_id).get(heap_key)
                nbytes = payload_nbytes(payload)
                if src_id != home.id:
                    arrive = rt.engine.transfer(
                        src_id, home.id, nbytes, rt.clock.now(src_id)
                    )
                    rt.clock.set_at_least(home.id, arrive)
                    rt.stats.messages += 1
                    rt.stats.bytes_sent += rt.cost.scaled_bytes(nbytes)
                rt.clock.advance(home.id, rt.cost.memcpy(nbytes))
            rt.heap_of(home.id).put(self._primary_key(key), payload)
            self._verified.add((key, 0))
            refilled_groups.add(self._parity_group(key))
            repaired += 1
        for gidx in self._groups():
            parity_place = self._parity_place(gidx)
            if not rt.is_alive(parity_place.id):
                continue
            if gidx in self._parity and rt.heap_of(parity_place.id).contains(
                self._parity_key(gidx)
            ):
                if gidx not in refilled_groups or gidx in self._parity_raw:
                    continue
                # A pickled-mode group with a refilled primary: the
                # re-materialized payload may serialize differently than
                # at build time, silently invalidating the XOR equation.
                # Drop the stale block and rebuild it below (raw groups
                # are value-determined and keep their block).  Not
                # counted in ``repaired`` — the block was never lost.
                block = rt.heap_of(parity_place.id).get(self._parity_key(gidx))
                nb = payload_nbytes(block)
                self.parity_nbytes -= nb
                self.total_nbytes -= nb
                rt.heap_of(parity_place.id).remove_if_present(
                    self._parity_key(gidx)
                )
                self._parity.discard(gidx)
                self._verified.discard(self._canonical(gidx))
                members = self._saved_members(gidx)
                if all(
                    rt.is_alive(self.group[m].id)
                    and rt.heap_of(self.group[m].id).contains(
                        self._primary_key(m)
                    )
                    for m in members
                ):
                    self._build_parity(gidx, charge_keys=members)
                continue
            members = self._saved_members(gidx)
            complete = all(
                rt.is_alive(self.group[m].id)
                and rt.heap_of(self.group[m].id).contains(self._primary_key(m))
                for m in members
            )
            if not complete:
                continue
            self._parity.discard(gidx)
            self._build_parity(gidx, charge_keys=members)
            repaired += 1
        return repaired

    # -- lifecycle ----------------------------------------------------------

    def delete(self) -> None:
        rt = self.runtime
        for gidx in self._groups():
            parity_place = self._parity_place(gidx)
            if rt.is_alive(parity_place.id):
                heap = rt.heap_of(parity_place.id)
                heap.remove_if_present(self._parity_key(gidx))
                for m in self._group_members(gidx):
                    heap.remove_if_present(self._recon_key(m))
        self._parity.clear()
        self._parity_raw.clear()
        self._parity_codecs.clear()
        super().delete()

    def __repr__(self) -> str:
        return (
            f"ParityObjectSnapshot(id={self.snap_id}, "
            f"keys={sorted(self._saved_keys)}, group={self.group.ids}, "
            f"span={self._span}, parity_groups={sorted(self._parity)}, "
            f"stable_fallback={self.stable_fallback})"
        )
