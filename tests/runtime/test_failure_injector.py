"""Tests for scripted and random failure injection."""

import pytest

from repro.runtime.failure import (
    ExponentialFailureModel,
    FailureInjector,
    ScriptedKill,
)


class TestScriptedKill:
    def test_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            ScriptedKill(place_id=1)
        with pytest.raises(ValueError):
            ScriptedKill(place_id=1, iteration=1, phase=2)
        ScriptedKill(place_id=1, iteration=3)  # ok


class TestFailureInjector:
    def test_iteration_trigger_fires_once(self):
        inj = FailureInjector().kill_at_iteration(2, iteration=5)
        assert inj.due_at_iteration(4) == []
        assert inj.due_at_iteration(5) == [2]
        assert inj.due_at_iteration(6) == []
        assert inj.pending == 0

    def test_late_poll_still_fires(self):
        inj = FailureInjector().kill_at_iteration(1, iteration=3)
        assert inj.due_at_iteration(10) == [1]

    def test_phase_trigger(self):
        inj = FailureInjector().kill_at_phase(3, phase=7)
        assert inj.due_at_phase(6, 0.0) == []
        assert inj.due_at_phase(7, 0.0) == [3]

    def test_time_trigger(self):
        inj = FailureInjector().kill_at_time(2, time=1.5)
        assert inj.due_at_phase(1, 1.0) == []
        assert inj.due_at_phase(2, 2.0) == [2]

    def test_multiple_kills_same_trigger(self):
        inj = (
            FailureInjector()
            .kill_at_iteration(1, iteration=4)
            .kill_at_iteration(3, iteration=4)
        )
        assert sorted(inj.due_at_iteration(4)) == [1, 3]


class TestExponentialModel:
    def test_deterministic_given_seed(self):
        a = ExponentialFailureModel(mttf=10.0, seed=42).schedule([1, 2, 3], 100.0)
        b = ExponentialFailureModel(mttf=10.0, seed=42).schedule([1, 2, 3], 100.0)
        assert [(k.place_id, k.time) for k in a] == [(k.place_id, k.time) for k in b]

    def test_never_kills_place_zero(self):
        kills = ExponentialFailureModel(mttf=0.01, seed=1).schedule([0, 1, 2], 1e9)
        assert all(k.place_id != 0 for k in kills)

    def test_respects_horizon(self):
        kills = ExponentialFailureModel(mttf=50.0, seed=7).schedule([1, 2], 0.0)
        assert kills == []

    def test_no_duplicate_victims(self):
        kills = ExponentialFailureModel(mttf=0.1, seed=3).schedule(list(range(1, 9)), 1e9)
        victims = [k.place_id for k in kills]
        assert len(victims) == len(set(victims))

    def test_invalid_mttf(self):
        with pytest.raises(ValueError):
            ExponentialFailureModel(mttf=0.0)
