"""Tests for DistVector: segments, reductions, gather, restore paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Partition1D
from repro.runtime import CostModel, DeadPlaceException, PlaceGroup, Runtime


def make_rt(n=4):
    return Runtime(n, cost=CostModel.zero())


class TestConstruction:
    def test_default_even_partition(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 10)
        assert v.partition.sizes == [4, 3, 3]
        assert v.segment(0).n == 4

    def test_custom_partition(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 10, partition=Partition1D(10, [2, 5, 3]))
        assert v.segment(1).n == 5

    def test_partition_must_match_group(self):
        rt = make_rt(3)
        with pytest.raises(ValueError):
            DistVector.make(rt, 10, partition=Partition1D(10, [5, 5]))

    def test_subgroup(self):
        rt = make_rt(4)
        g = PlaceGroup.of_ids([1, 3])
        v = DistVector.make(rt, 6, g)
        assert v.partition.sizes == [3, 3]


class TestOps:
    def test_init_random_partition_independent(self):
        # The logical vector must not depend on how it is partitioned.
        rt3, rt4 = make_rt(3), make_rt(4)
        a = DistVector.make(rt3, 11).init_random(7)
        b = DistVector.make(rt4, 11).init_random(7)
        assert np.array_equal(a.to_array(), b.to_array())

    def test_arithmetic_matches_numpy(self):
        rt = make_rt()
        v = DistVector.make(rt, 9).init_random(1)
        w = DistVector.make(rt, 9).init_random(2)
        a, b = v.to_array(), w.to_array()
        v.scale(2.0).cell_add(w).axpy(-0.5, w).cell_sub(1.0)
        assert np.allclose(v.to_array(), 2 * a + b - 0.5 * b - 1)

    def test_cell_mult_map_fill(self):
        rt = make_rt()
        v = DistVector.make(rt, 5).fill(4.0)
        w = DistVector.make(rt, 5).fill(0.25)
        v.cell_mult(w).map(np.sqrt)
        assert np.allclose(v.to_array(), 1.0)

    def test_dot_with_dup(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 8).init_random(3)
        p = DupVector.make(rt, 8).init_random(4)
        expected = float(v.to_array() @ p.to_array())
        assert v.dot(p) == pytest.approx(expected)

    def test_dot_dist_and_norm(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 8).init_random(3)
        a = v.to_array()
        assert v.dot_dist(v) == pytest.approx(float(a @ a))
        assert v.norm2() == pytest.approx(float(np.linalg.norm(a)))

    def test_sum(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 8).fill(0.5)
        assert v.sum() == pytest.approx(4.0)

    def test_copy_to_gathers(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 7).init_random(5)
        p = DupVector.make(rt, 7)
        v.copy_to(p.local())
        assert np.allclose(p.local().data, v.to_array())

    def test_misaligned_operands_rejected(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 10)
        w = DistVector.make(rt, 10, partition=Partition1D(10, [2, 4, 4]))
        with pytest.raises(ValueError):
            v.cell_add(w)

    def test_dot_requires_dup(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 10)
        with pytest.raises(ValueError):
            v.dot(DistVector.make(rt, 10))


class TestResilience:
    def test_dead_member_raises(self):
        rt = make_rt()
        v = DistVector.make(rt, 8).fill(1.0)
        rt.kill(1)
        with pytest.raises(DeadPlaceException):
            v.scale(2.0)

    def test_remake_recalculates_partition(self):
        rt = make_rt(4)
        v = DistVector.make(rt, 12).fill(1.0)
        rt.kill(2)
        v.remake(rt.live_world())
        assert v.partition.sizes == [4, 4, 4]

    def test_restore_same_partition(self):
        rt = make_rt(4)
        v = DistVector.make(rt, 10).init_random(9)
        ref = v.to_array()
        snap = v.make_snapshot()
        v.fill(0.0)
        v.restore_snapshot(snap)
        assert np.array_equal(v.to_array(), ref)

    def test_restore_repartitioned_after_failure(self):
        rt = make_rt(4)
        v = DistVector.make(rt, 13).init_random(11)
        ref = v.to_array()
        snap = v.make_snapshot()
        rt.kill(3)
        v.remake(rt.live_world())
        v.restore_snapshot(snap)
        assert np.array_equal(v.to_array(), ref)

    @settings(max_examples=25)
    @given(
        n=st.integers(2, 60),
        old_places=st.integers(1, 6),
        kill_count=st.integers(0, 2),
        seed=st.integers(0, 50),
    )
    def test_restore_any_shrink_is_identity(self, n, old_places, kill_count, seed):
        """Snapshot → kill non-adjacent places → remake → restore == identity."""
        rt = make_rt(max(old_places, kill_count * 2 + 1) + 1)
        group = PlaceGroup.dense(old_places)
        v = DistVector.make(rt, n, group).init_random(seed)
        ref = v.to_array()
        snap = v.make_snapshot()
        # Kill up to kill_count non-adjacent, non-zero members.
        victims = [i for i in group.ids if i not in (0,)][::2][:kill_count]
        for victim in victims:
            rt.kill(victim)
        v.remake(rt.live_group(group))
        v.restore_snapshot(snap)
        assert np.array_equal(v.to_array(), ref)

    def test_restore_wrong_length_rejected(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 10).fill(1.0)
        snap = v.make_snapshot()
        w = DistVector.make(rt, 11)
        with pytest.raises(ValueError):
            w.restore_snapshot(snap)
