"""Shared machinery of multi-place GML objects.

Every duplicated or distributed GML class stores its per-place payloads in
the owning places' heaps under a unique object id, holds only metadata on
the driver, and supports the resilient-GML lifecycle:

* construction over an **arbitrary place group** (§IV-A1);
* :meth:`remake` — destroy live payloads and reallocate over a new group;
* the :class:`~repro.resilience.snapshot.Snapshottable` interface.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.resilience.snapshot import Snapshottable
from repro.runtime.place import Place, PlaceGroup
from repro.runtime.runtime import Runtime
from repro.util.validation import require
from repro.util.versioning import version_token

_object_counter = itertools.count()


class MultiPlaceObject(Snapshottable):
    """Base class: payload-per-place storage plus group management."""

    #: Backup replicas per snapshot partition: 1 is the paper's double
    #: in-memory store; raise it to survive bursts of correlated failures
    #: at a proportional checkpoint cost (see the replication ablation).
    snapshot_backups: int = 1
    #: Replica placement policy (None = ring offsets, the paper's scheme);
    #: see :mod:`repro.resilience.placement` for stride/spread policies
    #: that survive correlated (adjacent / same-rack) failures.
    snapshot_placement = None
    #: When True, every snapshot partition is additionally written to the
    #: stable-storage tier, and restore reads fall back to disk once all
    #: in-memory copies of a partition are gone (instead of DataLossError).
    snapshot_stable_fallback: bool = False
    #: When True, checkpoints go to reliable stable storage instead of the
    #: in-memory double store (survives anything, pays disk I/O — the
    #: data-flow-system alternative the paper's introduction contrasts).
    snapshot_to_stable_storage: bool = False

    def __init__(self, runtime: Runtime, group: PlaceGroup, name: str):
        require(group.size > 0, "place group must be non-empty")
        for place in group:
            runtime.check_alive(place.id)
        self.runtime = runtime
        self.group = group
        self.name = name
        self.oid = next(_object_counter)
        #: The key under which each member place stores its payload.
        #: A plain attribute (the oid never changes): the heap addressing
        #: paths read it tens of thousands of times per chaos schedule.
        self.heap_key = ("gml", self.oid)

    def _new_snapshot(self, meta: dict) -> "object":
        """Build this object's snapshot store per its configuration."""
        from repro.resilience.snapshot import DistObjectSnapshot

        if self.snapshot_to_stable_storage:
            from repro.resilience.stable import StableObjectSnapshot

            return StableObjectSnapshot(self.runtime, self.group, meta)
        from repro.resilience.placement import ParityPlacement

        if isinstance(self.snapshot_placement, ParityPlacement):
            from repro.resilience.parity import ParityObjectSnapshot

            require(
                self.snapshot_backups <= 1,
                "parity placement replaces per-key replicas; configure "
                "replicas=1 (backups=0) with placement=parity[:g]",
            )
            return ParityObjectSnapshot(
                self.runtime,
                self.group,
                meta,
                placement=self.snapshot_placement,
                stable_fallback=self.snapshot_stable_fallback,
            )
        return DistObjectSnapshot(
            self.runtime,
            self.group,
            meta,
            backups=self.snapshot_backups,
            placement=self.snapshot_placement,
            stable_fallback=self.snapshot_stable_fallback,
        )

    # -- heap addressing ----------------------------------------------------

    def local_payload(self, place: Place) -> Any:
        """Library-internal: this object's payload on one live place."""
        return self.runtime.heap_of(place.id).get(self.heap_key)

    def payload_at_index(self, index: int) -> Any:
        """Library-internal: payload of the place at a group index."""
        return self.local_payload(self.group[index])

    # -- delta checkpointing -------------------------------------------------

    def partition_versions(self) -> dict:
        """Per-partition mutation tokens: ``{group index: version token}``.

        The cheap dirty test delta checkpointing is built on — comparing
        one token per partition replaces hashing the partition's bytes.
        """
        return {
            index: version_token(self.payload_at_index(index))
            for index in range(self.group.size)
        }

    @staticmethod
    def _delta_base(snap, base):
        """The usable delta base, or None when *base* is not compatible.

        A base snapshot from a different group / replication layout cannot
        donate copies by reference (they live in the wrong heaps), so the
        save silently degrades to a full checkpoint.
        """
        if base is not None and snap.delta_compatible(base):
            return base
        return None

    def _save_partition(self, snap, ctx, key, token, base, copy_fn, view_fn) -> None:
        """Save one partition, skipping copy + CRC when it is clean.

        *token* is the partition's current mutation token; *base* the
        compatible previous committed snapshot (or None for a full save).
        Clean partitions adopt the base's copies by reference
        (:meth:`~repro.resilience.snapshot.DistObjectSnapshot.save_clean_from`);
        dirty ones under delta share the live arrays copy-on-write
        (*view_fn*); full-mode saves pay the eager deep copy (*copy_fn*).
        """
        if base is not None and base.can_reuse(key, token):
            snap.save_clean_from(ctx, key, base)
        elif base is not None:
            snap.save_from(ctx, key, view_fn(), token=token)
        else:
            snap.save_from(ctx, key, copy_fn(), token=token)

    # -- lifecycle ---------------------------------------------------------

    def _release_payloads(self) -> None:
        """Drop payloads on all live member places (dead heaps are gone)."""
        for place in self.group:
            if self.runtime.is_alive(place.id):
                self.runtime.heap_of(place.id).remove_if_present(self.heap_key)

    def destroy(self) -> None:
        """Free this object's storage everywhere."""
        self._release_payloads()

    def check_group_alive(self) -> None:
        """Raise ``DeadPlaceException`` if any member place has died."""
        for place in self.group:
            self.runtime.check_alive(place.id)

    # -- introspection ------------------------------------------------------

    def total_nbytes(self) -> float:
        """Sum of payload bytes across live member places."""
        from repro.util.bytesize import payload_nbytes

        total = 0.0
        for place in self.group:
            if self.runtime.is_alive(place.id):
                payload = self.runtime.heap_of(place.id).get_or(self.heap_key)
                if payload is not None:
                    total += payload_nbytes(payload)
        return total

    def __repr__(self) -> str:
        return f"{type(self).__name__}(oid={self.oid}, group={self.group.ids})"
