"""``DupDenseMatrix`` / ``DupSparseMatrix`` — a matrix duplicated per place.

Each member place holds a full copy of the matrix; :meth:`sync` rebroadcasts
the root copy.  Restoring a duplicated class loads one duplicate per place
from the snapshot, keyed by the place's *new* index (§IV-B2).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.matrix.dense import DenseMatrix
from repro.matrix.multiplace import MultiPlaceObject
from repro.matrix.sparse import SparseCSR
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime.comm import tree_broadcast
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.validation import require

MatrixPayload = Union[DenseMatrix, SparseCSR]


class _DupMatrixBase(MultiPlaceObject):
    """Shared machinery of the duplicated matrix classes."""

    _KIND = "dense"

    def __init__(self, runtime: Runtime, proto: MatrixPayload, group: PlaceGroup):
        super().__init__(runtime, group, type(self).__name__)
        self.m, self.n = proto.shape
        self._allocate(proto)

    @classmethod
    def make(
        cls, runtime: Runtime, proto: MatrixPayload, group: Optional[PlaceGroup] = None
    ) -> "_DupMatrixBase":
        """Duplicate *proto* (a single-place matrix) over *group*."""
        cls._check_payload(proto)
        return cls(runtime, proto, group if group is not None else runtime.world)

    @classmethod
    def _check_payload(cls, payload: MatrixPayload) -> None:
        expected = DenseMatrix if cls._KIND == "dense" else SparseCSR
        require(
            isinstance(payload, expected),
            f"{cls.__name__} duplicates {expected.__name__} payloads",
        )

    def _allocate(self, proto: MatrixPayload) -> None:
        key = self.heap_key

        def alloc(ctx: PlaceContext) -> None:
            ctx.heap.put(key, proto.copy())
            ctx.charge_memcpy(proto.nbytes)

        self.runtime.finish_all(self.group, alloc, label=f"{self.name}:alloc")

    # -- access ------------------------------------------------------------

    def local(self) -> MatrixPayload:
        """The root (group index 0) copy."""
        return self.payload_at_index(0)

    def sync(self) -> "_DupMatrixBase":
        """Broadcast the root copy to every replica."""
        root = self.payload_at_index(0)
        tree_broadcast(
            self.runtime, self.group, 0, nbytes=root.nbytes, label=f"{self.name}:sync"
        )
        for index in range(1, self.group.size):
            place = self.group[index]
            self.runtime.heap_of(place.id).put(self.heap_key, root.copy())
        return self

    def replicas_consistent(self, tol: float = 0.0) -> bool:
        """True when all replicas agree within *tol* (test helper)."""
        root = self.payload_at_index(0)
        return all(
            self.payload_at_index(i).equals_approx(root, tol)
            for i in range(1, self.group.size)
        )

    # -- resilience -----------------------------------------------------------

    def remake(self, new_group: PlaceGroup) -> "_DupMatrixBase":
        """Reallocate (empty) duplicates over *new_group*."""
        proto = (
            DenseMatrix.make(self.m, self.n)
            if self._KIND == "dense"
            else SparseCSR.empty(self.m, self.n)
        )
        self._release_payloads()
        self.group = new_group
        self._allocate(proto)
        return self

    def make_snapshot(self, base: Optional[DistObjectSnapshot] = None) -> DistObjectSnapshot:
        snap = self._new_snapshot({"shape": (self.m, self.n), "kind": self._KIND})
        base = self._delta_base(snap, base)
        group, key = self.group, self.heap_key

        def save(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            replica: MatrixPayload = ctx.heap.get(key)
            self._save_partition(
                snap, ctx, index, replica.version, base, replica.copy, replica.freeze_view
            )

        self.runtime.finish_all(group, save, label=f"{self.name}:snapshot")
        return snap

    def restore_snapshot(self, snapshot: DistObjectSnapshot) -> None:
        require(
            tuple(snapshot.meta.get("shape", ())) == (self.m, self.n),
            "snapshot is for a different matrix",
        )
        require(
            self.group.size <= snapshot.group.size,
            "cannot restore duplicates onto a larger group than was saved",
        )
        group, key = self.group, self.heap_key

        def load(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            payload = snapshot.fetch(ctx, index)
            ctx.heap.put(key, payload.copy())

        self.runtime.finish_all(group, load, label=f"{self.name}:restore")


class DupDenseMatrix(_DupMatrixBase):
    """A dense matrix fully duplicated at every member place.

    Cell-wise and multiplication operations execute at every place (one
    finish each) to keep the replicas consistent, like :class:`DupVector`;
    :meth:`reduce_sum` all-reduces per-place partials into every replica
    (the combine step of distributed Gram products).
    """

    _KIND = "dense"

    @classmethod
    def make_zero(
        cls, runtime: Runtime, m: int, n: int, group: Optional[PlaceGroup] = None
    ) -> "DupDenseMatrix":
        """Duplicate an ``m × n`` zero matrix."""
        return cls.make(runtime, DenseMatrix.make(m, n), group)

    # -- replica-consistent cell-wise operations -----------------------------

    def _cellwise(self, fn, flops: Optional[float] = None, label: str = "cellwise"):
        per_place = float(self.m * self.n) if flops is None else flops

        def task(ctx: PlaceContext) -> None:
            fn(ctx.heap.get(self.heap_key))
            ctx.charge_flops(per_place)

        self.runtime.finish_all(self.group, task, label=f"{self.name}:{label}")
        return self

    def _cellwise_pair(self, other, fn, flops=None, label="cellwise"):
        self._check_aligned(other)
        per_place = float(self.m * self.n) if flops is None else flops

        def task(ctx: PlaceContext) -> None:
            fn(ctx.heap.get(self.heap_key), ctx.heap.get(other.heap_key))
            ctx.charge_flops(per_place)

        self.runtime.finish_all(self.group, task, label=f"{self.name}:{label}")
        return self

    def _check_aligned(self, other: "DupDenseMatrix") -> None:
        require(isinstance(other, DupDenseMatrix), "operand must be a DupDenseMatrix")
        require((other.m, other.n) == (self.m, self.n), "shape mismatch")
        require(other.group == self.group, "operands on different groups")

    def fill(self, value: float) -> "DupDenseMatrix":
        """Set every replica's cells to *value*."""
        return self._cellwise(lambda a: a.fill(value), label="fill")

    def init_from(self, proto: DenseMatrix) -> "DupDenseMatrix":
        """Overwrite every replica with *proto* (no communication charged —
        use for deterministic initialization, not data distribution)."""
        require(proto.shape == (self.m, self.n), "shape mismatch")
        return self._cellwise(
            lambda a: a.set_sub_matrix(0, 0, proto), label="init_from"
        )

    def scale(self, alpha: float) -> "DupDenseMatrix":
        """In-place ``self *= alpha`` on every replica."""
        return self._cellwise(lambda a: a.scale(alpha), label="scale")

    def cell_add(self, other: "DupDenseMatrix | float") -> "DupDenseMatrix":
        """In-place element-wise add (replica-aligned matrix or scalar)."""
        if isinstance(other, DupDenseMatrix):
            return self._cellwise_pair(other, lambda a, b: a.cell_add(b), label="cell_add")
        return self._cellwise(lambda a: a.cell_add(float(other)), label="cell_add")

    def cell_mult(self, other: "DupDenseMatrix") -> "DupDenseMatrix":
        """In-place Hadamard product on every replica."""
        return self._cellwise_pair(other, lambda a, b: a.cell_mult(b), label="cell_mult")

    def cell_div(self, other: "DupDenseMatrix", eps: float = 1e-12) -> "DupDenseMatrix":
        """In-place element-wise divide, denominator floored at *eps*."""

        def div(a: DenseMatrix, b: DenseMatrix) -> None:
            a.touch()
            a.data /= np.maximum(b.data, eps)

        return self._cellwise_pair(other, div, label="cell_div")

    def mult(self, a: "DupDenseMatrix", b: "DupDenseMatrix") -> "DupDenseMatrix":
        """``self = a @ b`` computed redundantly at every place."""
        self._check_aligned_for_mult(a, b)

        def task(ctx: PlaceContext) -> None:
            out: DenseMatrix = ctx.heap.get(self.heap_key)
            out.mult(ctx.heap.get(a.heap_key), ctx.heap.get(b.heap_key))
            ctx.charge_flops(2.0 * a.m * a.n * b.n)

        self.runtime.finish_all(self.group, task, label=f"{self.name}:mult")
        return self

    def _check_aligned_for_mult(self, a: "DupDenseMatrix", b: "DupDenseMatrix") -> None:
        require(a.group == self.group and b.group == self.group, "group mismatch")
        require(a.n == b.m, "inner dimension mismatch")
        require((self.m, self.n) == (a.m, b.n), "output shape mismatch")

    def transpose_from(self, other: "DupDenseMatrix") -> "DupDenseMatrix":
        """``self = otherᵀ``, computed locally at every place."""
        require(other.group == self.group, "operands on different groups")
        require((other.n, other.m) == (self.m, self.n), "transpose shape mismatch")

        def task(ctx: PlaceContext) -> None:
            out: DenseMatrix = ctx.heap.get(self.heap_key)
            src: DenseMatrix = ctx.heap.get(other.heap_key)
            out.touch()
            out.data[:] = src.data.T
            ctx.charge_flops(float(self.m * self.n))

        self.runtime.finish_all(self.group, task, label=f"{self.name}:transpose")
        return self

    def reduce_sum(self) -> "DupDenseMatrix":
        """All-reduce: every replica becomes the element-wise sum of all."""
        from repro.runtime.comm import tree_allreduce

        total = np.zeros((self.m, self.n))
        for place in self.group:
            total += self.local_payload(place).data
        tree_allreduce(
            self.runtime,
            self.group,
            nbytes=self.m * self.n * 8,
            reduce_flops=self.m * self.n,
            label=f"{self.name}:reduce_sum",
        )
        for place in self.group:
            replica = self.local_payload(place)
            replica.touch()
            replica.data[:] = total
        return self

    def norm_f(self) -> float:
        """Frobenius norm (redundant per-place computation)."""

        def task(ctx: PlaceContext) -> float:
            a: DenseMatrix = ctx.heap.get(self.heap_key)
            ctx.charge_flops(2.0 * self.m * self.n)
            return a.norm_f()

        results = self.runtime.finish_all(
            self.group, task, ret_bytes=8, label=f"{self.name}:norm"
        )
        return float(results[0])

    def to_array(self) -> np.ndarray:
        """A driver-side copy of the root replica's values."""
        return self.local().data.copy()


class DupSparseMatrix(_DupMatrixBase):
    """A sparse (CSR) matrix fully duplicated at every member place."""

    _KIND = "sparse"

    @classmethod
    def make_empty(
        cls, runtime: Runtime, m: int, n: int, group: Optional[PlaceGroup] = None
    ) -> "DupSparseMatrix":
        """Duplicate an empty ``m × n`` sparse matrix."""
        return cls.make(runtime, SparseCSR.empty(m, n), group)
