"""Checksummed snapshot integrity: verification, quarantine, fall-through.

Every snapshot partition records a structural CRC-32 at save time; every
copy is verified before being offered for restore.  A corrupt copy is
quarantined (dropped from its tier) and the search falls through to the
next tier — corrupt data is **never** silently restored.  When every
surviving copy of a partition is corrupt the failure is loud:
``SnapshotCorruptionError`` (a ``DataLossError`` to the recovery ladder).
"""

import numpy as np
import pytest

from repro.apps.data import RegressionWorkload
from repro.apps.nonresilient import LinRegNonResilient
from repro.apps.resilient import LinRegResilient
from repro.matrix.vector import Vector
from repro.resilience.executor import IterativeExecutor
from repro.resilience.placement import SpreadPlacement
from repro.resilience.snapshot import DistObjectSnapshot
from repro.resilience.stable import StableObjectSnapshot
from repro.runtime import CostModel, DataLossError, Runtime
from repro.runtime.exceptions import SnapshotCorruptionError
from repro.runtime.failure import CorruptionModel

STABLE = DistObjectSnapshot.STABLE_TIER


def make_rt(n=4, cost=None):
    return Runtime(n, cost=cost or CostModel.zero())


def save_all(rt, snap, payload_fn=lambda i: Vector.of([float(i), float(i) + 0.5])):
    group = snap.group

    def task(ctx):
        index = group.index_of(ctx.place)
        snap.save_from(ctx, index, payload_fn(index))

    rt.finish_all(group, task)


class TestQuarantineAndFallThrough:
    def test_corrupt_primary_falls_through_to_backup(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap)
        assert snap.corrupt_copy(1, tier=0)
        pid, heap_key = snap.locate(1)
        assert heap_key[0] == "snapb"  # served from the replica tier
        assert (1, 0) in snap.quarantined
        # The quarantined primary is physically gone, not just flagged.
        assert 0 not in snap.tiers(1)

    def test_corrupt_all_memory_tiers_falls_through_to_disk(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world, stable_fallback=True)
        save_all(rt, snap)
        assert snap.corrupt_copy(0, tier=0)
        assert snap.corrupt_copy(0, tier=1)
        pid, heap_key = snap.locate(0)
        assert pid == STABLE
        assert sorted(snap.quarantined) == [(0, 0), (0, 1)]

    def test_all_tiers_corrupt_raises_loudly(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world, stable_fallback=True)
        save_all(rt, snap)
        for tier in (0, 1, STABLE):
            assert snap.corrupt_copy(2, tier)
        with pytest.raises(SnapshotCorruptionError, match="quarantined"):
            snap.locate(2)
        # Corruption loss is data loss to the recovery ladder.
        assert issubclass(SnapshotCorruptionError, DataLossError)

    def test_crash_loss_still_distinct_from_corruption_loss(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)  # no stable tier
        save_all(rt, snap)
        rt.kill(1)
        rt.kill(2)  # primary of key 1 and its ring backup both die
        with pytest.raises(DataLossError) as exc_info:
            snap.locate(1)
        assert not isinstance(exc_info.value, SnapshotCorruptionError)

    def test_corruption_strikes_only_the_hit_tier(self):
        # Tiers share the payload object; the strike must corrupt a copy,
        # never the shared original.
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([42.0]))
        assert snap.corrupt_copy(0, tier=1)
        pid, heap_key = snap.locate(0)  # primary verifies clean
        assert heap_key[0] == "snap"
        assert rt.heap_of(pid).get(heap_key).data[0] == 42.0

    def test_corrupt_copy_reports_missing_targets(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap)
        rt.kill(1)  # primary of key 1 gone with its place
        assert not snap.corrupt_copy(1, tier=0)
        assert not snap.corrupt_copy(99, tier=0)


class TestVerification:
    def test_verify_all_scrubs_every_tier(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world, stable_fallback=True)
        save_all(rt, snap)
        assert snap.corrupt_copy(0, tier=1)
        assert snap.corrupt_copy(2, tier=STABLE)
        clean, newly_quarantined = snap.verify_all()
        assert newly_quarantined == 2
        # 3 keys x 3 tiers, minus the two quarantined copies.
        assert clean == 7
        # A second scrub finds nothing new (clean verdicts are memoized).
        assert snap.verify_all() == (7, 0)

    def test_save_charges_checksum_time(self):
        cost = CostModel(checksum_byte_time=1.0)
        rt = make_rt(3, cost=cost)
        snap = DistObjectSnapshot(rt, rt.world)
        t_before = [rt.clock.now(i) for i in range(3)]
        save_all(rt, snap)
        assert all(rt.clock.now(i) > t_before[i] for i in range(3))

    def test_recoverable_reflects_quarantines(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap)
        assert snap.recoverable()
        snap.corrupt_copy(1, tier=0)
        snap.corrupt_copy(1, tier=1)
        assert not snap.recoverable()


class TestStableSnapshotIntegrity:
    def test_corrupt_stable_copy_has_no_further_tier(self):
        rt = make_rt(3)
        snap = StableObjectSnapshot(rt, rt.world)
        save_all(rt, snap)
        assert snap.tiers(1) == [STABLE]
        assert snap.corrupt_copy(1, STABLE)
        with pytest.raises(SnapshotCorruptionError, match="no further tier"):
            snap.locate(1)
        assert (1, STABLE) in snap.quarantined

    def test_clean_copy_verifies_and_serves(self):
        rt = make_rt(3)
        snap = StableObjectSnapshot(rt, rt.world)
        save_all(rt, snap)
        pid, _ = snap.locate(0)
        assert pid == STABLE


class TestExecutorIntegration:
    WL = RegressionWorkload(
        features=8, examples_per_place=32, iterations=10, blocks_per_place=2
    )

    def _baseline(self):
        rt = Runtime(6, cost=CostModel.zero())
        app = LinRegNonResilient(rt, self.WL)
        app.run()
        return app.model()

    def test_corruption_plus_crash_recovers_through_clean_tiers(self):
        # Post-commit bit-rot strikes + a real kill: restore must route
        # around quarantined copies and still converge to the exact
        # failure-free answer.
        baseline = self._baseline()
        rt = Runtime(6, cost=CostModel.zero(), resilient=True)
        app = LinRegResilient(rt, self.WL)
        rt.injector.kill_at_iteration(2, iteration=5)
        executor = IterativeExecutor(
            rt,
            app,
            checkpoint_interval=3,
            replicas=2,
            placement=SpreadPlacement(),
            stable_fallback=True,
            corruption=CorruptionModel(rate=0.3, seed=1),
        )
        report = executor.run()
        assert report.restores >= 1
        assert report.quarantined_copies > 0
        np.testing.assert_allclose(app.model(), baseline, rtol=1e-8)

    def test_store_verify_integrity_counts(self):
        rt = Runtime(6, cost=CostModel.zero(), resilient=True)
        app = LinRegResilient(rt, self.WL)
        executor = IterativeExecutor(
            rt, app, checkpoint_interval=3, replicas=2, placement=SpreadPlacement()
        )
        executor.run()
        store = executor.store
        scrub = store.verify_integrity()
        assert scrub["quarantined"] == 0 and scrub["clean"] > 0
        latest = store.latest()
        snap = next(iter(latest.snapshots.values()))
        key = snap.saved_keys()[0]
        assert snap.corrupt_copy(key, tier=0)
        scrub = store.verify_integrity()
        assert scrub["quarantined"] == 1
        assert store.quarantined_copies() == 1
