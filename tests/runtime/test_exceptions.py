"""Tests for the failure-surface exception types and their aggregation."""

import pytest

from repro.runtime.exceptions import (
    CommTimeoutError,
    DataLossError,
    DeadPlaceException,
    MultipleException,
    SnapshotCorruptionError,
    collapse_failures,
)


class TestPlacesAccessor:
    def test_dead_place_exposes_single_place(self):
        assert DeadPlaceException(3).places == [3]

    def test_multiple_collects_sorted_unique_places(self):
        exc = MultipleException(
            [DeadPlaceException(5), DeadPlaceException(2), DeadPlaceException(5)]
        )
        assert exc.places == [2, 5]

    def test_nested_multiple_places(self):
        inner = MultipleException([DeadPlaceException(4), DeadPlaceException(1)])
        outer = MultipleException([inner, DeadPlaceException(2)])
        assert outer.places == [1, 2, 4]

    def test_non_place_exceptions_contribute_no_places(self):
        exc = MultipleException([ValueError("app bug"), DeadPlaceException(7)])
        assert exc.places == [7]

    def test_comm_timeout_is_a_dead_place_to_the_finish(self):
        exc = CommTimeoutError(6, retries=4)
        assert isinstance(exc, DeadPlaceException)
        assert exc.places == [6]
        assert exc.retries == 4
        assert "4 retransmissions" in str(exc)


class TestFlattened:
    def test_flat_list_is_returned_as_is(self):
        leaves = [DeadPlaceException(1), ValueError("x")]
        assert MultipleException(leaves).flattened() == leaves

    def test_nested_multiples_are_expanded(self):
        a, b, c = DeadPlaceException(1), DeadPlaceException(2), DeadPlaceException(3)
        nested = MultipleException([MultipleException([a, b]), c])
        assert nested.flattened() == [a, b, c]

    def test_deeply_nested_multiples(self):
        a, b = DeadPlaceException(1), ValueError("boom")
        deep = MultipleException(
            [MultipleException([MultipleException([a]), b])]
        )
        assert deep.flattened() == [a, b]

    def test_mixed_fault_types_preserved_in_order(self):
        dead = DeadPlaceException(2)
        timeout = CommTimeoutError(3, retries=2)
        app_error = RuntimeError("task blew up")
        exc = MultipleException([MultipleException([dead, app_error]), timeout])
        assert exc.flattened() == [dead, app_error, timeout]


class TestCollapseFailures:
    def test_single_failure_returned_unwrapped(self):
        failure = DeadPlaceException(4)
        assert collapse_failures([failure]) is failure

    def test_single_element_multiple_collapses_to_leaf(self):
        leaf = DeadPlaceException(9)
        collapsed = collapse_failures([MultipleException([leaf])])
        assert collapsed is leaf

    def test_several_failures_aggregate_one_level_deep(self):
        a, b = DeadPlaceException(1), DeadPlaceException(2)
        collapsed = collapse_failures([MultipleException([a]), b])
        assert isinstance(collapsed, MultipleException)
        assert collapsed.exceptions == [a, b]
        assert all(
            not isinstance(e, MultipleException) for e in collapsed.exceptions
        )

    def test_nested_multiples_fully_flattened(self):
        a, b, c = DeadPlaceException(1), ValueError("x"), DeadPlaceException(3)
        collapsed = collapse_failures(
            [MultipleException([MultipleException([a, b]), c])]
        )
        assert isinstance(collapsed, MultipleException)
        assert collapsed.exceptions == [a, b, c]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            collapse_failures([])


class TestCorruptionHierarchy:
    def test_corruption_is_data_loss(self):
        # Recovery-ladder catch sites treat unrecoverable corruption as
        # data loss; campaigns distinguish the two by isinstance.
        assert issubclass(SnapshotCorruptionError, DataLossError)
        err = SnapshotCorruptionError("all tiers corrupt")
        assert isinstance(err, DataLossError)
