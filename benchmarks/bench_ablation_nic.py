"""Ablation — per-node NIC contention and the Table III residual.

The paper's checkpoint times jump ~1.8× between 2 and 12 places
(1284 → 2292 ms for LinReg) and then stay almost flat to 44 places.  A
per-place transfer model cannot produce that jump: the per-place snapshot
volume is constant under weak scaling.  The paper's testbed ran **4 places
per node on 11 nodes** — once more than 11 places run, several places'
backup copies (200 MB each for LinReg) share one NIC, and the serialized
NIC is exactly a step increase that saturates once every node is full.

This ablation runs the Table III protocol under the plain profile and
under the node-topology profile (11 nodes, round-robin placement,
shared-memory intra-node transfers) and compares the 2 → 12 → 44 growth
pattern against the paper's.
"""

from _common import emit, results_path
from repro.bench import figures
from repro.bench.calibration import (
    REGRESSION_SCALE,
    cluster_2015,
    cluster_2015_with_nodes,
    regression_bench_workload,
)
from repro.apps.resilient import LinRegResilient
from repro.resilience.executor import IterativeExecutor
from repro.runtime import Runtime

AXIS = [2, 8, 12, 24, 44]
PAPER_LINREG = {2: 1284, 8: 1917, 12: 2292, 24: 2336, 44: 2464}


def run_profile(cost_model):
    wl = regression_bench_workload(30)
    out = []
    for places in AXIS:
        rt = Runtime(places, cost=cost_model.with_scale(REGRESSION_SCALE), resilient=True)
        app = LinRegResilient(rt, wl)
        report = IterativeExecutor(rt, app, checkpoint_interval=10).run()
        out.append(report.mean_checkpoint_time * 1e3)
    return out


def run_both():
    return {
        "per-place links": run_profile(cluster_2015()),
        "11 nodes x 4 places (NIC shared)": run_profile(cluster_2015_with_nodes()),
        "paper (LinReg)": [float(PAPER_LINREG[p]) for p in AXIS],
    }


def test_ablation_nic_contention(benchmark):
    values = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [figures.series_table(AXIS, values, header_unit="ms/checkpoint")]
    for label, series in values.items():
        jump = series[AXIS.index(12)] / series[0]
        flat = series[-1] / series[AXIS.index(12)]
        lines.append(f"  {label:<34s} 2→12 growth {jump:4.2f}x   12→44 growth {flat:4.2f}x")
    csv = figures.write_csv(results_path("ablation_nic.csv"), AXIS, values)
    lines.append(f"  series written to {csv}")
    emit("Ablation — NIC sharing explains Table III's 2→12 jump", "\n".join(lines))

    plain = values["per-place links"]
    nic = values["11 nodes x 4 places (NIC shared)"]
    paper = values["paper (LinReg)"]
    i12 = AXIS.index(12)
    # Without NIC sharing the checkpoint time is nearly flat from 2 places;
    # with it, a clear jump appears once nodes start hosting >1 place —
    # the paper's pattern.
    assert plain[i12] / plain[0] < 1.15
    assert nic[i12] / nic[0] > 1.5
    # And like the paper, growth saturates once every node is full.
    assert nic[-1] / nic[i12] < 1.6
    assert paper[-1] / paper[i12] < 1.2  # the anchor we are explaining
