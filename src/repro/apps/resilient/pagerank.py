"""PageRank (resilient) — Listings 2 + 5 of the paper, combined.

The iteration body is Listing 2 verbatim; ``checkpoint`` is Listing 5
lines 3–7 (``saveReadOnly(G)``, ``saveReadOnly(U)``, ``save(P)``,
``commit``); ``restore`` is Listing 5 lines 9–14 (remake ``G``, ``U``,
``P`` and the temporary ``GP`` over the new group, then one ``store
.restore()`` reloading everything saved).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.data import PageRankWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Grid
from repro.matrix.random import LinkMatrix
from repro.resilience.iterative import ResilientIterativeApp
from repro.resilience.store import AppResilientStore
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


class PageRankResilient(ResilientIterativeApp):
    """PageRank under the resilient iterative framework."""

    def __init__(
        self,
        runtime: Runtime,
        workload: PageRankWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        self.n = workload.nodes(group.size)
        self.link = LinkMatrix(self.n, workload.out_degree, workload.seed)
        self.G = DistBlockMatrix.make_sparse(
            runtime, self.n, self.n, workload.row_blocks(group.size), 1, group
        ).init_link_matrix(self.link)
        row_part = self.G.aligned_row_partition()
        self.P = DupVector.make(runtime, self.n, group).init(1.0 / self.n)
        self.U = DistVector.make(runtime, self.n, group, row_part).fill(1.0 / self.n)
        self.GP = DistVector.make(runtime, self.n, group, row_part)

    @property
    def places(self) -> PlaceGroup:
        return self._places

    # -- the framework's four methods -----------------------------------------

    def is_finished(self) -> bool:
        return self.iteration >= self.workload.iterations

    def step(self) -> None:
        alpha = self.workload.alpha
        self.GP.mult(self.G, self.P)
        self.GP.scale(alpha)
        ut_p_1a = self.U.dot(self.P) * (1.0 - alpha)
        self.GP.copy_to(self.P.local())  # gather
        self.P.local().cell_add(ut_p_1a)
        self.P.sync()  # broadcast
        self.iteration += 1

    def checkpoint(self, store: AppResilientStore) -> None:
        store.start_new_snapshot()
        store.save_read_only(self.G)
        store.save_read_only(self.U)
        store.save(self.P)
        store.commit(iteration=self.iteration)

    def restore(
        self, new_places: PlaceGroup, store: AppResilientStore, snapshot_iter: int
    ) -> None:
        new_grid = None
        if self.restore_context.rebalance:
            new_grid = Grid.partition(
                self.n, self.n, self.workload.row_blocks(new_places.size), 1
            )
        self.G.remake(new_places, new_grid=new_grid)
        row_part = self.G.aligned_row_partition()
        self.U.remake(new_places, row_part)
        self.P.remake(new_places)
        self.GP.remake(new_places, row_part)
        self._places = new_places
        store.restore()
        self.iteration = snapshot_iter

    def ranks(self):
        """The rank vector (driver-side copy)."""
        return self.P.to_array()
