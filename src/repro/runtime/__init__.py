"""The APGAS runtime simulator (the "X10" substrate).

Public surface:

* :class:`~repro.runtime.runtime.Runtime` — the simulated world of places;
* :class:`~repro.runtime.place.Place` / :class:`~repro.runtime.place.PlaceGroup`;
* :class:`~repro.runtime.cost.CostModel` — virtual-time rates;
* :class:`~repro.runtime.failure.FailureInjector` — scripted fail-stop kills;
* the exception family mirroring Resilient X10's failure surface.
"""

from repro.runtime.clock import VirtualClock
from repro.runtime.cost import CostModel
from repro.runtime.exceptions import (
    DanglingReferenceError,
    DataLossError,
    DeadPlaceException,
    MultipleException,
    PlaceZeroDeadError,
    RuntimeFault,
    SpareExhaustedError,
)
from repro.runtime.factory import make_runtime
from repro.runtime.failure import (
    AdjacentPairFailureModel,
    ExponentialFailureModel,
    FailureInjector,
    LeaseScopedInjector,
    RackFailureModel,
    ScriptedKill,
)
from repro.runtime.finish import FinishReport, PlaceZeroLedger
from repro.runtime.globalref import GlobalRef, PlaceLocalHandle
from repro.runtime.heap import PlaceHeap
from repro.runtime.place import Place, PlaceGroup
from repro.runtime.pool import (
    BORROW,
    DEDICATED,
    ECONOMICS_MODES,
    POOLED,
    PlaceLease,
    PlacePool,
)
from repro.runtime.runtime import PlaceContext, Runtime, RuntimeStats
from repro.runtime.sugar import AsyncHandle, FinishScope, at, finish

__all__ = [
    "VirtualClock",
    "CostModel",
    "DanglingReferenceError",
    "DataLossError",
    "DeadPlaceException",
    "MultipleException",
    "PlaceZeroDeadError",
    "RuntimeFault",
    "SpareExhaustedError",
    "AdjacentPairFailureModel",
    "ExponentialFailureModel",
    "FailureInjector",
    "LeaseScopedInjector",
    "make_runtime",
    "RackFailureModel",
    "ScriptedKill",
    "FinishReport",
    "PlaceZeroLedger",
    "GlobalRef",
    "PlaceLocalHandle",
    "PlaceHeap",
    "Place",
    "PlaceGroup",
    "PlaceLease",
    "PlacePool",
    "BORROW",
    "DEDICATED",
    "POOLED",
    "ECONOMICS_MODES",
    "PlaceContext",
    "Runtime",
    "RuntimeStats",
    "AsyncHandle",
    "FinishScope",
    "at",
    "finish",
]
