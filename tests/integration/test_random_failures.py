"""Property-based chaos testing: random failure schedules.

The framework's contract under arbitrary fail-stop failures (place zero
excepted): either the run completes and the result equals the failure-free
run's, or it surfaces ``DataLossError`` for the two documented
unrecoverable situations — a failure before the first checkpoint commits,
or the loss of both copies of a snapshot partition (adjacent double
failure).  Nothing else — no wrong results, no hangs, no stray exceptions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.data import PageRankWorkload
from repro.apps.nonresilient.pagerank import PageRankNonResilient
from repro.apps.resilient.pagerank import PageRankResilient
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.runtime import CostModel, DataLossError, Runtime
from repro.runtime.exceptions import PlaceZeroDeadError

WL = PageRankWorkload(nodes_per_place=24, out_degree=3, iterations=10, blocks_per_place=2)
PLACES = 5


def reference_ranks():
    rt = Runtime(PLACES, cost=CostModel.zero())
    app = PageRankNonResilient(rt, WL)
    app.run()
    return app.ranks()


REFERENCE = reference_ranks()


@settings(max_examples=40, deadline=None)
@given(
    kills=st.lists(
        st.tuples(st.integers(1, PLACES - 1), st.integers(0, WL.iterations - 1)),
        min_size=0,
        max_size=3,
        unique_by=lambda k: k[0],
    ),
    mode=st.sampled_from([RestoreMode.SHRINK, RestoreMode.SHRINK_REBALANCE]),
    interval=st.integers(2, 6),
)
def test_any_failure_schedule_recovers_or_reports_loss(kills, mode, interval):
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True)
    app = PageRankResilient(rt, WL)
    for victim, iteration in kills:
        rt.injector.kill_at_iteration(victim, iteration=iteration)
    executor = IterativeExecutor(rt, app, checkpoint_interval=interval, mode=mode)
    try:
        report = executor.run()
    except DataLossError:
        return  # documented unrecoverable cases are acceptable outcomes
    # Every kill is eventually observed (a simultaneous pair may surface
    # through one exception naming only the first victim, so >=).
    assert (report.failures_observed >= 1) == (len(kills) >= 1)
    assert np.allclose(app.ranks(), REFERENCE, atol=1e-8)
    assert app.P.replicas_consistent(1e-12)
    # The survivors are exactly the places never killed.
    killed = {v for v, _ in kills}
    assert set(app.places.ids) == set(range(PLACES)) - killed


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_runs_are_deterministic_per_schedule(seed):
    """Two identical runs (same schedule) give bit-identical results."""
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(1, PLACES))
    iteration = int(rng.integers(0, WL.iterations))

    def one_run():
        rt = Runtime(PLACES, cost=CostModel.laptop(), resilient=True)
        app = PageRankResilient(rt, WL)
        rt.injector.kill_at_iteration(victim, iteration=iteration)
        try:
            report = IterativeExecutor(rt, app, checkpoint_interval=4).run()
        except DataLossError:
            return None, None
        return app.ranks(), report.total_time

    ranks_a, time_a = one_run()
    ranks_b, time_b = one_run()
    if ranks_a is None:
        assert ranks_b is None
    else:
        assert np.array_equal(ranks_a, ranks_b)
        assert time_a == time_b


def test_scripting_a_place_zero_kill_rejected():
    # The injector refuses the schedule outright: place zero is immortal,
    # so a scripted kill of it could only ever abort the whole run.
    rt = Runtime(3, cost=CostModel.zero(), resilient=True)
    with pytest.raises(ValueError, match="place 0"):
        rt.injector.kill_at_iteration(0, iteration=2)


def test_killing_place_zero_always_fatal():
    # Killing place zero directly (outside the injector) stays fatal.
    rt = Runtime(3, cost=CostModel.zero(), resilient=True)
    with pytest.raises(PlaceZeroDeadError):
        rt.kill(0)
