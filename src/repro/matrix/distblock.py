"""``DistBlockMatrix`` — the paper's central distributed matrix class.

The matrix is cut by a :class:`~repro.matrix.grid.Grid` into blocks, and a
:class:`~repro.matrix.mapping.BlockMap` assigns one or *more* blocks to each
place (a :class:`~repro.matrix.block.BlockSet` per place).  Holding sets of
blocks is what lets the **shrink** restoration remap existing blocks over
fewer places without repartitioning (fast block-by-block restore, Fig. 1-b),
while **shrink-rebalance** recalculates the grid for even load at the price
of sub-block overlap copies (Fig. 1-c).

Payloads are dense (:class:`DenseMatrix`) or sparse (:class:`SparseCSR`)
blocks; the sparse restore additionally counts the non-zeros of each
overlap region before allocating, as §IV-B2 describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.matrix.block import BlockSet, MatrixBlock
from repro.matrix.dense import DenseMatrix
from repro.matrix.grid import Grid, Overlap, Partition1D
from repro.matrix.mapping import BlockMap, GroupedBlockMap, PlaceGridBlockMap
from repro.matrix.multiplace import MultiPlaceObject
from repro.matrix.random import LinkMatrix, random_dense_block, random_sparse_block
from repro.matrix.sparse import SparseCSR
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.validation import require

DENSE = "dense"
SPARSE = "sparse"


class DistBlockMatrix(MultiPlaceObject):
    """An ``m × n`` matrix distributed as grid blocks over a place group."""

    def __init__(
        self,
        runtime: Runtime,
        grid: Grid,
        group: PlaceGroup,
        kind: str,
        block_map: Optional[BlockMap] = None,
    ):
        require(kind in (DENSE, SPARSE), f"kind must be dense or sparse, got {kind}")
        super().__init__(runtime, group, "DistBlockMatrix")
        self.grid = grid
        self.kind = kind
        self.block_map = block_map if block_map is not None else GroupedBlockMap(grid, group.size)
        require(
            self.block_map.num_places == group.size,
            "block map covers a different number of places than the group",
        )
        self._allocate()

    # -- factories (paper's ``make`` signature) ---------------------------------

    @classmethod
    def make_dense(
        cls,
        runtime: Runtime,
        m: int,
        n: int,
        row_blocks: int,
        col_blocks: int,
        group: Optional[PlaceGroup] = None,
        row_places: Optional[int] = None,
        col_places: Optional[int] = None,
    ) -> "DistBlockMatrix":
        """``DistBlockMatrix.make(m, n, rowBs, colBs[, rowPs, colPs])``, dense.

        When a ``rowPlaces × colPlaces`` place grid is given, blocks map to
        places 2-D-cyclically (GML's DistGrid); otherwise blocks are dealt
        as near-even consecutive runs.
        """
        group = group if group is not None else runtime.world
        grid = Grid.partition(m, n, row_blocks, col_blocks)
        block_map = cls._build_map(grid, group, row_places, col_places)
        return cls(runtime, grid, group, DENSE, block_map)

    @classmethod
    def make_sparse(
        cls,
        runtime: Runtime,
        m: int,
        n: int,
        row_blocks: int,
        col_blocks: int,
        group: Optional[PlaceGroup] = None,
        row_places: Optional[int] = None,
        col_places: Optional[int] = None,
    ) -> "DistBlockMatrix":
        """Sparse variant of :meth:`make_dense` (blocks start empty)."""
        group = group if group is not None else runtime.world
        grid = Grid.partition(m, n, row_blocks, col_blocks)
        block_map = cls._build_map(grid, group, row_places, col_places)
        return cls(runtime, grid, group, SPARSE, block_map)

    @staticmethod
    def _build_map(
        grid: Grid,
        group: PlaceGroup,
        row_places: Optional[int],
        col_places: Optional[int],
    ) -> BlockMap:
        if row_places is not None or col_places is not None:
            require(
                row_places is not None and col_places is not None,
                "row_places and col_places must be given together",
            )
            require(
                row_places * col_places == group.size,
                f"place grid {row_places}x{col_places} != group size {group.size}",
            )
            return PlaceGridBlockMap(grid, row_places, col_places)
        return GroupedBlockMap(grid, group.size)

    # -- storage ------------------------------------------------------------

    @property
    def m(self) -> int:
        return self.grid.m

    @property
    def n(self) -> int:
        return self.grid.n

    def _empty_block(self, rb: int, cb: int) -> MatrixBlock:
        h, w = self.grid.block_dims(rb, cb)
        data = DenseMatrix.make(h, w) if self.kind == DENSE else SparseCSR.empty(h, w)
        return MatrixBlock.for_grid(self.grid, rb, cb, data)

    def _allocate(self) -> None:
        group, key = self.group, self.heap_key

        def alloc(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            bs = BlockSet(index)
            for rb, cb in self.block_map.blocks_of_place(index):
                bs.add(self._empty_block(rb, cb))
            ctx.heap.put(key, bs)

        self.runtime.finish_all(group, alloc, label=f"{self.name}:alloc")

    def block_set(self, index: int) -> BlockSet:
        """Library-internal: the block set at a group index."""
        return self.payload_at_index(index)

    def total_nnz(self) -> int:
        """Stored non-zeros across all live places (sparse matrices)."""
        return sum(self.block_set(i).total_nnz() for i in range(self.group.size))

    # -- initialization ----------------------------------------------------------

    def init_random(self, seed: int, density: float = 0.05) -> "DistBlockMatrix":
        """Deterministic per-block random fill (grid-dependent for sparse,
        grid-independent for dense because dense blocks tile a global
        deterministic function of ``(seed, rb, cb)`` only when the grid is
        fixed — the regression workloads never re-grid their *input*
        between comparison runs with different groups, so per-block seeding
        is sufficient there; PageRank uses :meth:`init_link_matrix`)."""
        group, key = self.group, self.heap_key

        def fill(ctx: PlaceContext) -> None:
            bs: BlockSet = ctx.heap.get(key)
            flops = 0.0
            for block in bs:
                h, w = block.shape
                if self.kind == DENSE:
                    block.data = random_dense_block(seed, block.rb, block.cb, h, w)
                    flops += h * w
                else:
                    block.data = random_sparse_block(seed, block.rb, block.cb, h, w, density)
                    flops += block.data.nnz * 2
            ctx.charge_flops(flops)

        self.runtime.finish_all(group, fill, label=f"{self.name}:init_random")
        return self

    def init_link_matrix(self, link: LinkMatrix) -> "DistBlockMatrix":
        """Fill a sparse matrix with a grid-independent synthetic web graph."""
        require(self.kind == SPARSE, "link matrices are sparse")
        require(link.n == self.m == self.n, "link matrix order mismatch")
        group, key = self.group, self.heap_key

        def fill(ctx: PlaceContext) -> None:
            bs: BlockSet = ctx.heap.get(key)
            flops = 0.0
            for block in bs:
                r0, r1 = block.row_range()
                c0, c1 = block.col_range()
                block.data = link.block(r0, r1, c0, c1)
                flops += (c1 - c0) * link.out_degree + block.data.nnz
            ctx.charge_flops(flops)

        self.runtime.finish_all(group, fill, label=f"{self.name}:init_link")
        return self

    def init_from_dense(self, dense: DenseMatrix) -> "DistBlockMatrix":
        """Scatter a driver-side dense matrix into the blocks (tests)."""
        require(dense.shape == (self.m, self.n), "shape mismatch")
        group, key = self.group, self.heap_key

        def fill(ctx: PlaceContext) -> None:
            bs: BlockSet = ctx.heap.get(key)
            for block in bs:
                r0, r1 = block.row_range()
                c0, c1 = block.col_range()
                piece = dense.data[r0:r1, c0:c1]
                if self.kind == DENSE:
                    block.data = DenseMatrix(piece.copy())
                else:
                    block.data = SparseCSR.from_dense(piece)

        self.runtime.finish_all(group, fill, label=f"{self.name}:init_from_dense")
        return self

    def to_dense(self) -> DenseMatrix:
        """Driver-side gather of the whole matrix (tests/examples)."""
        out = DenseMatrix.make(self.m, self.n)
        for index in range(self.group.size):
            for block in self.block_set(index):
                r0, r1 = block.row_range()
                c0, c1 = block.col_range()
                data = block.data.to_dense() if block.is_sparse else block.data.data
                out.data[r0:r1, c0:c1] = data
        return out

    # -- cell-wise operations ------------------------------------------------------

    def _cellwise(self, fn, flops_per_cell: float = 1.0, label: str = "cellwise"):
        """Apply *fn(block)* to every local block under one finish."""
        group, key = self.group, self.heap_key

        def task(ctx: PlaceContext) -> None:
            bs: BlockSet = ctx.heap.get(key)
            cells = 0
            for block in bs:
                fn(block)
                h, w = block.shape
                cells += h * w
            ctx.charge_flops(flops_per_cell * cells)

        self.runtime.finish_all(group, task, label=f"{self.name}:{label}")
        return self

    def _check_same_layout(self, other: "DistBlockMatrix") -> None:
        require(other.m == self.m and other.n == self.n, "shape mismatch")
        require(other.group == self.group, "operands on different groups")
        require(other.grid.same_blocking(self.grid), "operands on different grids")
        require(
            other.block_map.owner_dict() == self.block_map.owner_dict(),
            "operands have different block-to-place maps",
        )

    def _cellwise_pair(self, other, fn, flops_per_cell=1.0, label="cellwise"):
        """Apply *fn(my_block, other_block)* blockwise (layout-aligned)."""
        self._check_same_layout(other)
        group = self.group

        def task(ctx: PlaceContext) -> None:
            mine: BlockSet = ctx.heap.get(self.heap_key)
            theirs: BlockSet = ctx.heap.get(other.heap_key)
            cells = 0
            for block in mine:
                fn(block, theirs.get(block.rb, block.cb))
                h, w = block.shape
                cells += h * w
            ctx.charge_flops(flops_per_cell * cells)

        self.runtime.finish_all(group, task, label=f"{self.name}:{label}")
        return self

    def scale(self, alpha: float) -> "DistBlockMatrix":
        """In-place ``self *= alpha`` across all blocks."""
        return self._cellwise(lambda b: b.data.scale(alpha), label="scale")

    def cell_add(self, other: "DistBlockMatrix") -> "DistBlockMatrix":
        """In-place element-wise add of a layout-aligned dense matrix."""
        require(self.kind == DENSE and other.kind == DENSE, "cell_add is dense-only")
        return self._cellwise_pair(
            other, lambda a, b: a.data.cell_add(b.data), label="cell_add"
        )

    def cell_mult(self, other: "DistBlockMatrix") -> "DistBlockMatrix":
        """In-place Hadamard product with a layout-aligned dense matrix."""
        require(self.kind == DENSE and other.kind == DENSE, "cell_mult is dense-only")
        return self._cellwise_pair(
            other, lambda a, b: a.data.cell_mult(b.data), label="cell_mult"
        )

    def cell_div(self, other: "DistBlockMatrix", eps: float = 1e-12) -> "DistBlockMatrix":
        """In-place element-wise divide (denominator floored at *eps*).

        The multiplicative-update form used by GNMF.
        """
        require(self.kind == DENSE and other.kind == DENSE, "cell_div is dense-only")

        def div(a: MatrixBlock, b: MatrixBlock) -> None:
            a.data.touch()
            a.data.data /= np.maximum(b.data.data, eps)

        return self._cellwise_pair(other, div, label="cell_div")

    def norm_f(self) -> float:
        """Frobenius norm (per-place partial sums + driver combine)."""
        group, key = self.group, self.heap_key

        def task(ctx: PlaceContext) -> float:
            bs: BlockSet = ctx.heap.get(key)
            total = 0.0
            cells = 0
            for block in bs:
                if block.is_sparse:
                    total += float(block.data.values @ block.data.values)
                    cells += 2 * block.data.nnz
                else:
                    total += float(np.sum(block.data.data * block.data.data))
                    h, w = block.shape
                    cells += 2 * h * w
            ctx.charge_flops(cells)
            return total

        partials = self.runtime.finish_all(group, task, ret_bytes=8, label=f"{self.name}:norm")
        return float(np.sqrt(max(sum(p for p in partials if p is not None), 0.0)))

    # -- layout queries ------------------------------------------------------------

    def row_spans(self) -> List[Tuple[int, int]]:
        """Per-place smallest covering global row range."""
        return [self.block_set(i).row_span() for i in range(self.group.size)]

    def aligned_row_partition(self) -> Optional[Partition1D]:
        """A per-place contiguous row partition, if the layout admits one.

        Exists when each place's blocks cover a contiguous band of rows and
        the bands tile ``0..m`` in group order (true for the grouped map
        with one block column).  Output vectors aligned to this partition
        make the distributed matvec fully local.
        """
        spans = self.row_spans()
        sizes = []
        cursor = 0
        for lo, hi in spans:
            if lo != cursor:
                return None
            sizes.append(hi - lo)
            cursor = hi
        if cursor != self.m:
            return None
        return Partition1D(self.m, sizes)

    def blocks_per_place(self) -> List[int]:
        """Current block count per place (load-balance observable)."""
        return [len(self.block_set(i)) for i in range(self.group.size)]

    # -- resilience: remake (§IV-A) ----------------------------------------------

    def remake(
        self,
        new_group: PlaceGroup,
        new_grid: Optional[Grid] = None,
        row_places: Optional[int] = None,
        col_places: Optional[int] = None,
    ) -> "DistBlockMatrix":
        """Destroy and reallocate over *new_group*.

        * ``new_grid=None`` — **keep the data grid** and only remap the
          blocks (shrink / replace-redundant); restore is block-by-block.
        * ``new_grid`` given — **repartition** (shrink-rebalance); restore
          requires overlap-region copies.
        """
        self._release_payloads()
        self.group = new_group
        if new_grid is not None:
            require(
                new_grid.m == self.m and new_grid.n == self.n,
                "new grid covers a different matrix",
            )
            self.grid = new_grid
        self.block_map = self._build_map(self.grid, new_group, row_places, col_places)
        self._allocate()
        return self

    @classmethod
    def default_regrid(cls, m: int, n: int, col_blocks: int, num_places: int) -> Grid:
        """The shrink-rebalance grid: one block row band per place."""
        return Grid.partition(m, n, num_places, col_blocks)

    # -- resilience: snapshot / restore (§IV-B) -------------------------------------

    def make_snapshot(self, base: Optional[DistObjectSnapshot] = None) -> DistObjectSnapshot:
        """Save each place's block set under its index, doubly stored.

        In delta mode a place whose blocks are all unchanged since *base*
        adopts its committed copy by reference; a dirty place snapshots its
        blocks copy-on-write (frozen aliases, no deep copies).
        """
        block_nnz: Dict[Tuple[int, int], int] = {}
        if self.kind == SPARSE:
            for index in range(self.group.size):
                for block in self.block_set(index):
                    block_nnz[block.key] = block.data.nnz
        snap = self._new_snapshot(
            {
                "kind": self.kind,
                "row_sizes": list(self.grid.row_sizes),
                "col_sizes": list(self.grid.col_sizes),
                "owners": self.block_map.owner_dict(),
                "block_nnz": block_nnz,
            }
        )
        base = self._delta_base(snap, base)
        group, key = self.group, self.heap_key

        def save(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            bs: BlockSet = ctx.heap.get(key)
            self._save_partition(
                snap,
                ctx,
                index,
                bs.version_token(),
                base,
                bs.payload_dict,
                bs.freeze_view_dict,
            )

        self.runtime.finish_all(group, save, label=f"{self.name}:snapshot")
        return snap

    def restore_snapshot(self, snapshot: DistObjectSnapshot) -> None:
        """Reload block data after a :meth:`remake`.

        Chooses block-by-block reload when the grid is unchanged and
        overlap-region assembly when it differs, per §IV-B2.
        """
        require(snapshot.meta.get("kind") == self.kind, "snapshot kind mismatch")
        old_grid = Grid(self.m, self.n, snapshot.meta["row_sizes"], snapshot.meta["col_sizes"])
        if old_grid.same_blocking(self.grid):
            self._restore_same_grid(snapshot)
        else:
            self._restore_regridded(snapshot, old_grid)

    def _restore_same_grid(self, snapshot: DistObjectSnapshot) -> None:
        """Block-by-block restore: copy whole blocks from their old owners."""
        owners: Dict[Tuple[int, int], int] = snapshot.meta["owners"]
        group, key = self.group, self.heap_key

        def load(ctx: PlaceContext) -> None:
            bs: BlockSet = ctx.heap.get(key)
            for block in bs:
                old_owner = owners[block.key]
                payload = snapshot.fetch(
                    ctx, old_owner, extract=lambda d, k=block.key: d[k].copy()
                )
                block.data = payload

        self.runtime.finish_all(group, load, label=f"{self.name}:restore_same_grid")

    def _restore_regridded(self, snapshot: DistObjectSnapshot, old_grid: Grid) -> None:
        """Overlap-region restore: assemble each new block from sub-blocks.

        For sparse blocks the non-zeros of every overlap region are counted
        first (a scan of the old block's row span) to size the new block,
        then the regions are extracted and assembled — the extra work that
        makes shrink-rebalance the most expensive mode (Table IV).
        """
        owners: Dict[Tuple[int, int], int] = snapshot.meta["owners"]
        block_nnz: Dict[Tuple[int, int], int] = snapshot.meta.get("block_nnz", {})
        group, key = self.group, self.heap_key

        def load(ctx: PlaceContext) -> None:
            bs: BlockSet = ctx.heap.get(key)
            for block in bs:
                overlaps = self.grid.overlaps_of_block(block.rb, block.cb, old_grid)
                block.data = self._assemble_block(ctx, snapshot, old_grid, block, overlaps, owners, block_nnz)

        self.runtime.finish_all(group, load, label=f"{self.name}:restore_regridded")

    def _assemble_block(
        self,
        ctx: PlaceContext,
        snapshot: DistObjectSnapshot,
        old_grid: Grid,
        block: MatrixBlock,
        overlaps: List[Overlap],
        owners: Dict[Tuple[int, int], int],
        block_nnz: Dict[Tuple[int, int], int],
    ):
        h, w = block.shape
        r_base, c_base = block.row_offset, block.col_offset
        if not overlaps:
            # Zero-area block (a grid with more bands than rows/cols).
            return DenseMatrix.make(h, w) if self.kind == DENSE else SparseCSR.empty(h, w)
        if self.kind == DENSE:
            out = DenseMatrix.make(h, w)
            for ov in overlaps:
                region = ov.region
                orb, ocb = ov.old_block
                o_r0, o_c0 = old_grid.block_origin(orb, ocb)
                piece: DenseMatrix = snapshot.fetch(
                    ctx,
                    owners[(orb, ocb)],
                    extract=lambda d, k=(orb, ocb), rg=region, ro=o_r0, co=o_c0: d[k].sub_matrix(
                        rg.row_start - ro, rg.row_end - ro, rg.col_start - co, rg.col_end - co
                    ),
                    extract_bytes=region.area * 8,
                )
                out.data[
                    region.row_start - r_base : region.row_end - r_base,
                    region.col_start - c_base : region.col_end - c_base,
                ] = piece.data
            return out

        # Sparse: the overlaps of one new block form a regular tile grid
        # (old grid lines cutting the new block); extract each tile with a
        # counting pass, then assemble rows of tiles.
        row_bands = sorted({ov.old_block[0] for ov in overlaps})
        col_bands = sorted({ov.old_block[1] for ov in overlaps})
        by_key = {ov.old_block: ov for ov in overlaps}
        tiles: List[List[SparseCSR]] = []
        for orb in row_bands:
            tile_row: List[SparseCSR] = []
            for ocb in col_bands:
                ov = by_key[(orb, ocb)]
                region = ov.region
                o_r0, o_c0 = old_grid.block_origin(orb, ocb)
                old_rows = old_grid.row_sizes[orb]
                row_frac = region.rows / old_rows if old_rows else 0.0
                nnz_in_span = block_nnz.get((orb, ocb), 0) * row_frac
                piece: SparseCSR = snapshot.fetch(
                    ctx,
                    owners[(orb, ocb)],
                    extract=lambda d, k=(orb, ocb), rg=region, ro=o_r0, co=o_c0: d[k].sub_matrix(
                        rg.row_start - ro, rg.row_end - ro, rg.col_start - co, rg.col_end - co
                    ),
                    # The counting pass scans the row span, then the
                    # extraction copies the region's entries (16 B each:
                    # index + value).
                    extract_flops=2.0 * nnz_in_span + region.rows,
                    extract_bytes=nnz_in_span * 16.0,
                )
                tile_row.append(piece)
            tiles.append(tile_row)
        return SparseCSR.assemble(tiles)
