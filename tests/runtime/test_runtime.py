"""Tests for the Runtime facade: finish semantics, failures, spares."""

import pytest

from repro.runtime import (
    CostModel,
    DeadPlaceException,
    MultipleException,
    Place,
    PlaceGroup,
    PlaceZeroDeadError,
    Runtime,
)


def make_rt(n=4, resilient=False, cost=None, spares=0):
    return Runtime(n, cost=cost or CostModel.zero(), resilient=resilient, spares=spares)


class TestBasics:
    def test_world(self):
        rt = make_rt(4)
        assert rt.world.ids == [0, 1, 2, 3]
        assert all(rt.is_alive(i) for i in range(4))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Runtime(0)
        with pytest.raises(ValueError):
            Runtime(2, spares=-1)
        with pytest.raises(ValueError):
            Runtime(2, cost=CostModel(latency=-1))

    def test_heap_isolation(self):
        rt = make_rt(2)
        rt.finish_all(rt.world, lambda ctx: ctx.heap.put("x", ctx.place.id))
        assert rt.heap_of(0).get("x") == 0
        assert rt.heap_of(1).get("x") == 1

    def test_finish_all_results_in_group_order(self):
        rt = make_rt(3)
        group = PlaceGroup.of_ids([2, 0, 1])
        res = rt.finish_all(group, lambda ctx: ctx.place.id * 10)
        assert res == [20, 0, 10]

    def test_at_returns_value(self):
        rt = make_rt(3)
        rt.heap_of(2).put("k", 99)
        assert rt.at(Place(2), lambda ctx: ctx.heap.get("k")) == 99

    def test_at_dead_place_raises(self):
        rt = make_rt(3)
        rt.kill(2)
        with pytest.raises(DeadPlaceException):
            rt.at(Place(2), lambda ctx: None)


class TestFailures:
    def test_kill_destroys_heap(self):
        rt = make_rt(3)
        rt.heap_of(1).put("data", [1, 2, 3])
        rt.kill(1)
        assert not rt.is_alive(1)
        with pytest.raises(DeadPlaceException):
            rt.heap_of(1)

    def test_kill_place_zero_fatal(self):
        rt = make_rt(3)
        with pytest.raises(PlaceZeroDeadError):
            rt.kill(0)

    def test_kill_idempotent(self):
        rt = make_rt(3)
        rt.kill(1)
        rt.kill(1)
        assert rt.stats.kills == 1

    def test_finish_completes_live_tasks_then_raises(self):
        # X10 semantics: surviving tasks run to completion before the
        # DeadPlaceException surfaces at the finish.
        rt = make_rt(4)
        rt.kill(2)
        ran = []
        with pytest.raises(DeadPlaceException) as exc_info:
            rt.finish_all(rt.world, lambda ctx: ran.append(ctx.place.id))
        assert sorted(ran) == [0, 1, 3]
        assert exc_info.value.places == [2]

    def test_multiple_failures_aggregated(self):
        rt = make_rt(5)
        rt.kill(1)
        rt.kill(3)
        with pytest.raises(MultipleException) as exc_info:
            rt.finish_all(rt.world, lambda ctx: None)
        assert exc_info.value.places == [1, 3]

    def test_dead_place_exception_inside_task_collected(self):
        # A task that reads from a dead place surfaces at the finish.
        rt = make_rt(3, cost=CostModel.zero())
        rt.heap_of(2).put("k", 7)
        rt.kill(2)

        def reader(ctx):
            if ctx.place.id == 1:
                return ctx.read_remote(2, "k", nbytes=8)
            return None

        with pytest.raises(DeadPlaceException):
            rt.finish_all(PlaceGroup.of_ids([0, 1]), reader)

    def test_injector_phase_kill(self):
        rt = make_rt(3)
        rt.injector.kill_at_phase(1, phase=2)
        rt.finish_all(rt.world, lambda ctx: None)  # phase 1: fine
        with pytest.raises(DeadPlaceException):
            rt.finish_all(rt.world, lambda ctx: None)  # phase 2: place 1 dead

    def test_live_group(self):
        rt = make_rt(4)
        rt.kill(2)
        assert rt.live_world().ids == [0, 1, 3]
        g = PlaceGroup.of_ids([2, 3])
        assert rt.live_group(g).ids == [3]


class TestSparesAndElastic:
    def test_spares_not_in_world(self):
        rt = make_rt(3, spares=2)
        assert rt.world.size == 3
        assert rt.spares_remaining == 2

    def test_claim_spare(self):
        rt = make_rt(3, spares=2)
        s1 = rt.claim_spare()
        s2 = rt.claim_spare()
        assert {s1.id, s2.id} == {3, 4}
        assert rt.claim_spare() is None

    def test_dead_spare_not_claimable(self):
        rt = make_rt(3, spares=1)
        rt.kill(3)
        assert rt.claim_spare() is None
        assert rt.spares_remaining == 0

    def test_elastic_add_place(self):
        rt = make_rt(2)
        p = rt.add_place()
        assert p.id == 2
        assert rt.is_alive(2)
        # New place's clock starts at the current global time or later.
        assert rt.clock.now(2) >= 0.0
        p2 = rt.add_place()
        assert p2.id == 3


class TestVirtualTime:
    def test_zero_cost_runs_in_zero_time(self):
        rt = make_rt(4)
        rt.finish_all(rt.world, lambda ctx: None)
        assert rt.now() == 0.0

    def test_finish_time_components_unit_cost(self):
        # Unit cost, 2 places (driver + 1 remote), no compute:
        # spawns: 2 * spawn(1); remote task begins at spawn_t + msg(1) ...
        rt = make_rt(2, cost=CostModel.unit())
        rt.finish_all(rt.world, lambda ctx: None)
        t = rt.now()
        assert t > 0
        # Deterministic: rerunning the same phase costs the same again.
        rt2 = make_rt(2, cost=CostModel.unit())
        rt2.finish_all(rt2.world, lambda ctx: None)
        assert rt2.now() == t

    def test_compute_advances_task_place_only_until_join(self):
        rt = make_rt(3, cost=CostModel(flop_time=1.0))

        def work(ctx):
            if ctx.place.id == 2:
                ctx.charge_flops(5)

        rt.finish_all(rt.world, work)
        # Join waits for the slowest task: driver time >= 5.
        assert rt.now() >= 5.0

    def test_resilient_finish_costs_more(self):
        cost = CostModel(
            task_spawn_time=1e-6,
            task_join_time=1e-6,
            latency=1e-6,
            ledger_event_time=1e-3,
        )
        t = {}
        for resilient in (False, True):
            rt = make_rt(8, resilient=resilient, cost=cost)
            for _ in range(5):
                rt.finish_all(rt.world, lambda ctx: None)
            t[resilient] = rt.now()
        assert t[True] > t[False]

    def test_ledger_hides_under_long_tasks(self):
        # Bookkeeping overlaps computation: a long task window absorbs the
        # ledger's processing, so resilient overhead shrinks relative to a
        # short task window (the paper's PageRank-vs-LinReg effect).
        cost = CostModel(flop_time=1.0, ledger_event_time=0.5, latency=0.001)

        def overhead(task_flops):
            times = {}
            for resilient in (False, True):
                rt = make_rt(8, resilient=resilient, cost=cost)
                rt.finish_all(rt.world, lambda ctx: ctx.charge_flops(task_flops))
                times[resilient] = rt.now()
            return times[True] - times[False]

        assert overhead(0.001) > overhead(100.0) * 0.5  # long tasks hide events

    def test_stats_counters(self):
        rt = make_rt(4, resilient=True, cost=CostModel.unit())
        rt.finish_all(rt.world, lambda ctx: None, label="phase-a")
        assert rt.stats.finishes == 1
        assert rt.stats.tasks == 4
        assert rt.ledger.stats.events == 8  # spawn + termination per task
        report = rt.stats.finish_reports[-1]
        assert report.label == "phase-a"
        assert report.n_tasks == 4
