"""Gaussian Non-negative Matrix Factorization (resilient).

The framework version of the GNMF extension: same multiplicative updates
as the non-resilient program; the input ``V`` is saved read-only, both
factors ``W`` (distributed) and ``H`` (duplicated) are checkpointed, and
the temporaries are merely remade on restore.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.data import GnmfWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.dupmatrix import DupDenseMatrix
from repro.matrix.grid import Grid
from repro.matrix.ops import dist_gram, dist_matmat_dup
from repro.matrix.random import random_dense_block
from repro.resilience.iterative import ResilientIterativeApp
from repro.resilience.store import AppResilientStore
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


class GnmfResilient(ResilientIterativeApp):
    """Multiplicative-update NMF under the resilient iterative framework."""

    def __init__(
        self,
        runtime: Runtime,
        workload: GnmfWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        self.m = workload.rows(group.size)
        n, k = workload.cols, workload.rank
        row_blocks = workload.row_blocks(group.size)
        self.V = DistBlockMatrix.make_sparse(runtime, self.m, n, row_blocks, 1, group)
        self.V.init_random(workload.seed, density=workload.density)
        self.W = DistBlockMatrix.make_dense(runtime, self.m, k, row_blocks, 1, group)
        self.W.init_random(workload.seed + 1)
        self.H = DupDenseMatrix.make_zero(runtime, k, n, group)
        self.H.init_from(random_dense_block(workload.seed + 2, 0, 0, k, n))
        self._make_temporaries(group, row_blocks)

    def _make_temporaries(self, group: PlaceGroup, row_blocks: int) -> None:
        n, k, rt = self.workload.cols, self.workload.rank, self.runtime
        self.WtV = DupDenseMatrix.make_zero(rt, k, n, group)
        self.WtW = DupDenseMatrix.make_zero(rt, k, k, group)
        self.WtWH = DupDenseMatrix.make_zero(rt, k, n, group)
        self.Ht = DupDenseMatrix.make_zero(rt, n, k, group)
        self.HHt = DupDenseMatrix.make_zero(rt, k, k, group)
        self.VHt = DistBlockMatrix.make_dense(rt, self.m, k, row_blocks, 1, group)
        self.WHHt = DistBlockMatrix.make_dense(rt, self.m, k, row_blocks, 1, group)

    @property
    def places(self) -> PlaceGroup:
        return self._places

    # -- the framework's four methods -----------------------------------------

    def is_finished(self) -> bool:
        return self.iteration >= self.workload.iterations

    def step(self) -> None:
        dist_gram(self.W, self.V, self.WtV)
        dist_gram(self.W, self.W, self.WtW)
        self.WtWH.mult(self.WtW, self.H)
        self.H.cell_mult(self.WtV)
        self.H.cell_div(self.WtWH)
        self.Ht.transpose_from(self.H)
        dist_matmat_dup(self.V, self.Ht, self.VHt)
        self.HHt.mult(self.H, self.Ht)
        dist_matmat_dup(self.W, self.HHt, self.WHHt)
        self.W.cell_mult(self.VHt)
        self.W.cell_div(self.WHHt)
        self.iteration += 1

    def checkpoint(self, store: AppResilientStore) -> None:
        store.start_new_snapshot()
        store.save_read_only(self.V)
        store.save(self.W)
        store.save(self.H)
        store.commit(iteration=self.iteration)

    def restore(
        self, new_places: PlaceGroup, store: AppResilientStore, snapshot_iter: int
    ) -> None:
        row_blocks = self.workload.row_blocks(new_places.size)
        new_grid_v = new_grid_w = None
        if self.restore_context.rebalance:
            new_grid_v = Grid.partition(self.m, self.workload.cols, row_blocks, 1)
            new_grid_w = Grid.partition(self.m, self.workload.rank, row_blocks, 1)
        self.V.remake(new_places, new_grid=new_grid_v)
        self.W.remake(new_places, new_grid=new_grid_w)
        self.H.remake(new_places)
        self._make_temporaries(new_places, self.V.grid.num_row_blocks)
        self._places = new_places
        store.restore()
        self.iteration = snapshot_iter

    def reconstruction_error(self) -> float:
        """``||V − W·H||_F`` (driver-side; for tests and reporting)."""
        import numpy as np

        V = self.V.to_dense().data
        W = self.W.to_dense().data
        H = self.H.to_array()
        return float(np.linalg.norm(V - W @ H))

    def factors(self):
        """Driver-side copies of ``(W, H)``."""
        return self.W.to_dense().data, self.H.to_array()
