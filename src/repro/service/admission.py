"""Job queue and admission control for the shared place pool.

Admission is strict FIFO: the head job waits until the pool can hold its
whole lease (head-of-line blocking is the price of starvation freedom —
a stream of small jobs can never park a big one forever).  A bounded
queue rejects arrivals outright once it is full, which is the
back-pressure surface a real front door would have.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.runtime.pool import DEDICATED, PlacePool
from repro.service.jobs import JobSpec
from repro.util.validation import require


class JobQueue:
    """FIFO queue of jobs waiting for pool capacity."""

    def __init__(self, max_depth: Optional[int] = None):
        require(
            max_depth is None or max_depth >= 0, "max_depth must be >= 0 or None"
        )
        self._queue: Deque[JobSpec] = deque()
        self.max_depth = max_depth
        self.rejected: List[JobSpec] = []
        #: High-water mark of the queue depth.
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._queue)

    def offer(self, job: JobSpec) -> bool:
        """Enqueue *job*; False (recorded in ``rejected``) if full."""
        if self.max_depth is not None and len(self._queue) >= self.max_depth:
            self.rejected.append(job)
            return False
        self._queue.append(job)
        self.peak_depth = max(self.peak_depth, len(self._queue))
        return True

    def head(self) -> Optional[JobSpec]:
        return self._queue[0] if self._queue else None

    def pop(self) -> JobSpec:
        return self._queue.popleft()


class AdmissionController:
    """Decides when the queue's head job may carve its lease."""

    def __init__(self, pool: PlacePool, economics: str):
        self.pool = pool
        self.economics = economics

    def can_admit(self, job: JobSpec) -> bool:
        """True when the pool can host *job* right now.

        Needs enough live free places for the group (place zero excluded —
        it is the service coordinator) and, under ``dedicated`` economics,
        enough live reserve to commit the job's dedicated spares up-front.
        """
        free = self.pool.lendable_free
        if free < job.places:
            return False
        if self.economics == DEDICATED:
            return self.pool.reserve_remaining >= job.dedicated_spares
        return True

    def pop_admissible(self, queue: JobQueue) -> Optional[JobSpec]:
        """Pop the head job if FIFO order allows it to start right now.

        One job per call: the caller must carve the lease before asking
        again, so the capacity check always sees the pool's true state.
        """
        job = queue.head()
        if job is None or not self.can_admit(job):
            return None
        return queue.pop()
