"""Shared helpers for the benchmark targets.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment protocol on the simulator (wall-clock measured by
pytest-benchmark), prints the paper-style series/table with a
paper-vs-measured comparison, and writes a CSV under ``results/``.
"""

from __future__ import annotations

import os

from repro.bench import figures


def results_path(name: str) -> str:
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(here, "results", name)


def emit(title: str, body: str) -> None:
    """Print a clearly delimited report block (visible with ``pytest -s`` /
    in the benchmark summary)."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def overhead_report(app: str, series, paper_nonres, paper_res) -> str:
    """Render a Figs. 2-4 style report with paper anchors."""
    lines = [
        figures.series_table(series.places, series.values, header_unit="ms/iteration"),
        "",
        "paper vs measured (ms/iteration):",
    ]
    nonres = series.values["non-resilient finish"]
    res = series.values["resilient finish"]
    lines.append(figures.comparison_line(f"{app} non-resilient @ 2 places", paper_nonres[0], nonres[0]))
    lines.append(figures.comparison_line(f"{app} non-resilient @ 44 places", paper_nonres[1], nonres[-1]))
    lines.append(figures.comparison_line(f"{app} resilient @ 2 places", paper_res[0], res[0]))
    lines.append(figures.comparison_line(f"{app} resilient @ 44 places", paper_res[1], res[-1]))
    paper_overhead = (paper_res[1] - paper_nonres[1]) / paper_nonres[1] * 100
    ours_overhead = (res[-1] - nonres[-1]) / nonres[-1] * 100
    lines.append(
        f"  resilient overhead @44: paper {paper_overhead:.0f}%  ours {ours_overhead:.0f}%"
    )
    csv = figures.write_csv(results_path(f"{app}_overhead.csv"), series.places, series.values)
    lines.append(f"  series written to {csv}")
    return "\n".join(lines)
