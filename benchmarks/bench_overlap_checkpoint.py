"""Overlapped vs blocking checkpointing — the engine extension experiment.

Protocol: LinReg runs 30 iterations with a checkpoint every 5 (aggressive
interval so checkpoint cost matters), no failures, once per checkpoint
mode.  ``blocking`` is the paper's scheme — the application stalls until
every snapshot partition reaches its backup place.  ``overlapped``
captures the snapshot synchronously but schedules the backup transfers on
the engine's communication resources concurrently with the next
iterations' compute; only the residual the compute cannot hide stalls the
application.

Expected shape: overlapped stall is a fraction of the blocking stall and
the gap *widens* with the place count (more compute to hide behind, and
per-place backup payloads shrink under weak scaling), which shows up
directly as lower end-to-end time.
"""

from _common import emit, results_path
from repro.bench import figures
from repro.bench.calibration import places_axis
from repro.bench.harness import run_checkpoint_mode_sweep


def run_all():
    return run_checkpoint_mode_sweep(
        "linreg", places_list=places_axis(), iterations=30, checkpoint_interval=5
    )


def test_overlap_checkpoint_stall(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    series = out["series"]
    axis = series.places
    lines = [
        figures.series_table(axis, series.values, header_unit="see row labels"),
        "",
        "stall hidden by overlap (per place count):",
    ]
    blocking = series.values["blocking stall (ms)"]
    overlapped = series.values["overlapped stall (ms)"]
    for i, p in enumerate(axis):
        hidden = (1.0 - overlapped[i] / blocking[i]) * 100.0
        lines.append(
            f"  {p:3d} places: blocking {blocking[i]:8.1f} ms"
            f"   overlapped {overlapped[i]:8.1f} ms   ({hidden:5.1f} % hidden)"
        )
    csv = figures.write_csv(
        results_path("overlap_checkpoint.csv"), axis, series.values
    )
    lines.append(f"  series written to {csv}")
    emit("Overlapped vs blocking checkpointing — LinReg", "\n".join(lines))

    reports = out["reports"]
    for i, p in enumerate(axis):
        b, o = reports["blocking"][p], reports["overlapped"][p]
        # Same work either way: overlap must not change what executed.
        assert o.iterations_executed == b.iterations_executed
        assert o.checkpoints == b.checkpoints
        # The headline claim: overlap measurably reduces the checkpoint
        # stall (at least 15 % of it hidden at every place count) and the
        # saving reaches end-to-end time.
        assert overlapped[i] < 0.85 * blocking[i]
        assert o.total_time < b.total_time
        # Blocking mode's stall is, by definition, its checkpoint time.
        assert abs(b.checkpoint_stall_time - b.checkpoint_time) < 1e-9
    # The win grows with scale: a larger fraction of the stall is hidden
    # at the top of the axis than at the bottom.
    hidden_lo = 1.0 - overlapped[0] / blocking[0]
    hidden_hi = 1.0 - overlapped[-1] / blocking[-1]
    assert hidden_hi > hidden_lo
