"""Cost-model calibration for the paper's cluster (EXPERIMENTS.md §Calibration).

The paper's testbed: 11 SoftLayer nodes × 4 places, one worker thread per
place (2.6 GHz Xeon E5-2650, OpenBLAS single-thread, X10 2.5.2 over the
sockets transport, GigE-class interconnect).  The rates below are fixed
from the paper's *measured two-place points* and known hardware numbers:

* ``flop_time`` — LinReg at 2 places runs 60 ms/iteration and executes
  ~1.0e8 dense flops per place per CG iteration (two 50 000×500 matvecs)
  → 6.0e-10 s/flop (~1.7 Gflop/s single-thread dgemv, plausible for the
  CPU and era).
* ``sparse_flop_factor`` — PageRank at 2 places runs 38 ms/iteration on
  2 M edges/place; after subtracting vector/comm time, the CSR SpMV rate
  implied is ~10-14× slower per entry than dense → 16.
* ``byte_time`` — GigE-class effective point-to-point bandwidth
  (~125 MB/s) → 8e-9 s/B.
* ``task_spawn_time`` / ``task_join_time`` — fixed from the *growth* of
  non-resilient LinReg (60 → 180 ms over 2 → 44 places): ~11 finish
  constructs per CG iteration imply ~250 µs of serialized per-task
  coordination at the finish home (X10's sockets-transport closure
  serialization).
* ``ledger_event_time`` — fixed from the *resilient* LinReg gap at 44
  places (+220 ms/iteration over ~11 finishes × 88 events).
* ``memcpy_byte_time`` — snapshot serialization rate (~0.7 GB/s).

Physical problem sizes are reduced from the paper's (so the whole suite
runs in minutes) and the ratio is charged back through ``logical_scale``:
all flop/byte charges are multiplied by it, so virtual times correspond to
the paper's full problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.data import PageRankWorkload, RegressionWorkload
from repro.runtime.cost import CostModel


def cluster_2015() -> CostModel:
    """The calibrated SoftLayer-cluster profile (rates are logical)."""
    return CostModel(
        flop_time=6.0e-10,
        latency=6.0e-5,
        byte_time=8.0e-9,
        task_spawn_time=1.3e-4,
        task_join_time=1.2e-4,
        ledger_event_time=3.5e-4,
        memcpy_byte_time=4.0e-9,
        sparse_flop_factor=16.0,
    )


def cluster_2015_with_nodes() -> CostModel:
    """The cluster profile with node topology: 4 places per node.

    X10 launches consecutive places on each host, so a 2-place run lives
    on ONE node (its snapshot backups travel over shared memory, ~4 GB/s),
    while larger runs push the backup ring across node boundaries and
    through the shared NICs.  Used by the NIC ablation to reproduce the
    checkpoint-time jump the paper measures between 2 and 12 places.
    """
    return cluster_2015().with_rates(places_per_node=4, shm_byte_time=2.5e-10)


#: Paper problem → physical problem scale for the regression benchmarks:
#: (50 000 × 500) / (1 000 × 100) per-place matrix elements.
REGRESSION_SCALE = 250.0

#: Paper problem → physical scale for PageRank: 20× fewer nodes *and*
#: edges per place (10 000 nodes × 200 out-links vs 500 × 200), keeping
#: byte and flop ratios consistent under one scalar.
PAGERANK_SCALE = 20.0


#: Physical → logical scale for the GNMF extension benchmark (no paper
#: anchor exists; the logical problem is a 50 000-rows/place, 1 000-column
#: factorization at rank 10).
GNMF_SCALE = 50.0


def gnmf_bench_workload(iterations: int = 30):
    """The physical GNMF workload the extension benchmark simulates."""
    from repro.apps.data import GnmfWorkload

    return GnmfWorkload(
        rows_per_place=1_000,
        cols=100,
        rank=10,
        density=0.05,
        blocks_per_place=2,
        iterations=iterations,
    )


def gnmf_cost() -> CostModel:
    """Cluster profile at the GNMF benchmark's logical scale."""
    return cluster_2015().with_scale(GNMF_SCALE)


def regression_bench_workload(iterations: int = 30) -> RegressionWorkload:
    """The physical regression workload the benchmarks simulate."""
    return RegressionWorkload(
        features=100,
        examples_per_place=1_000,
        blocks_per_place=2,
        iterations=iterations,
    )


def pagerank_bench_workload(iterations: int = 30) -> PageRankWorkload:
    """The physical PageRank workload the benchmarks simulate."""
    return PageRankWorkload(
        nodes_per_place=500,
        out_degree=200,
        blocks_per_place=2,
        iterations=iterations,
    )


#: Physical → logical scale for the CG benchmark: the logical problem is
#: a 10 000-rows/place banded SPD system vs the 1 000-rows/place physical
#: one the simulator iterates.
CG_SCALE = 10.0


def cg_bench_workload(iterations: int = 30):
    """The physical CG workload the benchmarks simulate."""
    from repro.apps.data import CGWorkload

    return CGWorkload(rows_per_place=1_000, stride=7, iterations=iterations)


def cg_cost() -> CostModel:
    """Cluster profile at the CG benchmark's logical scale."""
    return cluster_2015().with_scale(CG_SCALE)


def regression_cost() -> CostModel:
    """Cluster profile at the regression benchmarks' logical scale."""
    return cluster_2015().with_scale(REGRESSION_SCALE)


def pagerank_cost() -> CostModel:
    """Cluster profile at the PageRank benchmark's logical scale."""
    return cluster_2015().with_scale(PAGERANK_SCALE)


@dataclass(frozen=True)
class PaperTargets:
    """The paper's headline numbers, kept next to the calibration so the
    benchmarks can print paper-vs-measured side by side."""

    # Fig. 2-4: (2-place, 44-place) non-resilient ms/iteration.
    linreg_nonres_ms = (60.0, 180.0)
    linreg_res_ms = (60.0, 400.0)
    logreg_nonres_ms = (110.0, 295.0)
    logreg_res_ms = (110.0, 595.0)
    pagerank_nonres_ms = (38.0, 360.0)
    pagerank_res_ms = (38.0, 370.0)
    # Table III: mean checkpoint ms at 44 places.
    ckpt_44_ms = {"linreg": 2464.0, "logreg": 2534.0, "pagerank": 534.0}
    # Table IV: (C%, R%) at 44 places per app per mode.
    table4 = {
        "linreg": {"shrink": (32, 18), "shrink-rebalance": (25, 22), "replace-redundant": (36, 7)},
        "logreg": {"shrink": (26, 15), "shrink-rebalance": (19, 22), "replace-redundant": (27, 16)},
        "pagerank": {"shrink": (10, 7), "shrink-rebalance": (10, 10), "replace-redundant": (11, 4)},
    }


#: The paper's place-count axis: 2, then every 4th count up to 44.
def places_axis(max_places: int = 44, step: int = 4):
    """``[2, 4, 8, ..., max_places]`` as in Figs. 2-7."""
    axis = [2]
    axis.extend(range(step, max_places + 1, step))
    return axis
