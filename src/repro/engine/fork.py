"""Deterministic simulator-state forking (capture / resume).

A chaos campaign re-simulates the *identical* failure-free prefix of every
schedule up to its first kill — for a kill at iteration k of N that is k/N
of the run wasted, per schedule, across hundreds of schedules.  ReStore
(arXiv:2203.01107) shows in-memory state capture is cheap enough to be
routine and the waLBerla checkpointing scheme (arXiv:1708.08286) shows
snapshot/resume of a full simulation can be made exact; this module applies
the same idea to the *simulator itself*: capture the entire world — engine
(:class:`~repro.engine.scheduler.Scheduler`, resources, links, overlap
state), runtime (place heaps, pool/leases, injector, virtual clocks,
detector), resilience stores (replica/parity/disk tiers, reconstruction
store, version tokens) and the executor's loop state — at an
iteration-commit boundary, and resume any number of independent forks from
the frozen image.

Capture is a pickle of the executor's object graph with one twist that
makes it copy-on-write: *frozen* payload arrays (``writeable=False``, the
committed-snapshot CoW convention of :mod:`repro.util.versioning`) are
never serialized.  They are parked in a shared side table and every fork
receives a **reference** to the same immutable array — safe because the
live classes' ``touch()`` protocol replaces a frozen backing array before
mutating, so no fork can write through the shared reference.  Only the
writable (by definition dirty) arrays are copied, so a mid-run image costs
O(dirty), not O(world), and successive boundary images of one run share
all committed state.

Two invariants the implementation must keep (and the property suite in
``tests/resilience/test_fork_exactness.py`` checks end to end):

* **Bitwise exactness** — a fork resumed from boundary *b* must produce an
  ``ExecutionReport``, final vectors and virtual times bitwise identical
  to a straight-through run, because floats round-trip exactly through
  pickle and the shared frozen arrays are the very same objects.
* **Token soundness** — mutation-version tokens are globally unique, so a
  fork loaded into a process whose counter lags the image (spawn workers)
  must first advance the counter past every token in the image
  (:func:`repro.util.versioning.ensure_version_floor`); otherwise a fresh
  token could collide with a captured one and delta checkpointing would
  adopt a dirty partition as clean.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Dict, List, Optional

import numpy as np

from repro.runtime.finish import FinishReport
from repro.util.versioning import ensure_version_floor, freeze_payload, next_version


def _freeze_world(root: Any) -> None:
    """Freeze every live heap payload of *root*'s runtime before capture.

    Marking the backing arrays read-only lets the capture share them by
    reference (the CoW convention): the continuing origin world and every
    fork detach via ``touch()`` before their next mutation, so the image
    pays for *no* array bytes at all at the boundary — the O(dirty)
    property extends from committed snapshots to the entire world.
    """
    rt = getattr(root, "runtime", None)
    heaps = getattr(rt, "_heaps", None)
    if heaps is None:
        return
    for heap in heaps.values():
        store = getattr(heap, "_store", None)
        if store:
            for value in store.values():
                freeze_payload(value)


class _CapturePickler(pickle.Pickler):
    """Pickler that parks frozen ndarrays in the fork context's side table.

    Frozen arrays that *own* their buffer (``base is None``) are shared by
    reference and deduplicated across captures — their bytes can never
    change again, so every boundary image of a run points at the same
    object.  A frozen **view** may alias a still-writable base, so its
    bytes are snapshotted (copied and re-frozen) per capture instead of
    shared by identity.
    """

    def __init__(self, file, context: "ForkContext"):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._context = context
        self._view_slots: Dict[int, int] = {}

    def persistent_id(self, obj: Any):
        tp = type(obj)
        if tp is np.ndarray and not obj.flags.writeable:
            ctx = self._context
            if obj.base is None:
                slot = ctx._slot_of.get(id(obj))
                if slot is None:
                    slot = len(ctx._frozen)
                    ctx._frozen.append(obj)
                    ctx._slot_of[id(obj)] = slot
                return slot
            slot = self._view_slots.get(id(obj))
            if slot is None:
                snap = obj.copy()
                snap.setflags(write=False)
                slot = len(ctx._frozen)
                ctx._frozen.append(snap)
                self._view_slots[id(obj)] = slot
            return slot
        if tp is FinishReport:
            # Finish reports are append-only records: nothing in the
            # codebase assigns to a FinishReport field after the report is
            # added to ``stats.finish_reports``, so forks can share the
            # instances (and their dead_places lists) by reference exactly
            # like frozen arrays.
            ctx = self._context
            slot = ctx._slot_of.get(id(obj))
            if slot is None:
                slot = len(ctx._frozen)
                ctx._frozen.append(obj)
                ctx._slot_of[id(obj)] = slot
            return slot
        return None


class _ResumeUnpickler(pickle.Unpickler):
    def __init__(self, file, frozen: List[Any]):
        super().__init__(file)
        self._frozen = frozen

    def persistent_load(self, pid: int) -> Any:
        return self._frozen[pid]


class SimulatorImage:
    """One captured world state, resumable any number of times.

    ``load()`` returns a fresh, fully independent copy of the captured
    object graph (sharing only immutable frozen arrays with the origin
    world and with sibling forks).  ``meta`` carries whatever boundary
    bookkeeping the capturer recorded (iteration, phase, virtual time).
    """

    __slots__ = ("_payload", "_context", "version_floor", "meta")

    def __init__(self, payload: bytes, context: "ForkContext", version_floor: int, meta: Dict[str, Any]):
        self._payload = payload
        self._context = context
        self.version_floor = version_floor
        self.meta = meta

    @property
    def nbytes(self) -> int:
        """Serialized size of the dirty part of the image (shared frozen
        arrays excluded — they are amortized across the whole context)."""
        return len(self._payload)

    def load(self) -> Any:
        ensure_version_floor(self.version_floor)
        return _ResumeUnpickler(io.BytesIO(self._payload), self._context._frozen).load()


class ForkContext:
    """Shared frozen-array pool for a family of related captures.

    All images captured through one context share a single side table of
    immutable arrays, so capturing a run at every iteration boundary costs
    one copy of the *dirty* state per boundary plus one shared copy of all
    committed (frozen) state — the copy-on-write property.

    The context (and its images) pickles cleanly for ``spawn``-style
    process pools; the re-frozen flag on every shared array is restored on
    unpickling because a plain ndarray pickle does not preserve it.
    """

    def __init__(self) -> None:
        self._frozen: List[Any] = []
        self._slot_of: Dict[int, int] = {}

    def capture(self, root: Any, **meta: Any) -> SimulatorImage:
        """Snapshot *root*'s full object graph into a resumable image."""
        _freeze_world(root)
        buf = io.BytesIO()
        _CapturePickler(buf, self).dump(root)
        return SimulatorImage(buf.getvalue(), self, next_version(), dict(meta))

    # -- cross-process transport --------------------------------------------

    def __getstate__(self):
        return {"frozen": self._frozen}

    def __setstate__(self, state):
        self._frozen = state["frozen"]
        for shared in self._frozen:
            if type(shared) is np.ndarray:
                shared.setflags(write=False)
        self._slot_of = {id(shared): slot for slot, shared in enumerate(self._frozen)}
