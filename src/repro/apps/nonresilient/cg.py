"""Preconditioned conjugate gradient (non-resilient).

Jacobi-preconditioned CG for the SPD banded system of
:class:`~repro.apps.data.CGWorkload`, written over the GML classes:

* ``A`` — a :class:`~repro.matrix.distsparse.DistSparseRowMatrix` (one CSR
  row band per place);
* ``x, r, z, p, q`` — partition-aligned :class:`DistVector` s;
* ``p_dup`` — the :class:`DupVector` operand of the matvec.

One iteration (with ``M⁻¹`` the inverse diagonal of ``A``)::

    q = A p
    α = ρ / (p·q)          # ρ = r·z from the previous iteration
    x += α p ;  r -= α q
    z = M⁻¹ r
    ρ' = r·z ;  β = ρ'/ρ
    p = z + β p

All scalar reductions are group-ordered partial sums (``dot_dist``), so a
run's trajectory is bit-reproducible for a fixed group width — the
property the resilient variant's exact reconstruction leans on.
"""

from __future__ import annotations

from math import sqrt
from typing import Optional

from repro.apps.data import CGWorkload
from repro.matrix.distsparse import DistSparseRowMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Partition1D
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


class CGNonResilient:
    """Plain PCG iteration over GML."""

    def __init__(
        self,
        runtime: Runtime,
        workload: CGWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        n = workload.rows(group.size)
        self.n = n
        part = Partition1D.even(n, group.size)
        self.A = DistSparseRowMatrix.make(
            runtime, n, group, builder=lambda lo, hi: workload.band(n, lo, hi),
            partition=part,
        )
        self.b = DistVector.make(runtime, n, group, part).init_random(
            workload.seed, tag=1
        )
        # Jacobi preconditioner: M⁻¹ = 1/diag(A), built from the same
        # seeded diagonal the band builder uses (tag=2 jitter).
        self.inv_diag = (
            DistVector.make(runtime, n, group, part)
            .init_random(workload.seed, tag=2)
            .map(lambda v: 1.0 / (CGWorkload.DIAG_BASE + v), flops_per_cell=2.0)
        )
        self.x = DistVector.make(runtime, n, group, part).fill(0.0)
        self.r = DistVector.make(runtime, n, group, part).copy_from(self.b)
        self.z = (
            DistVector.make(runtime, n, group, part)
            .copy_from(self.r)
            .cell_mult(self.inv_diag)
        )
        self.p = DistVector.make(runtime, n, group, part).copy_from(self.z)
        self.q = DistVector.make(runtime, n, group, part)
        self.p_dup = DupVector.make(runtime, n, group)
        self.rz = self.r.dot_dist(self.z)
        self.rz0 = self.rz

    @property
    def places(self) -> PlaceGroup:
        return self._places

    def is_finished(self) -> bool:
        if self.iteration >= self.workload.iterations:
            return True
        tol = self.workload.tolerance
        return bool(tol > 0 and self.rz <= tol * tol * self.rz0)

    def step(self) -> None:
        """One PCG iteration."""
        self.p.to_dup(self.p_dup)
        self.A.mult_into(self.q, self.p_dup)
        alpha = self.rz / self.q.dot_dist(self.p)
        self.x.axpy(alpha, self.p)
        self.r.axpy(-alpha, self.q)
        self.z.copy_from(self.r).cell_mult(self.inv_diag)
        rz_new = self.r.dot_dist(self.z)
        beta = rz_new / self.rz if self.rz else 0.0
        self.p.scale(beta).cell_add(self.z)
        self.rz = rz_new
        self.iteration += 1

    def run(self) -> None:
        """Iterate to completion."""
        while not self.is_finished():
            self.step()

    def solution(self):
        """The iterate ``x`` (driver-side copy)."""
        return self.x.to_array()

    def residual_norm(self) -> float:
        """``sqrt(r·z)`` — the preconditioned residual norm."""
        return sqrt(max(self.rz, 0.0))
