"""Tests for modeled collectives: timing shape and failure behaviour."""

import math

import pytest

from repro.runtime import CostModel, DeadPlaceException, PlaceGroup, Runtime
from repro.runtime.comm import (
    check_group_alive,
    flat_gather,
    point_to_point,
    tree_allreduce,
    tree_broadcast,
    tree_reduce,
)


def rt_with(n, **cost_kwargs):
    return Runtime(n, cost=CostModel(**cost_kwargs))


class TestPointToPoint:
    def test_advances_destination(self):
        rt = rt_with(3, latency=1.0, byte_time=0.5)
        t = point_to_point(rt, 1, 2, nbytes=4)
        assert t == pytest.approx(1.0 + 2.0)
        assert rt.clock.now(2) == pytest.approx(3.0)

    def test_dead_endpoints(self):
        rt = rt_with(3)
        rt.kill(2)
        with pytest.raises(DeadPlaceException):
            point_to_point(rt, 0, 2, 8)
        with pytest.raises(DeadPlaceException):
            point_to_point(rt, 2, 0, 8)


class TestBroadcast:
    def test_logarithmic_rounds(self):
        # Tree broadcast: the last receiver waits ~ceil(log2 P) message times.
        lat = 1.0
        for P in (2, 4, 8, 16):
            rt = rt_with(P, latency=lat)
            tree_broadcast(rt, rt.world, 0, nbytes=0)
            depth = math.ceil(math.log2(P))
            # Place 0 is also the finish driver (its clock includes the
            # join), so measure the pure receivers.
            last = max(rt.clock.now(i) for i in range(1, P))
            assert last == pytest.approx(depth * lat)

    def test_nonzero_root(self):
        rt = rt_with(4, latency=1.0)
        tree_broadcast(rt, rt.world, root_index=2, nbytes=0)
        assert max(rt.clock.now(i) for i in range(1, 4)) == pytest.approx(2.0)

    def test_dead_member_raises_before_data_moves(self):
        rt = rt_with(4, latency=1.0)
        rt.kill(3)
        with pytest.raises(DeadPlaceException):
            tree_broadcast(rt, rt.world, 0, nbytes=8)

    def test_single_place_group(self):
        rt = rt_with(2, latency=1.0)
        g = PlaceGroup.of_ids([1])
        tree_broadcast(rt, g, 0, nbytes=8)  # no sends needed
        assert rt.clock.now(1) == 0.0


class TestGather:
    def test_linear_in_places(self):
        # Flat gather: root absorbs P-1 payloads serially.
        bt = 1.0
        costs = {}
        for P in (3, 5, 9):
            rt = rt_with(P, byte_time=bt)
            flat_gather(rt, rt.world, 0, nbytes_each=2.0)
            costs[P] = rt.clock.now(0)
        assert costs[5] == pytest.approx(costs[3] + 2 * 2.0)
        assert costs[9] == pytest.approx(costs[5] + 4 * 2.0)

    def test_dead_member(self):
        rt = rt_with(3)
        rt.kill(1)
        with pytest.raises(DeadPlaceException):
            flat_gather(rt, rt.world, 0, 8)


class TestReduceAllreduce:
    def test_reduce_log_depth(self):
        rt = rt_with(8, latency=1.0)
        tree_reduce(rt, rt.world, 0, nbytes=0)
        # The slowest task (the root's final merge) lands at log2(8) rounds.
        assert rt.stats.finish_reports[-1].task_end_max == pytest.approx(3.0)

    def test_reduce_flops_charged(self):
        rt = rt_with(2, flop_time=1.0)
        tree_reduce(rt, rt.world, 0, nbytes=0, reduce_flops=10)
        assert rt.clock.now(0) == pytest.approx(10.0)

    def test_allreduce_all_places_advance(self):
        rt = rt_with(4, latency=1.0)
        tree_allreduce(rt, rt.world, nbytes=0)
        times = [rt.clock.now(i) for i in range(4)]
        assert min(times) > 0

    def test_allreduce_counts_two_finishes(self):
        rt = rt_with(4, latency=1.0)
        tree_allreduce(rt, rt.world, nbytes=0)
        assert rt.stats.finishes == 2


class TestResilienceAccounting:
    def test_collectives_pay_ledger_when_resilient(self):
        cost = CostModel(latency=1e-6, ledger_event_time=1e-3)
        t = {}
        for resilient in (False, True):
            rt = Runtime(8, cost=cost, resilient=resilient)
            tree_broadcast(rt, rt.world, 0, nbytes=0)
            t[resilient] = rt.now()
        assert t[True] > t[False]

    def test_check_group_alive(self):
        rt = rt_with(4)
        check_group_alive(rt, rt.world)  # no raise
        rt.kill(2)
        with pytest.raises(DeadPlaceException):
            check_group_alive(rt, rt.world)
