"""Extension — strong scaling (the paper only evaluates weak scaling).

Fixing the *total* problem size and growing the place count exposes the
crossover the weak-scaling figures hide: per-place compute shrinks like
1/P while the finish fan-out and place-zero bookkeeping grow like P, so
time per iteration is U-shaped and the resilient runtime's sweet spot sits
at fewer places than the non-resilient one's — a practical consequence of
the paper's overhead analysis.
"""

from _common import emit, results_path
from repro.apps.data import RegressionWorkload
from repro.apps.nonresilient import LinRegNonResilient
from repro.bench import figures
from repro.bench.calibration import regression_cost
from repro.runtime import Runtime

AXIS = [2, 4, 8, 16, 24, 32, 44]
TOTAL_EXAMPLES = 44_000  # fixed total => 44k/P per place
ITERATIONS = 10


def time_per_iteration(places: int, resilient: bool) -> float:
    wl = RegressionWorkload(
        features=100,
        examples_per_place=TOTAL_EXAMPLES // places,
        blocks_per_place=2,
        iterations=ITERATIONS,
    )
    rt = Runtime(places, cost=regression_cost(), resilient=resilient)
    app = LinRegNonResilient(rt, wl)
    t0 = rt.now()
    app.run()
    return (rt.now() - t0) / ITERATIONS * 1e3


def run_sweep():
    return {
        "non-resilient finish": [time_per_iteration(p, False) for p in AXIS],
        "resilient finish": [time_per_iteration(p, True) for p in AXIS],
    }


def test_extension_strong_scaling(benchmark):
    values = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [figures.series_table(AXIS, values, header_unit="ms/iteration")]
    sweet = {
        label: AXIS[series.index(min(series))] for label, series in values.items()
    }
    for label, places in sweet.items():
        lines.append(f"  {label:<22s} fastest at {places} places")
    csv = figures.write_csv(results_path("strong_scaling.csv"), AXIS, values)
    lines.append(f"  series written to {csv}")
    emit(
        "Extension — LinReg strong scaling (fixed 44k-example total)",
        "\n".join(lines),
    )

    nonres = values["non-resilient finish"]
    res = values["resilient finish"]
    # Adding places first helps (compute dominates), then hurts
    # (coordination dominates): the curves are not monotone.
    assert min(nonres) < nonres[0]
    assert nonres[-1] > min(nonres)
    # Bookkeeping grows with P, so the resilient sweet spot is at most the
    # non-resilient one, and the resilient penalty explodes at scale.
    assert sweet["resilient finish"] <= sweet["non-resilient finish"]
    assert res[-1] / nonres[-1] > 1.5
