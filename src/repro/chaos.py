"""Seeded chaos campaigns: recovery invariants under randomized failures.

A *campaign* runs one application under hundreds of randomized failure
schedules — single kills, simultaneous adjacent-pair and same-rack bursts,
kills fired in the middle of a checkpoint or a restore — and asserts, for
every schedule, the recovery invariants the paper's framework promises:

* the converged result matches a failure-free run of the non-resilient
  baseline (the resilient framework changes *where* work runs, never the
  answer);
* every restore rolled back to a *committed* checkpoint iteration, never
  past the last commit;
* no snapshot replica is placed on its partition's primary place;
* after any cancelled checkpoint the store is consistent (no attempt left
  open).

Losing every copy of a partition is a documented outcome, not a violation:
without the stable-storage tier a sufficiently vicious burst may exceed
the replication factor and raise ``DataLossError``.  *With* the stable
tier enabled, in-memory loss must be absorbed by the disk fallback, so a
``DataLossError`` for lost copies becomes an invariant violation.

Schedules are generated from a seed, so a violating schedule is
reproducible from its campaign seed + index alone.  Used by the
``chaos`` CLI subcommand and the chaos-smoke CI job.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.data import CGWorkload, PageRankWorkload, RegressionWorkload
from repro.apps.nonresilient import (
    CGNonResilient,
    LinRegNonResilient,
    LogRegNonResilient,
    PageRankNonResilient,
)
from repro.apps.resilient import (
    CGResilient,
    LinRegResilient,
    LogRegResilient,
    PageRankResilient,
)
from repro.baseline import failure_free_result
from repro.resilience.executor import (
    IterativeExecutor,
    NonResilientExecutor,
    RestoreMode,
)
from repro.resilience.placement import ParityPlacement, make_placement
from repro.resilience.store import AppResilientStore
from repro.runtime.cost import CostModel
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.exceptions import DataLossError, SnapshotCorruptionError
from repro.runtime.failure import (
    CorruptionModel,
    LinkPartition,
    ScriptedKill,
    TransientFaultModel,
)
from repro.runtime.factory import make_runtime


def _tiny_regression(iterations: int) -> RegressionWorkload:
    return RegressionWorkload(
        features=8, examples_per_place=32, blocks_per_place=2, iterations=iterations
    )


def _tiny_pagerank(iterations: int) -> PageRankWorkload:
    return PageRankWorkload(
        nodes_per_place=18, out_degree=3, blocks_per_place=2, iterations=iterations
    )


def _tiny_cg(iterations: int) -> CGWorkload:
    return CGWorkload(rows_per_place=24, stride=7, iterations=iterations)


#: app name → (non-resilient class, resilient class, tiny workload factory,
#: result accessor).  Workloads are deliberately minuscule: a campaign runs
#: hundreds of full failure/recovery cycles and only correctness matters.
CHAOS_APPS: Dict[str, Tuple[type, type, Callable, Callable]] = {
    "linreg": (
        LinRegNonResilient,
        LinRegResilient,
        _tiny_regression,
        lambda app: app.model(),
    ),
    "logreg": (
        LogRegNonResilient,
        LogRegResilient,
        _tiny_regression,
        lambda app: app.model(),
    ),
    "pagerank": (
        PageRankNonResilient,
        PageRankResilient,
        _tiny_pagerank,
        lambda app: app.ranks(),
    ),
    "cg": (
        CGNonResilient,
        CGResilient,
        _tiny_cg,
        lambda app: app.solution(),
    ),
}

#: Event kinds a schedule is drawn from.  "restore" is excluded from the
#: first event (a during-restore kill needs an earlier failure to trigger
#: a restore at all); "double" draws two victims *with replacement* at the
#: same instant — the realistic correlated-failure model that can name the
#: same victim twice, which :func:`dedupe_schedule` resolves.
_EVENT_KINDS = (
    "iteration", "pair", "rack", "checkpoint", "restore", "phase", "double",
)

#: Kinds that need an earlier failure before they can fire at all.
_FOLLOWUP_KINDS = ("restore", "reconstruct")


def _event_kinds(recovery: str) -> Tuple[str, ...]:
    """The kind pool for a campaign: reconstruct campaigns additionally
    draw kills fired in the middle of a reconstruction."""
    if recovery == "reconstruct":
        return _EVENT_KINDS + ("reconstruct",)
    return _EVENT_KINDS


@dataclass(frozen=True)
class CampaignConfig:
    """One chaos campaign: app + store configuration + schedule count."""

    app: str = "linreg"
    schedules: int = 200
    seed: int = 0
    places: int = 6
    iterations: int = 10
    checkpoint_interval: int = 3
    replicas: int = 2
    placement: str = "spread"
    stable_fallback: bool = False
    spares: int = 0
    #: Transient-fault axes (all off by default — crash-only campaigns).
    #: Per-message drop / duplication probability on the data plane.
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    #: One random place per schedule computes up to this factor slower
    #: (1.0 = no stragglers).
    straggler_max: float = 1.0
    #: Per-copy probability of bit-rot after each checkpoint commit.
    corrupt_rate: float = 0.0
    #: Failure-detection timeout in virtual seconds; 0 keeps the oracle
    #: failure model (no detector, exceptions carry ground truth).
    detect_timeout: float = 0.0
    #: Probability that a schedule includes a temporary link partition
    #: that heals (requires ``detect_timeout`` > 0 to be survivable).
    partition_rate: float = 0.0
    #: Incremental (dirty-partition-only) checkpointing for every schedule
    #: of the campaign.  Full checkpoints (paper parity) by default.
    ckpt_delta: bool = False
    #: Recovery scheme: "checkpoint" (rollback) or "reconstruct"
    #: (checkpoint-free, apps implementing the reconstructable protocol
    #: only — checkpoint/restart stays as the fallback rung).
    recovery: str = "checkpoint"

    def __post_init__(self) -> None:
        # Fail fast (in the parent process, not inside pool workers) on a
        # bad placement spec or on parity double-paying for protection.
        policy = make_placement(self.placement)
        if isinstance(policy, ParityPlacement) and self.replicas > 1:
            raise ValueError(
                "placement=parity replaces per-key replicas with one XOR "
                f"parity block per group; replicas must be <= 1, got "
                f"{self.replicas}"
            )

    @property
    def transient(self) -> bool:
        """True when any transient-fault axis is active."""
        return bool(
            self.drop_rate
            or self.dup_rate
            or self.straggler_max > 1.0
            or self.corrupt_rate
            or self.partition_rate
        )


@dataclass
class ScheduleOutcome:
    """Result of one randomized schedule."""

    index: int
    kills: List[str]
    #: "clean" (no kill fired), "recovered", or "data_loss_accepted".
    status: str
    violations: List[str] = field(default_factory=list)
    detail: str = ""


@dataclass
class CampaignResult:
    """All outcomes of one campaign."""

    config: CampaignConfig
    outcomes: List[ScheduleOutcome]

    @property
    def violations(self) -> List[ScheduleOutcome]:
        return [o for o in self.outcomes if o.violations]

    def counts(self) -> Dict[str, int]:
        by_status: Dict[str, int] = {}
        for o in self.outcomes:
            by_status[o.status] = by_status.get(o.status, 0) + 1
        return by_status

    def summary(self) -> str:
        cfg = self.config
        lines = [
            f"chaos campaign: app={cfg.app} schedules={cfg.schedules} "
            f"seed={cfg.seed} places={cfg.places} replicas={cfg.replicas} "
            f"placement={cfg.placement} stable_fallback={cfg.stable_fallback} "
            f"ckpt_delta={cfg.ckpt_delta} recovery={cfg.recovery}",
        ]
        if cfg.transient:
            lines.append(
                f"transient: drop={cfg.drop_rate:g} dup={cfg.dup_rate:g} "
                f"straggler_max={cfg.straggler_max:g} corrupt={cfg.corrupt_rate:g} "
                f"partition={cfg.partition_rate:g} "
                f"detect_timeout={cfg.detect_timeout:g}"
            )
        lines += [
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items())),
        ]
        bad = self.violations
        if bad:
            lines.append(f"VIOLATIONS in {len(bad)} schedule(s):")
            for o in bad[:10]:
                lines.append(
                    f"  schedule {o.index} (kills: {'; '.join(o.kills)}):"
                )
                for v in o.violations:
                    lines.append(f"    - {v}")
        else:
            lines.append("all recovery invariants held")
        return "\n".join(lines)


def _describe(kill: ScriptedKill) -> str:
    if kill.iteration is not None:
        return f"p{kill.place_id}@iter{kill.iteration}"
    if kill.phase is not None:
        return f"p{kill.place_id}@phase{kill.phase}"
    if kill.time is not None:
        return f"p{kill.place_id}@t={kill.time:g}"
    return f"p{kill.place_id}@{kill.during}#{kill.occurrence}"


def dedupe_schedule(kills: List[ScriptedKill]) -> List[ScriptedKill]:
    """Drop repeat kills of an already-condemned victim.

    Correlated draws (the "double" kind samples *with replacement*) can
    name the same place twice — at the same instant, or after an earlier
    event already condemned it.  A fail-stop place dies once, and the
    injector rejects a second kill for the same victim, so only the first
    kill per place survives; later echoes are dropped.
    """
    seen = set()
    deduped: List[ScriptedKill] = []
    for kill in kills:
        if kill.place_id in seen:
            continue
        seen.add(kill.place_id)
        deduped.append(kill)
    return deduped


def make_schedule(
    rng: np.random.Generator,
    places: int,
    iterations: int,
    kinds: Tuple[str, ...] = _EVENT_KINDS,
) -> List[ScriptedKill]:
    """Draw one randomized failure schedule (1-3 correlated/scripted events).

    Victims never include place zero, and the returned schedule is
    deduplicated: the "double" kind draws its two simultaneous victims
    with replacement, so the raw draw can condemn the same place twice —
    :func:`dedupe_schedule` keeps the first kill only.
    """
    pool = list(range(1, places))
    kills: List[ScriptedKill] = []

    def take(pid: int) -> int:
        pool.remove(pid)
        return pid

    n_events = int(rng.integers(1, 4))
    for event in range(n_events):
        if not pool:
            break
        event_kinds = kinds if event > 0 else tuple(
            k for k in kinds if k not in _FOLLOWUP_KINDS
        )
        kind = str(rng.choice(event_kinds))
        when = int(rng.integers(1, iterations))
        if kind == "pair":
            adjacent = [p for p in pool if p + 1 in pool]
            if adjacent:
                a = int(rng.choice(adjacent))
                kills.append(ScriptedKill(place_id=take(a), iteration=when))
                kills.append(ScriptedKill(place_id=take(a + 1), iteration=when))
                continue
            kind = "iteration"  # no adjacent pair left: degrade to a single
        if kind == "rack":
            # A burst of up to 3 consecutive surviving ids, same instant.
            start = int(rng.choice(pool))
            for pid in range(start, start + 3):
                if pid in pool:
                    kills.append(ScriptedKill(place_id=take(pid), iteration=when))
            continue
        if kind == "double":
            # Two *independent* failures landing at the same instant,
            # drawn with replacement over every killable place — the
            # correlated-failure model that can (and sometimes does) name
            # one victim twice or re-condemn an earlier event's victim.
            for victim in (int(x) for x in rng.integers(1, places, size=2)):
                kills.append(ScriptedKill(place_id=victim, iteration=when))
                if victim in pool:
                    pool.remove(victim)
            continue
        victim = take(int(rng.choice(pool)))
        if kind == "checkpoint":
            occurrence = int(rng.integers(1, 4))
            kills.append(
                ScriptedKill(
                    place_id=victim, during="checkpoint", occurrence=occurrence
                )
            )
        elif kind == "restore":
            kills.append(ScriptedKill(place_id=victim, during="restore"))
        elif kind == "reconstruct":
            kills.append(ScriptedKill(place_id=victim, during="reconstruct"))
        elif kind == "phase":
            kills.append(
                ScriptedKill(place_id=victim, phase=int(rng.integers(3, 60)))
            )
        else:
            kills.append(ScriptedKill(place_id=victim, iteration=when))
    return dedupe_schedule(kills)


def _failure_free_result(config: CampaignConfig) -> np.ndarray:
    """The reference answer: the non-resilient app, no failures.

    Served from the process-wide memo shared with the service layer's
    ``BaselineCache`` (:mod:`repro.baseline`), so repeated campaigns and
    multi-stream serves compute each distinct baseline once.
    """
    return failure_free_result(
        CHAOS_APPS, config.app, config.places, config.iterations
    )


def _build_world(
    config: CampaignConfig, mode: RestoreMode, checkpoint_mode: str
) -> Tuple["Runtime", object, AppResilientStore, IterativeExecutor]:
    """Construct the runtime/app/store/executor world of one schedule.

    This is the crash-only construction path — no detector, corruption
    model, transient faults, or stragglers — shared verbatim between
    :func:`run_schedule` and the prefix cache's failure-free reference
    runs, so a forked world can never drift from a built one.
    """
    _, res_cls, wl_factory, _ = CHAOS_APPS[config.app]
    rt = make_runtime(
        config.places,
        cost=CostModel.zero(),
        resilient=True,
        spares=config.spares,
    )
    app = res_cls(rt, wl_factory(config.iterations))
    store = AppResilientStore(
        rt,
        replicas=config.replicas,
        placement=make_placement(config.placement),
        stable_fallback=config.stable_fallback,
        delta=config.ckpt_delta,
    )
    executor = IterativeExecutor(
        rt,
        app,
        store=store,
        checkpoint_interval=config.checkpoint_interval,
        mode=mode,
        spare_fallback=RestoreMode.SHRINK_REBALANCE,
        checkpoint_mode=checkpoint_mode,
        detector=None,
        corruption=None,
        replicas=config.replicas,
        placement=make_placement(config.placement),
        recovery=config.recovery,
    )
    return rt, app, store, executor


class _PrefixWorld:
    """Boundary images of one failure-free run at one checkpoint mode.

    The reference run executes the campaign's world with *no kills armed*
    and captures a :class:`~repro.engine.fork.SimulatorImage` at every
    iteration-commit boundary, alongside the phase counter and virtual
    time observed there (the tables phase-/time-triggered kills are
    located against).  An armed-but-not-due injector is indistinguishable
    from an empty one at every poll, so the prefix of any schedule whose
    first kill fires at boundary *b* or later is bitwise identical to
    this run up to boundary *b*.
    """

    def __init__(self, config: CampaignConfig, checkpoint_mode: str):
        from repro.engine.fork import ForkContext, SimulatorImage

        self.config = config
        self.images: Dict[int, SimulatorImage] = {}
        self.phase_at: Dict[int, int] = {}
        self.time_at: Dict[int, float] = {}
        context = ForkContext()
        rt, _, _, executor = _build_world(
            config, RestoreMode.SHRINK, checkpoint_mode
        )

        def snap(boundary: int) -> bool:
            self.phase_at[boundary] = rt.phase
            self.time_at[boundary] = rt.clock.global_time()
            self.images[boundary] = context.capture(executor)
            return True

        executor.run(boundary_hook=snap)
        self.max_boundary = max(self.images)

    def _last_boundary_below(
        self, table: Dict[int, float], threshold: float
    ) -> Optional[int]:
        """Largest captured boundary strictly before *threshold* fires.

        Both tables are nondecreasing in the boundary, so the last
        boundary whose recorded value is below the trigger is the latest
        state the kill provably cannot have fired in.  ``None`` when even
        boundary 0 is too late (the trigger falls inside world
        construction or the initial redundancy publish) — such a schedule
        is not forkable and runs from scratch.
        """
        best = None
        for boundary in range(self.max_boundary + 1):
            if table[boundary] < threshold:
                best = boundary
            else:
                break
        return best

    def divergence_boundary(self, kills: List[ScriptedKill]) -> Optional[int]:
        """The latest boundary no kill of this schedule can fire before.

        Per kill: an iteration trigger fires at the top of its iteration;
        a during-checkpoint trigger at occurrence *o* fires inside the
        *o*-th checkpoint, which (failure-free, by construction of the
        prefix) opens in the body of iteration ``(o-1) * interval``; a
        during-restore/-reconstruct/-scrub trigger needs an earlier
        failure, so the kill that *caused* that failure governs; phase
        and time triggers are located against the recorded tables.  The
        schedule's boundary is the minimum over its kills, clamped to the
        boundaries the reference run actually reached (a trigger beyond
        the run's natural end never fires at all).
        """
        boundary = self.max_boundary
        for kill in kills:
            if kill.iteration is not None:
                kill_bound = kill.iteration
            elif kill.during == "checkpoint":
                kill_bound = (
                    (kill.occurrence - 1) * self.config.checkpoint_interval
                )
            elif kill.during is not None:
                continue
            elif kill.phase is not None:
                kill_bound = self._last_boundary_below(self.phase_at, kill.phase)
            elif kill.time is not None:
                kill_bound = self._last_boundary_below(self.time_at, kill.time)
            else:  # pragma: no cover - ScriptedKill guarantees one trigger
                return None
            if kill_bound is None:
                return None
            boundary = min(boundary, kill_bound)
        return max(0, min(boundary, self.max_boundary))

    def fork(
        self, kills: List[ScriptedKill], mode: RestoreMode
    ) -> Optional[IterativeExecutor]:
        """A fresh executor resumed at this schedule's divergence boundary.

        The restore mode is patched after resume — it is only read once a
        failure needs a replacement group, strictly after the divergence
        point — and the caller arms the schedule's kills on the resumed
        injector, which is equivalent to arming them up front because an
        injector's state is only observed at failure polls.
        """
        boundary = self.divergence_boundary(kills)
        if boundary is None:
            return None
        executor = self.images[boundary].load()
        executor.mode = mode
        return executor


class PrefixCache:
    """Campaign-level cache of shared failure-free prefixes.

    Schedules of one campaign differ only in their kills and in two
    mode draws; everything before the first kill fires is the same
    simulation, re-run hundreds of times.  The cache simulates that
    shared prefix once per checkpoint mode (the only draw that changes
    the failure-free world) and forks every schedule from the image at
    its first-divergence boundary — bitwise identical to running from
    scratch, minus the redundant prefix wall-clock.

    Campaigns with any transient axis (drops, duplicates, stragglers,
    corruption, partitions) or a failure detector draw *per-schedule*
    randomness that perturbs the world from iteration zero, so no prefix
    is shared and the cache declines (:meth:`usable`).
    """

    #: The two failure-free worlds a campaign draws from.
    _CHECKPOINT_MODES = ("blocking", "overlapped")

    def __init__(self, config: CampaignConfig):
        self.config = config
        self._worlds: Dict[str, _PrefixWorld] = {}

    @staticmethod
    def usable(config: CampaignConfig) -> bool:
        """True when every schedule of *config* shares its prefix."""
        return not config.transient and config.detect_timeout == 0

    def build(self) -> "PrefixCache":
        """Eagerly simulate both reference prefixes (call before forking
        a worker pool, so workers inherit the images instead of each
        rebuilding them)."""
        for checkpoint_mode in self._CHECKPOINT_MODES:
            self.world(checkpoint_mode)
        return self

    def world(self, checkpoint_mode: str) -> _PrefixWorld:
        world = self._worlds.get(checkpoint_mode)
        if world is None:
            world = self._worlds[checkpoint_mode] = _PrefixWorld(
                self.config, checkpoint_mode
            )
        return world

    def fork(
        self,
        checkpoint_mode: str,
        kills: List[ScriptedKill],
        mode: RestoreMode,
    ) -> Optional[IterativeExecutor]:
        return self.world(checkpoint_mode).fork(kills, mode)


def _parity_recovery_sets(config: CampaignConfig) -> Optional[List[set]]:
    """Per-parity-group recovery sets over the initial world, or None when
    the campaign does not run a parity placement.

    A group's recovery set is its member places plus the place holding its
    XOR parity block: losing any *one* of them is recoverable from memory,
    losing two before a repair pass is the documented loss mode.
    """
    policy = make_placement(config.placement)
    if not isinstance(policy, ParityPlacement):
        return None
    size = config.places
    span = policy.group_span(size)
    sets = []
    for start in range(0, size, span):
        members = list(range(start, min(start + span, size)))
        sets.append(set(members) | {policy.parity_index(start, len(members), size)})
    return sets


def _parity_covered(
    config: CampaignConfig, kills: List[ScriptedKill], mode: RestoreMode
) -> bool:
    """True when parity alone *must* absorb this schedule in memory.

    Covered means: a parity campaign with no transient axes, every kill
    landing at a loop top (iteration-triggered — mid-protocol kills can
    compound an in-flight recovery), spares covering every replacement
    (so the post-restore scrub re-materializes lost copies between
    bursts), and no single burst taking two places of any parity group's
    recovery set.
    """
    sets = _parity_recovery_sets(config)
    if sets is None or config.transient:
        return False
    if mode is not RestoreMode.REPLACE_REDUNDANT:
        return False
    if not kills or any(k.iteration is None for k in kills):
        return False
    if len(kills) > config.spares:
        return False
    bursts: Dict[int, set] = {}
    for kill in kills:
        bursts.setdefault(kill.iteration, set()).add(kill.place_id)
    for victims in bursts.values():
        for group in sets:
            if len(group & victims) > 1:
                return False
    return True


def run_schedule(
    config: CampaignConfig,
    index: int,
    kills: List[ScriptedKill],
    baseline: np.ndarray,
    mode: RestoreMode,
    checkpoint_mode: str,
    prefix: Optional[PrefixCache] = None,
) -> ScheduleOutcome:
    """Run one schedule and check every recovery invariant.

    With a *prefix* cache the schedule resumes from the shared
    failure-free image at its first-divergence boundary instead of
    simulating the identical prefix again — bitwise identical outcome,
    a fraction of the wall clock.
    """
    _, res_cls, wl_factory, result_of = CHAOS_APPS[config.app]
    executor = None
    faults = None
    corruption = None
    straggler_factor = 1.0
    if prefix is not None and PrefixCache.usable(config):
        executor = prefix.fork(checkpoint_mode, kills, mode)
    if executor is not None:
        rt = executor.runtime
        app = executor.app
        store = executor.store
        # Arming on the resumed injector is equivalent to arming up
        # front: injector state is only observed at failure polls, and no
        # kill of this schedule can fire before the resumed boundary.
        for kill in kills:
            rt.injector.add(kill)
    else:
        rt = make_runtime(
            config.places,
            cost=CostModel.zero(),
            resilient=True,
            spares=config.spares,
        )
        app = res_cls(rt, wl_factory(config.iterations))
        # Kills are armed only after construction: phase-triggered kills
        # then land inside the executor's run, where recovery is defined.
        for kill in kills:
            rt.injector.add(kill)

        # Transient-fault plan, deterministic in (campaign seed, index).
        trng = np.random.default_rng([config.seed, index, 17])
        if config.straggler_max > 1.0:
            straggler_pid = int(trng.integers(1, config.places))
            straggler_factor = float(trng.uniform(1.0, config.straggler_max))
            rt.set_straggler(straggler_pid, straggler_factor)
        detector = None
        if config.detect_timeout > 0:
            detector = PhiAccrualDetector(rt, detect_timeout=config.detect_timeout)
        partitions = []
        if config.partition_rate and trng.random() < config.partition_rate:
            # A short partition that heals well inside the detection window —
            # messages and heartbeats across it are lost while it lasts.
            cut = int(trng.integers(1, config.places))
            t0 = float(trng.uniform(0.0, config.detect_timeout))
            partitions.append(
                LinkPartition(
                    {cut},
                    set(range(config.places)) - {cut},
                    t0,
                    t0 + float(trng.uniform(0.1, 0.5)) * max(config.detect_timeout, 1.0),
                )
            )
        if config.drop_rate or config.dup_rate or partitions:
            faults = TransientFaultModel(
                drop_rate=config.drop_rate,
                dup_rate=config.dup_rate,
                partitions=partitions,
                seed=int(trng.integers(2**31)),
            )
            rt.set_faults(faults)
        if config.corrupt_rate:
            corruption = CorruptionModel(
                config.corrupt_rate, seed=int(trng.integers(2**31))
            )

        store = AppResilientStore(
            rt,
            replicas=config.replicas,
            placement=make_placement(config.placement),
            stable_fallback=config.stable_fallback,
            delta=config.ckpt_delta,
        )
        executor = IterativeExecutor(
            rt,
            app,
            store=store,
            checkpoint_interval=config.checkpoint_interval,
            mode=mode,
            spare_fallback=RestoreMode.SHRINK_REBALANCE,
            checkpoint_mode=checkpoint_mode,
            detector=detector,
            corruption=corruption,
            replicas=config.replicas,
            placement=make_placement(config.placement),
            recovery=config.recovery,
        )
    outcome = ScheduleOutcome(
        index=index,
        kills=[_describe(k) for k in kills],
        status="clean",
        detail=f"mode={mode.value} checkpoint_mode={checkpoint_mode}",
    )
    try:
        report = executor.run()
    except DataLossError as err:
        message = str(err)
        if isinstance(err, SnapshotCorruptionError) and config.corrupt_rate:
            # Independent strikes can legitimately defeat every tier of a
            # partition; the guarantee is that corrupt data is never
            # *silently* restored, and this loud error is exactly that.
            outcome.status = "corruption_loss_accepted"
            if store.in_progress:
                outcome.violations.append(
                    "store left with an open snapshot attempt after data loss"
                )
            return outcome
        documented = (
            "no recovery point" in message
            or "consecutive times" in message
            or not config.stable_fallback
        )
        if _parity_covered(config, kills, mode):
            # No burst cost any parity group two places, so every loss was
            # XOR-recoverable: reaching DataLossError anyway is a hole in
            # the parity ladder, not a documented outcome.
            outcome.violations.append(
                f"single-loss-per-group parity schedule lost data: {message}"
            )
            outcome.status = "data_loss"
        elif documented:
            outcome.status = "data_loss_accepted"
        else:
            # The stable tier exists precisely so in-memory loss is
            # absorbed; reaching DataLossError anyway is a violation.
            outcome.violations.append(
                f"DataLossError despite stable fallback: {message}"
            )
            outcome.status = "data_loss"
        if store.in_progress:
            outcome.violations.append(
                "store left with an open snapshot attempt after data loss"
            )
        return outcome

    # Invariant 1: the answer matches the failure-free baseline.
    result = np.asarray(result_of(app))
    if not np.allclose(result, baseline, rtol=1e-8, atol=1e-10):
        worst = float(np.max(np.abs(result - baseline)))
        outcome.violations.append(
            f"converged result deviates from failure-free run (max abs "
            f"diff {worst:.3e})"
        )

    # Invariant 2: the store is consistent (no attempt left open).
    if store.in_progress:
        outcome.violations.append("store left with an open snapshot attempt")

    # Invariant 3: every restore landed on a committed checkpoint, never
    # past the newest commit at the time (commits grow monotonically, so
    # membership in the commit history implies the bound).
    committed = [snap.iteration for snap in store.snapshots]
    for restored in report.restored_iterations:
        if restored not in committed:
            outcome.violations.append(
                f"restored to iteration {restored}, which was never "
                f"committed (commits: {committed})"
            )
        elif restored > max(committed):
            outcome.violations.append(
                f"restored to iteration {restored} beyond the last "
                f"committed checkpoint {max(committed)}"
            )

    # Invariant 4: no replica co-resident with its partition's primary.
    latest = store.latest()
    if latest is not None:
        snapshots = list(latest.snapshots.values()) + list(latest.read_only.values())
        for snapshot in snapshots:
            if not snapshot.placement_ok():
                outcome.violations.append(
                    f"replica placed on its primary place in {snapshot!r}"
                )

    # Invariant 5: a slow place is not a failure.  Schedules whose only
    # perturbation is a straggler must not trigger a restore or an
    # eviction — the adaptive detector absorbs even an 8x slowdown.
    if (
        not kills
        and faults is None
        and corruption is None
        and straggler_factor > 1.0
        and (report.restores or report.evictions)
    ):
        outcome.violations.append(
            f"straggler-only schedule (factor {straggler_factor:.2f}) caused "
            f"{report.restores} restore(s) and {report.evictions} eviction(s)"
        )

    fired = [k for k in kills if k not in report.pending_kills]

    # Invariants 6-7 (reconstruct campaigns): rollback is never silent —
    # every restore must be a recorded fallback — and a failure pattern
    # inside the published redundancy must be absorbed with *zero* lost
    # iterations (no rollback at all).
    if config.recovery == "reconstruct":
        if report.restores and not report.fallback_restores:
            outcome.violations.append(
                f"{report.restores} rollback(s) without a recorded "
                "reconstruct fallback"
            )
        # "Covered" claims are only made for patterns whose burst size is
        # statically knowable: iteration-triggered kills land at loop
        # tops, after the previous burst's recovery re-published full
        # redundancy.  A phase/during/time kill can fire *mid-recovery*
        # and compound the in-flight burst past the replica count — that
        # is legitimate fallback territory, not a violation.
        bursts: Dict[int, int] = {}
        for kill in fired:
            if kill.iteration is not None:
                bursts[kill.iteration] = bursts.get(kill.iteration, 0) + 1
        covered = (
            bool(fired)
            and all(k.iteration is not None for k in fired)
            and max(bursts.values()) <= config.replicas
            and len(fired) <= config.spares
        )
        if covered:
            if report.fallback_restores or report.restores:
                outcome.violations.append(
                    f"burst pattern within redundancy (max burst "
                    f"{max(bursts.values())} <= {config.replicas} replicas, "
                    f"{len(fired)} kills <= {config.spares} spares) fell "
                    f"back to rollback ({report.fallback_restores} "
                    f"fallback(s), {report.restores} restore(s))"
                )
            if not report.reconstructions:
                outcome.violations.append(
                    "fired kills within redundancy produced no reconstruction"
                )
            if report.restored_iterations:
                outcome.violations.append(
                    f"covered burst lost iterations anyway (rolled back to "
                    f"{report.restored_iterations})"
                )

    # Invariant 8 (parity campaigns): a schedule whose bursts cost each
    # parity group at most one place recovers from the XOR rung — never
    # from disk — and any restore it needed actually reconstructed.
    if _parity_covered(config, fired, mode):
        if report.stable_fallback_reads:
            outcome.violations.append(
                f"parity-covered schedule read the disk tier "
                f"{report.stable_fallback_reads} time(s)"
            )
        if report.restores and not report.parity_reconstructions:
            outcome.violations.append(
                "parity-covered schedule restored without a single XOR "
                "reconstruction"
            )

    recovered = (
        report.failures_observed
        or fired
        or report.restores
        or report.reconstructions
        or report.evictions
        or report.quarantined_copies
    )
    outcome.status = "recovered" if recovered else "clean"
    if report.pending_kills:
        outcome.detail += f" pending={len(report.pending_kills)}"
    if outcome.violations:
        outcome.status = "violated"
    return outcome


def _restore_modes(config: CampaignConfig) -> List[RestoreMode]:
    modes = [RestoreMode.SHRINK, RestoreMode.SHRINK_REBALANCE]
    if config.spares > 0:
        modes.append(RestoreMode.REPLACE_REDUNDANT)
    return modes


def _campaign_index(
    config: CampaignConfig,
    baseline: np.ndarray,
    prefix: Optional[PrefixCache],
    index: int,
) -> ScheduleOutcome:
    """Run schedule *index* of the campaign.

    Every random draw (kills, restore mode, checkpoint mode, transients)
    derives from ``(config.seed, index)`` alone, so this function is a
    pure function of its arguments — the parallel pool below produces
    bitwise-identical outcomes to the serial loop, in any worker order.
    The prefix cache preserves that purity: a forked schedule replays the
    exact failure-free prefix it would have simulated.
    """
    rng = np.random.default_rng([config.seed, index])
    kills = make_schedule(
        rng, config.places, config.iterations, kinds=_event_kinds(config.recovery)
    )
    modes = _restore_modes(config)
    mode = modes[int(rng.integers(len(modes)))]
    checkpoint_mode = "overlapped" if rng.integers(2) else "blocking"
    return run_schedule(
        config, index, kills, baseline, mode, checkpoint_mode, prefix=prefix
    )


def run_campaign(
    config: CampaignConfig,
    jobs: Optional[int] = None,
    prefix_cache: bool = True,
) -> CampaignResult:
    """Run the full campaign; deterministic in ``config.seed``.

    With ``jobs`` > 1 the schedules fan out over a process pool.  Each
    schedule's randomness is derived from ``(seed, index)``, never from
    shared generator state, so the result is bitwise identical to the
    serial run — parallelism only changes the wall clock.

    *prefix_cache* (default on) simulates the failure-free prefix shared
    by the campaign's schedules once per checkpoint mode and forks every
    schedule from the image at its first-divergence boundary (see
    :class:`PrefixCache`); outcomes are bitwise identical either way.
    Campaigns with transient axes or a detector decline the cache.
    """
    if config.app not in CHAOS_APPS:
        raise ValueError(
            f"unknown chaos app {config.app!r}; choose from {sorted(CHAOS_APPS)}"
        )
    baseline = _failure_free_result(config)
    prefix = None
    if prefix_cache and PrefixCache.usable(config):
        # Built eagerly in the parent so pool workers inherit (fork) or
        # receive (spawn) ready images instead of each rebuilding them.
        prefix = PrefixCache(config).build()
    worker = partial(_campaign_index, config, baseline, prefix)
    if jobs is not None and jobs > 1 and config.schedules > 1:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(min(jobs, config.schedules)) as pool:
            outcomes = pool.map(worker, range(config.schedules))
    else:
        outcomes = [worker(index) for index in range(config.schedules)]
    return CampaignResult(config, outcomes)


# ---------------------------------------------------------------------------
# Service campaigns: chaos over multi-tenant job streams
# ---------------------------------------------------------------------------


@dataclass
class ServiceCampaignResult:
    """Aggregated outcome of several seeded multi-job service streams.

    A *stream* is one full :class:`~repro.service.ClusterService` run: a
    seeded arrival process of mixed jobs sharing one place pool under
    chaos.  On top of the per-schedule invariants the single-job campaigns
    check, a service campaign asserts the multi-tenant ones: a kill in one
    tenant's lease must never abort another tenant, and every admitted job
    must either finish with the failure-free answer or die a *scoped*
    death (data loss confined to its own lease).
    """

    streams: List[Dict]
    violations: List[str]

    @property
    def cross_tenant_aborts(self) -> int:
        return sum(s["cross_tenant_aborts"] for s in self.streams)

    def counts(self) -> Dict[str, int]:
        totals = {"completed": 0, "data_loss": 0, "aborted": 0, "rejected": 0}
        for s in self.streams:
            for key in totals:
                totals[key] += s[key]
        return totals

    def summary(self) -> str:
        totals = self.counts()
        jobs = sum(totals.values())
        lines = [
            f"service campaign: {len(self.streams)} stream(s), {jobs} jobs",
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(totals.items())),
            f"cross-tenant aborts: {self.cross_tenant_aborts}",
        ]
        if self.violations:
            lines.append(f"VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {v}" for v in self.violations[:20])
        else:
            lines.append("all multi-tenant invariants held")
        return "\n".join(lines)


def _service_stream(config, stream: int) -> Tuple[Dict, List[str]]:
    """Run stream *stream* of a service campaign (pure in config+index)."""
    from dataclasses import replace

    from repro.service import run_service

    report = run_service(replace(config, seed=config.seed + stream))
    prefixed = [f"stream {stream}: {v}" for v in report.violations]
    return report.to_dict(), prefixed


def run_service_campaign(
    config, streams: int = 1, jobs: Optional[int] = None
) -> ServiceCampaignResult:
    """Run *streams* service runs, varying only the seed; deterministic.

    ``config`` is a :class:`repro.service.ServiceConfig`; stream *i* runs
    with ``seed + i``.  With ``jobs`` > 1 streams fan out over a process
    pool — each stream is a pure function of ``(config, index)``, so the
    outcome is bitwise identical to the serial loop.
    """
    worker = partial(_service_stream, config)
    if jobs is not None and jobs > 1 and streams > 1:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(min(jobs, streams)) as pool:
            results = pool.map(worker, range(streams))
    else:
        results = [worker(index) for index in range(streams)]
    violations: List[str] = []
    for _, prefixed in results:
        violations.extend(prefixed)
    return ServiceCampaignResult(
        streams=[summary for summary, _ in results], violations=violations
    )
