"""Tests for scripted, context-triggered and random failure injection."""

import pytest

from repro.runtime.failure import (
    AdjacentPairFailureModel,
    ExponentialFailureModel,
    FailureInjector,
    RackFailureModel,
    ScriptedKill,
)


class TestScriptedKill:
    def test_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            ScriptedKill(place_id=1)
        with pytest.raises(ValueError):
            ScriptedKill(place_id=1, iteration=1, phase=2)
        ScriptedKill(place_id=1, iteration=3)  # ok

    def test_place_zero_rejected(self):
        with pytest.raises(ValueError, match="place 0"):
            ScriptedKill(place_id=0, iteration=3)

    def test_during_validates_context_name(self):
        ScriptedKill(place_id=1, during="checkpoint")  # ok
        ScriptedKill(place_id=1, during="restore", occurrence=2)  # ok
        with pytest.raises(ValueError):
            ScriptedKill(place_id=1, during="reduction")
        with pytest.raises(ValueError):
            ScriptedKill(place_id=1, during="checkpoint", occurrence=0)


class TestFailureInjector:
    def test_iteration_trigger_fires_once(self):
        inj = FailureInjector().kill_at_iteration(2, iteration=5)
        assert inj.due_at_iteration(4) == []
        assert inj.due_at_iteration(5) == [2]
        assert inj.due_at_iteration(6) == []
        assert inj.pending == 0

    def test_late_poll_still_fires(self):
        inj = FailureInjector().kill_at_iteration(1, iteration=3)
        assert inj.due_at_iteration(10) == [1]

    def test_phase_trigger(self):
        inj = FailureInjector().kill_at_phase(3, phase=7)
        assert inj.due_at_phase(6, 0.0) == []
        assert inj.due_at_phase(7, 0.0) == [3]

    def test_time_trigger(self):
        inj = FailureInjector().kill_at_time(2, time=1.5)
        assert inj.due_at_phase(1, 1.0) == []
        assert inj.due_at_phase(2, 2.0) == [2]

    def test_multiple_kills_same_trigger(self):
        inj = (
            FailureInjector()
            .kill_at_iteration(1, iteration=4)
            .kill_at_iteration(3, iteration=4)
        )
        assert sorted(inj.due_at_iteration(4)) == [1, 3]

    def test_place_zero_kill_rejected_at_scheduling(self):
        inj = FailureInjector()
        with pytest.raises(ValueError, match="immortal"):
            inj.kill_at_iteration(0, iteration=2)

    def test_duplicate_kill_of_same_place_rejected(self):
        inj = FailureInjector().kill_at_iteration(2, iteration=3)
        with pytest.raises(ValueError, match="duplicate"):
            inj.kill_at_phase(2, phase=9)
        with pytest.raises(ValueError, match="duplicate"):
            inj.kill_at_iteration(2, iteration=3)

    def test_duplicates_in_constructor_list_rejected(self):
        kills = [
            ScriptedKill(place_id=1, iteration=2),
            ScriptedKill(place_id=1, phase=5),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            FailureInjector(kills)

    def test_unfired_lists_pending_kills(self):
        inj = (
            FailureInjector()
            .kill_at_iteration(1, iteration=3)
            .kill_at_iteration(2, iteration=99)
        )
        inj.due_at_iteration(3)
        assert [k.place_id for k in inj.unfired()] == [2]
        assert inj.pending == 1


class TestContextTriggers:
    def test_fires_inside_matching_context(self):
        inj = FailureInjector().kill_during(2, "checkpoint")
        assert inj.due_at_phase(1, 0.0) == []  # not in a checkpoint
        inj.enter_context("checkpoint")
        assert inj.due_at_phase(2, 0.0) == [2]
        inj.exit_context("checkpoint")

    def test_occurrence_skips_earlier_contexts(self):
        inj = FailureInjector().kill_during(3, "checkpoint", occurrence=2)
        inj.enter_context("checkpoint")
        assert inj.due_at_phase(1, 0.0) == []  # first checkpoint: not yet
        inj.exit_context("checkpoint")
        assert inj.due_at_phase(2, 0.0) == []  # between checkpoints
        inj.enter_context("checkpoint")
        assert inj.due_at_phase(3, 0.0) == [3]  # second checkpoint
        inj.exit_context("checkpoint")

    def test_restore_context_independent_of_checkpoint(self):
        inj = FailureInjector().kill_during(1, "restore")
        inj.enter_context("checkpoint")
        assert inj.due_at_phase(1, 0.0) == []
        inj.exit_context("checkpoint")
        inj.enter_context("restore")
        assert inj.due_at_phase(2, 0.0) == [1]
        inj.exit_context("restore")

    def test_exit_without_enter_raises(self):
        inj = FailureInjector()
        with pytest.raises(RuntimeError, match="no context active"):
            inj.exit_context("checkpoint")

    def test_mismatched_exit_names_the_stack(self):
        inj = FailureInjector()
        inj.enter_context("checkpoint")
        inj.enter_context("restore")
        with pytest.raises(RuntimeError, match=r"innermost.*'restore'"):
            inj.exit_context("checkpoint")
        # The stack is untouched by the failed exit; unwinding in the
        # correct order still works.
        inj.exit_context("restore")
        inj.exit_context("checkpoint")
        with pytest.raises(RuntimeError, match="no context active"):
            inj.exit_context("checkpoint")

    def test_balanced_nesting_accepted(self):
        inj = FailureInjector()
        inj.enter_context("restore")
        inj.enter_context("checkpoint")
        inj.exit_context("checkpoint")
        inj.exit_context("restore")


class TestExponentialModel:
    def test_deterministic_given_seed(self):
        a = ExponentialFailureModel(mttf=10.0, seed=42).schedule([1, 2, 3], 100.0)
        b = ExponentialFailureModel(mttf=10.0, seed=42).schedule([1, 2, 3], 100.0)
        assert [(k.place_id, k.time) for k in a] == [(k.place_id, k.time) for k in b]

    def test_never_kills_place_zero(self):
        kills = ExponentialFailureModel(mttf=0.01, seed=1).schedule([0, 1, 2], 1e9)
        assert all(k.place_id != 0 for k in kills)

    def test_respects_horizon(self):
        kills = ExponentialFailureModel(mttf=50.0, seed=7).schedule([1, 2], 0.0)
        assert kills == []

    def test_no_duplicate_victims(self):
        kills = ExponentialFailureModel(mttf=0.1, seed=3).schedule(list(range(1, 9)), 1e9)
        victims = [k.place_id for k in kills]
        assert len(victims) == len(set(victims))

    def test_invalid_mttf(self):
        with pytest.raises(ValueError):
            ExponentialFailureModel(mttf=0.0)


class TestAdjacentPairModel:
    def test_pairs_die_at_the_same_instant(self):
        kills = AdjacentPairFailureModel(mttf=1.0, seed=5).schedule(
            list(range(8)), 1e9
        )
        assert kills and len(kills) % 2 == 0
        for a, b in zip(kills[::2], kills[1::2]):
            assert a.time == b.time
            assert abs(a.place_id - b.place_id) == 1

    def test_deterministic_and_no_duplicates(self):
        args = (list(range(10)), 1e9)
        a = AdjacentPairFailureModel(mttf=2.0, seed=9).schedule(*args)
        b = AdjacentPairFailureModel(mttf=2.0, seed=9).schedule(*args)
        assert [(k.place_id, k.time) for k in a] == [(k.place_id, k.time) for k in b]
        victims = [k.place_id for k in a]
        assert len(victims) == len(set(victims))
        assert 0 not in victims

    def test_respects_horizon(self):
        assert AdjacentPairFailureModel(mttf=50.0, seed=1).schedule([1, 2], 0.0) == []


class TestRackModel:
    def test_whole_rack_dies_together_sparing_place_zero(self):
        model = RackFailureModel(rack_size=3, mttf=1.0, seed=2)
        kills = model.schedule(list(range(9)), 1e9)
        assert 0 not in [k.place_id for k in kills]
        by_time = {}
        for k in kills:
            by_time.setdefault(k.time, []).append(k.place_id)
        for victims in by_time.values():
            racks = {pid // 3 for pid in victims}
            assert len(racks) == 1  # one burst = one rack

    def test_rack_grouping(self):
        model = RackFailureModel(rack_size=2, mttf=1.0)
        assert model.racks(range(6)) == [[1], [2, 3], [4, 5]]

    def test_deterministic(self):
        a = RackFailureModel(2, 1.0, seed=4).schedule(list(range(6)), 1e9)
        b = RackFailureModel(2, 1.0, seed=4).schedule(list(range(6)), 1e9)
        assert [(k.place_id, k.time) for k in a] == [(k.place_id, k.time) for k in b]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RackFailureModel(rack_size=0, mttf=1.0)
        with pytest.raises(ValueError):
            RackFailureModel(rack_size=2, mttf=0.0)
