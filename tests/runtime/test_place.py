"""Tests for Place and PlaceGroup semantics (identity vs index)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.place import Place, PlaceGroup


class TestPlace:
    def test_identity(self):
        assert Place(3) == Place(3)
        assert Place(3) != Place(4)
        assert hash(Place(3)) == hash(Place(3))

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Place(-1)

    def test_ordering(self):
        assert sorted([Place(2), Place(0), Place(1)]) == [Place(0), Place(1), Place(2)]


class TestPlaceGroup:
    def test_dense_construction(self):
        g = PlaceGroup.dense(4)
        assert g.size == 4
        assert g.ids == [0, 1, 2, 3]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            PlaceGroup.of_ids([1, 2, 1])

    def test_arbitrary_group(self):
        # Resilient GML's key enabler: groups need not be 0..n-1.
        g = PlaceGroup.of_ids([5, 2, 9])
        assert g.ids == [5, 2, 9]
        assert g[1] == Place(2)
        assert g.index_of(Place(9)) == 2
        assert g.index_of(Place(7)) == -1

    def test_contains(self):
        g = PlaceGroup.of_ids([1, 3])
        assert Place(3) in g
        assert Place(2) not in g
        assert g.contains_id(1)
        assert not g.contains_id(0)

    def test_next_place_wraps(self):
        g = PlaceGroup.of_ids([4, 7, 9])
        assert g.next_place(0) == Place(7)
        assert g.next_place(2) == Place(4)

    def test_filter_dead_shifts_indices(self):
        # Paper §IV-B1: ids stay, indices shift after filtering the dead.
        g = PlaceGroup.dense(5)
        survivors = g.filter_dead([2])
        assert survivors.ids == [0, 1, 3, 4]
        assert survivors.index_of(Place(3)) == 2  # was 3

    def test_replace_keeps_index(self):
        # Replace-redundant: the spare inherits the dead place's index.
        g = PlaceGroup.dense(4)
        g2 = g.replace(Place(2), Place(10))
        assert g2.ids == [0, 1, 10, 3]
        assert g2.index_of(Place(10)) == 2

    def test_replace_validates(self):
        g = PlaceGroup.dense(3)
        with pytest.raises(ValueError):
            g.replace(Place(9), Place(10))
        with pytest.raises(ValueError):
            g.replace(Place(1), Place(2))

    def test_extend_and_remove(self):
        g = PlaceGroup.dense(2).extend([Place(7)])
        assert g.ids == [0, 1, 7]
        assert g.remove(Place(1)).ids == [0, 7]

    def test_index_out_of_range(self):
        g = PlaceGroup.dense(2)
        with pytest.raises(IndexError):
            g[2]
        with pytest.raises(IndexError):
            g.next_place(5)

    def test_equality_and_hash(self):
        assert PlaceGroup.dense(3) == PlaceGroup.of_ids([0, 1, 2])
        assert PlaceGroup.of_ids([1, 0]) != PlaceGroup.of_ids([0, 1])
        assert hash(PlaceGroup.dense(3)) == hash(PlaceGroup.of_ids([0, 1, 2]))


@given(
    ids=st.lists(st.integers(0, 100), min_size=1, max_size=30, unique=True),
    dead=st.sets(st.integers(0, 100), max_size=10),
)
def test_filter_dead_properties(ids, dead):
    """Survivor groups preserve order and drop exactly the dead places."""
    g = PlaceGroup.of_ids(ids)
    survivors = g.filter_dead(sorted(dead))
    expected = [i for i in ids if i not in dead]
    assert survivors.ids == expected
    # Index shift: each survivor's new index <= old index.
    for place_id in expected:
        old = g.index_of(Place(place_id))
        new = survivors.index_of(Place(place_id))
        assert new <= old
