"""Place pools and leases — shared-cluster ownership of places.

The paper's dynamic place groups let one resilient job shrink and regrow
inside a larger world.  A :class:`PlacePool` generalizes that world into a
shared substrate for *many* jobs: it owns every place the runtime created,
tracks which places are free, which are leased to a tenant, and which sit
in the spare reserve, and it is the single place where dead places are
pruned from that bookkeeping (O(1) per kill — no rescans).

A :class:`PlaceLease` is one tenant's slice of the pool: an ordered set of
member places carved at admission, the first of which acts as the job's
*driver* (the per-tenant stand-in for the immortal place zero).  Executors
claim replacement places through their lease, never from the runtime
directly, which is what confines a tenant's failure blast radius: the
lease can only hand out places the pool's economics entitle it to.

Spare economics (ReStore-style shared recovery capacity):

* ``dedicated`` — spares are split up-front; each lease may only consume
  the reserve places assigned to it at carve time.
* ``pooled`` — all leases draw from one shared reserve, first-come
  first-served; the reserve is sized for the *expected* concurrent
  failures, not the worst case per job.
* ``borrow`` — pooled, and when the reserve runs dry a lease may borrow
  an idle (free, unleased) place instead of failing over to shrink.

Lease lifecycle::

    carve -> ACTIVE --- claim_spare()/adopt() grows members
                    |-- members die (pool prunes, lease keeps ever_ids)
    release -> RELEASED  (live members return to free; unclaimed
                          dedicated spares return to the reserve)
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Set

from repro.runtime.place import Place, PlaceGroup
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runtime import Runtime

#: Spare-economics modes (see module docstring).
DEDICATED = "dedicated"
POOLED = "pooled"
BORROW = "borrow"
ECONOMICS_MODES = (DEDICATED, POOLED, BORROW)

#: Lease states.
ACTIVE = "active"
RELEASED = "released"


class PlaceLease:
    """One tenant's slice of a :class:`PlacePool`.

    The first member is the lease *driver*: the job-local coordinator that
    plays the role place zero plays for a single-job runtime (it hosts the
    finish joins and heartbeat sink while the lease is the active job
    context).  It is never handed out as a spare and correlated failure
    events must not target it — per-tenant coordinator immortality, the
    multi-tenant analogue of Resilient X10's immortal place zero.
    """

    def __init__(
        self,
        pool: "PlacePool",
        name: str,
        members: Sequence[Place],
        economics: str = POOLED,
        dedicated_spares: Sequence[Place] = (),
    ):
        require(len(members) > 0, "a lease needs at least one member")
        require(
            economics in ECONOMICS_MODES,
            f"economics must be one of {ECONOMICS_MODES}, got {economics!r}",
        )
        self.pool = pool
        self.name = name
        self.economics = economics
        self.state = ACTIVE
        self.members: List[Place] = list(members)
        self._member_ids: Set[int] = {p.id for p in self.members}
        #: Every id that was ever a member (incl. claimed spares and dead
        #: members) — the blast-radius boundary for cross-tenant checks.
        self.ever_ids: Set[int] = set(self._member_ids)
        self.driver: Place = self.members[0]
        self._dedicated: Deque[Place] = deque(dedicated_spares)
        self._dedicated_ids: Set[int] = {p.id for p in self._dedicated}
        self._dedicated_live = len(self._dedicated)
        #: Reserve places this lease holds a loan on (dedicated spares are
        #: loaned at carve time); settled when the lease is released.
        self._reserve_loans = len(self._dedicated)
        self.spares_claimed = 0
        self.borrows = 0

    # -- group views -------------------------------------------------------

    def group(self) -> PlaceGroup:
        """The current member places as a group (carve order preserved)."""
        return PlaceGroup(self.members)

    def live_group(self) -> PlaceGroup:
        """Surviving members, order preserved, indices shifted."""
        return self.pool.runtime.live_group(self.group())

    @property
    def member_ids(self) -> Set[int]:
        """Ids of current members (read-only view)."""
        return set(self._member_ids)

    def owns(self, place_id: int) -> bool:
        """True if *place_id* is currently a member of this lease."""
        return place_id in self._member_ids

    # -- spare economics ---------------------------------------------------

    def claim_spare(self) -> Optional[Place]:
        """Take one replacement place under this lease's economics.

        Returns ``None`` when the lease's entitlement is exhausted — the
        executor then falls back to shrinking, exactly as a single-job
        runtime does when ``claim_spare`` returns ``None``.
        """
        require(self.state == ACTIVE, f"lease {self.name!r} is released")
        place: Optional[Place] = None
        if self.economics == DEDICATED:
            place = self._pop_dedicated()
        else:
            place = self.pool.claim_reserve()
            if place is not None:
                self._reserve_loans += 1
            elif self.economics == BORROW:
                place = self.pool.borrow_idle()
                if place is not None:
                    self.borrows += 1
        if place is not None:
            self.spares_claimed += 1
            self._adopt(place)
        return place

    def _pop_dedicated(self) -> Optional[Place]:
        while self._dedicated:
            place = self._dedicated.popleft()
            if place.id in self._dedicated_ids:
                self._dedicated_ids.discard(place.id)
                self._dedicated_live -= 1
                return place
        return None

    @property
    def spares_remaining(self) -> int:
        """How many replacement places this lease could still claim (O(1))."""
        if self.economics == DEDICATED:
            return self._dedicated_live
        remaining = self.pool.reserve_remaining
        if self.economics == BORROW:
            remaining += self.pool.lendable_free
        return remaining

    def adopt(self, place: Place) -> Place:
        """Register an elastically created place as a lease member."""
        require(self.state == ACTIVE, f"lease {self.name!r} is released")
        self._adopt(place)
        return place

    def add_place(self) -> Place:
        """Elastically create a brand-new place owned by this lease."""
        return self.adopt(self.pool.runtime.add_place())

    def _adopt(self, place: Place) -> None:
        require(place.id not in self._member_ids, f"place {place.id} already a member")
        self.members.append(place)
        self._member_ids.add(place.id)
        self.ever_ids.add(place.id)
        self.pool._lease_of[place.id] = self

    # -- lifecycle ---------------------------------------------------------

    def release(self) -> None:
        """Return this lease's places to the pool (idempotent)."""
        self.pool.release(self)

    def _on_member_killed(self, place_id: int) -> None:
        if place_id in self._dedicated_ids:
            self._dedicated_ids.discard(place_id)
            self._dedicated_live -= 1

    def __repr__(self) -> str:
        return (
            f"PlaceLease({self.name!r}, driver={self.driver.id}, "
            f"members={sorted(self._member_ids)}, economics={self.economics}, "
            f"state={self.state})"
        )


class PlacePool:
    """Owner of every place in a runtime: free set, leases, spare reserve.

    The pool is pure bookkeeping — it never advances virtual time.  A
    single-job runtime uses a *degenerate* pool: the whole world sits in
    the free set until :attr:`Runtime.default_lease` claims it, and the
    reserve is exactly the runtime's ``spares=...`` places, so the classic
    ``runtime.claim_spare()`` path is byte-for-byte the old behavior.
    """

    def __init__(
        self,
        runtime: "Runtime",
        active: Sequence[Place],
        spares: Sequence[Place],
    ):
        self.runtime = runtime
        #: Unleased active places, in id order.
        self._free: Deque[Place] = deque(active)
        self._free_ids: Set[int] = {p.id for p in self._free}
        self._free_live = len(self._free)
        #: The spare reserve (claim order = creation order).
        self._reserve: Deque[Place] = deque(spares)
        self._reserve_ids: Set[int] = {p.id for p in self._reserve}
        self._reserve_live = len(self._reserve)
        self.reserve_size = len(self._reserve)
        self._lease_of: Dict[int, PlaceLease] = {}
        self._leases: List[PlaceLease] = []
        self._next_lease = 0
        #: Where each dead place sat when it was killed ("reserve", "free",
        #: "dedicated" or "leased") — repair re-files it accordingly.
        self._dead_origin: Dict[int, str] = {}
        #: Peak number of reserve places claimed at once (occupancy metric).
        self.reserve_claimed = 0
        self.reserve_peak_claimed = 0

    # -- O(1) live accounting ---------------------------------------------

    def on_place_killed(self, place_id: int) -> None:
        """Prune a dead place from pool bookkeeping (called by ``kill``).

        Constant time: membership sets and live counters are updated here
        so ``spares_remaining`` and admission checks never rescan deques.
        """
        if place_id in self._reserve_ids:
            self._reserve_ids.discard(place_id)
            self._reserve_live -= 1
            self._dead_origin[place_id] = "reserve"
        elif place_id in self._free_ids:
            self._free_ids.discard(place_id)
            self._free_live -= 1
            self._dead_origin[place_id] = "free"
        else:
            lease = self._lease_of.get(place_id)
            if lease is not None and place_id in lease._dedicated_ids:
                self._dead_origin[place_id] = "dedicated"
            else:
                self._dead_origin[place_id] = "leased"
            if lease is not None:
                lease._on_member_killed(place_id)

    def on_place_revived(self, place: Place) -> None:
        """Re-file a repaired place (called by :meth:`Runtime.revive`).

        The place returns *where it came from*: reserve places rejoin the
        spare reserve, free places the free set.  A place that died inside
        a lease rejoins the free set once that lease is gone (release
        already dropped its mapping); while the lease is still active a
        regular member stays a member (``release`` recycles it normally)
        and a dedicated spare rejoins the lease's private spare queue.
        Stale deque entries left by the kill are harmless — every pop
        revalidates against the id sets.
        """
        origin = self._dead_origin.pop(place.id, None)
        lease = self._lease_of.get(place.id)
        if origin == "reserve":
            self._reserve.append(place)
            self._reserve_ids.add(place.id)
            self._reserve_live += 1
        elif origin == "dedicated" and lease is not None and lease.state == ACTIVE:
            lease._dedicated.append(place)
            lease._dedicated_ids.add(place.id)
            lease._dedicated_live += 1
        elif lease is not None and lease.state == ACTIVE:
            # Still a live member of an active lease: nothing to re-file.
            pass
        else:
            self._lease_of.pop(place.id, None)
            self._free.append(place)
            self._free_ids.add(place.id)
            self._free_live += 1

    @property
    def reserve_remaining(self) -> int:
        """Live, unclaimed reserve places (O(1))."""
        return self._reserve_live

    @property
    def free_live(self) -> int:
        """Live, unleased active places (O(1))."""
        return self._free_live

    def lease_of(self, place_id: int) -> Optional[PlaceLease]:
        """The lease currently owning *place_id* (None if free/reserve)."""
        return self._lease_of.get(place_id)

    @property
    def leases(self) -> List[PlaceLease]:
        """All leases ever carved (released ones included)."""
        return list(self._leases)

    # -- reserve -----------------------------------------------------------

    def claim_reserve(self) -> Optional[Place]:
        """Pop one live place from the shared reserve (None if dry)."""
        while self._reserve:
            place = self._reserve.popleft()
            if place.id in self._reserve_ids:
                self._reserve_ids.discard(place.id)
                self._reserve_live -= 1
                self.reserve_claimed += 1
                self.reserve_peak_claimed = max(
                    self.reserve_peak_claimed, self.reserve_claimed
                )
                return place
        return None

    def borrow_idle(self) -> Optional[Place]:
        """Pop one live *free* place (the borrow-from-idle economics).

        Place zero is never lent: in a shared pool it is the service
        coordinator, as immortal as X10's place zero.
        """
        skipped: Optional[Place] = None
        result: Optional[Place] = None
        while self._free:
            place = self._free.popleft()
            if place.id not in self._free_ids:
                continue
            if place.id == 0:
                skipped = place
                continue
            self._free_ids.discard(place.id)
            self._free_live -= 1
            result = place
            break
        if skipped is not None:
            self._free.appendleft(skipped)
        return result

    @property
    def lendable_free(self) -> int:
        """Live free places a ``borrow`` lease could take (place 0 excluded)."""
        return self._free_live - (1 if 0 in self._free_ids else 0)

    # -- leases ------------------------------------------------------------

    def lease(
        self,
        size: int,
        name: Optional[str] = None,
        economics: str = POOLED,
        dedicated_spares: int = 0,
        include_place_zero: bool = False,
    ) -> PlaceLease:
        """Carve *size* live free places into a new lease.

        Place zero is skipped unless *include_place_zero* — in a shared
        pool it stays the service coordinator, leased to no tenant.  Raises
        :class:`ValueError` when the free set (or, for ``dedicated``
        economics, the reserve) cannot cover the request; admission
        controllers should check :attr:`free_live` / :attr:`reserve_remaining`
        first.
        """
        require(size > 0, "lease size must be positive")
        require(
            economics in ECONOMICS_MODES,
            f"economics must be one of {ECONOMICS_MODES}, got {economics!r}",
        )
        require(dedicated_spares >= 0, "dedicated_spares must be >= 0")
        rt = self.runtime
        members: List[Place] = []
        skipped: List[Place] = []
        while self._free and len(members) < size:
            place = self._free.popleft()
            if place.id not in self._free_ids:
                continue  # died while free; already pruned from the counts
            if place.id == 0 and not include_place_zero:
                skipped.append(place)
                continue
            self._free_ids.discard(place.id)
            self._free_live -= 1
            members.append(place)
        for place in skipped:
            self._free.appendleft(place)
        if len(members) < size:
            for place in members:  # undo the partial carve
                self._free.appendleft(place)
                self._free_ids.add(place.id)
                self._free_live += 1
            raise ValueError(
                f"cannot lease {size} places: only {self.free_live} free "
                f"(excluding place zero)"
            )
        dedicated: List[Place] = []
        if economics == DEDICATED and dedicated_spares > 0:
            for _ in range(dedicated_spares):
                spare = self.claim_reserve()
                if spare is None:
                    for place in dedicated:  # undo: spares back to reserve
                        self._reserve.appendleft(place)
                        self._reserve_ids.add(place.id)
                        self._reserve_live += 1
                        self.reserve_claimed -= 1
                    for place in members:
                        self._free.appendleft(place)
                        self._free_ids.add(place.id)
                        self._free_live += 1
                    raise ValueError(
                        f"cannot dedicate {dedicated_spares} spares: reserve dry"
                    )
                dedicated.append(spare)
        if name is None:
            name = f"lease-{self._next_lease}"
        self._next_lease += 1
        lease = PlaceLease(
            self, name, members, economics=economics, dedicated_spares=dedicated
        )
        for place in members:
            self._lease_of[place.id] = lease
        for place in dedicated:
            self._lease_of[place.id] = lease
        self._leases.append(lease)
        rt.trace.emit(
            "lease", rt.clock.global_time(), name=name, members=[p.id for p in members]
        )
        return lease

    def release(self, lease: PlaceLease) -> None:
        """Return a lease's live places to the free set (idempotent).

        Unclaimed live dedicated spares go back to the shared reserve —
        released capacity is recycled, not stranded.
        """
        if lease.state == RELEASED:
            return
        lease.state = RELEASED
        rt = self.runtime
        for place in lease.members:
            self._lease_of.pop(place.id, None)
            if rt.is_alive(place.id):
                self._free.append(place)
                self._free_ids.add(place.id)
                self._free_live += 1
        while lease._dedicated:
            place = lease._dedicated.popleft()
            self._lease_of.pop(place.id, None)
            if place.id in lease._dedicated_ids:
                lease._dedicated_ids.discard(place.id)
                lease._dedicated_live -= 1
                self._reserve.append(place)
                self._reserve_ids.add(place.id)
                self._reserve_live += 1
        # Settle every reserve loan the lease held: consumed spares land
        # in the free set (the reserve shrank for good), but the *claim*
        # is over — ``reserve_claimed`` stays a concurrent-loan gauge.
        self.reserve_claimed -= lease._reserve_loans
        lease._reserve_loans = 0
        rt.trace.emit("release", rt.clock.global_time(), name=lease.name)

    def __repr__(self) -> str:
        return (
            f"PlacePool(free={self.free_live}, reserve={self.reserve_remaining}"
            f"/{self.reserve_size}, leases={len(self._leases)})"
        )
