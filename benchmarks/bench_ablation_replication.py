"""Ablation — snapshot replication level vs checkpoint cost & survivability.

The paper's double in-memory store keeps exactly one backup copy (on the
next place), trading memory and checkpoint time for tolerance of any
single failure.  This ablation generalizes the store to k backups and
measures both sides of the trade on the LinReg workload at 24 places:

* checkpoint time as a function of k (k transfers per place per save);
* survivability: the largest burst of *consecutive* place failures a
  committed checkpoint survives (analytically k; verified by killing
  bursts and attempting a restore).
"""

import numpy as np

from _common import emit, results_path
from repro.bench import figures
from repro.bench.calibration import regression_bench_workload, regression_cost
from repro.apps.resilient import LinRegResilient
from repro.resilience.executor import IterativeExecutor
from repro.runtime import DataLossError, Runtime

PLACES = 24
KS = [0, 1, 2, 3]


def checkpoint_time_for(k: int) -> float:
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    app = LinRegResilient(rt, regression_bench_workload(10))
    for obj in (app.X, app.y, app.w, app.r, app.p):
        obj.snapshot_backups = k
    report = IterativeExecutor(rt, app, checkpoint_interval=5).run()
    return report.checkpoint_durations[0]  # the full (first) checkpoint


def survives_burst(k: int, burst: int) -> bool:
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    app = LinRegResilient(rt, regression_bench_workload(6))
    for obj in (app.X, app.y, app.w, app.r, app.p):
        obj.snapshot_backups = k
    store_holder = IterativeExecutor(rt, app, checkpoint_interval=3)
    for victim in range(3, 3 + burst):
        rt.injector.kill_at_iteration(victim, iteration=4)
    try:
        store_holder.run()
        return True
    except DataLossError:
        return False


def run_ablation():
    ckpt = {k: checkpoint_time_for(k) for k in KS}
    tolerance = {}
    for k in KS:
        survived = 0
        for burst in range(1, 5):
            if survives_burst(k, burst):
                survived = burst
            else:
                break
        tolerance[k] = survived
    return ckpt, tolerance


def test_ablation_replication_level(benchmark):
    ckpt, tolerance = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = ["backups  checkpoint(s)  survives consecutive failures"]
    for k in KS:
        lines.append(f"{k:7d}  {ckpt[k]:13.3f}  {tolerance[k]}")
    csv = figures.write_csv(
        results_path("ablation_replication.csv"),
        KS,
        {"checkpoint_s": [ckpt[k] for k in KS], "burst_tolerance": [float(tolerance[k]) for k in KS]},
    )
    lines.append(f"series written to {csv}")
    emit("Ablation — snapshot replication level (paper's store is k=1)", "\n".join(lines))

    # Checkpoint cost grows with k; each extra backup buys one more
    # consecutive-failure of burst tolerance.
    assert ckpt[0] < ckpt[1] < ckpt[2] < ckpt[3]
    assert tolerance[0] == 0
    for k in (1, 2, 3):
        assert tolerance[k] == k
