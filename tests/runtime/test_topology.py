"""Tests for the node-topology (NIC contention) transfer model."""

import pytest

from repro.runtime import CostModel, Runtime


def topo_cost(places_per_node=2, shm=0.1, wire=1.0, latency=0.0):
    return CostModel(
        byte_time=wire, shm_byte_time=shm, latency=latency, places_per_node=places_per_node
    )


class TestNodeMapping:
    def test_block_placement(self):
        c = topo_cost(places_per_node=4)
        assert [c.node_of(i) for i in range(9)] == [0, 0, 0, 0, 1, 1, 1, 1, 2]

    def test_disabled_every_place_its_own_node(self):
        c = CostModel()
        assert c.node_of(7) == 7

    def test_shm_message(self):
        c = topo_cost(shm=0.5, latency=1.0)
        assert c.shm_message(4) == pytest.approx(3.0)

    def test_validation(self):
        from repro.runtime.cost import validate_cost_model

        assert validate_cost_model(topo_cost()) is None


class TestTransfer:
    def test_intra_node_uses_shm_rate(self):
        rt = Runtime(4, cost=topo_cost(places_per_node=2, shm=0.1, wire=1.0))
        done = rt.transfer(0, 1, nbytes=10, t_request=0.0)  # same node
        assert done == pytest.approx(1.0)

    def test_cross_node_uses_wire_rate(self):
        rt = Runtime(4, cost=topo_cost(places_per_node=2, shm=0.1, wire=1.0))
        done = rt.transfer(1, 2, nbytes=10, t_request=0.0)  # node 0 -> node 1
        assert done == pytest.approx(10.0)

    def test_nic_contention_serializes_same_node_senders(self):
        # Places 0 and 1 share node 0's NIC: their cross-node sends queue.
        rt = Runtime(6, cost=topo_cost(places_per_node=2, wire=1.0))
        first = rt.transfer(0, 2, nbytes=5, t_request=0.0)
        second = rt.transfer(1, 4, nbytes=5, t_request=0.0)
        assert first == pytest.approx(5.0)
        assert second == pytest.approx(10.0)  # queued behind the first

    def test_full_duplex_rx_and_tx_independent(self):
        # Node 0 sending and node 0 receiving do not block each other.
        rt = Runtime(6, cost=topo_cost(places_per_node=2, wire=1.0))
        send = rt.transfer(0, 2, nbytes=5, t_request=0.0)  # node0 tx
        recv = rt.transfer(4, 1, nbytes=5, t_request=0.0)  # node0 rx
        assert send == pytest.approx(5.0)
        assert recv == pytest.approx(5.0)

    def test_different_nodes_transfer_in_parallel(self):
        rt = Runtime(8, cost=topo_cost(places_per_node=2, wire=1.0))
        a = rt.transfer(0, 2, nbytes=5, t_request=0.0)  # node0 -> node1
        b = rt.transfer(4, 6, nbytes=5, t_request=0.0)  # node2 -> node3
        assert a == pytest.approx(5.0)
        assert b == pytest.approx(5.0)

    def test_no_topology_per_place_server(self):
        rt = Runtime(4, cost=CostModel(byte_time=1.0))
        a = rt.transfer(0, 2, nbytes=5, t_request=0.0)
        b = rt.transfer(1, 2, nbytes=5, t_request=0.0)  # same destination
        assert a == pytest.approx(5.0)
        assert b == pytest.approx(10.0)

    def test_intra_node_skips_nic_queue(self):
        rt = Runtime(4, cost=topo_cost(places_per_node=2, shm=0.1, wire=1.0))
        rt.transfer(0, 2, nbytes=100, t_request=0.0)  # busy NIC until t=100
        # An intra-node copy on node 0 is unaffected by the NIC backlog.
        done = rt.transfer(0, 1, nbytes=10, t_request=0.0)
        assert done == pytest.approx(1.0)


class TestEndToEnd:
    def test_snapshot_cheaper_when_colocated(self):
        """A 2-place world on one node backs up via shared memory."""
        from repro.matrix.dupvector import DupVector

        times = {}
        for ppn in (0, 2):
            rt = Runtime(2, cost=topo_cost(places_per_node=ppn, shm=0.01, wire=1.0))
            v = DupVector.make(rt, 64).init(1.0)
            t0 = rt.now()
            v.make_snapshot()
            times[ppn] = rt.now() - t0
        assert times[2] < times[0]
