"""Figure 6 — Logistic Regression: total runtime with a single failure
under the three restoration modes (plus the non-resilient baseline).

Same protocol as Figure 5.
"""

from _restore_common import assert_shapes, run_and_report


def test_fig6_logreg_restore_modes(benchmark):
    out = benchmark.pedantic(
        lambda: run_and_report("logreg", "Figure 6"), rounds=1, iterations=1
    )
    assert_shapes(out)
