"""Mutation-version tokens and copy-on-write payload freezing.

Delta checkpointing needs a cheap answer to "has this partition changed
since the last committed snapshot?".  Every mutating method of the
single-place numeric classes stamps its object with a fresh token from
:func:`next_version`; a snapshot records the token it saw at save time and
a later save compares tokens instead of bytes.

Tokens come from one *global* monotonic counter, never per-object counters:
a freshly constructed object (e.g. after ``remake()`` + restore) can then
never collide with a token recorded from a previous incarnation, so token
equality is a sound "unchanged" test.  Tokens are compared for equality
only — their ordering carries no meaning across objects.

:func:`freeze_payload` is the copy-on-write half: snapshot payload arrays
are marked read-only (``ndarray.setflags(write=False)``), so the snapshot
may share arrays with the live object.  The live classes' ``touch()``
methods replace a frozen backing array with a private writable copy before
mutating — the deep copy the eager save used to pay up front is deferred
to the first mutation, and skipped entirely for partitions that stay clean.
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

_version_counter = itertools.count(1)


def next_version() -> int:
    """A globally unique, monotonically increasing mutation token."""
    return next(_version_counter)


def ensure_version_floor(floor: int) -> None:
    """Advance the global counter to at least *floor*.

    A simulator image captured in one process may be resumed in another
    whose counter lags it (a ``spawn`` pool worker starts from 1).  A fresh
    token colliding with a token recorded inside the image would break the
    "equal tokens imply equal bytes" contract, so every resume first lifts
    the counter past the highest token the image could contain.  Burns one
    token to read the current position — uniqueness is unaffected.
    """
    global _version_counter
    current = next(_version_counter)
    _version_counter = itertools.count(max(current, floor))


def version_token(payload: Any) -> Any:
    """The current mutation token of *payload*, or ``None`` if untracked.

    Single-place numerics expose a ``version`` attribute; containers
    (``BlockSet``) expose a ``version_token()`` method; snapshot payload
    dicts tokenize per entry.  Anything else is untracked and always
    treated as dirty.
    """
    token = getattr(payload, "version", None)
    if token is not None:
        return token
    fn = getattr(payload, "version_token", None)
    if callable(fn):
        return fn()
    if isinstance(payload, dict):
        return tuple((key, version_token(value)) for key, value in sorted(payload.items()))
    return None


def freeze_payload(payload: Any) -> None:
    """Mark every backing array of a snapshot payload read-only (CoW)."""
    if isinstance(payload, np.ndarray):
        payload.setflags(write=False)
        return
    if isinstance(payload, dict):
        for value in payload.values():
            freeze_payload(value)
        return
    if isinstance(payload, (list, tuple, set, frozenset)):
        for value in payload:
            freeze_payload(value)
        return
    arrays = getattr(payload, "payload_arrays", None)
    if callable(arrays):
        for arr in arrays():
            if isinstance(arr, np.ndarray):
                arr.setflags(write=False)


def payload_frozen(payload: Any) -> bool:
    """True when every backing array of *payload* is read-only.

    Scalars and strings are immutable, hence trivially frozen.  A payload
    with any writable array is not frozen — in particular the corrupted
    copies :func:`repro.util.checksum.corrupt_payload` produces, whose
    arrays are fresh writable copies; the checksum memo keys off this to
    never trust a cached hash for a copy that could have changed.
    """
    if isinstance(payload, np.ndarray):
        return not payload.flags.writeable
    if isinstance(payload, dict):
        return all(payload_frozen(value) for value in payload.values())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return all(payload_frozen(value) for value in payload)
    arrays = getattr(payload, "payload_arrays", None)
    if callable(arrays):
        return all(
            not arr.flags.writeable
            for arr in arrays()
            if isinstance(arr, np.ndarray)
        )
    return True
