"""Seeded chaos campaigns: hundreds of randomized failure schedules.

The acceptance bar from the tiered-store PR: >= 200 seeded schedules per
app across two apps with zero recovery-invariant violations.  Each
schedule randomizes victims, triggers (iteration / phase / mid-checkpoint
/ mid-restore / correlated bursts), restore mode and checkpoint mode; the
campaign runner asserts, per schedule, that

* a converged run matches the failure-free result,
* every restore rolled back to a committed checkpoint iteration,
* the store holds no half-committed snapshot afterwards,
* no surviving replica co-resides with its primary, and
* ``DataLossError`` never escapes a store with the stable-storage tier.
"""

import numpy as np
import pytest

from repro.chaos import (
    CampaignConfig,
    dedupe_schedule,
    make_schedule,
    run_campaign,
)
from repro.runtime.failure import ScriptedKill

SCHEDULES = 200


def _assert_clean(result):
    assert result.violations == [], "\n".join(
        f"#{o.index} [{o.kills}] {o.detail}" for o in result.violations
    )
    assert len(result.outcomes) == SCHEDULES
    # The campaign must actually exercise recovery, not just sail through.
    counts = result.counts()
    assert counts.get("recovered", 0) > 0


@pytest.mark.parametrize("app", ["linreg", "pagerank"])
def test_campaign_k2_spread_in_memory(app):
    result = run_campaign(
        CampaignConfig(
            app=app,
            schedules=SCHEDULES,
            seed=11,
            replicas=2,
            placement="spread",
        )
    )
    _assert_clean(result)


@pytest.mark.parametrize("app", ["linreg", "pagerank"])
def test_campaign_stable_fallback_never_loses_data(app):
    # With the disk tier on, *accepted* data loss is off the table: any
    # DataLossError other than "no recovery point" is an invariant
    # violation, so a clean campaign means the ladder always bottomed out
    # on stable storage.
    result = run_campaign(
        CampaignConfig(
            app=app,
            schedules=SCHEDULES,
            seed=23,
            replicas=1,
            placement="ring",
            stable_fallback=True,
        )
    )
    _assert_clean(result)
    assert result.counts().get("data_loss", 0) == 0


@pytest.mark.parametrize("app", ["linreg", "pagerank"])
def test_campaign_transient_matrix(app):
    # The full imperfect-world matrix: 20% message loss, duplicates,
    # an 8x straggler, post-commit bit-rot, healing partitions — and a
    # real failure detector instead of the oracle.  Crash kills still
    # fire on top.  The bar is unchanged: converged runs match the
    # failure-free result, corrupt copies are quarantined (never
    # silently restored), and the straggler alone triggers nothing.
    result = run_campaign(
        CampaignConfig(
            app=app,
            schedules=SCHEDULES,
            seed=31,
            replicas=2,
            placement="spread",
            stable_fallback=True,
            drop_rate=0.2,
            dup_rate=0.05,
            straggler_max=8.0,
            corrupt_rate=0.02,
            partition_rate=0.3,
            detect_timeout=1.0,
        )
    )
    _assert_clean(result)


def test_transient_campaign_statuses_match_crash_only_baseline():
    # Transient faults add noise, not new outcomes: with retransmission,
    # at-most-once delivery and quarantine fall-through, exactly the
    # same schedules succeed or lose data as in a crash-only campaign.
    base_cfg = CampaignConfig(
        app="linreg", schedules=40, seed=19, replicas=2, placement="spread"
    )
    noisy_cfg = CampaignConfig(
        app="linreg",
        schedules=40,
        seed=19,
        replicas=2,
        placement="spread",
        drop_rate=0.15,
        straggler_max=8.0,
        detect_timeout=1.0,
    )
    base = run_campaign(base_cfg)
    noisy = run_campaign(noisy_cfg)
    assert noisy.violations == []
    base_lost = [o.index for o in base.outcomes if "loss" in o.status]
    noisy_lost = [o.index for o in noisy.outcomes if "loss" in o.status]
    assert noisy_lost == base_lost


def test_campaign_with_spares_exercises_replacement():
    result = run_campaign(
        CampaignConfig(
            app="linreg",
            schedules=60,
            seed=37,
            replicas=2,
            placement="spread",
            spares=2,
        )
    )
    assert result.violations == []


def test_campaign_is_deterministic_per_seed():
    cfg = CampaignConfig(app="linreg", schedules=25, seed=5, replicas=2,
                         placement="spread")
    a, b = run_campaign(cfg), run_campaign(cfg)
    assert [(o.status, o.kills) for o in a.outcomes] == [
        (o.status, o.kills) for o in b.outcomes
    ]


def test_summary_mentions_every_status():
    result = run_campaign(
        CampaignConfig(app="linreg", schedules=30, seed=2, replicas=2,
                       placement="spread")
    )
    text = result.summary()
    assert "schedules=30" in text
    for status in result.counts():
        assert status in text


class TestDedupeSchedule:
    # Regression surfaced by simultaneous-kill support: the "double" kind
    # draws its two victims with replacement, so a raw schedule can name
    # the same place twice — the injector rejects a second kill for a
    # condemned victim, so the schedule must be deduplicated first.

    def test_same_instant_duplicate_dropped(self):
        kills = [
            ScriptedKill(place_id=3, iteration=4),
            ScriptedKill(place_id=3, iteration=4),
        ]
        assert dedupe_schedule(kills) == kills[:1]

    def test_first_kill_per_place_wins(self):
        kills = [
            ScriptedKill(place_id=2, iteration=1),
            ScriptedKill(place_id=4, during="checkpoint", occurrence=1),
            ScriptedKill(place_id=2, phase=17),
            ScriptedKill(place_id=4, iteration=8),
        ]
        assert dedupe_schedule(kills) == kills[:2]

    def test_distinct_victims_untouched(self):
        kills = [
            ScriptedKill(place_id=1, iteration=2),
            ScriptedKill(place_id=2, iteration=2),
            ScriptedKill(place_id=3, during="restore"),
        ]
        assert dedupe_schedule(kills) == kills

    def test_make_schedule_never_emits_duplicate_victims(self):
        # Over many seeds (the "double" kind fires often enough to
        # collide), every drawn schedule must be duplicate-free and never
        # touch place zero.
        for seed in range(300):
            rng = np.random.default_rng(seed)
            kills = make_schedule(rng, places=6, iterations=10)
            victims = [k.place_id for k in kills]
            assert len(victims) == len(set(victims)), f"seed {seed}: {victims}"
            assert 0 not in victims


def test_campaign_cg_reconstruct():
    # The checkpoint-free ladder under randomized bursts (single kills,
    # adjacent pairs, racks, kills inside checkpoints / restores /
    # reconstructions): covered bursts recover with zero rolled-back
    # iterations, anything beyond the redundancy falls back to rollback,
    # and classic invariants hold throughout.
    result = run_campaign(
        CampaignConfig(
            app="cg",
            schedules=60,
            seed=7,
            replicas=2,
            placement="spread",
            spares=6,
            recovery="reconstruct",
        )
    )
    assert result.violations == [], result.summary()
    assert result.counts().get("recovered", 0) > 0
    assert "recovery=reconstruct" in result.summary()
