"""End-to-end recovery under imperfect failure detection.

Without a detector the executor learns of failures from exceptions that
carry ground truth (an oracle).  With a :class:`PhiAccrualDetector`
attached, every suspicion must climb the SUSPECTED → CONFIRMED_DEAD
ladder in virtual time, and three imperfections become possible:

* **detection latency** — real deaths are confirmed only after the
  accrual window, and the wait is charged to the run;
* **false negatives avoided for stragglers** — a slow-but-alive place
  must never trigger a spurious restore at the default timeout;
* **false positives survive** — a live place fenced by the fail-safe is
  evicted, and the run must still converge to the failure-free answer.

Transient network faults (drops, healing partitions) ride the same
ladder: suspects cleared by a fresh heartbeat roll back or retry without
any membership change.
"""

import numpy as np
import pytest

from repro.apps.data import PageRankWorkload, RegressionWorkload
from repro.apps.nonresilient import LinRegNonResilient, PageRankNonResilient
from repro.apps.resilient import LinRegResilient, PageRankResilient
from repro.resilience.executor import IterativeExecutor
from repro.resilience.placement import SpreadPlacement
from repro.runtime import CostModel, Runtime
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.failure import LinkPartition, TransientFaultModel

PLACES = 6
ITER = 12
REG_WL = RegressionWorkload(
    features=8, examples_per_place=32, iterations=ITER, blocks_per_place=2
)
PR_WL = PageRankWorkload(
    nodes_per_place=24, out_degree=4, iterations=ITER, blocks_per_place=2
)

# Non-zero latency so virtual time moves: heartbeat gaps, retry backoff
# and partition windows are all meaningless on a free network.
COST = CostModel(latency=0.01)


def reg_baseline():
    rt = Runtime(PLACES, cost=CostModel.zero())
    app = LinRegNonResilient(rt, REG_WL)
    app.run()
    return app.model()


def make_executor(rt, app, detect_timeout=1.0, **kwargs):
    detector = PhiAccrualDetector(rt, detect_timeout=detect_timeout)
    executor = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=4,
        replicas=2,
        placement=SpreadPlacement(),
        detector=detector,
        **kwargs,
    )
    return executor


class TestRealDeath:
    def test_dead_place_confirmed_evicted_and_recovered(self):
        ref = reg_baseline()
        rt = Runtime(PLACES, cost=COST, resilient=True)
        app = LinRegResilient(rt, REG_WL)
        rt.injector.kill_at_iteration(2, iteration=6)
        report = make_executor(rt, app).run()
        assert report.evictions == 1
        assert report.false_positive_evictions == 0
        assert report.restores >= 1
        # Confirmation is not free: the ladder waited in virtual time.
        assert report.detection_wait_time > 0.0
        np.testing.assert_allclose(app.model(), ref, atol=1e-8)

    def test_pagerank_survives_detected_death(self):
        rt0 = Runtime(PLACES, cost=CostModel.zero())
        base = PageRankNonResilient(rt0, PR_WL)
        base.run()
        rt = Runtime(PLACES, cost=COST, resilient=True)
        app = PageRankResilient(rt, PR_WL)
        rt.injector.kill_at_iteration(4, iteration=7)
        report = make_executor(rt, app).run()
        assert report.evictions == 1
        np.testing.assert_allclose(app.ranks(), base.ranks(), atol=1e-8)


class TestStragglers:
    def test_straggler_onset_causes_no_spurious_recovery(self):
        # The slowdown begins *after* the detector calibrated on healthy
        # heartbeat gaps — the hardest case for a φ-accrual detector.
        ref = reg_baseline()
        rt = Runtime(PLACES, cost=COST, resilient=True)
        app = LinRegResilient(rt, REG_WL)
        executor = make_executor(rt, app)
        rt.set_straggler(3, 8.0)
        report = executor.run()
        assert report.evictions == 0
        assert report.restores == 0
        assert report.transient_restores == 0
        # A straggler slows clocks, never results: bitwise identical.
        assert np.array_equal(app.model(), ref)

    def test_pre_calibrated_straggler_is_equally_harmless(self):
        rt = Runtime(PLACES, cost=COST, resilient=True)
        app = LinRegResilient(rt, REG_WL)
        rt.set_straggler(5, 8.0)
        report = make_executor(rt, app).run()
        assert report.evictions == 0 and report.restores == 0


class TestFalsePositive:
    def test_fenced_live_place_still_converges(self):
        # A permanent partition silently cuts place 2 off mid-run (after
        # the first checkpoint commits, around t=0.9 at this latency).
        # The place is alive but unreachable; the fail-safe confirms it
        # so the group can make progress.  That is a *false positive* —
        # and the run must still converge to the failure-free answer.
        ref = reg_baseline()
        rt = Runtime(PLACES, cost=COST, resilient=True)
        app = LinRegResilient(rt, REG_WL)
        cut = LinkPartition({2}, set(range(PLACES)) - {2}, 1.0, 1e9)
        rt.set_faults(TransientFaultModel(partitions=[cut]))
        report = make_executor(rt, app).run()
        assert report.evictions == 1
        assert report.false_positive_evictions == 1
        assert report.comm_timeouts >= 1
        np.testing.assert_allclose(app.model(), ref, atol=1e-8)


class TestTransientFaults:
    def test_lossy_network_converges_without_evictions(self):
        # 20% message loss — the acceptance bar: retransmission absorbs
        # every drop and the result matches the failure-free run.
        ref = reg_baseline()
        rt = Runtime(PLACES, cost=COST, resilient=True)
        app = LinRegResilient(rt, REG_WL)
        rt.set_faults(TransientFaultModel(drop_rate=0.2, seed=13))
        report = make_executor(rt, app).run()
        assert report.retransmissions > 0
        assert report.evictions == 0
        np.testing.assert_allclose(app.model(), ref, atol=1e-8)

    def test_healing_partition_clears_as_transient(self):
        # The partition outlasts the retry budget (CommTimeoutError) but
        # heals before the accrual window closes: every suspect is
        # cleared by a fresh heartbeat, membership is untouched, and the
        # failed attempt is simply retried.  Zero-cost network, so the
        # detector's deliberation is the only thing advancing the clock
        # past the heal point — exactly the chaos-campaign regime.
        ref = reg_baseline()
        rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True)
        app = LinRegResilient(rt, REG_WL)
        cut = LinkPartition({2}, set(range(PLACES)) - {2}, 0.0, 0.5)
        rt.set_faults(TransientFaultModel(partitions=[cut]))
        report = make_executor(rt, app).run()
        assert report.comm_timeouts >= 1
        assert report.transient_restores >= 1
        assert report.evictions == 0
        np.testing.assert_allclose(app.model(), ref, atol=1e-8)


class TestDetectionLatencyKnob:
    @pytest.mark.parametrize("detect_timeout", [0.5, 2.0])
    def test_converges_across_timeouts(self, detect_timeout):
        ref = reg_baseline()
        rt = Runtime(PLACES, cost=COST, resilient=True)
        app = LinRegResilient(rt, REG_WL)
        rt.injector.kill_at_iteration(1, iteration=5)
        report = make_executor(rt, app, detect_timeout=detect_timeout).run()
        assert report.evictions >= 1
        np.testing.assert_allclose(app.model(), ref, atol=1e-8)
