"""Ablation — in-memory double store vs reliable stable storage.

The paper's introduction motivates in-memory checkpointing against
data-flow systems that materialize state on reliable storage: "reloading
the intermediate data from reliable storage at each iteration" is the
I/O overhead Hadoop-style iteration pays.  This ablation quantifies the
trade on PageRank at 24 places (GigE network, ~100 MB/s shared stable
storage):

1. checkpoint cost: in-memory double store vs stable storage writes;
2. the paper's framework protocol (in-memory, checkpoint every 10) vs a
   Hadoop-style protocol (stable storage, state materialized every
   iteration) over the same 30-iteration run;
3. what stable storage buys: recovery from an adjacent double failure
   that defeats the double in-memory store.
"""

from _common import emit
from repro.apps.resilient import PageRankResilient
from repro.bench.calibration import pagerank_bench_workload, pagerank_cost
from repro.resilience.executor import IterativeExecutor
from repro.resilience.stable import use_stable_storage
from repro.runtime import DataLossError, Runtime

PLACES = 24
DISK_BYTE_TIME = 1.0e-8  # ~100 MB/s shared DFS


def run_protocol(stable: bool, interval: int, adjacent_double_failure: bool = False):
    cost = pagerank_cost().with_rates(disk_byte_time=DISK_BYTE_TIME)
    rt = Runtime(PLACES, cost=cost, resilient=True)
    app = PageRankResilient(rt, pagerank_bench_workload(30))
    if stable:
        use_stable_storage(app.G, app.U, app.P)
    if adjacent_double_failure:
        rt.injector.kill_at_iteration(5, iteration=15)
        rt.injector.kill_at_iteration(6, iteration=15)
    try:
        report = IterativeExecutor(rt, app, checkpoint_interval=interval).run()
    except DataLossError:
        return None
    return report


def run_ablation():
    framework = run_protocol(stable=False, interval=10)
    framework_stable = run_protocol(stable=True, interval=10)
    hadoop_style = run_protocol(stable=True, interval=1)
    in_memory_double_fail = run_protocol(
        stable=False, interval=10, adjacent_double_failure=True
    )
    stable_double_fail = run_protocol(
        stable=True, interval=10, adjacent_double_failure=True
    )
    return {
        "framework (in-memory, every 10)": framework,
        "framework (stable store, every 10)": framework_stable,
        "Hadoop-style (stable store, every iteration)": hadoop_style,
        "in-memory + adjacent double failure": in_memory_double_fail,
        "stable + adjacent double failure": stable_double_fail,
    }


def test_ablation_stable_storage(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = ["protocol                                        total(s)  ckpt(s)"]
    for label, report in results.items():
        if report is None:
            lines.append(f"{label:<46s} UNRECOVERABLE (DataLossError)")
        else:
            lines.append(
                f"{label:<46s} {report.total_time:8.2f} {report.checkpoint_time:8.2f}"
            )
    emit("Ablation — in-memory vs stable-storage checkpointing", "\n".join(lines))

    framework = results["framework (in-memory, every 10)"]
    stable10 = results["framework (stable store, every 10)"]
    hadoop = results["Hadoop-style (stable store, every iteration)"]
    # Stable storage costs more per checkpoint than the in-memory store...
    assert stable10.checkpoint_time > framework.checkpoint_time
    # ...and Hadoop-style per-iteration materialization multiplies the
    # checkpointing I/O — the paper's motivation.  (Our "Hadoop-style"
    # still reuses the read-only graph snapshot; true MapReduce would also
    # rewrite the inputs and look far worse.)
    assert hadoop.checkpoint_time > 3.0 * framework.checkpoint_time
    assert hadoop.total_time > 1.15 * framework.total_time
    # But only stable storage survives the adjacent double failure.
    assert results["in-memory + adjacent double failure"] is None
    assert results["stable + adjacent double failure"] is not None
