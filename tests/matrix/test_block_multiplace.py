"""Tests for MatrixBlock/BlockSet details and the MultiPlaceObject base."""

import pytest

from repro.matrix.block import BlockSet, MatrixBlock
from repro.matrix.dense import DenseMatrix
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Grid
from repro.matrix.sparse import SparseCSR
from repro.runtime import CostModel, DeadPlaceException, PlaceGroup, Runtime


def make_rt(n=3):
    return Runtime(n, cost=CostModel.zero())


class TestMatrixBlock:
    def test_for_grid_validates_shape(self):
        grid = Grid.partition(10, 6, 2, 2)
        block = MatrixBlock.for_grid(grid, 0, 1, DenseMatrix.make(5, 3))
        assert block.row_range() == (0, 5)
        assert block.col_range() == (3, 6)
        with pytest.raises(ValueError):
            MatrixBlock.for_grid(grid, 0, 1, DenseMatrix.make(4, 3))

    def test_kind_and_bytes(self):
        grid = Grid.partition(4, 4, 2, 1)
        dense = MatrixBlock.for_grid(grid, 0, 0, DenseMatrix.make(2, 4))
        sparse = MatrixBlock.for_grid(grid, 1, 0, SparseCSR.empty(2, 4))
        assert not dense.is_sparse and sparse.is_sparse
        assert dense.nbytes == 64

    def test_deep_copy_isolated(self):
        grid = Grid.partition(4, 4, 2, 1)
        block = MatrixBlock.for_grid(grid, 0, 0, DenseMatrix.make(2, 4))
        clone = block.deep_copy()
        clone.data.data[0, 0] = 7.0
        assert block.data.data[0, 0] == 0.0


class TestBlockSet:
    def _bs(self):
        grid = Grid.partition(8, 4, 4, 1)
        bs = BlockSet(place_index=0)
        for rb in (1, 2):
            bs.add(MatrixBlock.for_grid(grid, rb, 0, DenseMatrix.make(2, 4)))
        return bs

    def test_duplicate_rejected(self):
        bs = self._bs()
        grid = Grid.partition(8, 4, 4, 1)
        with pytest.raises(ValueError):
            bs.add(MatrixBlock.for_grid(grid, 1, 0, DenseMatrix.make(2, 4)))

    def test_get_and_contains(self):
        bs = self._bs()
        assert bs.contains(1, 0)
        assert bs.get(2, 0).row_range() == (4, 6)
        with pytest.raises(KeyError):
            bs.get(0, 0)

    def test_row_span(self):
        assert self._bs().row_span() == (2, 6)
        with pytest.raises(ValueError):
            BlockSet(0).row_span()

    def test_payload_dict_is_deep(self):
        bs = self._bs()
        payload = bs.payload_dict()
        payload[(1, 0)].data[0, 0] = 9.0
        assert bs.get(1, 0).data.data[0, 0] == 0.0

    def test_total_nnz_counts_sparse_only(self):
        grid = Grid.partition(4, 4, 2, 1)
        bs = BlockSet(0)
        bs.add(MatrixBlock.for_grid(grid, 0, 0, DenseMatrix.make(2, 4)))
        bs.add(
            MatrixBlock.for_grid(
                grid, 1, 0, SparseCSR.from_coo(2, 4, [0, 1], [1, 2], [1.0, 2.0])
            )
        )
        assert bs.total_nnz() == 2


class TestMultiPlaceObject:
    def test_total_nbytes(self):
        rt = make_rt(3)
        v = DupVector.make(rt, 8)
        # 3 copies x 8 doubles (+ framing counted by payload_nbytes).
        assert v.total_nbytes() >= 3 * 64

    def test_destroy_then_group_alive_check(self):
        rt = make_rt(3)
        v = DupVector.make(rt, 4)
        v.check_group_alive()
        rt.kill(1)
        with pytest.raises(DeadPlaceException):
            v.check_group_alive()

    def test_construction_on_dead_place_rejected(self):
        rt = make_rt(3)
        rt.kill(2)
        with pytest.raises(DeadPlaceException):
            DupVector.make(rt, 4, PlaceGroup.of_ids([0, 2]))

    def test_unique_object_ids(self):
        rt = make_rt(2)
        a, b = DupVector.make(rt, 2), DupVector.make(rt, 2)
        assert a.oid != b.oid
        assert a.heap_key != b.heap_key

    def test_total_nbytes_skips_dead_places(self):
        rt = make_rt(3)
        g = DistBlockMatrix.make_dense(rt, 9, 3, 3, 1).init_random(1)
        full = g.total_nbytes()
        rt.kill(2)
        assert g.total_nbytes() < full
