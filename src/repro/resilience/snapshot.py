"""Snapshot/restore for GML objects (paper §IV-B).

``Snapshottable`` is the paper's Listing 3 interface.  A
:class:`DistObjectSnapshot` stores an object's state as key/value pairs —
key = the place's *index* in the object's place group, value = that place's
data partition — in a **double in-memory store**: the primary copy on the
owning place and a backup copy on the *next* place of the group (wrapping
around).  Saving costs the same from every place (one local copy plus one
remote copy); loading is cheap when the requested key is local and costs a
transfer otherwise.

The store survives any single place failure.  If two *adjacent* places die
before the next checkpoint commits, both copies of one key are lost and
:meth:`DistObjectSnapshot.fetch` raises :class:`DataLossError` — tested
behaviour, not a corner we paper over.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional, Tuple

from repro.runtime.exceptions import DataLossError
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.bytesize import payload_nbytes
from repro.util.validation import require

_snap_counter = itertools.count()


class Snapshottable(ABC):
    """The paper's Listing 3: objects that can save and restore themselves."""

    @abstractmethod
    def make_snapshot(self) -> "DistObjectSnapshot":
        """Capture this object's distributed state into a resilient store."""

    @abstractmethod
    def restore_snapshot(self, snapshot: "DistObjectSnapshot") -> None:
        """Reload this object's state (possibly onto a different group)."""


class DistObjectSnapshot:
    """Double in-memory key/value store for one GML object's partitions.

    Entries live in the place heaps under ``("snap", id, key)`` (primary)
    and ``("snapb", id, key)`` (backup on the next place), so a place's
    death destroys exactly the copies it held.

    ``meta`` carries object-specific restore metadata (the data grid, the
    block→place owner map, the vector partition) captured at snapshot time.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: PlaceGroup,
        meta: Optional[Dict[str, Any]] = None,
        backups: int = 1,
    ):
        require(backups >= 0, "backups must be >= 0")
        self.runtime = runtime
        self.group = group
        self.snap_id = next(_snap_counter)
        self.meta: Dict[str, Any] = dict(meta or {})
        self.backups = backups
        self._saved_keys: set = set()
        self.total_nbytes = 0.0

    # -- keys ------------------------------------------------------------

    def _primary_key(self, key: int) -> tuple:
        return ("snap", self.snap_id, key)

    def _backup_key(self, key: int, replica: int = 1) -> tuple:
        return ("snapb", self.snap_id, key, replica)

    def _backup_place(self, key: int, replica: int):
        """The place holding the *replica*-th backup of *key* (wrapping)."""
        return self.group[(key + replica) % self.group.size]

    # -- saving ------------------------------------------------------------

    def save_from(self, ctx: PlaceContext, key: int, payload: Any) -> None:
        """Save one partition from within a finish task at the owning place.

        The caller must pass an already-copied payload (the snapshot must
        not alias live data).  Charges one local copy plus one transfer per
        backup replica (the paper's double store is ``backups=1``: uniform
        save cost from any place).
        """
        require(
            self.group.index_of(ctx.place) == key,
            f"partition {key} must be saved from group index {key}, "
            f"not from {ctx.place}",
        )
        nbytes = payload_nbytes(payload)
        ctx.heap.put(self._primary_key(key), payload)
        ctx.charge_memcpy(nbytes)
        for replica in range(1, self.backups + 1):
            backup_place = self._backup_place(key, replica)
            if backup_place != ctx.place:
                ctx.write_remote(
                    backup_place.id, self._backup_key(key, replica), payload, nbytes
                )
            else:
                # Group smaller than the replica ring: degenerate local copy.
                ctx.heap.put(self._backup_key(key, replica), payload)
                ctx.charge_memcpy(nbytes)
        self._saved_keys.add(key)
        self.total_nbytes += nbytes

    @property
    def num_keys(self) -> int:
        """Number of partitions saved so far."""
        return len(self._saved_keys)

    def has_key(self, key: int) -> bool:
        return key in self._saved_keys

    # -- locating / loading -------------------------------------------------

    def locate(self, key: int) -> Tuple[int, tuple]:
        """``(place_id, heap_key)`` of a surviving copy of *key*.

        Prefers the primary copy, then the backups in ring order; raises
        :class:`DataLossError` when every copy is gone (``backups + 1``
        consecutive ring places died before the next checkpoint).
        """
        require(key in self._saved_keys, f"snapshot has no key {key}")
        rt = self.runtime
        primary = self.group[key]
        if rt.is_alive(primary.id) and rt.heap_of(primary.id).contains(self._primary_key(key)):
            return primary.id, self._primary_key(key)
        for replica in range(1, self.backups + 1):
            backup = self._backup_place(key, replica)
            heap_key = self._backup_key(key, replica)
            if rt.is_alive(backup.id) and rt.heap_of(backup.id).contains(heap_key):
                return backup.id, heap_key
        raise DataLossError(
            f"all {self.backups + 1} copies of snapshot key {key} lost "
            f"(primary {primary} and its backup ring)"
        )

    def fetch(
        self,
        ctx: PlaceContext,
        key: int,
        extract: Optional[Callable[[Any], Any]] = None,
        extract_flops: float = 0.0,
        extract_bytes: float = 0.0,
    ) -> Any:
        """Load partition *key* (or an extracted part) to the calling place.

        ``extract`` runs at the *source* place — this models the paper's
        repartitioned restore, where the owning place cuts out only the
        overlap region and ships just that sub-block.  ``extract_flops``
        charges the scanning work (e.g. the sparse non-zero counting pass)
        and ``extract_bytes`` the copy that materializes the sub-block.
        """
        src_id, heap_key = self.locate(key)
        payload = self.runtime.heap_of(src_id).get(heap_key)
        if extract is not None:
            cost = self.runtime.cost
            charge = cost.flops(extract_flops) + cost.memcpy(extract_bytes)
            if charge:
                self.runtime.clock.advance(src_id, charge)
            payload = extract(payload)
        nbytes = payload_nbytes(payload)
        if src_id == ctx.place.id:
            ctx.charge_memcpy(nbytes)
        else:
            _ = ctx.read_remote(src_id, heap_key, nbytes)
        return payload

    def fully_redundant(self) -> bool:
        """True if every key still has its primary AND all backup copies.

        A snapshot that survived a failure is down to fewer copies for some
        keys; the store only reuses read-only snapshots while full
        redundancy holds, otherwise the next failure could destroy the last
        copy.
        """
        rt = self.runtime
        for key in self._saved_keys:
            copies = [(self.group[key], self._primary_key(key))]
            copies += [
                (self._backup_place(key, r), self._backup_key(key, r))
                for r in range(1, self.backups + 1)
            ]
            for place, heap_key in copies:
                if not rt.is_alive(place.id):
                    return False
                if not rt.heap_of(place.id).contains(heap_key):
                    return False
        return True

    # -- lifecycle --------------------------------------------------------------

    def delete(self) -> None:
        """Free all surviving copies (old checkpoints are deleted on commit)."""
        rt = self.runtime
        for key in self._saved_keys:
            copies = [(self.group[key], self._primary_key(key))]
            copies += [
                (self._backup_place(key, r), self._backup_key(key, r))
                for r in range(1, self.backups + 1)
            ]
            for place, heap_key in copies:
                if rt.is_alive(place.id):
                    rt.heap_of(place.id).remove_if_present(heap_key)
        self._saved_keys.clear()

    def __repr__(self) -> str:
        return (
            f"DistObjectSnapshot(id={self.snap_id}, keys={sorted(self._saved_keys)}, "
            f"group={self.group.ids})"
        )
