"""Tests for the virtual clock and the cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.clock import VirtualClock
from repro.runtime.cost import CostModel, validate_cost_model


class TestVirtualClock:
    def test_register_and_advance(self):
        c = VirtualClock()
        c.register(0)
        c.register(1, at_time=5.0)
        assert c.now(0) == 0.0
        assert c.now(1) == 5.0
        c.advance(0, 2.5)
        assert c.now(0) == 2.5

    def test_double_register_rejected(self):
        c = VirtualClock()
        c.register(0)
        with pytest.raises(ValueError):
            c.register(0)

    def test_negative_advance_rejected(self):
        c = VirtualClock()
        c.register(0)
        with pytest.raises(ValueError):
            c.advance(0, -1.0)

    def test_set_at_least_only_moves_forward(self):
        c = VirtualClock()
        c.register(0, at_time=10.0)
        c.set_at_least(0, 5.0)
        assert c.now(0) == 10.0
        c.set_at_least(0, 12.0)
        assert c.now(0) == 12.0

    def test_barrier(self):
        c = VirtualClock()
        for i in range(3):
            c.register(i, at_time=float(i))
        t = c.barrier([0, 1, 2])
        assert t == 2.0
        assert all(c.now(i) == 2.0 for i in range(3))

    def test_barrier_subset(self):
        c = VirtualClock()
        for i in range(3):
            c.register(i, at_time=float(i))
        c.barrier([0, 1])
        assert c.now(0) == 1.0
        assert c.now(2) == 2.0

    def test_global_time(self):
        c = VirtualClock()
        c.register(0, 1.0)
        c.register(1, 7.0)
        assert c.global_time() == 7.0

    def test_empty_barrier(self):
        assert VirtualClock().barrier([]) == 0.0


class TestCostModel:
    def test_zero_charges_nothing(self):
        m = CostModel.zero()
        assert m.flops(1e9) == 0.0
        assert m.message(1e9) == 0.0
        assert m.memcpy(1e9) == 0.0

    def test_unit_rates(self):
        m = CostModel.unit()
        assert m.flops(3) == 3.0
        assert m.message(2) == 3.0  # latency 1 + 2 bytes * 1
        assert m.memcpy(4) == 4.0

    def test_logical_scale_multiplies_volume_terms(self):
        m = CostModel.unit().with_scale(10.0)
        assert m.flops(3) == 30.0
        # Latency is not scaled; byte volume is.
        assert m.message(2) == 21.0
        assert m.scaled_bytes(2) == 20.0

    def test_with_rates(self):
        m = CostModel.zero().with_rates(latency=5.0)
        assert m.message(0) == 5.0
        assert m.flop_time == 0.0

    def test_validation(self):
        assert validate_cost_model(CostModel.unit()) is None
        bad = CostModel(latency=-1.0)
        assert "latency" in validate_cost_model(bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel.unit().latency = 2.0

    @given(
        n=st.floats(0, 1e9),
        scale=st.floats(0.1, 1e4),
        rate=st.floats(0, 1e-3),
    )
    def test_flops_linear_in_scale(self, n, scale, rate):
        m = CostModel(flop_time=rate).with_scale(scale)
        assert m.flops(n) == pytest.approx(rate * n * scale)
