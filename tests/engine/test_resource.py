"""Unit tests for the engine's serial-server resources and duplex links."""

import pytest

from repro.engine import DuplexLink, Resource
from repro.runtime.exceptions import DeadPlaceException


class TestResource:
    def test_idle_server_starts_at_request_time(self):
        r = Resource(("srv", 0))
        assert r.acquire(5.0, 2.0) == 7.0
        assert r.free_at == 7.0
        assert r.busy_time == 2.0
        assert r.served == 1

    def test_busy_server_queues_fifo(self):
        r = Resource(("srv", 0))
        r.acquire(0.0, 10.0)
        # Requested at t=3 but the server is busy until t=10.
        assert r.acquire(3.0, 2.0) == 12.0
        assert r.busy_time == 12.0
        assert r.served == 2

    def test_request_after_frontier_leaves_gap(self):
        r = Resource(("srv", 0))
        r.acquire(0.0, 1.0)
        # Server idles from 1.0 to 100.0; busy_time counts only service.
        assert r.acquire(100.0, 1.0) == 101.0
        assert r.busy_time == 2.0

    def test_on_acquire_hook_sees_request_start_done(self):
        r = Resource(("srv", 0))
        seen = []
        r.on_acquire = lambda res, t_req, start, done: seen.append(
            (res.key, t_req, start, done)
        )
        r.acquire(0.0, 4.0)
        r.acquire(1.0, 1.0)
        assert seen == [(("srv", 0), 0.0, 0.0, 4.0), (("srv", 0), 1.0, 4.0, 5.0)]

    def test_retired_resource_raises_dead_place(self):
        r = Resource(("srv", 3), owner=3)
        r.retire()
        with pytest.raises(DeadPlaceException) as exc:
            r.acquire(0.0, 1.0)
        assert exc.value.place_id == 3

    def test_retired_ownerless_resource_reports_minus_one(self):
        r = Resource(("disk",))
        r.retire()
        with pytest.raises(DeadPlaceException) as exc:
            r.acquire(0.0, 1.0)
        assert exc.value.place_id == -1

    def test_reset_clears_frontier_and_counters(self):
        r = Resource("x")
        r.acquire(0.0, 5.0)
        r.reset()
        assert (r.free_at, r.busy_time, r.served) == (0.0, 0.0, 0)


class TestDuplexLink:
    def test_transfer_occupies_both_ends(self):
        tx, rx = Resource(("tx", 0)), Resource(("rx", 1))
        link = DuplexLink(tx, rx)
        assert link.acquire(1.0, 2.0) == 3.0
        assert tx.free_at == 3.0
        assert rx.free_at == 3.0
        assert tx.served == rx.served == 1

    def test_start_waits_for_busiest_end(self):
        tx, rx = Resource(("tx", 0)), Resource(("rx", 1))
        rx.acquire(0.0, 10.0)  # receiver busy with someone else's transfer
        assert DuplexLink(tx, rx).acquire(0.0, 2.0) == 12.0
        assert tx.free_at == 12.0

    def test_either_dead_end_raises(self):
        tx, rx = Resource(("tx", 0), owner=0), Resource(("rx", 1), owner=1)
        rx.retire()
        with pytest.raises(DeadPlaceException) as exc:
            DuplexLink(tx, rx).acquire(0.0, 1.0)
        assert exc.value.place_id == 1
        # The dead receive side must not have let the transmit side advance.
        assert tx.free_at == 0.0

    def test_hooks_fire_on_both_ends(self):
        tx, rx = Resource("t"), Resource("r")
        seen = []
        tx.on_acquire = lambda res, *a: seen.append(("tx", a))
        rx.on_acquire = lambda res, *a: seen.append(("rx", a))
        DuplexLink(tx, rx).acquire(2.0, 3.0)
        assert seen == [("tx", (2.0, 2.0, 5.0)), ("rx", (2.0, 2.0, 5.0))]
