"""Incremental (dirty-block) checkpointing — cost vs the dirty fraction.

Two workloads span the dirty-fraction axis:

* **pagerank-saveall** — a PageRank variant whose checkpoint saves the
  link graph ``G``, the teleport vector ``U`` and the rank vector ``P``
  all as *mutable* objects (no ``saveReadOnly``).  Only ``P`` actually
  changes between checkpoints, so in delta mode every checkpoint after
  the first copies a tiny dirty fraction — the paper's ``saveReadOnly``
  optimization rediscovered automatically from mutation tracking.  The
  steady-state and mean checkpoint cost must drop by at least 5x.
* **linreg** — the regression app's checkpoint saves only state that
  mutates every iteration (all-dirty), so delta mode must cost the same
  as full mode: the version comparison is free when it cannot help.

The harness axis is exercised too: a small chaos campaign runs serially
and with a 2-process pool, asserting bitwise-identical outcomes while
recording the wall-clock of each (the speedup scales with real cores).

Writes ``results/incremental_ckpt.csv`` and ``BENCH_ckpt.json``.
"""

from __future__ import annotations

import json
import os
import time

from _common import emit, results_path
from repro.apps.resilient import LinRegResilient, PageRankResilient
from repro.bench import figures
from repro.bench.calibration import (
    pagerank_bench_workload,
    pagerank_cost,
    regression_bench_workload,
    regression_cost,
)
from repro.chaos import CampaignConfig, run_campaign
from repro.resilience.executor import IterativeExecutor
from repro.runtime.runtime import Runtime

PLACES = 8
ITERATIONS = 60
INTERVAL = 5  # 12 checkpoints per run


class SaveAllPageRank(PageRankResilient):
    """PageRank saving *everything* mutably — no ``saveReadOnly`` hints.

    The worst reasonable way to write Listing 5: the framework gets no
    immutability declarations and must discover the clean partitions
    itself.  Delta mode reduces it to the hinted version's cost.
    """

    def checkpoint(self, store) -> None:
        store.start_new_snapshot()
        store.save(self.G)
        store.save(self.U)
        store.save(self.P)
        store.commit(iteration=self.iteration)


def _run(app_key: str, delta: bool) -> dict:
    if app_key == "pagerank-saveall":
        rt = Runtime(PLACES, cost=pagerank_cost(), resilient=True)
        app = SaveAllPageRank(rt, pagerank_bench_workload(ITERATIONS))
    else:
        rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
        app = LinRegResilient(rt, regression_bench_workload(ITERATIONS))
    report = IterativeExecutor(
        rt, app, checkpoint_interval=INTERVAL, delta=delta
    ).run()
    return {
        "checkpoints": report.checkpoints,
        "ckpt_total_s": report.checkpoint_time,
        "ckpt_mean_s": report.mean_checkpoint_time,
        "ckpt_steady_s": report.checkpoint_durations[-1],
        "clean_partitions": report.ckpt_clean_partitions,
        "dirty_partitions": report.ckpt_dirty_partitions,
        "clean_bytes": report.ckpt_clean_bytes,
        "dirty_bytes": report.ckpt_dirty_bytes,
    }


def _campaign_wallclock() -> dict:
    cfg = CampaignConfig(
        app="pagerank", schedules=16, seed=5, replicas=2, placement="spread",
        ckpt_delta=True,
    )
    t0 = time.perf_counter()
    serial = run_campaign(cfg)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign(cfg, jobs=2)
    parallel_s = time.perf_counter() - t0
    assert serial.summary() == parallel.summary()
    assert not serial.violations
    return {"serial_s": serial_s, "parallel_s": parallel_s,
            "schedules": cfg.schedules, "jobs": 2}


def run_all():
    runs = {
        (app, mode): _run(app, mode == "delta")
        for app in ("pagerank-saveall", "linreg")
        for mode in ("full", "delta")
    }
    return runs, _campaign_wallclock()


def test_incremental_checkpoint(benchmark):
    runs, wallclock = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{PLACES} places, {ITERATIONS} iterations, checkpoint every "
        f"{INTERVAL} ({runs[('linreg', 'full')]['checkpoints']} checkpoints):",
        "app                mode   ckpt total(s)  mean(s)  steady(s)  clean/dirty parts",
    ]
    ratios = {}
    for app in ("pagerank-saveall", "linreg"):
        for mode in ("full", "delta"):
            r = runs[(app, mode)]
            lines.append(
                f"{app:<18s} {mode:<6s} {r['ckpt_total_s']:12.4f}  "
                f"{r['ckpt_mean_s']:.5f}  {r['ckpt_steady_s']:.5f}  "
                f"{r['clean_partitions']:5d}/{r['dirty_partitions']}"
            )
        full, delta = runs[(app, "full")], runs[(app, "delta")]
        ratios[app] = {
            "mean": full["ckpt_mean_s"] / delta["ckpt_mean_s"],
            "steady": full["ckpt_steady_s"] / delta["ckpt_steady_s"],
        }
        lines.append(
            f"  -> delta speedup: mean {ratios[app]['mean']:.1f}x, "
            f"steady-state {ratios[app]['steady']:.1f}x"
        )
    lines.append(
        f"chaos harness wall-clock ({wallclock['schedules']} schedules): "
        f"serial {wallclock['serial_s']:.2f}s vs --jobs {wallclock['jobs']} "
        f"{wallclock['parallel_s']:.2f}s (outcomes bitwise identical)"
    )

    row_keys = [f"{app}:{mode}" for app in ("pagerank-saveall", "linreg")
                for mode in ("full", "delta")]
    csv = figures.write_csv(
        results_path("incremental_ckpt.csv"),
        row_keys,
        {
            name: [runs[tuple(k.split(":"))][name] for k in row_keys]
            for name in (
                "ckpt_total_s", "ckpt_mean_s", "ckpt_steady_s",
                "clean_partitions", "dirty_partitions",
                "clean_bytes", "dirty_bytes",
            )
        },
        x_name="app:mode",
    )
    lines.append(f"series written to {csv}")
    emit("Incremental checkpointing — full vs delta", "\n".join(lines))

    bench_json = os.path.join(os.path.dirname(results_path("x")), os.pardir,
                              "BENCH_ckpt.json")
    with open(os.path.abspath(bench_json), "w", encoding="utf-8") as fh:
        json.dump(
            {
                "config": {"places": PLACES, "iterations": ITERATIONS,
                           "interval": INTERVAL},
                "runs": {f"{a}:{m}": r for (a, m), r in runs.items()},
                "delta_speedup": ratios,
                "campaign_wallclock": wallclock,
            },
            fh,
            indent=2,
        )

    # Read-mostly app: delta checkpointing pays for the rank vector only.
    assert ratios["pagerank-saveall"]["mean"] >= 5.0
    assert ratios["pagerank-saveall"]["steady"] >= 5.0
    # All-dirty app: delta mode never makes checkpoints more expensive.
    assert runs[("linreg", "delta")]["ckpt_total_s"] <= (
        runs[("linreg", "full")]["ckpt_total_s"] * 1.001
    )
    # Identical final answers either way (the executor's report counts
    # the same iterations; the apps converge deterministically).
    for app in ("pagerank-saveall", "linreg"):
        assert runs[(app, "full")]["checkpoints"] == runs[(app, "delta")]["checkpoints"]
