"""Preconditioned conjugate gradient (resilient, ABFT-reconstructable).

The classic four methods (``checkpoint`` = save ``A``/``b``/``M⁻¹`` read
only + ``x``/``r``/``p``; ``restore`` = remake + reload + recompute
``z``/``ρ``) make CG a well-behaved rollback app.  On top of that it
implements the checkpoint-free protocol of
:class:`~repro.resilience.iterative.ReconstructableIterativeApp`:

* :meth:`publish_redundant` — after every iteration, re-publish ``r`` and
  ``p`` with *k* replicas on neighbor places and ``x`` primary-copy-only
  (one local memcpy), plus the statics once;
* :meth:`reconstruct` — on a burst of ≤ *k* failures per placement group,
  reset every place to the last published boundary (survivors from their
  own primary copies, spares from surviving replicas) and re-solve the
  lost ``x`` partitions **exactly** from the SPD identity
  ``A_JJ x_J = b_J − r_J − A_JK x_K`` (Chen 2011; arXiv:1907.13077 for
  simultaneous multi-failure bursts, where J spans several places and the
  joint principal system couples them).

Because ``r``, ``p``, ``z`` and every scalar are restored bit-exactly and
``x`` never feeds back into them (it only accumulates ``α p`` updates),
the post-recovery trajectory is bit-identical to the failure-free run;
the solution differs only by the joint re-solve's ~1e-12 residual in the
lost rows.  No rollback: the loop counter stays at the published
boundary, so ``restored_iterations`` stays empty.
"""

from __future__ import annotations

from functools import partial
from math import sqrt
from typing import List, Optional

import numpy as np

from repro.apps.data import CGWorkload
from repro.matrix.distsparse import DistSparseRowMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Partition1D
from repro.matrix.sparse import SparseCSR
from repro.matrix.vector import Vector
from repro.resilience.iterative import ReconstructableIterativeApp
from repro.resilience.reconstruct import ReconstructionStore
from repro.resilience.store import AppResilientStore
from repro.runtime.comm import point_to_point
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime


class CGResilient(ReconstructableIterativeApp):
    """PCG under the resilient framework, with exact reconstruction."""

    def __init__(
        self,
        runtime: Runtime,
        workload: CGWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        n = workload.rows(group.size)
        self.n = n
        part = Partition1D.even(n, group.size)
        self.A = DistSparseRowMatrix.make(
            runtime, n, group, builder=partial(workload.band, n),
            partition=part,
        )
        self.b = DistVector.make(runtime, n, group, part).init_random(
            workload.seed, tag=1
        )
        self.inv_diag = (
            DistVector.make(runtime, n, group, part)
            .init_random(workload.seed, tag=2)
            .map(lambda v: 1.0 / (CGWorkload.DIAG_BASE + v), flops_per_cell=2.0)
        )
        self.x = DistVector.make(runtime, n, group, part).fill(0.0)
        self.r = DistVector.make(runtime, n, group, part).copy_from(self.b)
        self.z = (
            DistVector.make(runtime, n, group, part)
            .copy_from(self.r)
            .cell_mult(self.inv_diag)
        )
        self.p = DistVector.make(runtime, n, group, part).copy_from(self.z)
        self.q = DistVector.make(runtime, n, group, part)
        self.p_dup = DupVector.make(runtime, n, group)
        self.rz = self.r.dot_dist(self.z)
        self.rz0 = self.rz

    @property
    def places(self) -> PlaceGroup:
        return self._places

    # -- the framework's four methods -----------------------------------------

    def is_finished(self) -> bool:
        if self.iteration >= self.workload.iterations:
            return True
        tol = self.workload.tolerance
        return bool(tol > 0 and self.rz <= tol * tol * self.rz0)

    def step(self) -> None:
        self.p.to_dup(self.p_dup)
        self.A.mult_into(self.q, self.p_dup)
        alpha = self.rz / self.q.dot_dist(self.p)
        self.x.axpy(alpha, self.p)
        self.r.axpy(-alpha, self.q)
        self.z.copy_from(self.r).cell_mult(self.inv_diag)
        rz_new = self.r.dot_dist(self.z)
        beta = rz_new / self.rz if self.rz else 0.0
        self.p.scale(beta).cell_add(self.z)
        self.rz = rz_new
        self.iteration += 1

    def checkpoint(self, store: AppResilientStore) -> None:
        store.start_new_snapshot()
        store.save_read_only(self.A)
        store.save_read_only(self.b)
        store.save_read_only(self.inv_diag)
        store.save(self.x)
        store.save(self.r)
        store.save(self.p)
        store.commit(iteration=self.iteration)

    def restore(
        self, new_places: PlaceGroup, store: AppResilientStore, snapshot_iter: int
    ) -> None:
        # One band per place, so any group-size change forces a row
        # repartition regardless of the rebalance flag (there is no block
        # grid to keep); same-size replacement keeps the partition.
        part = (
            self.A.partition
            if new_places.size == self._places.size
            else Partition1D.even(self.n, new_places.size)
        )
        for obj in (self.b, self.inv_diag, self.x, self.r, self.z, self.q):
            obj.remake(new_places, part)
        self.A.remake(new_places, part)
        self.p.remake(new_places, part)
        self.p_dup.remake(new_places)
        self._places = new_places
        store.restore()
        self.z.copy_from(self.r).cell_mult(self.inv_diag)
        self.rz = self.r.dot_dist(self.z)
        self.iteration = snapshot_iter

    # -- checkpoint-free recovery ---------------------------------------------

    def publish_redundant(self, store: ReconstructionStore, iteration: int) -> None:
        if not store.statics_saved:
            store.save_static(self.A)
            store.save_static(self.b)
            store.save_static(self.inv_diag)
        # x is primary-copy-only (backups=0): its lost partitions are
        # re-*solved*, the local copy just lets survivors reset for free.
        store.publish(
            [(self.x, 0), (self.r, None), (self.p, None)], iteration=iteration
        )

    def reconstruct(
        self,
        new_places: PlaceGroup,
        store: ReconstructionStore,
        lost_indices: List[int],
    ) -> None:
        lost = sorted(set(lost_indices))
        lost_set = set(lost)
        part = self.x.partition
        snap_a = store.static_snapshot(self.A)
        snap_b = store.static_snapshot(self.b)
        snap_inv = store.static_snapshot(self.inv_diag)
        snap_x = store.state_snapshot(self.x)
        snap_r = store.state_snapshot(self.r)
        snap_p = store.state_snapshot(self.p)

        # Adopt the replacement group.  Survivors keep their payloads and
        # indices; spares get fresh (zero / empty) payloads to fill.  All
        # idempotent, so a retry after a mid-recovery kill is safe.
        self.A.rehome(new_places)
        for vec in (self.b, self.inv_diag, self.x, self.r, self.z, self.q, self.p):
            vec.rehome(new_places)
        self.p_dup.rehome(new_places)

        a_key = self.A.heap_key

        def reset(ctx: PlaceContext) -> None:
            index = new_places.index_of(ctx.place)
            if index in lost_set:
                # Statics: the replica set is the only source (fetch
                # charges the remote read from a surviving copy).  Always
                # re-fetched — a spare reused from an aborted recovery may
                # hold a same-size band for the *wrong* index.
                band: SparseCSR = snap_a.fetch(ctx, index)
                ctx.heap.put(a_key, band)
                for snap, obj in ((snap_b, self.b), (snap_inv, self.inv_diag)):
                    payload: Vector = snap.fetch(ctx, index)
                    seg: Vector = ctx.heap.get(obj.heap_key)
                    seg.touch()
                    seg.data[:] = payload.data
            else:
                # Survivors reset x from their own primary copy — the
                # cheap local memcpy that makes x's backups=0 sufficient.
                payload = snap_x.fetch(ctx, index)
                seg = ctx.heap.get(self.x.heap_key)
                seg.touch()
                seg.data[:] = payload.data
            # Everyone resets r and p to the published boundary: survivors
            # from local primaries, spares from surviving replicas.
            for snap, obj in ((snap_r, self.r), (snap_p, self.p)):
                payload = snap.fetch(ctx, index)
                seg = ctx.heap.get(obj.heap_key)
                seg.touch()
                seg.data[:] = payload.data

        self.runtime.finish_all(new_places, reset, label="cg:reconstruct")

        self._solve_lost_x(new_places, lost)

        # z and ρ are recomputed, not stored: bitwise identical to the
        # failure-free boundary (same partition, same group-ordered sums).
        self.z.copy_from(self.r).cell_mult(self.inv_diag)
        self.rz = self.r.dot_dist(self.z)
        # Restore full redundancy for the statics (repair cost ∝ damage);
        # the dynamic state is re-published after the next step anyway.
        store.repair_static(new_places)
        self._places = new_places
        self.iteration = store.state_iteration

    def _solve_lost_x(self, group: PlaceGroup, lost: List[int]) -> None:
        """Joint exact re-solve of the lost ``x`` partitions.

        ``A_JJ x_J = b_J − r_J − A_JK x_K`` with J the union of the lost
        row ranges: a principal submatrix of an SPD matrix is SPD, so the
        dense system is uniquely solvable whatever burst pattern J has.
        Simultaneous adjacent failures genuinely couple through A's
        off-diagonal bands — one joint solve, not per-partition solves.
        The work is modeled on the first replacement place: survivors ship
        only the boundary ``x`` values A_J actually references.
        """
        if not lost:
            return
        rt = self.runtime
        part = self.x.partition
        solver_id = group[lost[0]].id

        bands = [self.A.band(j) for j in lost]
        a_j = SparseCSR.vstack(bands) if len(bands) > 1 else bands[0]
        ranges = [part.range_of(j) for j in lost]
        m_total = sum(hi - lo for lo, hi in ranges)

        # Ship the referenced boundary values from their surviving owners.
        needed = np.unique(a_j.indices)
        x_glob = np.zeros(self.n)
        for index in range(group.size):
            if index in lost:
                continue  # lost ranges stay zero: spmv then yields A_JK x_K
            lo, hi = part.range_of(index)
            count = int(np.count_nonzero((needed >= lo) & (needed < hi)))
            if count:
                point_to_point(rt, group[index].id, solver_id, count * 8)
                x_glob[lo:hi] = self.x.segment(index).data

        rhs = np.concatenate([self.b.segment(j).data for j in lost])
        rhs -= np.concatenate([self.r.segment(j).data for j in lost])
        rhs -= a_j.spmv(x_glob)

        dense = np.zeros((m_total, m_total))
        col = 0
        for lo, hi in ranges:
            dense[:, col : col + hi - lo] = a_j.sub_matrix(
                0, m_total, lo, hi
            ).to_dense()
            col += hi - lo
        x_lost = np.linalg.solve(dense, rhs)

        # A_JJ couples rows only within ``stride`` of each other, so it is
        # (block-)banded with half-bandwidth ``stride``: the recovery solve
        # a real implementation runs is a banded Cholesky, O(m·w²), not a
        # dense LU.  The dense solve above computes the identical solution
        # (it is the exactness, not the cost, we take from it); the charge
        # is the banded solver's.
        bandwidth = 2 * self.workload.stride + 1
        rt.clock.advance(
            solver_id,
            rt.cost.flops(
                2.0 * a_j.nnz * rt.cost.sparse_flop_factor
                + 2.0 * float(m_total) * float(bandwidth) ** 2
            ),
        )
        row = 0
        for j, (lo, hi) in zip(lost, ranges):
            seg = self.x.segment(j)
            seg.touch()
            seg.data[:] = x_lost[row : row + hi - lo]
            row += hi - lo
            if group[j].id != solver_id:
                point_to_point(rt, solver_id, group[j].id, (hi - lo) * 8)

    def solution(self):
        """The iterate ``x`` (driver-side copy)."""
        return self.x.to_array()

    def residual_norm(self) -> float:
        """``sqrt(r·z)`` — the preconditioned residual norm."""
        return sqrt(max(self.rz, 0.0))
