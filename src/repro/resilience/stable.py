"""Stable-storage snapshots — the alternative the paper argues against.

The paper's introduction motivates *in-memory* checkpointing by contrast
with data-flow systems that reload intermediate state from reliable
storage each iteration ("implementing iterative algorithms as repeated
calls to MapReduce jobs is inefficient because of the encountered I/O
overhead").  :class:`StableObjectSnapshot` makes that alternative concrete
so the trade can be measured:

* saves write each partition to a shared stable store (one network hop to
  reach it, then the write serializes on the engine's shared disk
  :class:`~repro.engine.resource.Resource` at ``disk_byte_time`` — the
  single distributed-filesystem ingest path all places contend for);
* the store survives **any** set of place failures — including adjacent
  pairs and bursts that defeat the in-memory double store — because the
  data is not held in place heaps at all;
* loads read back at disk+network rates from every restoring place.

It is API-compatible with :class:`DistObjectSnapshot`, so every GML
object's ``restore_snapshot`` works against it unchanged; objects opt in
by setting ``snapshot_to_stable_storage = True``.  The same disk resource
also backs the *fallback tier* of the tiered in-memory store
(``stable_fallback=True`` on :class:`DistObjectSnapshot`), where it is
written at checkpoint time but only read once every in-memory replica of
a partition is gone.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime.exceptions import SnapshotCorruptionError
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.bytesize import payload_nbytes
from repro.util.checksum import corrupt_payload, memoized_checksum
from repro.util.validation import require
from repro.util.versioning import freeze_payload


class StableObjectSnapshot(DistObjectSnapshot):
    """A snapshot whose partitions live on reliable stable storage.

    Payloads are held outside the place heaps (the "distributed
    filesystem"); saves and loads pay one network message plus disk
    bandwidth on the engine's shared disk resource, so concurrent places
    queue behind each other at the store.
    """

    def __init__(
        self, runtime: Runtime, group: PlaceGroup, meta: Optional[Dict[str, Any]] = None
    ):
        super().__init__(runtime, group, meta, backups=0)
        self._store: Dict[int, Any] = {}

    # -- saving ------------------------------------------------------------

    def save_from(
        self, ctx: PlaceContext, key: int, payload: Any, token: Optional[Any] = None
    ) -> None:
        """Write one partition to stable storage from its owning place."""
        require(
            self.group.index_of(ctx.place) == key,
            f"partition {key} must be saved from group index {key}, "
            f"not from {ctx.place}",
        )
        nbytes = payload_nbytes(payload)
        freeze_payload(payload)
        self.runtime.engine.stable_write(ctx.place.id, nbytes)
        self._store[key] = payload
        self._checksums[key] = memoized_checksum(payload, token)
        ctx.charge_seconds(self.runtime.cost.checksum(nbytes))
        self._verified.add((key, self.STABLE_TIER))
        self._saved_keys.add(key)
        if token is not None:
            self._versions[key] = token
        self.total_nbytes += nbytes

    # -- delta (incremental) saves -------------------------------------------

    def delta_compatible(self, base: "DistObjectSnapshot") -> bool:
        """Stable stores only need the same type and place group to share."""
        return type(base) is type(self) and base.group.ids == self.group.ids

    def key_intact(self, key: int) -> bool:
        """The single stable copy either exists or it does not."""
        return key in self._saved_keys and key in self._store

    def save_clean_from(self, ctx, key: int, base: "DistObjectSnapshot") -> None:
        """Re-reference an unchanged partition of the stable store.

        No disk write, no hash: the clean partition costs nothing, same as
        the in-memory tiers' adoption path.
        """
        require(
            self.group.index_of(ctx.place) == key,
            f"partition {key} must be saved from group index {key}, "
            f"not from {ctx.place}",
        )
        payload = base._store[key]
        nbytes = payload_nbytes(payload)
        self._store[key] = payload
        if key in base._checksums:
            self._checksums[key] = base._checksums[key]
        if (key, self.STABLE_TIER) in base._verified:
            self._verified.add((key, self.STABLE_TIER))
        if key in base._versions:
            self._versions[key] = base._versions[key]
        self._saved_keys.add(key)
        self.clean_keys.add(key)
        self.clean_nbytes += nbytes
        self.total_nbytes += nbytes

    # -- integrity ---------------------------------------------------------

    def _verify_copy(self, key, tier, place_id, heap_key) -> bool:
        """Checksum the stored copy; quarantine (drop) it on mismatch."""
        if (key, self.STABLE_TIER) in self._verified:
            return True
        payload = self._store[key]
        expected = self._checksums.get(key)
        if expected is None or memoized_checksum(payload, self._versions.get(key)) == expected:
            self._verified.add((key, self.STABLE_TIER))
            return True
        del self._store[key]
        self.quarantined.append((key, self.STABLE_TIER))
        return False

    def saved_keys(self):
        return sorted(self._saved_keys)

    def tiers(self, key: int):
        return [self.STABLE_TIER] if key in self._store else []

    def corrupt_copy(self, key: int, tier: int) -> bool:
        """Corrupt the (single) stored copy of *key*."""
        if tier != self.STABLE_TIER or key not in self._store:
            return False
        self._store[key] = corrupt_payload(self._store[key])
        self._verified.discard((key, self.STABLE_TIER))
        return True

    # -- locating / loading -------------------------------------------------

    def locate(self, key: int) -> Tuple[int, tuple]:
        """Stable storage holds the only copy — verified before every use."""
        require(key in self._saved_keys, f"snapshot has no key {key}")
        if key not in self._store or not self._verify_copy(
            key, self.STABLE_TIER, self.STABLE_TIER, None
        ):
            raise SnapshotCorruptionError(
                f"the stable-storage copy of snapshot key {key} failed "
                f"checksum verification; there is no further tier"
            )
        return self.STABLE_TIER, ("stable", self.snap_id, key)

    def fetch(
        self,
        ctx: PlaceContext,
        key: int,
        extract: Optional[Callable[[Any], Any]] = None,
        extract_flops: float = 0.0,
        extract_bytes: float = 0.0,
    ) -> Any:
        """Read a partition (or an extracted part) back from storage.

        Unlike the in-memory store there is no owning place to run the
        extractor on: the restoring place reads the *whole* partition off
        storage and cuts locally — the full-reload cost the paper's
        data-flow comparison points at.
        """
        self.locate(key)
        payload = self._store[key]
        nbytes = payload_nbytes(payload)
        self.runtime.engine.stable_read(ctx.place.id, nbytes)
        if extract is not None:
            payload = extract(payload)
            ctx.charge_memcpy(payload_nbytes(payload))
        return payload

    def fully_redundant(self) -> bool:
        """Stable storage never degrades: reuse is always safe."""
        return bool(self._saved_keys)

    def recoverable(self) -> bool:
        """Every saved key survives by construction."""
        return bool(self._saved_keys)

    # -- lifecycle --------------------------------------------------------------

    def delete(self) -> None:
        """Drop the stored partitions."""
        self._store.clear()
        self._saved_keys.clear()


def use_stable_storage(*objects) -> None:
    """Switch GML objects to stable-storage snapshots.

    Sets each object's snapshot factory so that subsequent checkpoints go
    to stable storage instead of the in-memory double store.
    """
    for obj in objects:
        obj.snapshot_to_stable_storage = True
