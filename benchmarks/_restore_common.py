"""Shared driver for the Figs. 5-7 restore-mode benchmarks."""

from __future__ import annotations

from _common import emit, results_path
from repro.bench import figures
from repro.bench.harness import run_restore_sweep


def run_and_report(app: str, figure: str):
    """Run the Fig. 5-7 protocol for *app* and return (series, reports)."""
    out = run_restore_sweep(app, iterations=30, checkpoint_interval=10, failure_iteration=15)
    series = out["series"]
    lines = [
        figures.series_table(series.places, series.values, value_format="{:10.2f}", header_unit="total s"),
        "",
        "shape checks: all resilient modes sit above the non-resilient",
        "baseline; shrink-rebalance is the most expensive mode at scale.",
    ]
    csv = figures.write_csv(results_path(f"{app}_restore_modes.csv"), series.places, series.values)
    lines.append(f"series written to {csv}")
    emit(
        f"{figure} — {app}: total runtime, 30 iterations, 1 failure @ iter 15, "
        "checkpoints every 10",
        "\n".join(lines),
    )
    return out


def assert_shapes(out) -> None:
    series = out["series"]
    baseline = series.values["non-resilient (no failure)"]
    for mode in ("shrink", "shrink-rebalance", "replace-redundant"):
        mode_totals = series.values[mode]
        # Resilient execution with a failure always costs more than the
        # failure-free non-resilient baseline.
        assert all(m > b for m, b in zip(mode_totals, baseline))
    # At the largest place count, shrink-rebalance is the costliest mode.
    assert series.values["shrink-rebalance"][-1] >= series.values["replace-redundant"][-1]
