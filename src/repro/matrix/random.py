"""Deterministic random initialization for distributed matrices.

Two requirements drive this module:

1. **Per-block determinism** — a distributed matrix initialized over any
   place group must hold the same logical values, so a failure-and-restore
   run can be compared element-wise against a failure-free run.  Dense
   blocks are therefore seeded from ``(seed, rb, cb)`` via
   ``np.random.SeedSequence`` spawn keys.

2. **Grid independence for sparse graphs** — the PageRank link matrix must
   be the *same logical matrix* under any blocking, because the
   shrink-rebalance restore changes the grid.  We synthesize edges with a
   stateless integer hash (splitmix64) per ``(column, k)`` pair: any block
   can enumerate exactly its own region's non-zeros without global state.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.matrix.dense import DenseMatrix
from repro.matrix.sparse import SparseCSR
from repro.util.validation import check_positive, require


def block_rng(seed: int, rb: int, cb: int) -> np.random.Generator:
    """A generator deterministically derived from ``(seed, rb, cb)``."""
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(rb, cb)))


def random_dense_block(seed: int, rb: int, cb: int, rows: int, cols: int) -> DenseMatrix:
    """Uniform [0, 1) dense block, reproducible per block coordinates."""
    return DenseMatrix(block_rng(seed, rb, cb).random((rows, cols)))


def random_vector(seed: int, n: int, tag: int = 0) -> np.ndarray:
    """Uniform [0, 1) vector, reproducible from ``(seed, tag)``."""
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(tag,))).random(n)


def random_sparse_block(
    seed: int, rb: int, cb: int, rows: int, cols: int, density: float
) -> SparseCSR:
    """Random CSR block with ``round(density * rows * cols)`` non-zeros."""
    require(0.0 <= density <= 1.0, f"density must be in [0,1], got {density}")
    total = rows * cols
    nnz = int(round(density * total))
    if total == 0 or nnz == 0:
        return SparseCSR.empty(rows, cols)
    rng = block_rng(seed, rb, cb)
    positions = rng.choice(total, size=min(nnz, total), replace=False)
    return SparseCSR.from_coo(
        rows, cols, positions // cols, positions % cols, rng.random(len(positions))
    )


# -- grid-independent synthetic link matrix (PageRank workload) -------------

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer: uniform 64-bit hash of the input."""
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


#: (seed, n, out_degree) -> generated (rows, cols) edge arrays, shared by
#: every LinkMatrix instance of the same logical matrix.  The arrays are
#: only read (``destinations`` returns copies of slices), so sharing is safe.
_EDGES_MEMO_CAPACITY = 8
_edges_memo: dict = {}


class LinkMatrix:
    """A synthetic column-stochastic web-link matrix of order *n*.

    Column *j* has exactly *out_degree* out-links whose destinations are
    ``hash(seed, j, k) mod n`` for ``k in 0..out_degree-1`` (duplicate
    destinations coalesce, summing their weight, exactly as a multigraph
    collapses).  Every column sums to 1, so the PageRank iteration
    ``P = αGP + (1-α)/n`` preserves ``sum(P) = 1``.

    Because destinations are a pure function of ``(seed, j, k)``, any block
    of the matrix can be materialized independently — the logical matrix is
    identical under every grid, which the shrink-rebalance restore requires.
    """

    def __init__(self, n: int, out_degree: int, seed: int = 0):
        check_positive(n, "n")
        check_positive(out_degree, "out_degree")
        self.n = n
        self.out_degree = out_degree
        self.seed = seed
        self._dest_cache: "Tuple[np.ndarray, np.ndarray] | None" = None

    def destinations(self, j0: int, j1: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, cols)`` of all edges with source columns in ``[j0, j1)``.

        Edges for the whole matrix are memoized on first use (they are
        column-ordered, so any column range is a contiguous slice); blocks
        spanning many columns then cost a slice instead of a re-hash.
        """
        require(0 <= j0 <= j1 <= self.n, "bad column range")
        if self._dest_cache is None:
            # Edges are a pure function of (seed, n, out_degree), so share
            # the generated arrays across instances — chaos campaigns build
            # a fresh LinkMatrix per schedule over the identical workload.
            memo_key = (self.seed, self.n, self.out_degree)
            cached = _edges_memo.get(memo_key)
            if cached is None:
                if len(_edges_memo) >= _EDGES_MEMO_CAPACITY:
                    _edges_memo.clear()
                cached = _edges_memo[memo_key] = self._generate(0, self.n)
            self._dest_cache = cached
        rows, cols = self._dest_cache
        lo, hi = j0 * self.out_degree, j1 * self.out_degree
        return rows[lo:hi].copy(), cols[lo:hi].copy()

    def _generate(self, j0: int, j1: int) -> Tuple[np.ndarray, np.ndarray]:
        cols = np.repeat(np.arange(j0, j1, dtype=np.uint64), self.out_degree)
        ks = np.tile(np.arange(self.out_degree, dtype=np.uint64), j1 - j0)
        with np.errstate(over="ignore"):
            key = (
                np.uint64(self.seed) * _GOLDEN
                + cols * np.uint64(0x100000001B3)
                + ks
            )
        rows = (_splitmix64(key) % np.uint64(self.n)).astype(np.int64)
        return rows, cols.astype(np.int64)

    def block(self, r0: int, r1: int, c0: int, c1: int) -> SparseCSR:
        """Materialize the sub-matrix ``[r0:r1, c0:c1]`` as a CSR block."""
        rows, cols = self.destinations(c0, c1)
        mask = (rows >= r0) & (rows < r1)
        return SparseCSR.from_coo(
            r1 - r0,
            c1 - c0,
            rows[mask] - r0,
            cols[mask] - c0,
            np.full(int(mask.sum()), 1.0 / self.out_degree),
        )

    def nnz_estimate(self) -> int:
        """Upper bound on total stored entries (duplicates coalesce)."""
        return self.n * self.out_degree
