"""Detection-timeout sweep — false positives vs time-to-recovery.

The φ-accrual detector has one paper-facing knob: the detection timeout
(with heartbeats every ``timeout / 10`` by default).  This benchmark sweeps
the timeout-to-heartbeat ratio under *hostile but survivable* noise — every
run gets a straggler whose slowdown begins after the detector calibrated
(the worst case: μ must retrain while heartbeats arrive late) plus 15%
heartbeat loss — and measures both sides of the trade:

* **false-positive rate**: fraction of kill-free runs in which a live
  place was evicted (the cost of an aggressive timeout);
* **time-to-recovery**: mean detection wait + restore duration when one
  place really dies (the cost of a conservative timeout).

The default ratio (timeout = 10 heartbeats) must absorb an 8x straggler
with zero spurious evictions, while every swept ratio still converges when
a place actually dies — the imperfect-detection acceptance criteria.
"""

import math

import numpy as np

from _common import emit, results_path
from repro.apps.data import RegressionWorkload
from repro.apps.resilient import LinRegResilient
from repro.bench import figures
from repro.bench.calibration import regression_cost
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.placement import make_placement
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.exceptions import DataLossError
from repro.runtime.failure import TransientFaultModel
from repro.runtime.runtime import Runtime

PLACES = 8
ITERATIONS = 12
CHECKPOINT_INTERVAL = 4
DROP_RATE = 0.15
#: Detection timeout as a multiple of the heartbeat interval (the default
#: configuration is ratio 10).
RATIOS = [2, 5, 10, 20, 40]
RUNS_PER_RATIO = 12
KILL_ITERATION = 6


def _workload() -> RegressionWorkload:
    return RegressionWorkload(
        features=8, examples_per_place=64, blocks_per_place=2, iterations=ITERATIONS
    )


def _baseline_duration() -> float:
    """Failure-free virtual duration; sets the heartbeat time scale."""
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    app = LinRegResilient(rt, _workload())
    report = IterativeExecutor(
        rt, app, checkpoint_interval=CHECKPOINT_INTERVAL
    ).run()
    return report.total_time


def _run_once(interval: float, ratio: int, seed: int, kill: bool):
    """One seeded run; returns the ExecutionReport or a DataLossError."""
    rng = np.random.default_rng([seed, ratio, int(kill)])
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    app = LinRegResilient(rt, _workload())
    detector = PhiAccrualDetector(
        rt, detect_timeout=ratio * interval, heartbeat_interval=interval
    )
    # Straggler onset *after* the detector calibrated on healthy gaps —
    # μ must retrain while heartbeats arrive up to 8x late.
    straggler = int(rng.integers(1, PLACES))
    rt.set_straggler(straggler, float(rng.uniform(4.0, 8.0)))
    rt.set_faults(TransientFaultModel(drop_rate=DROP_RATE, seed=seed))
    if kill:
        candidates = [p for p in range(1, PLACES) if p != straggler]
        victim = int(rng.choice(candidates))
        rt.injector.kill_at_iteration(victim, iteration=KILL_ITERATION)
    executor = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        mode=RestoreMode.SHRINK_REBALANCE,
        replicas=2,
        placement=make_placement("spread"),
        detector=detector,
    )
    try:
        return executor.run()
    except DataLossError as err:
        return err


def run_sweep():
    interval = _baseline_duration() / 100.0
    rows = []
    for ratio in RATIOS:
        false_positives = 0
        lost = 0
        waits = []
        recoveries = []
        for seed in range(RUNS_PER_RATIO):
            quiet = _run_once(interval, ratio, seed, kill=False)
            if isinstance(quiet, DataLossError):
                # An eviction storm defeated the replication level: the
                # most extreme false-positive outcome.
                false_positives += 1
                lost += 1
            elif quiet.false_positive_evictions:
                false_positives += 1
            noisy = _run_once(interval, ratio, seed, kill=True)
            if isinstance(noisy, DataLossError):
                lost += 1
                continue
            waits.append(noisy.detection_wait_time)
            restore = (
                sum(noisy.restore_durations) / len(noisy.restore_durations)
                if noisy.restore_durations
                else 0.0
            )
            recoveries.append(noisy.detection_wait_time + restore)
        rows.append(
            {
                "ratio": ratio,
                "timeout_s": ratio * interval,
                "fp_rate": false_positives / RUNS_PER_RATIO,
                "detect_wait_s": sum(waits) / len(waits) if waits else math.nan,
                "recovery_s": (
                    sum(recoveries) / len(recoveries) if recoveries else math.nan
                ),
                "data_loss": lost,
            }
        )
    return interval, rows


def test_detection_timeout_tradeoff(benchmark):
    interval, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"heartbeat interval: {interval:.4f} virtual s, drop rate {DROP_RATE:g}, "
        f"straggler onset up to 8x",
        "",
        "timeout/hb  timeout(s)  FP rate  detect wait(s)  recovery(s)",
    ]
    for row in rows:
        lines.append(
            f"{row['ratio']:10d}  {row['timeout_s']:10.4f}  "
            f"{row['fp_rate']:7.2f}  {row['detect_wait_s']:14.4f}  "
            f"{row['recovery_s']:11.4f}"
        )
    csv = figures.write_csv(
        results_path("detection.csv"),
        [row["ratio"] for row in rows],
        {
            "timeout_s": [row["timeout_s"] for row in rows],
            "fp_rate": [row["fp_rate"] for row in rows],
            "detect_wait_s": [row["detect_wait_s"] for row in rows],
            "recovery_s": [row["recovery_s"] for row in rows],
            "data_loss": [float(row["data_loss"]) for row in rows],
        },
    )
    lines.append(f"series written to {csv}")
    emit("Detection timeout sweep — false positives vs time-to-recovery", "\n".join(lines))

    by_ratio = {row["ratio"]: row for row in rows}
    # The default ratio (and anything more conservative) absorbs the
    # straggler + loss noise without a single spurious eviction.
    for ratio in (10, 20, 40):
        assert by_ratio[ratio]["fp_rate"] == 0.0, (
            f"ratio {ratio} evicted a live place"
        )
    # Aggressive timeouts pay in false positives, conservative ones in
    # detection latency: the curve must actually slope both ways.
    assert rows[0]["fp_rate"] >= rows[-1]["fp_rate"]
    assert rows[-1]["detect_wait_s"] > rows[0]["detect_wait_s"]
