"""Multi-job service layer: shared place pool, admission, spare economics.

Builds the ISSUE-6 tentpole on top of :mod:`repro.runtime.pool`: a
:class:`ClusterService` admits a seeded stream of mixed iterative jobs
(linreg / logreg / pagerank / gnmf) against one shared :class:`PlacePool`,
carving a :class:`~repro.runtime.pool.PlaceLease` per tenant, scoping
failures per lease, and settling replacement places from the shared spare
reserve under configurable economics.
"""

from repro.service.admission import AdmissionController, JobQueue
from repro.service.faults import PoolFaultEvent, ServiceFaultPlan
from repro.service.jobs import (
    SERVICE_APPS,
    BaselineCache,
    JobResult,
    JobSpec,
    generate_jobs,
)
from repro.service.service import (
    ClusterService,
    ServiceConfig,
    ServiceReport,
    full_width_on_common_jobs,
    run_service,
    survival_on_common_jobs,
)

__all__ = [
    "AdmissionController",
    "BaselineCache",
    "ClusterService",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "PoolFaultEvent",
    "SERVICE_APPS",
    "ServiceConfig",
    "ServiceFaultPlan",
    "ServiceReport",
    "full_width_on_common_jobs",
    "generate_jobs",
    "run_service",
    "survival_on_common_jobs",
]
