"""Tiered store — checkpoint cost and recovery time vs replication level K.

Two facets of the k-replica snapshot store on the LinReg workload:

* **cost**: the full (first) checkpoint duration as a function of K with
  the spread placement — each extra replica adds a fan-out transfer per
  partition, so the cost must grow monotonically in K;
* **recovery**: a correlated *adjacent-pair* kill (the burst that defeats
  the paper's double store).  K >= 2 with the spread placement recovers
  from memory; K < 2 with the paper's ring placement cannot keep a copy of
  every partition out of the blast radius, so those configurations run
  with the stable-storage fallback tier and recover from disk.  Either
  way, recovering must be cheaper than restarting the application from
  scratch — the framework's raison d'être.

Writes ``results/replication.csv``.
"""

import json
import os

import pytest

from _common import emit, results_path
from repro.apps.resilient import LinRegResilient
from repro.bench import figures
from repro.bench.calibration import regression_bench_workload, regression_cost
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.placement import make_placement
from repro.runtime import Runtime

PLACES = 12
ITERATIONS = 30
INTERVAL = 3
KS = [0, 1, 2, 3]


def _executor(
    rt: Runtime, k: int, placement: str, stable_fallback: bool
) -> IterativeExecutor:
    app = LinRegResilient(rt, regression_bench_workload(ITERATIONS))
    return IterativeExecutor(
        rt,
        app,
        checkpoint_interval=INTERVAL,
        replicas=k,
        placement=make_placement(placement),
        stable_fallback=stable_fallback or None,
    )


def checkpoint_cost(k: int) -> float:
    """Failure-free full-checkpoint duration (pure in-memory store)."""
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    report = _executor(rt, k, "spread", stable_fallback=False).run()
    return report.checkpoint_durations[0]


def recovery_run(k: int) -> dict:
    """Adjacent-pair kill; K < 2 (ring) leans on the stable-storage tier."""
    stable = k < 2
    placement = "ring" if k < 2 else "spread"
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    executor = _executor(rt, k, placement, stable_fallback=stable)
    mid = PLACES // 2
    rt.injector.kill_at_iteration(mid, iteration=INTERVAL + 1)
    rt.injector.kill_at_iteration(mid + 1, iteration=INTERVAL + 1)
    report = executor.run()
    return {
        "restores": report.restores,
        "recovery_s": report.restore_time + report.lost_time,
        "total_s": report.total_time,
        "disk_reads": report.stable_fallback_reads,
    }


def baseline_total() -> float:
    """Failure-free resilient run at the paper's configuration (k=1)."""
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    return _executor(rt, 1, "ring", stable_fallback=False).run().total_time


def run_sweep():
    ckpt = {k: checkpoint_cost(k) for k in KS}
    recovery = {k: recovery_run(k) for k in KS}
    return ckpt, recovery, baseline_total()


def test_replication_sweep(benchmark):
    ckpt, recovery, baseline = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [
        f"LinReg @ {PLACES} places, adjacent double kill at iteration "
        f"{INTERVAL + 1} (k<2 use the disk tier):",
        "k  checkpoint(s)  recovery(s)  total(s)  disk reads",
    ]
    for k in KS:
        r = recovery[k]
        lines.append(
            f"{k}  {ckpt[k]:13.3f}  {r['recovery_s']:11.3f}  "
            f"{r['total_s']:8.3f}  {r['disk_reads']:10d}"
        )
    lines.append(f"failure-free total (k=1): {baseline:.3f} s")
    csv = figures.write_csv(
        results_path("replication.csv"),
        KS,
        {
            "checkpoint_s": [ckpt[k] for k in KS],
            "recovery_s": [recovery[k]["recovery_s"] for k in KS],
            "total_s": [recovery[k]["total_s"] for k in KS],
            "disk_fallback_reads": [float(recovery[k]["disk_reads"]) for k in KS],
        },
        x_name="replicas",
    )
    lines.append(f"series written to {csv}")
    emit("Tiered store — checkpoint cost & recovery vs replicas K", "\n".join(lines))

    # Each replica adds backup traffic: checkpoint cost is monotone in K.
    assert ckpt[0] < ckpt[1] < ckpt[2] < ckpt[3]
    for k in KS:
        r = recovery[k]
        # Every configuration recovers from the adjacent double kill...
        assert r["restores"] >= 1
        # ...k<2 only via the disk tier, k>=2 purely in memory...
        assert (r["disk_reads"] > 0) == (k < 2)
        # ...and recovering beats restarting the whole run from scratch.
        assert r["recovery_s"] < baseline


# -- bytes-vs-recoverability frontier: replicas K vs parity groups G ----------
#
# The frontier the parity tier was built for: per-key replication multiplies
# checkpoint bytes by (K+1) to survive K losses per key, while one XOR block
# per G partitions survives any single loss per group at ~(1 + 1/G)x.  Each
# configuration is charged its physical checkpoint bytes and then faces the
# same set of single-kill schedules; "survived" means the run finished and
# "in memory" means it never read the stable-storage tier.
#
# Writes ``results/parity.csv`` and ``BENCH_parity.json``.

FRONTIER = [
    ("k=1", 1, "spread"),
    ("k=2", 2, "spread"),
    ("k=3", 3, "spread"),
    ("parity:2", 1, "parity:2"),
    ("parity:4", 1, "parity:4"),
    ("parity:8", 1, "parity:8"),
]
SINGLE_KILL_VICTIMS = [1, 3, 6, 9, 11]


def _frontier_executor(rt: Runtime, replicas: int, placement: str):
    app = LinRegResilient(rt, regression_bench_workload(ITERATIONS))
    return IterativeExecutor(
        rt,
        app,
        checkpoint_interval=INTERVAL,
        mode=RestoreMode.REPLACE_REDUNDANT,
        replicas=replicas,
        placement=make_placement(placement),
    )


def stored_bytes(replicas: int, placement: str) -> dict:
    """Failure-free run: physical checkpoint footprint across all tiers."""
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    executor = _frontier_executor(rt, replicas, placement)
    report = executor.run()
    return {
        "stored_bytes": executor.store.total_stored_bytes(),
        "checkpoint_s": report.checkpoint_durations[0],
    }


def single_kill(replicas: int, placement: str, victim: int) -> dict:
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True, spares=1)
    executor = _frontier_executor(rt, replicas, placement)
    rt.injector.kill_at_iteration(victim, iteration=INTERVAL + 1)
    try:
        report = executor.run()
    except Exception:  # DataLossError: the code was too weak for the kill
        return {"survived": False, "in_memory": False, "recovery_s": None}
    return {
        "survived": True,
        "in_memory": report.stable_fallback_reads == 0,
        "recovery_s": report.restore_time + report.lost_time,
        "parity_reconstructions": report.parity_reconstructions,
    }


def run_frontier():
    baseline = stored_bytes(0, "spread")["stored_bytes"]  # 1x logical bytes
    cells = {}
    for name, replicas, placement in FRONTIER:
        cell = stored_bytes(replicas, placement)
        cell["bytes_ratio"] = cell["stored_bytes"] / baseline
        cell["kills"] = {
            victim: single_kill(replicas, placement, victim)
            for victim in SINGLE_KILL_VICTIMS
        }
        cells[name] = cell
    return baseline, cells


def test_parity_frontier(benchmark):
    baseline, cells = benchmark.pedantic(run_frontier, rounds=1, iterations=1)

    lines = [
        f"LinReg @ {PLACES} places, single kill at iteration {INTERVAL + 1} "
        f"(victims {SINGLE_KILL_VICTIMS}); bytes relative to the "
        "redundancy-free checkpoint:",
        "config     bytes x  ckpt(s)  survived  in-memory",
    ]
    for name, _, _ in FRONTIER:
        cell = cells[name]
        kills = cell["kills"].values()
        survived = sum(k["survived"] for k in kills)
        memory = sum(k["in_memory"] for k in kills)
        lines.append(
            f"{name:9s}  {cell['bytes_ratio']:6.3f}  {cell['checkpoint_s']:7.3f}"
            f"  {survived}/{len(cell['kills'])}       {memory}/{len(cell['kills'])}"
        )
    names = [name for name, _, _ in FRONTIER]
    csv = figures.write_csv(
        results_path("parity.csv"),
        names,
        {
            "bytes_ratio": [cells[n]["bytes_ratio"] for n in names],
            "checkpoint_s": [cells[n]["checkpoint_s"] for n in names],
            "survived_single_kills": [
                float(sum(k["survived"] for k in cells[n]["kills"].values()))
                for n in names
            ],
            "in_memory_recoveries": [
                float(sum(k["in_memory"] for k in cells[n]["kills"].values()))
                for n in names
            ],
        },
        x_name="config",
    )
    lines.append(f"series written to {csv}")
    emit("Bytes-vs-recoverability frontier — replicas K vs parity G", "\n".join(lines))

    bench_json = os.path.abspath(
        os.path.join(os.path.dirname(results_path("x")), os.pardir, "BENCH_parity.json")
    )
    with open(bench_json, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "config": {
                    "places": PLACES,
                    "iterations": ITERATIONS,
                    "interval": INTERVAL,
                    "victims": SINGLE_KILL_VICTIMS,
                    "baseline_bytes": baseline,
                },
                "frontier": cells,
            },
            fh,
            indent=2,
        )

    # Replication pays (K+1)x; every parity group beats even K=1.
    for k in (1, 2, 3):
        assert cells[f"k={k}"]["bytes_ratio"] == pytest.approx(k + 1)
    assert cells["parity:8"]["bytes_ratio"] < cells["parity:4"]["bytes_ratio"]
    assert cells["parity:4"]["bytes_ratio"] < cells["parity:2"]["bytes_ratio"]
    assert cells["parity:2"]["bytes_ratio"] < cells["k=1"]["bytes_ratio"]
    # The ISSUE bar: parity:4 at <= 1.35x the redundancy-free bytes...
    assert cells["parity:4"]["bytes_ratio"] <= 1.35
    # ...while matching k=2's survival on every single-kill schedule,
    # recovering in memory via XOR (never touching the disk tier).
    for victim in SINGLE_KILL_VICTIMS:
        reference = cells["k=2"]["kills"][victim]
        assert reference["survived"] and reference["in_memory"]
        for g in (2, 4, 8):
            kill = cells[f"parity:{g}"]["kills"][victim]
            assert kill["survived"] and kill["in_memory"]
            assert kill["parity_reconstructions"] >= 1
