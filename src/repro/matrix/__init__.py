"""The Global Matrix Library (GML) reproduction.

Single-place classes (pure numerics):
:class:`Vector`, :class:`DenseMatrix`, :class:`SparseCSR`, :class:`SparseCSC`.

Multi-place classes (Table I of the paper):

=============  =====================  ===========================================
               Duplicated             Distributed
=============  =====================  ===========================================
Vectors        :class:`DupVector`     :class:`DistVector`
Matrices       :class:`DupDenseMatrix`,
               :class:`DupSparseMatrix`  :class:`DistDenseMatrix`,
                                         :class:`DistSparseMatrix`,
                                         :class:`DistBlockMatrix`
=============  =====================  ===========================================

Supporting machinery: :class:`Grid` / :class:`Partition1D` (block
partitioning and overlap math), :class:`BlockSet` (per-place block
container), block→place maps, and the distributed kernels in
:mod:`repro.matrix.ops`.
"""

from repro.matrix.block import BlockSet, MatrixBlock
from repro.matrix.dense import DenseMatrix, flops_cellwise, flops_matmul, flops_matvec
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distmatrix import DistDenseMatrix, DistSparseMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupmatrix import DupDenseMatrix, DupSparseMatrix
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Grid, Overlap, Partition1D, Region, split_even
from repro.matrix.mapping import (
    BlockMap,
    CyclicBlockMap,
    GroupedBlockMap,
    PlaceGridBlockMap,
    factor_place_grid,
)
from repro.matrix.ops import (
    dist_block_matvec,
    dist_block_t_matvec,
    dist_gram,
    dist_matmat_dup,
    dist_matmul,
)
from repro.matrix.random import LinkMatrix, random_dense_block, random_sparse_block, random_vector
from repro.matrix.sparse import SparseCSC, SparseCSR, flops_spmv
from repro.matrix.vector import Vector

__all__ = [
    "BlockSet",
    "MatrixBlock",
    "DenseMatrix",
    "flops_cellwise",
    "flops_matmul",
    "flops_matvec",
    "DistBlockMatrix",
    "DistDenseMatrix",
    "DistSparseMatrix",
    "DistVector",
    "DupDenseMatrix",
    "DupSparseMatrix",
    "DupVector",
    "Grid",
    "Overlap",
    "Partition1D",
    "Region",
    "split_even",
    "BlockMap",
    "CyclicBlockMap",
    "GroupedBlockMap",
    "PlaceGridBlockMap",
    "factor_place_grid",
    "dist_block_matvec",
    "dist_block_t_matvec",
    "dist_gram",
    "dist_matmat_dup",
    "dist_matmul",
    "LinkMatrix",
    "random_dense_block",
    "random_sparse_block",
    "random_vector",
    "SparseCSC",
    "SparseCSR",
    "flops_spmv",
    "Vector",
]
