"""Tests for the benchmark harness (small axes so they run quickly)."""


from repro.bench import calibration, figures
from repro.bench.harness import (
    APP_REGISTRY,
    run_checkpoint_sweep,
    run_overhead_sweep,
    run_restore_sweep,
    table4_from_reports,
)


class TestCalibration:
    def test_places_axis_matches_paper(self):
        axis = calibration.places_axis()
        assert axis[0] == 2 and axis[-1] == 44
        assert axis == [2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44]

    def test_cluster_profile_valid(self):
        from repro.runtime.cost import validate_cost_model

        assert validate_cost_model(calibration.cluster_2015()) is None

    def test_scales_applied(self):
        assert calibration.regression_cost().logical_scale == calibration.REGRESSION_SCALE
        assert calibration.pagerank_cost().logical_scale == calibration.PAGERANK_SCALE

    def test_registry_covers_all_apps(self):
        assert set(APP_REGISTRY) == {"linreg", "logreg", "pagerank", "gnmf", "cg"}


class TestOverheadSweep:
    def test_produces_both_series(self):
        s = run_overhead_sweep("linreg", places_list=[2, 4], iterations=3)
        assert s.places == [2, 4]
        assert set(s.values) == {"non-resilient finish", "resilient finish"}
        assert all(len(v) == 2 for v in s.values.values())

    def test_resilient_costs_more(self):
        s = run_overhead_sweep("pagerank", places_list=[4], iterations=3)
        assert s.values["resilient finish"][0] >= s.values["non-resilient finish"][0]


class TestCheckpointSweep:
    def test_three_checkpoints_per_run(self):
        s = run_checkpoint_sweep("linreg", places_list=[3], iterations=30)
        assert s.values["checkpoints"] == [3.0]
        assert s.values["mean checkpoint (ms)"][0] > 0


class TestRestoreSweep:
    def test_all_modes_and_baseline(self):
        out = run_restore_sweep(
            "pagerank", places_list=[4], iterations=12, checkpoint_interval=5,
            failure_iteration=7,
        )
        series = out["series"]
        assert set(series.values) == {
            "shrink",
            "shrink-rebalance",
            "replace-redundant",
            "non-resilient (no failure)",
        }
        t4 = table4_from_reports(out["reports"], places=4)
        for mode, row in t4.items():
            assert 0 <= row["C%"] <= 100
            assert 0 <= row["R%"] <= 100

    def test_failure_actually_happened(self):
        out = run_restore_sweep(
            "linreg", places_list=[4], iterations=12, checkpoint_interval=5,
            failure_iteration=7,
        )
        for by_places in out["reports"].values():
            assert by_places[4].restores == 1


class TestFigures:
    def test_series_table(self):
        table = figures.series_table([2, 4], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert "places" in table
        assert len(table.splitlines()) == 3

    def test_ascii_chart(self):
        chart = figures.ascii_chart([2, 4], {"a": [1.0, 2.0]}, title="t")
        assert "t" in chart and "█" in chart

    def test_write_csv(self, tmp_path):
        path = figures.write_csv(
            str(tmp_path / "x.csv"), [2, 4], {"a": [1.0, 2.0]}
        )
        content = open(path).read().splitlines()
        assert content[0] == "places,a"
        assert content[1].startswith("2,")

    def test_comparison_line(self):
        line = figures.comparison_line("w", 100.0, 150.0)
        assert "1.50x" in line


class TestParallelHarness:
    """The --jobs process pool must never change a sweep's values."""

    def test_overhead_sweep_jobs_identical(self):
        serial = run_overhead_sweep("linreg", places_list=[2, 4, 8], iterations=3)
        pooled = run_overhead_sweep(
            "linreg", places_list=[2, 4, 8], iterations=3, jobs=2
        )
        assert pooled.places == serial.places
        assert pooled.values == serial.values

    def test_checkpoint_sweep_jobs_identical(self):
        serial = run_checkpoint_sweep("pagerank", places_list=[3, 4], iterations=10)
        pooled = run_checkpoint_sweep(
            "pagerank", places_list=[3, 4], iterations=10, jobs=2
        )
        assert pooled.values == serial.values

    def test_restore_sweep_jobs_identical(self):
        kw = dict(
            places_list=[4, 6], iterations=12, checkpoint_interval=5,
            failure_iteration=7,
        )
        serial = run_restore_sweep("linreg", **kw)
        pooled = run_restore_sweep("linreg", jobs=2, **kw)
        assert pooled["series"].values == serial["series"].values
        for mode, by_places in serial["reports"].items():
            for places, report in by_places.items():
                assert (
                    pooled["reports"][mode][places].total_time == report.total_time
                )

    def test_checkpoint_sweep_delta_is_cheaper_for_pagerank(self):
        # PageRank's mutable save (the rank vector) dirties every
        # checkpoint, but its read-only reuse already dominates; the delta
        # path must at minimum never be more expensive.
        full = run_checkpoint_sweep("pagerank", places_list=[4], iterations=30)
        delta = run_checkpoint_sweep(
            "pagerank", places_list=[4], iterations=30, delta=True
        )
        assert (
            delta.values["mean checkpoint (ms)"][0]
            <= full.values["mean checkpoint (ms)"][0] * 1.001
        )
