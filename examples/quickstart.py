"""Quickstart: GML matrices on a simulated APGAS world, with a failure.

Builds a small distributed matrix over 4 places, runs a distributed
matrix-vector product, snapshots the matrix, kills a place, and restores
onto the survivors — the core resilient-GML loop in ~40 lines of user code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CostModel, Runtime
from repro.matrix import DistBlockMatrix, DistVector, DupVector

# A 4-place world with a generic cluster cost profile.  `resilient=True`
# turns on failure-aware finish (with its bookkeeping cost).
rt = Runtime(nplaces=4, cost=CostModel.laptop(), resilient=True)

# An 800x100 dense matrix cut into 8 row blocks (2 per place), a duplicated
# input vector, and a distributed output aligned to the matrix's rows.
A = DistBlockMatrix.make_dense(rt, 800, 100, row_blocks=8, col_blocks=1)
A.init_random(seed=7)
x = DupVector.make(rt, 100).init_random(seed=9)
y = DistVector.make(rt, 800, partition=A.aligned_row_partition())

# y = A @ x, computed block-wise across places.
y.mult(A, x)
reference = A.to_dense().data @ x.to_array()
print("matvec max error vs NumPy:", np.abs(y.to_array() - reference).max())
print(f"virtual time so far: {rt.now() * 1e3:.2f} ms across {rt.stats.finishes} finishes")

# Snapshot the matrix (primary copy per place + backup on the next place).
snapshot = A.make_snapshot()

# Fail-stop place 2: its heap — including its matrix blocks — is destroyed.
rt.kill(2)
print("killed place 2; survivors:", rt.live_world().ids)

# Remake the matrix over the survivors (same grid: shrink-style) and
# restore its data block by block from the snapshot.
survivors = rt.live_world()
A.remake(survivors)
A.restore_snapshot(snapshot)
print("blocks per place after shrink:", A.blocks_per_place())

# The logical matrix is intact: redo the matvec on 3 places.
x.remake(survivors)
x.init_random(seed=9)
y.remake(survivors, partition=A.aligned_row_partition())
y.mult(A, x)
print("post-failure matvec max error:", np.abs(y.to_array() - reference).max())
print(f"total virtual time: {rt.now() * 1e3:.2f} ms")
