"""Argument validation helpers.

GML's public factory methods validate their configuration eagerly (matrix
dimensions, grid shapes, place-group sizes) so that misconfiguration fails
at object-creation time rather than deep inside a distributed kernel.  These
helpers centralise the checks and produce uniform error messages.
"""

from __future__ import annotations

from typing import Sized


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: int, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_index(index: int, size: int, name: str = "index") -> int:
    """Validate ``0 <= index < size`` and return *index*."""
    if not 0 <= index < size:
        raise IndexError(f"{name} {index} out of range [0, {size})")
    return index


def check_same_length(a: Sized, b: Sized, what: str = "operands") -> None:
    """Validate two sized operands have equal length."""
    if len(a) != len(b):
        raise ValueError(f"{what} differ in length: {len(a)} vs {len(b)}")
