"""Tests for the one-block-per-place and duplicated matrix classes."""

import numpy as np
import pytest

from repro.matrix.dense import DenseMatrix
from repro.matrix.distmatrix import DistDenseMatrix, DistSparseMatrix
from repro.matrix.dupmatrix import DupDenseMatrix, DupSparseMatrix
from repro.matrix.sparse import SparseCSR
from repro.runtime import CostModel, PlaceGroup, Runtime


def make_rt(n=4):
    return Runtime(n, cost=CostModel.zero())


class TestDistDense:
    def test_one_block_per_place(self):
        rt = make_rt(3)
        g = DistDenseMatrix.make(rt, 10, 4)
        assert g.blocks_per_place() == [1, 1, 1]
        assert g.grid.num_row_blocks == 3

    def test_block_of_place(self):
        rt = make_rt(3)
        g = DistDenseMatrix.make(rt, 10, 4)
        assert g.block_of_place(0).shape == (4, 4)
        assert g.block_of_place(2).shape == (3, 4)

    def test_remake_recalculates_grid(self):
        # §IV-A2: one-block-per-place classes must re-grid on group change.
        rt = make_rt(4)
        g = DistDenseMatrix.make(rt, 12, 4).init_random(1)
        rt.kill(1)
        g.remake(rt.live_world())
        assert g.grid.num_row_blocks == 3
        assert g.blocks_per_place() == [1, 1, 1]

    def test_remake_rejects_explicit_grid(self):
        rt = make_rt(2)
        g = DistDenseMatrix.make(rt, 8, 4)
        from repro.matrix.grid import Grid

        with pytest.raises(ValueError):
            g.remake(rt.world, new_grid=Grid.partition(8, 4, 2, 1))

    def test_shrink_restore_always_regrids(self):
        rt = make_rt(4)
        g = DistDenseMatrix.make(rt, 13, 5).init_random(3)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        rt.kill(2)
        g.remake(rt.live_world())
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)


class TestDistSparse:
    def test_restore_after_failure(self):
        rt = make_rt(4)
        g = DistSparseMatrix.make(rt, 14, 14).init_random(5, density=0.3)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        rt.kill(3)
        g.remake(rt.live_world())
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    def test_kind(self):
        rt = make_rt(2)
        g = DistSparseMatrix.make(rt, 6, 6)
        assert g.kind == "sparse"


class TestDupDense:
    def test_duplicates_everywhere(self):
        rt = make_rt(3)
        proto = DenseMatrix.from_function(3, 3, lambda i, j: i + j * 2.0)
        d = DupDenseMatrix.make(rt, proto)
        assert d.replicas_consistent()
        assert np.array_equal(d.local().data, proto.data)

    def test_payload_type_checked(self):
        rt = make_rt(2)
        with pytest.raises(ValueError):
            DupDenseMatrix.make(rt, SparseCSR.empty(2, 2))
        with pytest.raises(ValueError):
            DupSparseMatrix.make(rt, DenseMatrix.make(2, 2))

    def test_sync_propagates(self):
        rt = make_rt(3)
        d = DupDenseMatrix.make_zero(rt, 2, 2)
        d.local().data[0, 0] = 5.0
        assert not d.replicas_consistent()
        d.sync()
        assert d.replicas_consistent()
        assert d.payload_at_index(2).data[0, 0] == 5.0

    def test_snapshot_restore_after_shrink(self):
        rt = make_rt(3)
        proto = DenseMatrix.from_function(4, 4, lambda i, j: i * 4.0 + j)
        d = DupDenseMatrix.make(rt, proto)
        snap = d.make_snapshot()
        rt.kill(1)
        d.remake(rt.live_world())
        d.restore_snapshot(snap)
        assert d.replicas_consistent()
        assert np.array_equal(d.local().data, proto.data)

    def test_restore_shape_checked(self):
        rt = make_rt(2)
        d = DupDenseMatrix.make_zero(rt, 2, 2)
        snap = d.make_snapshot()
        e = DupDenseMatrix.make_zero(rt, 3, 3)
        with pytest.raises(ValueError):
            e.restore_snapshot(snap)


class TestDupSparse:
    def test_roundtrip(self):
        rt = make_rt(3)
        dense = np.zeros((4, 4))
        dense[0, 1], dense[3, 2] = 2.0, 5.0
        proto = SparseCSR.from_dense(dense)
        d = DupSparseMatrix.make(rt, proto, PlaceGroup.of_ids([0, 2]))
        assert d.replicas_consistent()
        snap = d.make_snapshot()
        d.remake(PlaceGroup.of_ids([0, 2]))
        assert d.local().nnz == 0
        d.restore_snapshot(snap)
        assert np.array_equal(d.local().to_dense(), dense)

    def test_make_empty(self):
        rt = make_rt(2)
        d = DupSparseMatrix.make_empty(rt, 5, 5)
        assert d.local().nnz == 0
