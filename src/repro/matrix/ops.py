"""Distributed kernels over the multi-place classes.

Two kernels carry the paper's three applications:

* ``dist_block_matvec`` — ``y = G @ x`` with ``G`` a :class:`DistBlockMatrix`,
  ``x`` a :class:`DupVector` and ``y`` a :class:`DistVector` (Listing 2's
  ``GP.mult(G, P)``).  Each place multiplies its blocks against its local
  duplicate slice; block-row results are routed to the segment owners of
  ``y`` (free when the output partition is aligned to the block layout, a
  remote transfer after a shrink remap scatters the blocks).

* ``dist_block_t_matvec`` — ``g = Gᵀ @ r`` producing a :class:`DupVector`
  (the gradient combine of LinReg/LogReg): each place computes a partial
  full-width product from its blocks, then an all-reduce sums the partials
  into every replica.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.matrix.block import BlockSet
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.vector import Vector
from repro.runtime.comm import point_to_point
from repro.runtime.runtime import PlaceContext
from repro.util.validation import require


def _block_flops(block, sparse_factor: float = 1.0) -> float:
    """Effective flop charge of one block's matvec.

    Sparse entries are weighted by the cost model's irregular-access
    factor (CSR gathers are far slower per entry than dense BLAS).
    """
    if block.is_sparse:
        return 2.0 * block.data.nnz * sparse_factor
    h, w = block.shape
    return 2.0 * h * w


def dist_block_matvec(G: DistBlockMatrix, x: DupVector, y: DistVector) -> DistVector:
    """``y = G @ x`` — one compute finish plus result routing."""
    require(x.n == G.n, f"operand length {x.n} != matrix cols {G.n}")
    require(y.n == G.m, f"output length {y.n} != matrix rows {G.m}")
    require(G.group == x.group, "matrix and operand on different groups")
    require(G.group == y.group, "matrix and output on different groups")
    rt = G.runtime
    group = G.group

    sparse_factor = rt.cost.sparse_flop_factor
    # Flop accounting only feeds the clock charge; with a zero flop rate
    # the charge is 0.0 whatever the count, so skip the tally entirely.
    count_flops = rt.cost.flop_time != 0.0

    def compute(ctx: PlaceContext) -> Dict[int, Tuple[int, np.ndarray]]:
        bs: BlockSet = ctx.heap.get(G.heap_key)
        xdata = ctx.heap.get(x.heap_key).data
        partials: Dict[int, Tuple[int, np.ndarray]] = {}
        flops = 0.0
        for block in bs:
            r0, r1 = block.row_range()
            c0, c1 = block.col_range()
            if block.is_sparse:
                part = block.data.spmv(xdata[c0:c1])
            else:
                part = block.data.matvec(xdata[c0:c1])
            if count_flops:
                flops += _block_flops(block, sparse_factor)
            if block.rb in partials:
                partials[block.rb][1][:] += part
                if count_flops:
                    flops += r1 - r0
            else:
                partials[block.rb] = (r0, part)
        if count_flops:
            ctx.charge_flops(flops)
        return partials

    results = rt.finish_all(group, compute, label="matvec")

    # Route block-row results into the output segments.  Aligned layouts
    # route locally; scattered layouts (post-shrink) pay transfers.
    partition = y.partition
    cost = rt.cost
    clock_advance = rt.clock.advance
    cost_flops = cost.flops
    cost_memcpy = cost.memcpy
    charge_memcpy = cost.memcpy_byte_time != 0.0
    for index in range(group.size):
        seg = y.segment(index)
        seg.fill(0.0)
        if charge_memcpy:
            clock_advance(group[index].id, cost_memcpy(seg.nbytes))
    for src_index, partials in enumerate(results):
        if partials is None:
            continue
        src_place = group[src_index]
        for _rb, (r0, part) in sorted(partials.items()):
            r1 = r0 + len(part)
            for seg_index, start, end in partition.overlapping_segments(r0, r1):
                dest_place = group[seg_index]
                if dest_place != src_place:
                    point_to_point(rt, src_place.id, dest_place.id, (end - start) * 8)
                seg = y.segment(seg_index)
                seg_lo = partition.range_of(seg_index)[0]
                seg.data[start - seg_lo : end - seg_lo] += part[start - r0 : end - r0]
                if count_flops:
                    clock_advance(dest_place.id, cost_flops(end - start))
    return y


def dist_block_t_matvec(G: DistBlockMatrix, r: DistVector, g: DupVector) -> DupVector:
    """``g = Gᵀ @ r`` — per-place partials, then all-reduce into replicas."""
    require(r.n == G.m, f"operand length {r.n} != matrix rows {G.m}")
    require(g.n == G.n, f"output length {g.n} != matrix cols {G.n}")
    require(G.group == r.group, "matrix and operand on different groups")
    require(G.group == g.group, "matrix and output on different groups")
    rt = G.runtime
    group = G.group
    sparse_factor = rt.cost.sparse_flop_factor
    count_flops = rt.cost.flop_time != 0.0

    def compute(ctx: PlaceContext) -> None:
        my_index = group.index_of(ctx.place)
        bs: BlockSet = ctx.heap.get(G.heap_key)
        partial = np.zeros(G.n)
        flops = 0.0
        for block in bs:
            r0, r1 = block.row_range()
            c0, c1 = block.col_range()
            rvals = _gather_rows(ctx, r, my_index, r0, r1)
            if block.is_sparse:
                partial[c0:c1] += block.data.spmv_t(rvals)
            else:
                partial[c0:c1] += block.data.t_matvec(rvals)
            if count_flops:
                flops += _block_flops(block, sparse_factor)
        out: Vector = ctx.heap.get(g.heap_key)
        out.touch()
        out.data[:] = partial
        if count_flops:
            ctx.charge_flops(flops)

    rt.finish_all(group, compute, label="t_matvec")
    g.reduce_sum()
    return g


def _check_row_aligned(a: DistBlockMatrix, b: DistBlockMatrix) -> None:
    """Both matrices must share group, row blocking and block ownership
    (and be single-block-column) so row bands can be combined locally."""
    require(a.group == b.group, "operands on different groups")
    require(a.m == b.m, "row count mismatch")
    require(
        a.grid.num_col_blocks == 1 and b.grid.num_col_blocks == 1,
        "matrix-matrix kernels require single-column block layouts",
    )
    require(a.grid.row_sizes == b.grid.row_sizes, "row blockings differ")
    require(
        a.block_map.owner_dict() == b.block_map.owner_dict(),
        "block-to-place maps differ",
    )


def dist_gram(a: DistBlockMatrix, b: DistBlockMatrix, out) -> "object":
    """``out = aᵀ @ b`` — per-place row-band partials, all-reduced.

    ``a`` may be sparse or dense; ``b`` and the duplicated output are
    dense.  This is the Gram-product pattern of GNMF's update rules
    (``WᵀV``, ``WᵀW``): each place multiplies its row band, then the
    small ``a.n × b.n`` partials are combined into every replica.
    """
    from repro.matrix.dupmatrix import DupDenseMatrix

    _check_row_aligned(a, b)
    require(isinstance(out, DupDenseMatrix), "output must be a DupDenseMatrix")
    require((out.m, out.n) == (a.n, b.n), "output shape mismatch")
    require(out.group == a.group, "output on a different group")
    require(
        a.kind == "dense" or b.kind == "dense",
        "at least one gram operand must be dense",
    )
    rt = a.runtime
    group = a.group

    def compute(ctx: PlaceContext) -> None:
        mine: BlockSet = ctx.heap.get(a.heap_key)
        theirs: BlockSet = ctx.heap.get(b.heap_key)
        partial = np.zeros((a.n, b.n))
        flops = 0.0
        for block in mine:
            peer = theirs.get(block.rb, 0)
            if block.is_sparse:
                # sparse(a)ᵀ @ dense(b)
                partial += block.data.t_matmat(peer.data.data)
                flops += 2.0 * block.data.nnz * b.n * rt.cost.sparse_flop_factor
            elif peer.is_sparse:
                # dense(a)ᵀ @ sparse(b) = (sparse(b)ᵀ @ dense(a))ᵀ
                partial += peer.data.t_matmat(block.data.data).T
                flops += 2.0 * peer.data.nnz * a.n * rt.cost.sparse_flop_factor
            else:
                partial += block.data.data.T @ peer.data.data
                flops += 2.0 * block.shape[0] * a.n * b.n
        out_local = ctx.heap.get(out.heap_key)
        out_local.touch()
        out_local.data[:] = partial
        ctx.charge_flops(flops)

    rt.finish_all(group, compute, label="gram")
    out.reduce_sum()
    return out


def dist_matmat_dup(a: DistBlockMatrix, b, out: DistBlockMatrix) -> DistBlockMatrix:
    """``out = a @ b`` with ``b`` a :class:`DupDenseMatrix` — fully local.

    Each place multiplies its row band of ``a`` against its local replica
    of ``b`` and writes its row band of the (row-aligned, dense) output —
    the ``V·Hᵀ`` / ``W·(HHᵀ)`` pattern of GNMF.
    """
    from repro.matrix.dupmatrix import DupDenseMatrix

    _check_row_aligned(a, out)
    require(isinstance(b, DupDenseMatrix), "b must be a DupDenseMatrix")
    require(b.group == a.group, "operands on different groups")
    require(a.n == b.m, "inner dimension mismatch")
    require(out.n == b.n and out.kind == "dense", "output shape/kind mismatch")
    rt = a.runtime
    group = a.group

    def compute(ctx: PlaceContext) -> None:
        mine: BlockSet = ctx.heap.get(a.heap_key)
        outs: BlockSet = ctx.heap.get(out.heap_key)
        bdata = ctx.heap.get(b.heap_key).data
        flops = 0.0
        for block in mine:
            target = outs.get(block.rb, 0)
            target.data.touch()
            if block.is_sparse:
                target.data.data[:] = block.data.matmat(bdata)
                flops += 2.0 * block.data.nnz * b.n * rt.cost.sparse_flop_factor
            else:
                np.matmul(block.data.data, bdata, out=target.data.data)
                flops += 2.0 * block.shape[0] * a.n * b.n
        ctx.charge_flops(flops)

    rt.finish_all(group, compute, label="matmat")
    return out


def dist_matmul(a: DistBlockMatrix, b: DistBlockMatrix, c: DistBlockMatrix) -> DistBlockMatrix:
    """``c = a @ b`` with all three matrices row-distributed (SUMMA-style).

    ``a`` (m×k) and ``c`` (m×n) share their row layout; ``b`` (k×n) is
    row-distributed over the same group.  The kernel iterates over ``b``'s
    row bands: each band is broadcast to every place (one tree broadcast +
    one finish per band), which then folds ``a``'s matching column panel
    into its local ``c`` band — the classic panel-broadcast matrix-multiply
    GML implements for its distributed dense classes.
    """
    from repro.runtime.comm import tree_broadcast

    _check_row_aligned(a, c)
    require(b.group == a.group, "operands on different groups")
    require(b.grid.num_col_blocks == 1, "b must use a single block column")
    require(a.n == b.m, "inner dimension mismatch")
    require(c.n == b.n, "output column mismatch")
    require(
        a.kind == "dense" and b.kind == "dense" and c.kind == "dense",
        "dist_matmul is dense-only",
    )
    rt = a.runtime
    group = a.group

    # Zero the output bands.
    def zero(ctx: PlaceContext) -> None:
        outs: BlockSet = ctx.heap.get(c.heap_key)
        for block in outs:
            block.data.fill(0.0)

    rt.finish_all(group, zero, label="matmul:zero")

    # One panel round per row band of b, in grid order.
    for owner_index in range(group.size):
        bands = [
            (block.row_range(), block.data.data.copy())
            for block in b.block_set(owner_index)
        ]
        for (k0, k1), panel in bands:
            tree_broadcast(
                rt,
                group,
                root_index=owner_index,
                nbytes=panel.nbytes,
                label="matmul:panel",
            )

            def fold(ctx: PlaceContext, k0=k0, k1=k1, panel=panel) -> None:
                mine: BlockSet = ctx.heap.get(a.heap_key)
                outs: BlockSet = ctx.heap.get(c.heap_key)
                flops = 0.0
                for block in mine:
                    target = outs.get(block.rb, 0)
                    target.data.touch()
                    target.data.data += block.data.data[:, k0:k1] @ panel
                    flops += 2.0 * block.shape[0] * (k1 - k0) * panel.shape[1]
                ctx.charge_flops(flops)

            rt.finish_all(group, fold, label="matmul:fold")
    return c


def _gather_rows(
    ctx: PlaceContext, r: DistVector, my_index: int, r0: int, r1: int
) -> np.ndarray:
    """Collect ``r[r0:r1]`` at the calling place (local fast path)."""
    lo, hi = r.partition.range_of(my_index)
    if lo <= r0 and r1 <= hi:
        return ctx.heap.get(r.heap_key).data[r0 - lo : r1 - lo]
    out = np.empty(r1 - r0)
    for seg_index, start, end in r.partition.overlapping_segments(r0, r1):
        slo, _shi = r.partition.range_of(seg_index)
        owner = r.group[seg_index]
        if owner == ctx.place:
            piece = ctx.heap.get(r.heap_key).data[start - slo : end - slo]
        else:
            seg: Vector = ctx.read_remote(owner.id, r.heap_key, nbytes=(end - start) * 8)
            piece = seg.data[start - slo : end - slo]
        out[start - r0 : end - r0] = piece
    return out
