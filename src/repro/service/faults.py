"""Seeded fault plans for a multi-tenant service run.

Two layers of failure, mirroring what a shared cluster actually sees:

* **per-job crashes** — independent fail-stop kills scripted against one
  tenant's lease (an iteration kill, a kill inside a checkpoint, ...);
  these must never leak outside the lease;
* **pool-level correlated events** — adjacent-pair and rack bursts that
  strike contiguous *physical* ids at an absolute virtual time, blind to
  lease boundaries.  An event may legally straddle leases; the service
  folds the victims each running tenant owns into that tenant's scoped
  injector and kills unleased victims directly.

Everything is a pure function of ``(seed, knobs)``: re-running a campaign
reproduces the exact same kill schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.runtime.failure import ScriptedKill
from repro.runtime.pool import PlaceLease
from repro.service.jobs import JobSpec
from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class PoolFaultEvent:
    """One correlated burst against physical pool ids."""

    time: float
    kind: str  # "pair" | "rack"
    victims: Tuple[int, ...]


class ServiceFaultPlan:
    """The complete, seeded fault schedule of one service run."""

    def __init__(
        self,
        seed: int,
        total_places: int,
        horizon: float,
        crash_rate: float = 0.0,
        pair_rate: float = 0.0,
        rack_rate: float = 0.0,
        rack_size: int = 4,
    ):
        check_positive(total_places, "total_places")
        require(horizon >= 0, "horizon must be >= 0")
        require(0.0 <= crash_rate <= 1.0, "crash_rate must be in [0, 1]")
        require(pair_rate >= 0, "pair_rate must be >= 0")
        require(rack_rate >= 0, "rack_rate must be >= 0")
        check_positive(rack_size, "rack_size")
        self.seed = seed
        self.total_places = total_places
        self.horizon = horizon
        self.crash_rate = crash_rate
        self._events = self._generate_pool_events(
            pair_rate, rack_rate, rack_size
        )

    # -- pool-level correlated events --------------------------------------

    def _generate_pool_events(
        self, pair_rate: float, rack_rate: float, rack_size: int
    ) -> List[PoolFaultEvent]:
        events: List[PoolFaultEvent] = []
        ids = list(range(1, self.total_places))  # place 0 is immortal
        if len(ids) >= 2 and pair_rate > 0:
            rng = np.random.default_rng([self.seed, 101])
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / pair_rate))
                if t >= self.horizon:
                    break
                left = int(rng.choice(ids[:-1]))
                events.append(
                    PoolFaultEvent(time=t, kind="pair", victims=(left, left + 1))
                )
        if ids and rack_rate > 0:
            rng = np.random.default_rng([self.seed, 103])
            n_racks = (self.total_places + rack_size - 1) // rack_size
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / rack_rate))
                if t >= self.horizon:
                    break
                rack = int(rng.integers(n_racks))
                victims = tuple(
                    pid
                    for pid in range(rack * rack_size, (rack + 1) * rack_size)
                    if 1 <= pid < self.total_places
                )
                if victims:
                    events.append(
                        PoolFaultEvent(time=t, kind="rack", victims=victims)
                    )
        events.sort(key=lambda e: (e.time, e.kind, e.victims))
        return events

    @property
    def pool_events(self) -> List[PoolFaultEvent]:
        return list(self._events)

    # -- per-job crash schedules -------------------------------------------

    def kills_for_job(self, job: JobSpec, lease: PlaceLease) -> List[ScriptedKill]:
        """Independent fail-stop kills scripted against *job*'s lease.

        Deterministic in ``(plan seed, job id)``; victims are lease
        members, never the lease driver.
        """
        rng = np.random.default_rng([self.seed, 11, job.job_id])
        if rng.random() >= self.crash_rate:
            return []
        candidates = sorted(lease.member_ids - {lease.driver.id})
        if not candidates:
            return []
        kills: List[ScriptedKill] = []
        victim = int(rng.choice(candidates))
        kind = rng.random()
        if kind < 0.55:
            kills.append(
                ScriptedKill(
                    place_id=victim,
                    # Executor polls iterations 0..n-1; stay inside that.
                    iteration=int(rng.integers(1, job.iterations)),
                )
            )
        elif kind < 0.8:
            kills.append(
                ScriptedKill(place_id=victim, during="checkpoint", occurrence=1)
            )
        else:
            # A second failure while the first one's restore is in flight —
            # the paper's hardest single-tenant scenario.
            kills.append(
                ScriptedKill(
                    place_id=victim,
                    iteration=int(rng.integers(1, job.iterations)),
                )
            )
            others = [pid for pid in candidates if pid != victim]
            if others:
                kills.append(
                    ScriptedKill(
                        place_id=int(rng.choice(others)),
                        during="restore",
                        occurrence=1,
                    )
                )
        return kills

    def straddling_kills(
        self, lease: PlaceLease, now: float
    ) -> List[ScriptedKill]:
        """Timed kills for future pool events that hit *lease* members.

        An event whose burst straddles this lease contributes its in-lease
        victims as lease-locally timed kills (the out-of-lease victims are
        handled by their own tenants or by the service directly).  The
        lease driver is skipped — per-tenant coordinator immortality.
        """
        kills: List[ScriptedKill] = []
        for event in self._events:
            if event.time < now:
                continue
            for victim in event.victims:
                if victim == lease.driver.id or not lease.owns(victim):
                    continue
                kills.append(ScriptedKill(place_id=victim, time=event.time))
        return kills
