"""Tests for the CG application against NumPy references."""

import numpy as np
import pytest

from repro.apps.data import CGWorkload
from repro.apps.nonresilient.cg import CGNonResilient
from repro.apps.resilient.cg import CGResilient
from repro.resilience.executor import IterativeExecutor, NonResilientExecutor
from repro.runtime import CostModel, Runtime


def small_wl(iterations=10, **kw):
    return CGWorkload(rows_per_place=24, stride=7, iterations=iterations, **kw)


def make_rt(n=3, **kw):
    return Runtime(n, cost=CostModel.zero(), **kw)


def dense_system(wl, places):
    n = wl.rows(places)
    A = np.asarray(wl.band(n, 0, n).to_dense().data)
    return A, wl.rhs(n)


def numpy_pcg(A, b, inv_diag, iterations):
    """The same Jacobi-PCG recurrence, in plain NumPy."""
    x = np.zeros_like(b)
    r = b.copy()
    z = r * inv_diag
    p = z.copy()
    rz = r @ z
    for _ in range(iterations):
        q = A @ p
        alpha = rz / (q @ p)
        x += alpha * p
        r -= alpha * q
        z = r * inv_diag
        rz_new = r @ z
        beta = rz_new / rz if rz else 0.0
        p = z + beta * p
        rz = rz_new
    return x


class TestWorkload:
    def test_matrix_is_spd(self):
        wl = small_wl()
        A, _ = dense_system(wl, 3)
        assert np.array_equal(A, A.T)
        assert np.linalg.eigvalsh(A).min() > 0

    def test_band_is_partition_independent(self):
        wl = small_wl()
        n = wl.rows(3)
        whole = np.asarray(wl.band(n, 0, n).to_dense().data)
        for lo, hi in ((0, 24), (24, 48), (48, 72)):
            band = np.asarray(wl.band(n, lo, hi).to_dense().data)
            assert np.array_equal(band, whole[lo:hi])


class TestAlgorithm:
    def test_matches_numpy_pcg(self):
        wl = small_wl(iterations=12)
        rt = make_rt(3)
        app = CGNonResilient(rt, wl)
        A, b = dense_system(wl, 3)
        app.run()
        ref = numpy_pcg(A, b, 1.0 / wl.diagonal(wl.rows(3)), 12)
        assert np.allclose(app.solution(), ref, atol=1e-10)

    def test_converges_to_solution(self):
        wl = small_wl(iterations=80)
        rt = make_rt(2)
        app = CGNonResilient(rt, wl)
        A, b = dense_system(wl, 2)
        app.run()
        assert np.allclose(app.solution(), np.linalg.solve(A, b), atol=1e-8)

    def test_residual_norm_decreases(self):
        rt = make_rt(3)
        app = CGNonResilient(rt, small_wl(iterations=20))
        norms = [app.residual_norm()]
        for _ in range(20):
            app.step()
            norms.append(app.residual_norm())
        assert norms[-1] < 1e-3 * norms[0]

    def test_tolerance_stops_early(self):
        rt = make_rt(2)
        app = CGNonResilient(rt, small_wl(iterations=200, tolerance=1e-6))
        app.run()
        assert app.iteration < 200
        assert app.residual_norm() <= 1e-6 * np.sqrt(app.rz0)

    def test_resilient_equals_nonresilient_without_failure(self):
        wl = small_wl(iterations=8)
        rt1, rt2 = make_rt(3), make_rt(3, resilient=True)
        a = CGNonResilient(rt1, wl)
        NonResilientExecutor(rt1, a).run()
        b = CGResilient(rt2, wl)
        IterativeExecutor(rt2, b, checkpoint_interval=3).run()
        assert np.array_equal(a.solution(), b.solution())

    def test_reconstruct_mode_bit_equal_without_failure(self):
        # The redundancy publishes must not perturb the trajectory.
        wl = small_wl(iterations=8)
        rt1, rt2 = make_rt(3), make_rt(3, resilient=True)
        a = CGNonResilient(rt1, wl)
        NonResilientExecutor(rt1, a).run()
        b = CGResilient(rt2, wl)
        report = IterativeExecutor(
            rt2, b, checkpoint_interval=3, recovery="reconstruct"
        ).run()
        assert report.reconstructions == 0
        assert report.redundancy_bytes > 0
        assert np.array_equal(a.solution(), b.solution())

    def test_trajectory_is_group_width_reproducible(self):
        wl = small_wl(iterations=9)
        runs = []
        for _ in range(2):
            rt = make_rt(3)
            app = CGNonResilient(rt, wl)
            app.run()
            runs.append((app.solution(), app.rz))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]
