"""Edge cases of the resilient executor: cascading and mid-restore failures."""

import numpy as np
import pytest

from repro.matrix.dupvector import DupVector
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.iterative import ResilientIterativeApp
from repro.runtime import CostModel, DataLossError, Runtime


class CountingApp(ResilientIterativeApp):
    """Same minimal app as the main executor tests."""

    def __init__(self, runtime, iterations=10, group=None):
        self.runtime = runtime
        self.iterations = iterations
        self._places = group if group is not None else runtime.world
        self.iteration = 0
        self.state = DupVector.make(runtime, 4, self._places)

    @property
    def places(self):
        return self._places

    def is_finished(self):
        return self.iteration >= self.iterations

    def step(self):
        self.state.cell_add(1.0)
        self.iteration += 1

    def checkpoint(self, store):
        store.start_new_snapshot()
        store.save(self.state)
        store.commit(iteration=self.iteration)

    def restore(self, new_places, store, snapshot_iter):
        self.state.remake(new_places)
        self._places = new_places
        store.restore()
        self.iteration = snapshot_iter


class TestCascadingFailures:
    def test_failure_during_restore_retries_with_fresh_group(self):
        """A place dying *during* restore triggers another recovery round."""
        rt = Runtime(6, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 10)
        rt.injector.kill_at_iteration(2, iteration=5)

        # Sabotage the first restore attempt: when restore remakes the
        # state, kill another (non-adjacent) place mid-phase.
        original_restore = app.restore
        fired = {"done": False}

        def failing_restore(new_places, store, snapshot_iter):
            if not fired["done"]:
                fired["done"] = True
                rt.injector.kill_at_phase(4, phase=rt.phase + 1)
            original_restore(new_places, store, snapshot_iter)

        app.restore = failing_restore
        report = IterativeExecutor(rt, app, checkpoint_interval=4).run()
        assert report.failures_observed == 2
        assert report.restores == 1  # only the successful attempt counts
        assert app.places.ids == [0, 1, 3, 5]
        assert np.allclose(app.state.to_array(), 10.0)

    def test_restore_attempt_cap(self):
        """Endless restore failures eventually raise DataLossError."""
        rt = Runtime(4, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 10)
        rt.injector.kill_at_iteration(2, iteration=3)

        def always_failing_restore(new_places, store, snapshot_iter):
            from repro.runtime.exceptions import DeadPlaceException

            raise DeadPlaceException(2)

        app.restore = always_failing_restore
        with pytest.raises(DataLossError):
            IterativeExecutor(
                rt, app, checkpoint_interval=3, max_restore_attempts=3
            ).run()

    def test_shrink_down_to_single_survivor(self):
        rt = Runtime(3, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 8)
        rt.injector.kill_at_iteration(1, iteration=3)
        rt.injector.kill_at_iteration(2, iteration=6)
        report = IterativeExecutor(rt, app, checkpoint_interval=2).run()
        assert app.places.ids == [0]
        assert np.allclose(app.state.to_array(), 8.0)
        assert report.restores == 2

    def test_elastic_after_spare_modes_mixed_world(self):
        """Spares and elastic places coexist with stable indices."""
        rt = Runtime(4, cost=CostModel.zero(), resilient=True, spares=1)
        app = CountingApp(rt, 12)
        rt.injector.kill_at_iteration(1, iteration=3)
        rt.injector.kill_at_iteration(2, iteration=7)
        report = IterativeExecutor(
            rt, app, checkpoint_interval=3, mode=RestoreMode.REPLACE_REDUNDANT,
            spare_fallback=RestoreMode.SHRINK_REBALANCE,
        ).run()
        # First failure consumed the spare (id 4); second had none left and
        # fell back to shrink-rebalance.
        assert report.restores == 2
        assert app.places.ids == [0, 4, 3]
        assert np.allclose(app.state.to_array(), 12.0)


class TestCheckpointCadence:
    @pytest.mark.parametrize("interval", [1, 2, 3, 7, 30])
    def test_checkpoint_counts(self, interval):
        rt = Runtime(3, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 12)
        report = IterativeExecutor(rt, app, checkpoint_interval=interval).run()
        expected = len([i for i in range(12) if i % interval == 0])
        assert report.checkpoints == expected

    def test_interval_one_recovers_with_minimal_rework(self):
        rt = Runtime(4, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 10)
        rt.injector.kill_at_iteration(2, iteration=7)
        report = IterativeExecutor(rt, app, checkpoint_interval=1).run()
        # Checkpoint at every iteration: only the iteration in flight at
        # the failure is redone.
        assert report.iterations_executed == 11
        assert np.allclose(app.state.to_array(), 10.0)


class TestSpareAccounting:
    def test_insufficient_spares_are_not_wasted(self):
        """Two simultaneous deaths with one spare: the executor shrinks and
        the spare remains available for a later, single failure."""
        rt = Runtime(6, cost=CostModel.zero(), resilient=True, spares=1)
        app = CountingApp(rt, 12)
        rt.injector.kill_at_iteration(2, iteration=4)
        rt.injector.kill_at_iteration(4, iteration=4)  # simultaneous pair
        rt.injector.kill_at_iteration(1, iteration=9)  # later single failure
        report = IterativeExecutor(
            rt, app, checkpoint_interval=3, mode=RestoreMode.REPLACE_REDUNDANT
        ).run()
        assert report.restores == 2
        # First event shrank (no spare consumed); second used the spare
        # (id 6) at place 1's index.
        assert app.places.ids == [0, 6, 3, 5]
        assert np.allclose(app.state.to_array(), 12.0)
