"""Tests for the X10-style finish / async-at sugar."""

import pytest

from repro.runtime import CostModel, DeadPlaceException, Place, Runtime
from repro.runtime.sugar import at, finish


def make_rt(n=4, **kw):
    return Runtime(n, cost=kw.pop("cost", CostModel.zero()), **kw)


class TestFinishScope:
    def test_basic_fan_out(self):
        rt = make_rt()
        with finish(rt) as f:
            for place in rt.world:
                f.async_at(place, lambda ctx: ctx.heap.put("x", ctx.place.id * 2))
        assert [rt.heap_of(i).get("x") for i in range(4)] == [0, 2, 4, 6]

    def test_handles_resolve_after_exit(self):
        rt = make_rt()
        with finish(rt) as f:
            handles = [f.async_at(p, lambda ctx: ctx.place.id) for p in rt.world]
            assert not handles[0].done  # nothing ran yet inside the scope
        assert [h.result() for h in handles] == [0, 1, 2, 3]

    def test_result_before_completion_rejected(self):
        rt = make_rt()
        with finish(rt) as f:
            h = f.async_at(Place(1), lambda ctx: 1)
            with pytest.raises(ValueError):
                h.result()

    def test_multiple_tasks_same_place_serialize(self):
        # One worker per place: two tasks at the same place run back to back.
        rt = make_rt(cost=CostModel(flop_time=1.0))
        with finish(rt) as f:
            f.async_at(Place(1), lambda ctx: ctx.charge_flops(5))
            f.async_at(Place(1), lambda ctx: ctx.charge_flops(5))
        assert rt.clock.now(1) >= 10.0

    def test_dead_place_surfaces_at_scope_exit(self):
        rt = make_rt()
        rt.kill(2)
        ran = []
        with pytest.raises(DeadPlaceException):
            with finish(rt) as f:
                f.async_at(Place(1), lambda ctx: ran.append(1))
                f.async_at(Place(2), lambda ctx: ran.append(2))
        assert ran == [1]  # live task still ran (X10 semantics)

    def test_empty_scope_is_free(self):
        rt = make_rt(cost=CostModel.unit())
        with finish(rt):
            pass
        assert rt.now() == 0.0
        assert rt.stats.finishes == 0

    def test_body_exception_propagates_without_running_tasks(self):
        rt = make_rt()
        ran = []
        with pytest.raises(RuntimeError, match="boom"):
            with finish(rt) as f:
                f.async_at(Place(1), lambda ctx: ran.append(1))
                raise RuntimeError("boom")
        assert ran == []

    def test_not_reentrant(self):
        rt = make_rt()
        scope = finish(rt)
        with scope:
            with pytest.raises(ValueError):
                scope.__enter__()

    def test_async_outside_scope_rejected(self):
        rt = make_rt()
        scope = finish(rt)
        with pytest.raises(ValueError):
            scope.async_at(Place(1), lambda ctx: None)

    def test_counts_one_finish(self):
        rt = make_rt()
        with finish(rt, label="mine") as f:
            for p in rt.world:
                f.async_at(p, lambda ctx: None)
        assert rt.stats.finishes == 1
        assert rt.stats.finish_reports[-1].label == "mine"
        assert rt.stats.finish_reports[-1].n_tasks == 4


class TestAt:
    def test_at_returns_value(self):
        rt = make_rt()
        rt.heap_of(3).put("k", 9)
        assert at(rt, Place(3), lambda ctx: ctx.heap.get("k")) == 9
