"""Extension — GNMF under the resilient framework (beyond the paper).

GNMF is one of GML's stock demo applications; the paper's framework claims
generality ("the resilient application framework is generic enough to be
easily ... reused"), so this benchmark exercises a fourth application with
a different communication pattern — distributed Gram products all-reducing
k×n / k×k partials, plus duplicated-matrix updates — through the same
protocols: the Figs. 2-4 overhead sweep and the Figs. 5-7 restore sweep at
44 places.
"""

from _common import emit, results_path
from repro.bench import figures
from repro.bench.harness import run_overhead_sweep, run_restore_sweep, table4_from_reports

AXIS = [2, 8, 16, 24, 32, 44]


def run_all():
    overhead = run_overhead_sweep("gnmf", places_list=AXIS, iterations=30)
    restore = run_restore_sweep("gnmf", places_list=[44], iterations=30)
    return overhead, restore


def test_extension_gnmf(benchmark):
    overhead, restore = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        figures.series_table(overhead.places, overhead.values, header_unit="ms/iteration"),
        "",
        "restore protocol at 44 places (total s):",
    ]
    for mode, vals in restore["series"].values.items():
        lines.append(f"  {mode:<28s} {vals[0]:8.2f}")
    t4 = table4_from_reports(restore["reports"], 44)
    lines.append("")
    for mode, row in t4.items():
        lines.append(f"  {mode:<28s} C% {row['C%']:5.1f}  R% {row['R%']:5.1f}")
    csv = figures.write_csv(results_path("gnmf_overhead.csv"), overhead.places, overhead.values)
    lines.append(f"series written to {csv}")
    emit("Extension — GNMF overhead and restore-mode behaviour", "\n".join(lines))

    nonres = overhead.values["non-resilient finish"]
    res = overhead.values["resilient finish"]
    # The framework's qualitative claims carry over to the new app:
    assert all(r >= n for r, n in zip(res, nonres))
    assert res[-1] / nonres[-1] < 3.0
    # Restore-mode ordering holds here too.
    assert t4["shrink-rebalance"]["R%"] >= t4["replace-redundant"]["R%"]
