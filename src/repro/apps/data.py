"""Workload definitions for the paper's three benchmark applications.

The paper's evaluation uses weak scaling: a fixed per-place problem size
(50 000 training examples per place for the regressions, 2 M edges per
place for PageRank) over 2–44 places.  Physical sizes here are reduced and
the difference is charged through the cost model's ``logical_scale`` (see
``repro.bench.calibration`` and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class RegressionWorkload:
    """Weak-scaling configuration of LinReg / LogReg.

    The training set is a dense ``DistBlockMatrix`` of
    ``examples_per_place * places`` rows × ``features`` columns, with
    ``blocks_per_place`` row blocks per place (>1 so the shrink mode can
    remap whole blocks).
    """

    features: int = 500
    examples_per_place: int = 50_000
    blocks_per_place: int = 2
    iterations: int = 30
    seed: int = 42
    ridge_lambda: float = 1e-3
    learning_rate: float = 0.5
    #: Optional relative-residual convergence threshold: when set, LinReg
    #: terminates as soon as ||r|| <= tolerance * ||r0|| (the paper's
    #: "checking a convergence condition" form of isFinished), bounded by
    #: ``iterations``.
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.features, "features")
        check_positive(self.examples_per_place, "examples_per_place")
        check_positive(self.blocks_per_place, "blocks_per_place")
        check_positive(self.iterations, "iterations")
        require(self.ridge_lambda >= 0, "ridge_lambda must be >= 0")
        require(self.tolerance >= 0, "tolerance must be >= 0")

    def examples(self, places: int) -> int:
        """Total rows for a given place count (weak scaling)."""
        return self.examples_per_place * places

    def row_blocks(self, places: int) -> int:
        """Total row blocks for a given place count."""
        return self.blocks_per_place * places

    @staticmethod
    def paper() -> "RegressionWorkload":
        """The paper's exact configuration (500 features, 50k/place)."""
        return RegressionWorkload()

    @staticmethod
    def small(iterations: int = 30) -> "RegressionWorkload":
        """A reduced physical size for fast simulation and tests."""
        return RegressionWorkload(
            features=50, examples_per_place=400, iterations=iterations
        )


@dataclass(frozen=True)
class PageRankWorkload:
    """Weak-scaling configuration of PageRank.

    The paper uses 2 M edges per place; with ``out_degree`` links per node
    that is ``2M / out_degree`` nodes per place.  The link structure is a
    sparse ``DistBlockMatrix`` filled from a grid-independent synthetic
    web graph.
    """

    nodes_per_place: int = 200_000
    out_degree: int = 10
    blocks_per_place: int = 2
    alpha: float = 0.85
    iterations: int = 30
    seed: int = 42

    def __post_init__(self) -> None:
        check_positive(self.nodes_per_place, "nodes_per_place")
        check_positive(self.out_degree, "out_degree")
        check_positive(self.blocks_per_place, "blocks_per_place")
        check_positive(self.iterations, "iterations")
        require(0.0 < self.alpha < 1.0, "alpha must be in (0, 1)")

    def nodes(self, places: int) -> int:
        """Total graph order for a given place count (weak scaling)."""
        return self.nodes_per_place * places

    def edges_per_place(self) -> int:
        """Edges per place (the paper's 2 M figure)."""
        return self.nodes_per_place * self.out_degree

    def row_blocks(self, places: int) -> int:
        """Total row blocks for a given place count."""
        return self.blocks_per_place * places

    @staticmethod
    def paper() -> "PageRankWorkload":
        """The paper's exact configuration (2 M edges per place)."""
        return PageRankWorkload()

    @staticmethod
    def small(iterations: int = 30) -> "PageRankWorkload":
        """A reduced physical size for fast simulation and tests."""
        return PageRankWorkload(
            nodes_per_place=300, out_degree=5, iterations=iterations
        )


@dataclass(frozen=True)
class GnmfWorkload:
    """Configuration of the GNMF extension application.

    Factor a sparse non-negative ``rows_per_place·places × cols`` matrix
    into rank-``rank`` factors ``W·H``.  Like the paper's benchmarks, the
    workload weak-scales: a fixed band of rows per place.
    """

    rows_per_place: int = 10_000
    cols: int = 1_000
    rank: int = 10
    density: float = 0.01
    blocks_per_place: int = 2
    iterations: int = 30
    seed: int = 42

    def __post_init__(self) -> None:
        check_positive(self.rows_per_place, "rows_per_place")
        check_positive(self.cols, "cols")
        check_positive(self.rank, "rank")
        check_positive(self.blocks_per_place, "blocks_per_place")
        check_positive(self.iterations, "iterations")
        require(0.0 < self.density <= 1.0, "density must be in (0, 1]")

    def rows(self, places: int) -> int:
        """Total rows for a given place count (weak scaling)."""
        return self.rows_per_place * places

    def row_blocks(self, places: int) -> int:
        """Total row blocks for a given place count."""
        return self.blocks_per_place * places

    @staticmethod
    def small(iterations: int = 20) -> "GnmfWorkload":
        """A reduced physical size for fast simulation and tests."""
        return GnmfWorkload(
            rows_per_place=60, cols=30, rank=4, density=0.2, iterations=iterations
        )


@dataclass(frozen=True)
class CGWorkload:
    """Configuration of the preconditioned conjugate-gradient application.

    Solve ``A x = b`` for a synthetic symmetric positive-definite banded
    matrix of order ``rows_per_place * places``.  Row *i* couples to its
    immediate neighbors and to ``i ± stride`` (a 1-D stencil plus a long
    bond), with a seeded jitter on the diagonal keeping the system strictly
    diagonally dominant — hence SPD — for every size.  The generator is
    partition-independent: any place holding rows ``[lo, hi)`` produces
    exactly the rows the global matrix has there, which is what makes
    failure-vs-failure-free comparisons (and exact ABFT reconstruction)
    well defined.

    The coupling is deliberately wider than one place's band at chaos
    sizes, so adjacent-pair and rack kills produce genuinely *coupled*
    joint re-solves rather than independent per-partition ones.
    """

    rows_per_place: int = 10_000
    stride: int = 7
    iterations: int = 30
    seed: int = 42
    #: Optional relative-residual convergence threshold (in the Jacobi
    #: preconditioner's inner-product norm); bounded by ``iterations``.
    tolerance: float = 0.0

    #: Stencil weights: diag = DIAG_BASE + jitter(i) in [0, 1),
    #: (i, i±1) = NEAR, (i, i±stride) = FAR.  |NEAR|·2 + |FAR|·2 = 3 < 4.
    DIAG_BASE = 4.0
    NEAR = -1.0
    FAR = -0.5

    def __post_init__(self) -> None:
        check_positive(self.rows_per_place, "rows_per_place")
        check_positive(self.stride, "stride")
        require(self.stride > 1, "stride must be > 1 (1 duplicates NEAR)")
        check_positive(self.iterations, "iterations")
        require(self.tolerance >= 0, "tolerance must be >= 0")

    def rows(self, places: int) -> int:
        """Total system order for a given place count (weak scaling)."""
        return self.rows_per_place * places

    def diagonal(self, n: int):
        """The global diagonal of ``A`` (length *n*), seeded."""
        from repro.matrix.random import random_vector

        return self.DIAG_BASE + random_vector(self.seed, n, tag=2)

    def rhs(self, n: int):
        """The global right-hand side ``b`` (length *n*), seeded."""
        from repro.matrix.random import random_vector

        return random_vector(self.seed, n, tag=1)

    def band(self, n: int, lo: int, hi: int):
        """Rows ``[lo, hi)`` of the global matrix as a ``SparseCSR``.

        Pure in ``(seed, n, lo, hi)`` and independent of how the rest of
        the matrix is partitioned.
        """
        import numpy as np

        from repro.matrix.sparse import SparseCSR

        diag = self.diagonal(n)
        rows_out = []
        cols_out = []
        vals_out = []
        local_rows = np.arange(lo, hi)
        for offset, weight in (
            (-self.stride, self.FAR),
            (-1, self.NEAR),
            (0, 0.0),  # diagonal handled below (jittered)
            (1, self.NEAR),
            (self.stride, self.FAR),
        ):
            cols = local_rows + offset
            mask = (cols >= 0) & (cols < n)
            if offset == 0:
                vals = diag[local_rows]
                mask = np.ones(hi - lo, dtype=bool)
            else:
                vals = np.full(hi - lo, weight)
            rows_out.append(local_rows[mask] - lo)
            cols_out.append(cols[mask])
            vals_out.append(vals[mask])
        return SparseCSR.from_coo(
            hi - lo,
            n,
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
        )

    @staticmethod
    def paper_scale() -> "CGWorkload":
        """The benchmark configuration (10k rows per place)."""
        return CGWorkload()

    @staticmethod
    def small(iterations: int = 20) -> "CGWorkload":
        """A reduced physical size for fast simulation and tests."""
        return CGWorkload(rows_per_place=24, stride=7, iterations=iterations)
