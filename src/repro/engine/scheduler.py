"""The discrete-event scheduler: owner of virtual time and contended resources.

One :class:`Scheduler` per :class:`~repro.runtime.runtime.Runtime` owns:

* the per-place :class:`~repro.runtime.clock.VirtualClock`;
* every contended :class:`~repro.engine.resource.Resource` — per-place
  communication servers and duplex tx/rx sides, per-node NIC directions,
  the serialized place-zero bookkeeping ledger, the shared stable-storage
  disk;
* the :class:`~repro.engine.timeline.Timeline` of typed events;
* the *overlap scope* that defers transfer arrivals so checkpoint backups
  can run on the communication resources concurrently with the next
  iteration's compute (``checkpoint_mode="overlapped"``).

All virtual-time advancement driven by communication, bookkeeping or disk
flows through here; places' own compute still charges their clocks
directly (a worker core is not a shared resource).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.resource import DuplexLink, Resource
from repro.engine.timeline import (
    DiskEvent,
    FinishEvent,
    ServiceEvent,
    Timeline,
    TransferEvent,
)
from repro.runtime.clock import VirtualClock
from repro.runtime.cost import CostModel
from repro.runtime.exceptions import CommTimeoutError, DeadPlaceException
from repro.runtime.failure import RetryPolicy, TransientFaultModel
from repro.runtime.finish import FinishReport

#: Resource-key tags whose second element is a place id (purged on kill).
_PLACE_TAGS = ("srv", "tx", "rx")


class Scheduler:
    """Schedules work on contended resources and advances virtual time."""

    def __init__(
        self,
        cost: CostModel,
        clock: Optional[VirtualClock] = None,
        timeline: Optional[Timeline] = None,
    ):
        self.cost = cost
        self.clock = clock if clock is not None else VirtualClock()
        self.timeline = timeline if timeline is not None else Timeline(enabled=False)
        self._resources: Dict[Any, Resource] = {}
        #: Cached duplex links (pairs of live resources).  Invalidated
        #: wholesale on place purge/revive — those pop and recreate the
        #: underlying per-place resources.
        self._links: Dict[Any, DuplexLink] = {}
        self._dead: Set[int] = set()
        #: Overlap scope: while > 0, transfer arrivals are deferred.
        self._overlap_depth = 0
        #: place id -> latest deferred completion time.
        self._pending_arrivals: Dict[int, float] = {}
        self.ledger = self.resource(("ledger",))
        # The ledger's recording hook is installed only while the timeline
        # is enabled: a hook-free resource can take the batched ledger fast
        # path (Resource.acquire_batch) with identical virtual times.
        self.timeline.on_toggle(self._sync_ledger_hook)
        # Mirror of ``timeline.enabled`` as a plain attribute: the transfer
        # and finish hot paths test it once per event, and an attribute
        # read is markedly cheaper than the notifying property.
        self.timeline.on_toggle(self._sync_timeline_flag)
        self.disk = self.resource(("disk",))
        #: Transient message-fault model; ``None`` keeps the network
        #: reliable and every transfer bit-exact with the fault-free model.
        self.faults: Optional[TransientFaultModel] = None
        #: Retransmission policy used when ``faults`` is set.
        self.retry_policy: RetryPolicy = RetryPolicy()

    # -- place lifecycle -----------------------------------------------------

    def register_place(self, place_id: int, at_time: float = 0.0) -> None:
        """Start a clock timeline for a new place."""
        self.clock.register(place_id, at_time)

    def purge_place(self, place_id: int) -> None:
        """Drop a dead place's scheduling state.

        Its per-place resources are retired and removed (their busy
        frontiers would otherwise linger forever), any deferred overlap
        arrival is discarded, and future attempts to schedule work on the
        place's resources raise ``DeadPlaceException``.  Shared node NICs
        survive — the node's other places still use them.
        """
        self._dead.add(place_id)
        for tag in _PLACE_TAGS:
            resource = self._resources.pop((tag, place_id), None)
            if resource is not None:
                resource.retire()
        self._links.clear()
        self._pending_arrivals.pop(place_id, None)

    def revive_place(self, place_id: int) -> None:
        """Return a purged place to service (pool repair).

        The place's per-place resources were popped at purge time, so
        :meth:`resource` lazily recreates fresh ones (empty frontiers) on
        first use; all that is needed here is lifting the death mark.  The
        caller re-registers the clock via ``set_at_least`` — the timeline
        itself was never dropped.
        """
        self._dead.discard(place_id)
        self._links.clear()

    def is_place_dead(self, place_id: int) -> bool:
        return place_id in self._dead

    def zero_fast(self) -> bool:
        """True while every virtual-time value is provably 0.0.

        All-zero cost rates mean no charge can move a clock or a resource
        frontier; an unmoved clock means nothing external (a detector
        heartbeat, a service arrival) has either; a reliable network rules
        out retransmission waits; a disabled timeline means no events need
        recording.  Under those four facts the transfer/finish bookkeeping
        only shuffles zeros, so the hot paths skip it — results, stats
        counters and reports stay bit-identical.  The test is cheap and
        rechecked per event because the clock flag can flip mid-run.
        """
        return (
            self.cost.is_zero
            and not self.clock._moved
            and self.faults is None
            and not self._tl_enabled
        )

    def _check_place(self, place_id: int) -> None:
        if place_id in self._dead:
            raise DeadPlaceException(place_id)

    # -- resources -----------------------------------------------------------

    def resource(self, key: Any, owner: Optional[int] = None) -> Resource:
        """Get or lazily create the resource with the given key."""
        res = self._resources.get(key)
        if res is None:
            if (
                isinstance(key, tuple)
                and len(key) == 2
                and key[0] in _PLACE_TAGS
            ):
                owner = key[1]
                self._check_place(owner)
            res = Resource(key, owner=owner)
            self._resources[key] = res
        return res

    def resources(self) -> List[Resource]:
        """All live resources (stable order for reports)."""
        return [self._resources[k] for k in sorted(self._resources, key=repr)]

    def link(self, tx_key: Any, rx_key: Any) -> DuplexLink:
        """The duplex link over two resource keys (cached per pair)."""
        key = (tx_key, rx_key)
        lk = self._links.get(key)
        if lk is None:
            lk = DuplexLink(self.resource(tx_key), self.resource(rx_key))
            self._links[key] = lk
        return lk

    # -- arrivals and the overlap scope ---------------------------------------

    def _arrive(self, place_id: int, t_done: float) -> None:
        """Deliver a completion to a place's timeline.

        Inside an overlap scope the arrival is deferred (recorded as
        pending) instead of advancing the clock — the place keeps
        computing while its communication server absorbs the transfer.
        """
        if self._overlap_depth > 0:
            pending = self._pending_arrivals.get(place_id, 0.0)
            if t_done > pending:
                self._pending_arrivals[place_id] = t_done
        else:
            self.clock.set_at_least(place_id, t_done)

    @contextmanager
    def overlap(self):
        """Scope in which transfer completions do not block place clocks."""
        self._overlap_depth += 1
        try:
            yield self
        finally:
            self._overlap_depth -= 1

    @property
    def overlapping(self) -> bool:
        return self._overlap_depth > 0

    def pending_overlap(self) -> Dict[int, float]:
        """Copy of the deferred completions (place id -> time)."""
        return dict(self._pending_arrivals)

    def drain_overlap(self, sync_place_id: Optional[int] = None) -> float:
        """Apply all deferred completions to the place clocks.

        Returns the largest residual lag — how far a place's clock had to
        jump forward, i.e. the part of the overlapped work that compute
        could not hide.  With *sync_place_id* (the driver, at the end of a
        run) that place is additionally advanced to the latest pending
        completion, modeling the wait for the final checkpoint to become
        durable.
        """
        stall = 0.0
        t_last = 0.0
        for place_id, t_done in self._pending_arrivals.items():
            if place_id in self._dead:
                continue
            t_last = max(t_last, t_done)
            lag = t_done - self.clock.now(place_id)
            if lag > 0:
                stall = max(stall, lag)
                self.clock.set_at_least(place_id, t_done)
        if sync_place_id is not None and t_last > 0.0:
            lag = t_last - self.clock.now(sync_place_id)
            if lag > 0:
                stall = max(stall, lag)
                self.clock.set_at_least(sync_place_id, t_last)
        self._pending_arrivals.clear()
        return stall

    # -- transfers -----------------------------------------------------------

    def serve(self, place_id: int, t_request: float, duration: float) -> float:
        """Schedule work on a place's communication server.

        The server is busy from the request until completion; subsequent
        requests queue behind it.  The served place's timeline is advanced
        to the completion (deferred inside an overlap scope).
        """
        self._check_place(place_id)
        if duration == 0.0 and self.cost.is_zero and not self.clock._moved and not self._tl_enabled:
            return t_request
        done = self.resource(("srv", place_id)).acquire(t_request, duration)
        self._arrive(place_id, done)
        return done

    def transfer(self, src_id: int, dst_id: int, nbytes: float, t_request: float) -> float:
        """Topology-aware point-to-point transfer; returns completion time.

        Without node topology (``cost.places_per_node == 0``) the transfer
        occupies the sender's transmit side and the receiver's receive side
        (full duplex).  With topology, intra-node transfers use the
        shared-memory rate through the destination place's server, while
        cross-node transfers serialize through *both* endpoints' node NICs.

        Under a :class:`~repro.runtime.failure.TransientFaultModel` each
        transmission attempt can be dropped (retransmitted after an
        exponential-backoff RTO, up to ``retry_policy.max_retries``, then
        ``CommTimeoutError``), duplicated (the duplicate burns receive-side
        resource time but is suppressed — at-most-once delivery) or
        delayed in flight.
        """
        self._check_place(src_id)
        self._check_place(dst_id)
        faults = self.faults
        if faults is None:
            if self.cost.is_zero and not self.clock._moved and not self._tl_enabled:
                # Zero-time fast path: the link acquire and the arrival
                # would compute exactly t_request (0.0) back.
                return t_request
            return self._transfer_once(src_id, dst_id, nbytes, t_request)
        policy = self.retry_policy
        t_send = t_request
        attempt = 0
        while True:
            fate = faults.fate(src_id, dst_id, t_send)
            if fate.delivered:
                done = self._transfer_once(
                    src_id, dst_id, nbytes, t_send, extra_delay=fate.extra_delay
                )
                if fate.duplicated:
                    # The duplicate is absorbed at the receiver: it burns
                    # communication-server time but is never delivered
                    # twice (sequence-number suppression).
                    self.resource(("srv", dst_id)).acquire(
                        done, self.cost.message(0)
                    )
                return done
            if attempt >= policy.max_retries:
                faults.timeouts += 1
                raise CommTimeoutError(dst_id, retries=attempt)
            t_send += policy.rto(attempt, self.cost, nbytes)
            attempt += 1
            faults.retransmissions += 1

    def _transfer_once(
        self,
        src_id: int,
        dst_id: int,
        nbytes: float,
        t_request: float,
        extra_delay: float = 0.0,
    ) -> float:
        """One (successful) transmission attempt over the modeled route."""
        cost = self.cost
        if cost.places_per_node <= 0:
            done = self.link(("tx", src_id), ("rx", dst_id)).acquire(
                t_request, cost.message(nbytes)
            )
            route = "p2p"
        else:
            src_node, dst_node = cost.node_of(src_id), cost.node_of(dst_id)
            if src_node == dst_node:
                done = self.resource(("srv", dst_id)).acquire(
                    t_request, cost.shm_message(nbytes)
                )
                route = "shm"
            else:
                done = self.link(("nic-tx", src_node), ("nic-rx", dst_node)).acquire(
                    t_request, cost.message(nbytes)
                )
                route = "nic"
        done += extra_delay
        self._arrive(dst_id, done)
        if self._tl_enabled:
            self.timeline.record(
                TransferEvent(
                    t_start=t_request,
                    t_end=done,
                    src=src_id,
                    dst=dst_id,
                    nbytes=cost.scaled_bytes(nbytes),
                    route=route,
                )
            )
        return done

    def transfer_fanout(
        self, src_id: int, dst_ids: Sequence[int], nbytes: float, t_request: float
    ) -> List[float]:
        """Replica fan-out: one transfer per destination from a common issue
        time.

        The snapshot store's k-replica backup path: the source issues every
        send at *t_request*; its transmit side (or node NIC) serializes the
        sends while distinct destinations absorb them concurrently, so the
        fan-out's critical path grows with contention, not with a synthetic
        send-after-send chain.  Returns the per-destination completion
        times in input order.
        """
        return [
            self.transfer(src_id, dst_id, nbytes, t_request) for dst_id in dst_ids
        ]

    # -- stable storage --------------------------------------------------------

    def stable_write(self, place_id: int, nbytes: float) -> float:
        """Ship *nbytes* from a place to the shared stable store.

        One network message to reach the store, then the write serializes
        on the shared disk.  The writing place waits for the acknowledged
        completion (deferred inside an overlap scope).
        """
        self._check_place(place_id)
        cost = self.cost
        t_request = self.clock.now(place_id) + cost.message(nbytes)
        done = self.disk.acquire(t_request, cost.disk(nbytes))
        self._arrive(place_id, done)
        if self._tl_enabled:
            self.timeline.record(
                DiskEvent(
                    t_start=t_request,
                    t_end=done,
                    place=place_id,
                    nbytes=cost.scaled_bytes(nbytes),
                    op="write",
                )
            )
        return done

    def stable_read(self, place_id: int, nbytes: float) -> float:
        """Read *nbytes* back from the stable store to a place.

        The read serializes on the shared disk, then one network message
        carries the data to the reader, which waits for the arrival.
        """
        self._check_place(place_id)
        cost = self.cost
        t_request = self.clock.now(place_id)
        done = self.disk.acquire(t_request, cost.disk(nbytes))
        arrival = done + cost.message(nbytes)
        self._arrive(place_id, arrival)
        if self._tl_enabled:
            self.timeline.record(
                DiskEvent(
                    t_start=t_request,
                    t_end=arrival,
                    place=place_id,
                    nbytes=cost.scaled_bytes(nbytes),
                    op="read",
                )
            )
        return arrival

    # -- finish completion ------------------------------------------------------

    def complete_finish(
        self,
        runtime,
        label: str,
        t_start: float,
        task_ends: Sequence[float],
        n_tasks: int,
        ledger_arrivals: Optional[List[float]] = None,
        *,
        t_floor: Optional[float] = None,
        ret_bytes: float = 0.0,
        dead_places: Optional[List[int]] = None,
    ) -> FinishReport:
        """Join + bookkeeping shared by ``finish_tasks`` and the collectives.

        The driver serially absorbs one termination message per task; under
        resilience the finish additionally waits for the place-zero ledger
        to drain its events (scheduled on the engine's ledger resource).
        Returns the recorded :class:`FinishReport`; the driver's clock is
        advanced to the finish completion.
        """
        clock, cost = self.clock, self.cost
        stats = runtime.stats
        driver = runtime.DRIVER_ID
        t_join = clock.now(driver)
        if t_floor is not None:
            t_join = max(t_floor, t_join)
        n_ends = len(task_ends)
        if n_ends:
            # Hoisted constants: message cost depends only on ret_bytes and
            # the join overhead is per-task fixed, so the historical
            # `max(t_join, end + msg) + join_dt` recurrence runs with the
            # identical float operations, minus the per-event lookups.
            msg = cost.message(ret_bytes)
            join_dt = cost.task_join_time
            if msg == 0.0 and join_dt == 0.0:
                # The recurrence collapses to a running max — exactly what
                # the loop computes when both costs are zero (chaos runs
                # under CostModel.zero() live here).
                top = max(task_ends)
                if top > t_join:
                    t_join = top
            else:
                for t_end in sorted(task_ends):
                    arrive = t_end + msg
                    if arrive > t_join:
                        t_join = arrive
                    t_join += join_dt
            stats.messages += n_ends
            inc = cost.scaled_bytes(ret_bytes)
            if inc:
                # Repeated addition keeps the accumulator bit-identical to
                # the historical per-task `+=`.
                acc = stats.bytes_sent
                for _ in range(n_ends):
                    acc += inc
                stats.bytes_sent = acc

        task_end_max = max(task_ends) if task_ends else t_start
        ledger_ready = 0.0
        t_finish = t_join
        if runtime.resilient and ledger_arrivals is not None:
            ledger_ready = runtime.ledger.process(ledger_arrivals)
            if ledger_ready > t_finish:
                runtime.ledger.record_stall(ledger_ready - t_finish)
                t_finish = ledger_ready
        clock.set_at_least(driver, t_finish)

        stats.finishes += 1
        stats.tasks += n_tasks
        report = FinishReport(
            label=label,
            start=t_start,
            end=t_finish,
            n_tasks=n_tasks,
            task_end_max=task_end_max,
            ledger_ready=ledger_ready,
            dead_places=list(dead_places or []),
        )
        stats.finish_reports.append(report)
        if self._tl_enabled:
            self.timeline.record(
                FinishEvent(
                    t_start=t_start,
                    t_end=t_finish,
                    label=label,
                    n_tasks=n_tasks,
                    task_end_max=task_end_max,
                    ledger_ready=ledger_ready,
                )
            )
        return report

    def complete_finish_zero(
        self,
        runtime,
        label: str,
        n_ends: int,
        n_tasks: int,
        ledger_events: int,
        ret_bytes: float = 0.0,
        dead_places: Optional[List[int]] = None,
    ) -> FinishReport:
        """Zero-time variant of :meth:`complete_finish`.

        Only valid under :meth:`zero_fast`: every task end, arrival and
        frontier is 0.0, so the join recurrence, the ledger drain and the
        clock update all land back on 0.0.  What remains is exactly the
        observable bookkeeping the slow path performs — stats counters
        (bit-identical accumulation), ledger event counts, and the
        recorded :class:`FinishReport`.  *n_ends* is the number of task
        terminations (``len(task_ends)``), *n_tasks* the live task count,
        *ledger_events* the number of resilient ledger arrivals the slow
        path would have posted (0 when the runtime is non-resilient).
        """
        stats = runtime.stats
        if n_ends:
            stats.messages += n_ends
            inc = self.cost.scaled_bytes(ret_bytes)
            if inc:
                # Repeated addition keeps the accumulator bit-identical to
                # the historical per-task `+=`.
                acc = stats.bytes_sent
                for _ in range(n_ends):
                    acc += inc
                stats.bytes_sent = acc
        if runtime.resilient and ledger_events:
            lstats = runtime.ledger.stats
            lstats.events += ledger_events
            lstats.finishes += 1
        stats.finishes += 1
        stats.tasks += n_tasks
        report = FinishReport(
            label=label,
            start=0.0,
            end=0.0,
            n_tasks=n_tasks,
            task_end_max=0.0,
            ledger_ready=0.0,
            dead_places=list(dead_places or []),
        )
        stats.finish_reports.append(report)
        return report

    # -- event hooks -----------------------------------------------------------

    def _sync_ledger_hook(self, enabled: bool) -> None:
        """Attach/detach the ledger recording hook as tracing toggles."""
        self.ledger.on_acquire = self._record_service if enabled else None

    def _sync_timeline_flag(self, enabled: bool) -> None:
        """Keep the plain-attribute mirror of ``timeline.enabled`` fresh."""
        self._tl_enabled = enabled

    def _record_service(
        self, resource: Resource, t_request: float, start: float, done: float
    ) -> None:
        if self._tl_enabled:
            self.timeline.record(
                ServiceEvent(t_start=t_request, t_end=done, resource=str(resource.key))
            )

    # -- introspection ----------------------------------------------------------

    def utilization(self) -> Dict[Any, Tuple[float, int]]:
        """``{resource key: (busy seconds, requests served)}`` snapshot."""
        return {
            key: (res.busy_time, res.served) for key, res in self._resources.items()
        }

    def __repr__(self) -> str:
        return (
            f"Scheduler(resources={len(self._resources)}, dead={sorted(self._dead)}, "
            f"overlapping={self.overlapping})"
        )
