"""Tests for per-place heaps and their destruction on failure."""

import pytest

from repro.runtime.heap import PlaceHeap


class TestPlaceHeap:
    def test_put_get_remove(self):
        h = PlaceHeap(0)
        h.put("a", 1)
        assert h.get("a") == 1
        assert h.contains("a")
        assert h.remove("a") == 1
        assert not h.contains("a")

    def test_missing_key(self):
        h = PlaceHeap(0)
        with pytest.raises(KeyError):
            h.get("missing")
        with pytest.raises(KeyError):
            h.remove("missing")
        assert h.get_or("missing", 42) == 42
        h.remove_if_present("missing")  # no raise

    def test_replace(self):
        h = PlaceHeap(0)
        h.put("k", 1)
        h.put("k", 2)
        assert h.get("k") == 2
        assert len(h) == 1

    def test_prefix_queries(self):
        h = PlaceHeap(0)
        h.put(("snap", 1, 0), "a")
        h.put(("snap", 1, 1), "b")
        h.put(("snap", 2, 0), "c")
        h.put(("gml", 1), "d")
        assert sorted(h.keys_with_prefix(("snap", 1))) == [("snap", 1, 0), ("snap", 1, 1)]
        assert h.remove_prefix(("snap",)) == 3
        assert len(h) == 1

    def test_destroy_loses_everything(self):
        h = PlaceHeap(3)
        h.put("x", 1)
        h.destroy()
        assert h.destroyed
        for op in (
            lambda: h.get("x"),
            lambda: h.put("y", 2),
            lambda: h.contains("x"),
            lambda: len(h),
        ):
            with pytest.raises(RuntimeError):
                op()

    def test_non_tuple_keys_ignored_by_prefix(self):
        h = PlaceHeap(0)
        h.put("plain", 1)
        assert h.keys_with_prefix(("snap",)) == []
