"""PageRank surviving a mid-run place failure (the paper's Listing 2 + 5).

Runs the resilient PageRank application under the framework's executor:
30 power iterations over a synthetic 12 000-node web graph on 6 places,
checkpoints every 10 iterations, one place killed at iteration 15, and the
run shrinks onto the survivors — then verifies the ranks match a
failure-free run exactly (to floating-point roundoff).

Run:  python examples/pagerank_resilient.py
"""

import numpy as np

from repro import Runtime
from repro.apps import PageRankNonResilient, PageRankResilient, PageRankWorkload
from repro.bench.calibration import cluster_2015
from repro.resilience import IterativeExecutor, RestoreMode

workload = PageRankWorkload(
    nodes_per_place=2_000, out_degree=8, iterations=30, blocks_per_place=2
)

# Failure-free reference run (plain GML program, non-resilient).
ref_rt = Runtime(6, cost=cluster_2015())
reference = PageRankNonResilient(ref_rt, workload)
reference.run()

# Resilient run: place 3 dies at iteration 15.
rt = Runtime(6, cost=cluster_2015(), resilient=True)
app = PageRankResilient(rt, workload)
rt.injector.kill_at_iteration(3, iteration=15)
executor = IterativeExecutor(rt, app, checkpoint_interval=10, mode=RestoreMode.SHRINK)
report = executor.run()

print(f"iterations executed (incl. redone): {report.iterations_executed}")
print(f"checkpoints: {report.checkpoints}, restores: {report.restores}")
print(f"final place group: {app.places.ids}")
print(
    f"virtual time: total {report.total_time:.3f}s = "
    f"step {report.step_time:.3f}s + checkpoint {report.checkpoint_time:.3f}s "
    f"+ restore {report.restore_time:.3f}s + lost {report.lost_time:.3f}s"
)
err = np.abs(app.ranks() - reference.ranks()).max()
print(f"max rank deviation vs failure-free run: {err:.3e}")
print(f"rank mass: {app.ranks().sum():.12f} (should be 1.0)")
assert err < 1e-9
