"""Tests for the service layer: streams, admission, the event loop."""

import pytest

from repro.runtime import CostModel, Runtime
from repro.service import (
    AdmissionController,
    BaselineCache,
    ClusterService,
    JobQueue,
    JobSpec,
    ServiceConfig,
    generate_jobs,
    run_service,
)


class TestGenerateJobs:
    def test_deterministic(self):
        a = generate_jobs(10, seed=4, arrival_rate=1.0)
        b = generate_jobs(10, seed=4, arrival_rate=1.0)
        assert a == b

    def test_seed_changes_stream(self):
        a = generate_jobs(10, seed=4, arrival_rate=1.0)
        b = generate_jobs(10, seed=5, arrival_rate=1.0)
        assert a != b

    def test_bounds(self):
        jobs = generate_jobs(
            50, seed=1, arrival_rate=2.0, min_places=2, max_places=5,
            min_iterations=3, max_iterations=7,
        )
        assert len(jobs) == 50
        for job in jobs:
            assert 2 <= job.places <= 5
            assert 3 <= job.iterations <= 7
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(t > 0 for t in arrivals)

    def test_zipf_favors_small_jobs(self):
        jobs = generate_jobs(200, seed=2, arrival_rate=1.0, min_places=2, max_places=6)
        small = sum(1 for j in jobs if j.places == 2)
        assert small > len(jobs) / 2  # heavy head of tiny tenants

    def test_mixed_apps(self):
        jobs = generate_jobs(60, seed=3, arrival_rate=1.0)
        assert {j.app for j in jobs} == {"linreg", "logreg", "pagerank", "gnmf"}

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            JobSpec(job_id=0, app="nope", places=2, iterations=4, arrival=0.0)
        with pytest.raises((ValueError, TypeError)):
            JobSpec(job_id=0, app="linreg", places=0, iterations=4, arrival=0.0)


class TestJobQueue:
    def _job(self, jid):
        return JobSpec(job_id=jid, app="linreg", places=2, iterations=4, arrival=0.0)

    def test_fifo(self):
        q = JobQueue()
        for jid in range(3):
            assert q.offer(self._job(jid))
        assert q.pop().job_id == 0
        assert q.head().job_id == 1
        assert len(q) == 2
        assert q.peak_depth == 3

    def test_bounded_rejects(self):
        q = JobQueue(max_depth=2)
        assert q.offer(self._job(0))
        assert q.offer(self._job(1))
        assert not q.offer(self._job(2))
        assert [j.job_id for j in q.rejected] == [2]
        assert len(q) == 2


class TestAdmission:
    def test_blocks_until_capacity(self):
        rt = Runtime(4, cost=CostModel.zero(), resilient=True)
        ctl = AdmissionController(rt.pool, economics="pooled")
        q = JobQueue()
        q.offer(JobSpec(job_id=0, app="linreg", places=4, iterations=4, arrival=0.0))
        assert ctl.pop_admissible(q) is None  # only 3 workers, place 0 excluded
        rt2 = Runtime(5, cost=CostModel.zero(), resilient=True)
        ctl2 = AdmissionController(rt2.pool, economics="pooled")
        job = ctl2.pop_admissible(q)
        assert job is not None and job.job_id == 0

    def test_fifo_head_of_line(self):
        rt = Runtime(4, cost=CostModel.zero(), resilient=True)
        ctl = AdmissionController(rt.pool, economics="pooled")
        q = JobQueue()
        q.offer(JobSpec(job_id=0, app="linreg", places=9, iterations=4, arrival=0.0))
        q.offer(JobSpec(job_id=1, app="linreg", places=2, iterations=4, arrival=0.0))
        # The small job must NOT jump the blocked head.
        assert ctl.pop_admissible(q) is None

    def test_dedicated_needs_reserve(self):
        rt = Runtime(6, cost=CostModel.zero(), resilient=True, spares=0)
        ctl = AdmissionController(rt.pool, economics="dedicated")
        q = JobQueue()
        q.offer(
            JobSpec(
                job_id=0, app="linreg", places=2, iterations=4, arrival=0.0,
                dedicated_spares=1,
            )
        )
        assert ctl.pop_admissible(q) is None  # no reserve to commit


class TestFailureFreeService:
    def test_all_jobs_complete_and_match_baselines(self):
        cfg = ServiceConfig(n_jobs=10, seed=11, arrival_rate=2.0)
        report = run_service(cfg)
        assert report.completed == 10
        assert report.cross_tenant_aborts == 0
        assert report.violations == []
        for job in report.jobs:
            assert job.status == "completed"
            assert job.result_ok is True
            assert job.latency >= 0
            assert job.finished >= job.admitted >= job.arrival

    def test_deterministic(self):
        cfg = ServiceConfig(n_jobs=8, seed=5, arrival_rate=1.5)
        assert run_service(cfg).to_dict() == run_service(cfg).to_dict()

    def test_queue_wait_under_load(self):
        # A small pool with fast arrivals must queue someone.
        cfg = ServiceConfig(
            places=5, reserve=0, n_jobs=12, seed=2, arrival_rate=50.0,
            min_places=3, max_places=4,
        )
        report = run_service(cfg)
        assert report.completed + report.rejected == 12
        assert any(j.queue_wait > 0 for j in report.jobs if j.status == "completed")
        assert report.mean_queue_wait > 0

    def test_metrics_populated(self):
        cfg = ServiceConfig(n_jobs=6, seed=7, arrival_rate=1.0)
        report = run_service(cfg)
        assert report.makespan > 0
        assert report.throughput > 0
        assert 0 < report.latency_p50 <= report.latency_p95 <= report.latency_p99
        d = report.to_dict()
        assert d["completed"] == 6
        assert d["cross_tenant_aborts"] == 0
        assert "service:" in report.summary()

    def test_jobs_overlap_in_virtual_time(self):
        # With concurrent capacity, distinct tenants must overlap: the
        # makespan is far below the sum of individual latencies.
        cfg = ServiceConfig(n_jobs=8, seed=3, arrival_rate=5.0)
        report = run_service(cfg)
        total_latency = sum(j.latency for j in report.jobs)
        assert report.makespan < total_latency + max(
            j.arrival for j in report.jobs
        )

    def test_zero_cost_profile(self):
        cfg = ServiceConfig(n_jobs=4, seed=1, arrival_rate=1.0, cost_profile="zero")
        report = run_service(cfg)
        assert report.completed == 4
        for job in report.jobs:
            assert job.result_ok is True

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(economics="imaginary")
        with pytest.raises(ValueError):
            ServiceConfig(places=5, max_places=6)
        with pytest.raises(ValueError):
            ServiceConfig(apps=("linreg", "nope"))


class TestBaselineCache:
    def test_memoizes(self):
        cache = BaselineCache()
        a = cache.get("linreg", 3, 5)
        b = cache.get("linreg", 3, 5)
        assert a is b  # same array object: computed once

    def test_distinct_shapes_distinct_results(self):
        cache = BaselineCache()
        a = cache.get("pagerank", 2, 5)
        b = cache.get("pagerank", 3, 5)
        assert a.shape != b.shape or (a != b).any()


class TestServiceCampaign:
    def test_campaign_aggregates(self):
        from repro.chaos import run_service_campaign

        cfg = ServiceConfig(n_jobs=4, seed=0, arrival_rate=1.5)
        result = run_service_campaign(cfg, streams=2)
        assert len(result.streams) == 2
        assert result.cross_tenant_aborts == 0
        assert result.violations == []
        assert result.counts()["completed"] == 8
        assert "service campaign" in result.summary()

    def test_parallel_streams_bitwise_identical(self):
        from repro.chaos import run_service_campaign

        cfg = ServiceConfig(
            n_jobs=4, seed=0, arrival_rate=1.5, crash_rate=0.5, pair_rate=0.05
        )
        serial = run_service_campaign(cfg, streams=2)
        parallel = run_service_campaign(cfg, streams=2, jobs=2)
        assert serial.streams == parallel.streams
        assert serial.violations == parallel.violations
