"""Tiered recovery: k-replica survival of correlated kills + disk fallback.

The PR's acceptance scenario: a scripted *simultaneous* kill of two
adjacent places.  The seed's double store (k=1, ring) loses both copies of
one partition and must raise ``DataLossError``; the same schedule recovers
and converges either with k=2 + spread placement (in memory) or with the
stable-storage fallback tier (from disk).
"""

import numpy as np
import pytest

from repro.apps.data import RegressionWorkload
from repro.apps.nonresilient import LinRegNonResilient
from repro.apps.resilient import LinRegResilient
from repro.matrix.dupvector import DupVector
from repro.resilience.executor import IterativeExecutor
from repro.resilience.placement import RingPlacement, SpreadPlacement, make_placement
from repro.resilience.snapshot import DistObjectSnapshot
from repro.resilience.store import AppResilientStore
from repro.runtime import CostModel, DataLossError, Runtime

PLACES = 6
WL = RegressionWorkload(
    features=8, examples_per_place=32, iterations=10, blocks_per_place=2
)


def failure_free_model():
    rt = Runtime(PLACES, cost=CostModel.zero())
    app = LinRegNonResilient(rt, WL)
    app.run()
    return app.model()


def run_with_adjacent_double_kill(**executor_kwargs):
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True)
    app = LinRegResilient(rt, WL)
    # Both members of an adjacent pair die before the same iteration: under
    # the ring scheme partition 2's primary (place 2) and its only backup
    # (place 3) vanish together.
    rt.injector.kill_at_iteration(2, iteration=5)
    rt.injector.kill_at_iteration(3, iteration=5)
    executor = IterativeExecutor(rt, app, checkpoint_interval=3, **executor_kwargs)
    report = executor.run()
    return app, report


class TestAdjacentDoubleKill:
    def test_seed_double_store_loses_data(self):
        # The paper's k=1 ring store cannot survive the adjacent pair.
        with pytest.raises(DataLossError, match="in-memory copies"):
            run_with_adjacent_double_kill()

    def test_k2_spread_recovers_in_memory(self):
        ref = failure_free_model()
        app, report = run_with_adjacent_double_kill(
            replicas=2, placement=SpreadPlacement()
        )
        assert report.restores == 1
        assert report.stable_fallback_reads == 0
        assert np.allclose(app.model(), ref, atol=1e-8)

    def test_stable_fallback_recovers_from_disk(self):
        ref = failure_free_model()
        app, report = run_with_adjacent_double_kill(stable_fallback=True)
        assert report.restores == 1
        assert report.stable_fallback_reads > 0
        assert np.allclose(app.model(), ref, atol=1e-8)

    def test_k2_ring_still_insufficient_for_triple_burst(self):
        # k replicas tolerate k consecutive failures, not k+1: a burst of
        # three adjacent places still defeats k=2 ring.
        rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True)
        app = LinRegResilient(rt, WL)
        for victim in (2, 3, 4):
            rt.injector.kill_at_iteration(victim, iteration=5)
        executor = IterativeExecutor(
            rt, app, checkpoint_interval=3, replicas=2, placement=RingPlacement()
        )
        with pytest.raises(DataLossError):
            executor.run()


class TestStoreKnobs:
    def test_store_overrides_object_configuration(self):
        rt = Runtime(4, cost=CostModel.zero())
        store = AppResilientStore(
            rt, replicas=2, placement=SpreadPlacement(), stable_fallback=True
        )
        v = DupVector.make(rt, 4).init(1.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        assert v.snapshot_backups == 2
        assert v.snapshot_placement.name == "spread"
        assert v.snapshot_stable_fallback is True
        snap = store.latest().snapshots[v]
        assert snap.placement_ok()

    def test_none_knobs_leave_objects_untouched(self):
        rt = Runtime(4, cost=CostModel.zero())
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 4).init(1.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        assert v.snapshot_backups == 1  # the class default, the paper's k

    def test_executor_builds_configured_store(self):
        rt = Runtime(4, cost=CostModel.zero(), resilient=True)
        app = LinRegResilient(rt, WL)
        executor = IterativeExecutor(
            rt, app, replicas=3, placement=make_placement("stride:2"),
            stable_fallback=True,
        )
        assert executor.store.replicas == 3
        assert executor.store.placement.name == "stride"
        assert executor.store.stable_fallback is True


class TestSnapshotTiers:
    def test_reads_fall_through_replicas_in_order(self):
        rt = Runtime(6, cost=CostModel.zero())
        v = DupVector.make(rt, 5).init(7.0)
        v.snapshot_backups = 2
        v.snapshot_placement = SpreadPlacement()
        snap = v.make_snapshot()
        # Key 1: primary place 1, replicas at 1+2=3 and 1+4=5.
        assert snap.locate(1)[0] == 1
        rt.kill(1)
        assert snap.locate(1)[0] == 3
        rt.kill(3)
        assert snap.locate(1)[0] == 5
        rt.kill(5)
        with pytest.raises(DataLossError):
            snap.locate(1)

    def test_stable_tier_serves_when_memory_gone(self):
        rt = Runtime(4, cost=CostModel.zero())
        v = DupVector.make(rt, 5).init(3.5)
        v.snapshot_stable_fallback = True
        snap = v.make_snapshot()
        rt.kill(1)
        rt.kill(2)  # key 1's primary and ring backup both gone
        place, _ = snap.locate(1)
        assert place is DistObjectSnapshot.STABLE_TIER
        v.remake(rt.live_world())
        v.restore_snapshot(snap)
        assert np.allclose(v.to_array(), 3.5)
        assert snap.fallback_reads > 0
        assert rt.stats.stable_fallback_reads == snap.fallback_reads

    def test_degraded_stable_snapshot_stays_reusable(self):
        # Read-only reuse: losing in-memory copies does not force a re-save
        # when the stable tier still holds every key.
        rt = Runtime(4, cost=CostModel.zero())
        store = AppResilientStore(rt, stable_fallback=True)
        v = DupVector.make(rt, 4).init(2.0)
        store.start_new_snapshot()
        store.save_read_only(v)
        store.commit(0)
        first = store.latest().read_only[v]
        rt.kill(1)
        rt.kill(2)
        v.remake(rt.live_world())
        v.init(2.0)
        store.start_new_snapshot()
        store.save_read_only(v)
        store.commit(1)
        assert store.latest().read_only[v] is first  # reused via disk tier
