"""Tests for the generalized k-backup snapshot store.

The paper's double in-memory store is the ``backups=1`` instance; the
generalization stores k backup replicas on the next k ring places and
survives any burst of up to k consecutive failures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.dupvector import DupVector
from repro.matrix.vector import Vector
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime import CostModel, DataLossError, Runtime


def make_rt(n=6, cost=None):
    return Runtime(n, cost=cost or CostModel.zero())


def save_all(rt, snap, payload_fn):
    group = snap.group

    def task(ctx):
        index = group.index_of(ctx.place)
        snap.save_from(ctx, index, payload_fn(index))

    rt.finish_all(group, task)


class TestKBackups:
    def test_replica_placement(self):
        rt = make_rt(5)
        snap = DistObjectSnapshot(rt, rt.world, backups=2)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        # Key 0: primary on 0, backups on 1 and 2.
        assert rt.heap_of(0).contains(("snap", snap.snap_id, 0))
        assert rt.heap_of(1).contains(("snapb", snap.snap_id, 0, 1))
        assert rt.heap_of(2).contains(("snapb", snap.snap_id, 0, 2))

    def test_zero_backups_is_unprotected(self):
        rt = make_rt(4)
        snap = DistObjectSnapshot(rt, rt.world, backups=0)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        rt.kill(2)
        with pytest.raises(DataLossError):
            snap.locate(2)
        snap.locate(1)  # other keys fine

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_survives_k_consecutive_failures(self, k):
        rt = make_rt(6)
        snap = DistObjectSnapshot(rt, rt.world, backups=k)
        save_all(rt, snap, lambda i: Vector.of([float(i) * 3]))
        for victim in range(1, 1 + k):  # kill k consecutive places (not 0)
            rt.kill(victim)
        for key in range(6):
            pid, heap_key = snap.locate(key)
            assert rt.heap_of(pid).get(heap_key).data[0] == key * 3

    @pytest.mark.parametrize("k", [1, 2])
    def test_k_plus_one_consecutive_failures_lose_data(self, k):
        rt = make_rt(6)
        snap = DistObjectSnapshot(rt, rt.world, backups=k)
        save_all(rt, snap, lambda i: Vector.of([1.0]))
        for victim in range(1, 2 + k):  # k+1 consecutive victims
            rt.kill(victim)
        with pytest.raises(DataLossError):
            snap.locate(1)

    def test_delete_frees_all_replicas(self):
        rt = make_rt(5)
        snap = DistObjectSnapshot(rt, rt.world, backups=2)
        save_all(rt, snap, lambda i: Vector.of([1.0]))
        snap.delete()
        for pid in rt.world.ids:
            assert len(rt.heap_of(pid).keys_with_prefix(("snap",))) == 0
            assert len(rt.heap_of(pid).keys_with_prefix(("snapb",))) == 0

    def test_negative_backups_rejected(self):
        rt = make_rt(3)
        with pytest.raises(ValueError):
            DistObjectSnapshot(rt, rt.world, backups=-1)

    def test_save_cost_grows_with_replication(self):
        costs = {}
        for k in (1, 3):
            rt = make_rt(6, cost=CostModel(byte_time=1e-6, memcpy_byte_time=1e-7))
            snap = DistObjectSnapshot(rt, rt.world, backups=k)
            save_all(rt, snap, lambda i: Vector.of(np.zeros(1000)))
            costs[k] = rt.clock.global_time()
        assert costs[3] > costs[1]

    @settings(max_examples=20, deadline=None)
    @given(
        places=st.integers(2, 8),
        k=st.integers(1, 4),
        victims=st.sets(st.integers(1, 7), max_size=3),
    )
    def test_locate_never_returns_dead_copies(self, places, k, victims):
        rt = make_rt(places)
        snap = DistObjectSnapshot(rt, rt.world, backups=k)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        for victim in victims:
            if victim < places:
                rt.kill(victim)
        for key in range(places):
            try:
                pid, heap_key = snap.locate(key)
            except DataLossError:
                continue
            assert rt.is_alive(pid)
            assert rt.heap_of(pid).get(heap_key).data[0] == key


class TestObjectLevelReplication:
    def test_dup_vector_with_extra_backups(self):
        rt = make_rt(6)
        v = DupVector.make(rt, 8).init_random(3)
        v.snapshot_backups = 2
        ref = v.to_array()
        snap = v.make_snapshot()
        assert snap.backups == 2
        # Two consecutive failures — fatal for the paper's double store,
        # survivable with k=2.
        rt.kill(2)
        rt.kill(3)
        v.remake(rt.live_world())
        v.restore_snapshot(snap)
        assert np.allclose(v.to_array(), ref)
