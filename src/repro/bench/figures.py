"""Plain-text renderers for the benchmark results.

The benchmarks print each figure as an aligned series table plus an ASCII
chart, and write CSV files under ``results/`` so the series can be
re-plotted with any tool.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence


def series_table(
    places: Sequence[int],
    values: Dict[str, Sequence[float]],
    value_format: str = "{:10.1f}",
    header_unit: str = "",
) -> str:
    """Aligned text table: one row per place count, one column per series."""
    names = list(values)
    widths = [max(len(name), 10) for name in names]
    lines = ["places  " + "  ".join(n.rjust(w) for n, w in zip(names, widths))]
    if header_unit:
        lines[0] += f"   [{header_unit}]"
    for i, p in enumerate(places):
        cells = [
            value_format.format(values[name][i]).rjust(w)
            for name, w in zip(names, widths)
        ]
        lines.append(f"{p:6d}  " + "  ".join(cells))
    return "\n".join(lines)


def ascii_chart(
    places: Sequence[int],
    values: Dict[str, Sequence[float]],
    width: int = 60,
    title: str = "",
) -> str:
    """A crude horizontal-bar chart, one block of bars per series."""
    peak = max(max(v) for v in values.values()) or 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    markers = "█▓▒░▚▞"
    for s_idx, (name, series) in enumerate(values.items()):
        lines.append(f"-- {name}")
        mark = markers[s_idx % len(markers)]
        for p, v in zip(places, series):
            bar = mark * max(1, int(round(v / peak * width)))
            lines.append(f"  {p:4d} |{bar} {v:.1f}")
    return "\n".join(lines)


def write_csv(
    path: str,
    places: Sequence[int],
    values: Dict[str, Sequence[float]],
    x_name: str = "places",
) -> str:
    """Write the series as CSV (x column first); returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    names = list(values)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join([x_name] + names) + "\n")
        for i, p in enumerate(places):
            row = [str(p)] + [repr(values[name][i]) for name in names]
            fh.write(",".join(row) + "\n")
    return path


def comparison_line(
    what: str, paper_value: float, measured: float, unit: str = "ms"
) -> str:
    """One paper-vs-measured line with the ratio."""
    ratio = measured / paper_value if paper_value else float("inf")
    return f"  {what:<42s} paper {paper_value:9.1f} {unit}   ours {measured:9.1f} {unit}   ratio {ratio:5.2f}x"


def results_dir() -> str:
    """Directory where benchmark CSVs are written."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    return os.path.join(here, "results")
