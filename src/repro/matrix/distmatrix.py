"""``DistDenseMatrix`` / ``DistSparseMatrix`` — one block per place.

GML's simpler distributed classes assign exactly one block to each place.
Unlike :class:`DistBlockMatrix`, they cannot shrink by remapping blocks:
changing the place group forces a grid recalculation ("classes that assign
one block to each place must recalculate the data grid to generate new
blocks equal in number to the size of the new PlaceGroup", §IV-A2) — so
their restore after a shrink always takes the repartitioned path.

Implemented as constrained subclasses of :class:`DistBlockMatrix`: the grid
is always ``P × 1`` row bands (one per place) and ``remake`` re-grids.
"""

from __future__ import annotations

from typing import Optional

from repro.matrix.distblock import DENSE, SPARSE, DistBlockMatrix
from repro.matrix.grid import Grid
from repro.matrix.mapping import GroupedBlockMap
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime
from repro.util.validation import require


class _OneBlockPerPlace(DistBlockMatrix):
    """Shared base: a ``P × 1`` row-band grid, one block per place."""

    _KIND = DENSE

    def __init__(self, runtime: Runtime, m: int, n: int, group: PlaceGroup):
        grid = Grid.partition(m, n, group.size, 1)
        super().__init__(runtime, grid, group, self._KIND, GroupedBlockMap(grid, group.size))

    @classmethod
    def make(
        cls, runtime: Runtime, m: int, n: int, group: Optional[PlaceGroup] = None
    ) -> "_OneBlockPerPlace":
        """One row band per place of *group* (defaults to the world)."""
        return cls(runtime, m, n, group if group is not None else runtime.world)

    def remake(self, new_group: PlaceGroup, new_grid=None, **_ignored) -> "_OneBlockPerPlace":
        """Reallocate over *new_group*, always recalculating the grid."""
        require(new_grid is None, "one-block-per-place classes recalculate their own grid")
        regrid = Grid.partition(self.m, self.n, new_group.size, 1)
        return super().remake(new_group, new_grid=regrid)

    def block_of_place(self, index: int):
        """The single block held at a group index."""
        blocks = list(self.block_set(index))
        require(len(blocks) == 1, "invariant violated: exactly one block per place")
        return blocks[0]


class DistDenseMatrix(_OneBlockPerPlace):
    """A dense matrix with exactly one row-band block per place."""

    _KIND = DENSE


class DistSparseMatrix(_OneBlockPerPlace):
    """A sparse (CSR) matrix with exactly one row-band block per place."""

    _KIND = SPARSE
