"""Logistic Regression (non-resilient) — GML's LogReg benchmark.

Trains a binary classifier by batch gradient descent with a one-step
backtracking evaluation per iteration (GML's LogisticRegression demo
likewise evaluates the objective when choosing its step), so each
iteration performs two forward passes and one gradient pass — which is why
LogReg's time per iteration is roughly twice LinReg's in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.data import RegressionWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.ops import dist_block_t_matvec
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class LogRegNonResilient:
    """Plain gradient-descent logistic regression over GML."""

    def __init__(
        self,
        runtime: Runtime,
        workload: RegressionWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        n_examples = self.n_examples = workload.examples(group.size)
        d = workload.features
        self.X = DistBlockMatrix.make_dense(
            runtime, n_examples, d, workload.row_blocks(group.size), 1, group
        ).init_random(workload.seed)
        row_part = self.X.aligned_row_partition()
        # Binary labels derived deterministically from a random score.
        self.y = DistVector.make(runtime, n_examples, group, row_part)
        self.y.init_random(workload.seed, tag=2)
        self.y.map(lambda v: (v > 0.5).astype(float), flops_per_cell=1)

        # Model and temporaries.
        self.w = DupVector.make(runtime, d, group)
        self.grad = DupVector.make(runtime, d, group)
        self.margins = DistVector.make(runtime, n_examples, group, row_part)
        self.probe = DistVector.make(runtime, n_examples, group, row_part)
        self.loss = float("inf")

    @property
    def places(self) -> PlaceGroup:
        return self._places

    def is_finished(self) -> bool:
        return self.iteration >= self.workload.iterations

    def step(self) -> None:
        """One gradient-descent iteration with an objective evaluation."""
        lam = self.workload.ridge_lambda
        # Batch GD with a size-normalized step so the rate is scale-free.
        eta = self.workload.learning_rate / self.n_examples
        # Forward pass: mu = sigmoid(X w);  residual = mu - y.
        self.margins.mult(self.X, self.w)
        self.margins.map(_sigmoid, flops_per_cell=4)
        self.margins.cell_sub(self.y)
        # Gradient: g = Xᵀ residual + λ w; update w.
        dist_block_t_matvec(self.X, self.margins, self.grad)
        self.grad.axpy(lam, self.w)
        self.w.axpy(-eta, self.grad)
        # Objective evaluation at the new iterate (second forward pass).
        self.probe.mult(self.X, self.w)
        self.probe.map(_sigmoid, flops_per_cell=4)
        self.probe.cell_sub(self.y)
        self.loss = self.probe.dot_dist(self.probe)
        self.iteration += 1

    def run(self) -> None:
        """Train to completion."""
        while not self.is_finished():
            self.step()

    def model(self):
        """The learned weight vector (driver-side copy)."""
        return self.w.to_array()
