"""Delta (incremental) checkpointing: versions, copy-on-write, adoption."""

import numpy as np
import pytest

from repro.matrix.dense import DenseMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.sparse import SparseCSR
from repro.matrix.vector import Vector
from repro.resilience.snapshot import DistObjectSnapshot
from repro.resilience.store import AppResilientStore
from repro.runtime import CostModel, PlaceGroup, Runtime
from repro.util import checksum
from repro.util.checksum import memoized_checksum, payload_checksum
from repro.util.versioning import freeze_payload, payload_frozen, version_token


def make_rt(n=4, cost=None, **kw):
    return Runtime(n, cost=cost or CostModel.zero(), **kw)


class TestVersionTracking:
    def test_mutators_bump_the_version(self):
        v = Vector.of([1.0, 2.0])
        before = v.version
        v.scale(2.0)
        assert v.version != before
        m = DenseMatrix.make(2, 2)
        before = m.version
        m.fill(3.0)
        assert m.version != before
        s = SparseCSR.empty(2, 2)
        before = s.version
        s.scale(0.5)
        assert s.version != before

    def test_versions_are_globally_unique(self):
        # Two fresh objects never share a token, so a restore that rebuilds
        # an object can never falsely compare clean against an old base.
        tokens = {Vector.make(2).version for _ in range(100)}
        tokens |= {DenseMatrix.make(1, 1).version for _ in range(100)}
        assert len(tokens) == 200

    def test_partition_versions_track_mutation(self):
        rt = make_rt()
        v = DupVector.make(rt, 8).init(1.0)
        before = v.partition_versions()
        assert set(before) == {0, 1, 2, 3}
        v.scale(2.0)
        after = v.partition_versions()
        assert all(after[i] != before[i] for i in before)

    def test_version_token_dispatch(self):
        v = Vector.make(2)
        assert version_token(v) == v.version
        assert version_token({0: v}) == ((0, v.version),)
        assert version_token(object()) is None


class TestCopyOnWrite:
    def test_freeze_view_shares_bytes_and_is_immutable(self):
        v = Vector.of([1.0, 2.0, 3.0])
        view = v.freeze_view()
        assert np.shares_memory(view.data, v.data)
        assert not view.data.flags.writeable
        with pytest.raises(ValueError):
            view.data[0] = 9.0

    def test_touch_after_freeze_copies_before_writing(self):
        v = Vector.of([1.0, 2.0])
        view = v.freeze_view()
        v.scale(10.0)  # touch() replaces the frozen backing array
        assert not np.shares_memory(view.data, v.data)
        assert view.data.tolist() == [1.0, 2.0]
        assert v.data.tolist() == [10.0, 20.0]

    def test_sparse_freeze_view_preserves_values(self):
        s = SparseCSR.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        view = s.freeze_view()
        s.scale(3.0)
        assert view.to_dense().tolist() == [[1.0, 0.0], [0.0, 2.0]]

    def test_missed_touch_site_fails_loudly_not_silently(self):
        # The safety property behind CoW: once frozen, a direct write that
        # skipped touch() raises instead of corrupting the snapshot.
        v = Vector.of([1.0])
        v.freeze_view()
        with pytest.raises(ValueError):
            v.data[0] = 2.0

    def test_freeze_payload_and_frozen_predicate(self):
        payload = {0: Vector.of([1.0]), 1: np.zeros(3)}
        assert not payload_frozen(payload)
        freeze_payload(payload)
        assert payload_frozen(payload)


class TestChecksumMemo:
    def test_memo_hit_for_frozen_tokened_payload(self):
        v = Vector.of([4.0, 5.0])
        freeze_payload(v)
        checksum._crc_memo.clear()
        crc = memoized_checksum(v, v.version)
        assert v.version in checksum._crc_memo
        assert memoized_checksum(v, v.version) == crc == payload_checksum(v)

    def test_memo_bypassed_for_writable_payloads(self):
        # Corrupted copies come back writable (deepcopy drops the frozen
        # flag), so a poisoned memo can never mask the corruption.
        v = Vector.of([4.0, 5.0])
        freeze_payload(v)
        checksum._crc_memo.clear()
        memoized_checksum(v, v.version)
        import copy as _copy

        evil = _copy.deepcopy(v)
        evil.data[0] = -1.0
        assert memoized_checksum(evil, v.version) != memoized_checksum(v, v.version)


def _two_checkpoints(rt, store, objects, mutate=None):
    store.start_new_snapshot()
    for obj in objects:
        store.save(obj)
    store.commit(0)
    if mutate:
        mutate()
    t0 = rt.now()
    store.start_new_snapshot()
    for obj in objects:
        store.save(obj)
    store.commit(1)
    return rt.now() - t0


class TestDeltaStore:
    def test_clean_partitions_are_adopted_not_copied(self):
        rt = make_rt(cost=CostModel.laptop(), resilient=True)
        store = AppResilientStore(rt, replicas=1, delta=True)
        v = DupVector.make(rt, 4096).init_random(3)
        _two_checkpoints(rt, store, [v])
        assert store.delta_clean_partitions == 4
        assert store.delta_dirty_partitions == 4  # the first, baseless save
        assert store.delta_clean_bytes == store.delta_dirty_bytes > 0

    def test_clean_checkpoint_is_cheaper_than_full(self):
        def run(delta):
            rt = make_rt(cost=CostModel.laptop(), resilient=True)
            store = AppResilientStore(rt, replicas=1, delta=delta)
            v = DupVector.make(rt, 1 << 20).init_random(3)
            return _two_checkpoints(rt, store, [v])

        full, clean = run(False), run(True)
        assert clean < full / 5

    def test_dirty_partitions_still_pay_full_cost(self):
        def run(delta, mutate):
            rt = make_rt(cost=CostModel.laptop(), resilient=True)
            store = AppResilientStore(rt, replicas=1, delta=delta)
            v = DupVector.make(rt, 1 << 14).init_random(3)
            return _two_checkpoints(
                rt, store, [v], mutate=(lambda: v.scale(2.0)) if mutate else None
            )

        # An all-dirty delta checkpoint costs what a full one does.
        assert run(True, mutate=True) == pytest.approx(run(False, mutate=True))

    def test_delta_restore_matches_full_restore(self):
        def run(delta):
            rt = make_rt(resilient=True)
            store = AppResilientStore(rt, replicas=1, delta=delta)
            v = DupVector.make(rt, 32).init_random(7)
            d = DistVector.make(rt, 32).init_random(8)
            store.start_new_snapshot()
            store.save(v)
            store.save(d)
            store.commit(0)
            v.scale(3.0)  # d stays clean
            store.start_new_snapshot()
            store.save(v)
            store.save(d)
            store.commit(1)
            v.fill(0.0)
            d.fill(0.0)
            store.restore()
            return v.to_array(), d.to_array()

        vf, df = run(False)
        vd, dd = run(True)
        assert np.array_equal(vf, vd) and np.array_equal(df, dd)

    def test_committed_snapshot_immune_to_later_mutation(self):
        rt = make_rt(resilient=True)
        store = AppResilientStore(rt, replicas=1, delta=True)
        v = DupVector.make(rt, 16).init_random(1)
        saved = v.to_array().copy()
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        v.scale(100.0)
        store.restore()
        assert np.array_equal(v.to_array(), saved)

    def test_replica_death_forces_a_dirty_resave(self):
        rt = make_rt(4, resilient=True)
        store = AppResilientStore(rt, replicas=1, delta=True)
        v = DupVector.make(rt, 8).init_random(2)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        snap = store.latest().snapshots[v]
        token = v.partition_versions()[0]
        assert snap.can_reuse(0, token)
        # Partition 0's bytes are unchanged, but its backup replica died
        # with its place: redundancy is degraded, so reuse must be refused
        # (adopting would let the next failure destroy the last copy).
        rt.kill(snap._backup_place(0, 1).id)
        assert not snap.can_reuse(0, token)

    def test_adoption_survives_base_deletion_on_commit(self):
        # commit() deletes the previous snapshot's heap entries; adopted
        # payloads live under the NEW snapshot's keys and must survive.
        rt = make_rt(resilient=True)
        store = AppResilientStore(rt, replicas=1, delta=True)
        v = DupVector.make(rt, 16).init_random(4)
        saved = v.to_array().copy()
        for it in range(3):  # three all-clean generations
            store.start_new_snapshot()
            store.save(v)
            store.commit(it)
        v.fill(-1.0)
        store.restore()
        assert np.array_equal(v.to_array(), saved)

    def test_incompatible_base_degrades_to_full_save(self):
        rt = make_rt(resilient=True)
        snap_a = DistObjectSnapshot(rt, rt.world, backups=1)
        snap_b = DistObjectSnapshot(rt, rt.world, backups=2)
        snap_c = DistObjectSnapshot(rt, PlaceGroup.of_ids([0, 1]), backups=1)
        assert not snap_b.delta_compatible(snap_a)
        assert not snap_c.delta_compatible(snap_a)
        assert DistObjectSnapshot(rt, rt.world, backups=1).delta_compatible(snap_a)


class TestCorruptionIsolation:
    """A quarantined copy's CoW siblings in other tiers are unaffected."""

    def _snapshot(self, rt, stable=False):
        snap = DistObjectSnapshot(rt, rt.world, backups=1, stable_fallback=stable)
        group = snap.group

        def task(ctx):
            index = group.index_of(ctx.place)
            payload = Vector.of([float(index), float(index) + 0.5])
            snap.save_from(ctx, index, payload, token=payload.version)

        rt.finish_all(group, task)
        return snap

    def test_corrupting_one_tier_leaves_siblings_byte_identical(self):
        rt = make_rt(3, resilient=True)
        snap = self._snapshot(rt, stable=True)
        # All tiers share one frozen payload object; corrupt_copy must
        # replace, not mutate, or every tier would rot at once.
        assert snap.corrupt_copy(1, 0)
        backup = rt.heap_of(snap._backup_place(1, 1).id).get(snap._backup_key(1, 1))
        assert backup.data.tolist() == [1.0, 1.5]
        assert snap._stable[1].data.tolist() == [1.0, 1.5]
        # locate quarantines the primary and serves the intact backup.
        pid, key = snap.locate(1)
        assert key[0] == "snapb"
        assert (1, 0) in snap.quarantined

    def test_adopted_corruption_is_caught_on_first_use(self):
        # A silently corrupted copy adopted by a delta save stays
        # unverified and is quarantined by the checksum pass on first use —
        # adoption must not launder corruption into a "verified" state.
        rt = make_rt(3, cost=CostModel.zero(), resilient=True)
        store = AppResilientStore(rt, replicas=1, delta=True)
        v = DupVector.make(rt, 4, PlaceGroup.of_ids([0, 1, 2])).init_random(5)
        saved = v.to_array().copy()
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        base = store.latest().snapshots[v]
        assert base.corrupt_copy(1, 0)
        store.start_new_snapshot()
        store.save(v)  # partition 1 is version-clean: adopted, corruption included
        store.commit(1)
        snap = store.latest().snapshots[v]
        assert 1 in snap.clean_keys
        pid, key = snap.locate(1)
        assert key[0] == "snapb" and (1, 0) in snap.quarantined
        v.fill(0.0)
        store.restore()
        assert np.array_equal(v.to_array(), saved)


class TestSaveFromSinglePlace:
    def test_degenerate_replica_pays_no_second_memcpy(self):
        # On a single-place group the "backup" is the same heap; the copy
        # is forwarded by reference, so adding it must cost (almost)
        # nothing relative to a replica-free save of the same bytes.
        nbytes_payload = Vector.make(1 << 16)

        def elapsed(backups):
            rt = make_rt(2, cost=CostModel.laptop(), resilient=True)
            g = PlaceGroup.of_ids([1])
            snap = DistObjectSnapshot(rt, g, backups=backups)
            t0 = rt.now()
            rt.finish_all(
                g,
                lambda ctx: snap.save_from(ctx, 0, nbytes_payload.copy()),
            )
            return rt.now() - t0

        one_copy, with_replica = elapsed(0), elapsed(1)
        memcpy = CostModel.laptop().memcpy(nbytes_payload.nbytes)
        assert with_replica - one_copy < 0.5 * memcpy
