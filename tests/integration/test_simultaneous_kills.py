"""Simultaneous multi-place failures under classic checkpoint/restart.

The reconstruct work surfaced a family of burst patterns (adjacent pairs,
racks, kills landing inside a restore) that the *existing* rollback path
must also survive: one restore handles every death the triggering event
reported, the restore-retry loop absorbs kills landing mid-recovery, and
a detector must be able to confirm two deaths from a single event.
"""

import numpy as np
import pytest

from repro.apps.data import PageRankWorkload, RegressionWorkload
from repro.apps.nonresilient import LinRegNonResilient, PageRankNonResilient
from repro.apps.resilient import LinRegResilient, PageRankResilient
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.placement import ParityPlacement, SpreadPlacement
from repro.runtime import CostModel, DataLossError, Runtime
from repro.runtime.detector import PhiAccrualDetector

PLACES = 6
ITER = 12
REG_WL = RegressionWorkload(
    features=8, examples_per_place=32, iterations=ITER, blocks_per_place=2
)
PR_WL = PageRankWorkload(
    nodes_per_place=24, out_degree=4, iterations=ITER, blocks_per_place=2
)


def baseline(NonRes, wl, get, places=PLACES):
    rt = Runtime(places, cost=CostModel.zero())
    app = NonRes(rt, wl)
    app.run()
    return get(app)


@pytest.mark.parametrize("victims", [(2, 3), (1, 4)], ids=["adjacent", "spread"])
def test_pair_kill_one_restore(victims):
    # Two deaths in one iteration arrive as one MultipleException: a
    # single restore (with two spares installed) must recover both.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=2)
    app = LinRegResilient(rt, REG_WL)
    for victim in victims:
        rt.injector.kill_at_iteration(victim, iteration=6)
    report = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=4,
        mode=RestoreMode.REPLACE_REDUNDANT,
        replicas=2,
        placement=SpreadPlacement(),
    ).run()
    assert report.restores == 1
    assert report.failures_observed >= 2
    assert report.final_group_size == PLACES
    assert np.array_equal(app.model(), ref)


def test_rack_kill_shrinks_once():
    # A three-place rack burst with no spares: one shrink restore drops
    # all three victims together, not one at a time.
    ref = baseline(PageRankNonResilient, PR_WL, lambda a: a.ranks())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True)
    app = PageRankResilient(rt, PR_WL)
    for victim in (2, 3, 4):
        rt.injector.kill_at_iteration(victim, iteration=6)
    report = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=4,
        mode=RestoreMode.SHRINK_REBALANCE,
        replicas=3,
        placement=SpreadPlacement(),
    ).run()
    assert report.restores == 1
    assert report.final_group_size == PLACES - 3
    assert np.allclose(app.ranks(), ref, atol=1e-8)


def test_pair_kill_during_restore_retries():
    # A second pair landing inside the restore itself: the retry loop
    # must fold the new deaths into the next attempt.  The aborted
    # attempt's two claimed spares cannot be returned, so the retry needs
    # three fresh ones: 5 in the pool keeps the group at full width.
    ref = baseline(PageRankNonResilient, PR_WL, lambda a: a.ranks())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=5)
    app = PageRankResilient(rt, PR_WL)
    for victim in (1, 2):
        rt.injector.kill_at_iteration(victim, iteration=5)
    rt.injector.kill_during(4, context="restore")
    report = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=3,
        mode=RestoreMode.REPLACE_REDUNDANT,
        replicas=3,
        placement=SpreadPlacement(),
    ).run()
    assert report.restores == 1
    assert report.aborted_restores >= 1
    assert report.final_group_size == PLACES
    assert np.array_equal(app.ranks(), ref)


def test_detector_confirms_two_deaths_in_one_event():
    # With a detector attached, a simultaneous pair must be confirmed and
    # evicted as two deaths of one recovery round — no split restores, no
    # false positives.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(PLACES, cost=CostModel(latency=0.01), resilient=True, spares=2)
    app = LinRegResilient(rt, REG_WL)
    for victim in (2, 4):
        rt.injector.kill_at_iteration(victim, iteration=6)
    detector = PhiAccrualDetector(rt, detect_timeout=1.0)
    report = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=4,
        mode=RestoreMode.REPLACE_REDUNDANT,
        replicas=2,
        placement=SpreadPlacement(),
        detector=detector,
    ).run()
    assert report.evictions == 2
    assert report.false_positive_evictions == 0
    assert report.restores == 1
    assert report.detection_wait_time > 0.0
    np.testing.assert_allclose(app.model(), ref, atol=1e-8)


# -- parity snapshot tier under burst kills ----------------------------------
#
# With ``placement=parity:2`` over 6 places the recovery sets (members plus
# the group-external parity holder) are {0,1,2}, {2,3,4} and {4,5,0}: any
# burst taking at most one place per set reconstructs in memory; two places
# of one set before a scrub exceeds the code.


def parity_executor(rt, app, **kw):
    kw.setdefault("checkpoint_interval", 4)
    kw.setdefault("mode", RestoreMode.REPLACE_REDUNDANT)
    kw.setdefault("replicas", 1)
    kw.setdefault("placement", ParityPlacement(group=2))
    return IterativeExecutor(rt, app, **kw)


def test_pair_kill_one_loss_per_group_recovers_in_memory():
    # Victims 1 and 4 each sit in different recovery sets: both partitions
    # come back via XOR reconstruction, never touching disk.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=2)
    app = LinRegResilient(rt, REG_WL)
    for victim in (1, 4):
        rt.injector.kill_at_iteration(victim, iteration=6)
    report = parity_executor(rt, app).run()
    assert report.restores == 1
    assert report.parity_reconstructions > 0
    assert report.stable_fallback_reads == 0
    assert report.scrubs >= 1
    assert report.final_group_size == PLACES
    assert np.array_equal(app.model(), ref)


def test_pair_kill_straddling_a_group_falls_through_to_disk():
    # Victims 2 and 3 are both members of the middle parity group: the XOR
    # block cannot solve for two unknowns, so recovery must fall through
    # to the stable tier — and still finish bit-exact.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=2)
    app = LinRegResilient(rt, REG_WL)
    for victim in (2, 3):
        rt.injector.kill_at_iteration(victim, iteration=6)
    report = parity_executor(rt, app, stable_fallback=True).run()
    assert report.restores == 1
    assert report.stable_fallback_reads > 0
    assert report.final_group_size == PLACES
    assert np.array_equal(app.model(), ref)


def test_pair_kill_straddling_a_group_without_disk_is_data_loss():
    # The same straddling pair with no stable tier behind the parity code
    # is a documented loss: the run must fail loudly, not return garbage.
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=2)
    app = LinRegResilient(rt, REG_WL)
    for victim in (2, 3):
        rt.injector.kill_at_iteration(victim, iteration=6)
    with pytest.raises(DataLossError, match="parity group"):
        parity_executor(rt, app).run()


def test_rack_kill_under_parity_recovers_via_disk():
    # A three-place rack burst defeats every parity group it straddles;
    # with the stable tier on, one replace-restore still recovers.
    ref = baseline(PageRankNonResilient, PR_WL, lambda a: a.ranks())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=3)
    app = PageRankResilient(rt, PR_WL)
    for victim in (2, 3, 4):
        rt.injector.kill_at_iteration(victim, iteration=6)
    report = parity_executor(rt, app, stable_fallback=True).run()
    assert report.restores == 1
    assert report.stable_fallback_reads > 0
    assert report.final_group_size == PLACES
    assert np.array_equal(app.ranks(), ref)


def test_sequential_same_group_kills_survive_via_scrub():
    # Places 2 and 3 share a group, but the kills land in different
    # iterations: the scrub after the first restore re-materializes the
    # lost copies, so the second kill is again a single loss.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=2)
    app = LinRegResilient(rt, REG_WL)
    rt.injector.kill_at_iteration(2, iteration=5)
    rt.injector.kill_at_iteration(3, iteration=9)
    report = parity_executor(rt, app).run()
    assert report.restores == 2
    assert report.scrubs == 2
    assert report.stable_fallback_reads == 0
    assert np.array_equal(app.model(), ref)


def test_mid_scrub_kill_retries_and_recovers():
    # A kill landing inside the scrub pass itself: the scrub aborts, the
    # retry loop folds the new death in, and the next round recovers fully
    # in memory.  Place 6 is the spare installed by the first restore.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(PLACES, cost=CostModel.zero(), resilient=True, spares=4)
    app = LinRegResilient(rt, REG_WL)
    rt.injector.kill_at_iteration(2, iteration=5)
    rt.injector.kill_during(6, context="scrub")
    report = parity_executor(rt, app).run()
    assert report.aborted_scrubs == 1
    assert report.scrubs >= 1
    assert report.stable_fallback_reads == 0
    assert report.final_group_size == PLACES
    assert np.array_equal(app.model(), ref)
