"""Figure 2 — Linear Regression: resilient X10 overhead.

Protocol: the non-resilient LinReg GML benchmark, 30 iterations, weak
scaling (50 000 examples/place, 500 features), run under both non-resilient
and resilient X10; report time per iteration over 2-44 places.

Paper shape: non-resilient grows 60 → 180 ms; resilient grows 60 → 400 ms
(up to ~120 % overhead), the gap widening with places because of
place-zero bookkeeping.
"""

from _common import emit, overhead_report
from repro.bench.calibration import PaperTargets
from repro.bench.harness import run_overhead_sweep


def test_fig2_linreg_overhead(benchmark):
    series = benchmark.pedantic(
        lambda: run_overhead_sweep("linreg", iterations=30), rounds=1, iterations=1
    )
    report = overhead_report(
        "linreg", series, PaperTargets.linreg_nonres_ms, PaperTargets.linreg_res_ms
    )
    emit("Figure 2 — LinReg: resilient X10 overhead (time per iteration)", report)
    nonres = series.values["non-resilient finish"]
    res = series.values["resilient finish"]
    # Shape assertions: growth with places, resilient above non-resilient,
    # overhead in the paper's ballpark (~2x at 44 places).
    assert nonres[-1] > 2.0 * nonres[0]
    assert all(r >= n for r, n in zip(res, nonres))
    assert 1.5 < res[-1] / nonres[-1] < 3.0
