"""The paper's contribution: resilient GML and the iterative framework.

* :class:`Snapshottable` / :class:`DistObjectSnapshot` — per-object
  snapshot/restore with the tiered k-replica in-memory store (§IV-B
  generalized; the paper's double store is ``backups=1`` + ring placement);
* :mod:`~repro.resilience.placement` — pluggable replica placement
  policies (ring / stride / spread) for correlated-failure survival;
* :class:`AppResilientStore` — atomic multi-object application checkpoints
  with read-only snapshot reuse (§V-A1, Listing 4);
* :class:`ResilientIterativeApp` — the 4-method programming model (§V-A2);
* :class:`IterativeExecutor` + :class:`RestoreMode` — the resilient
  executor with shrink / shrink-rebalance / replace-redundant modes and the
  replace-elastic extension (§V-A3, §V-B);
* Young's checkpoint-interval formula (§V).
"""

from repro.resilience.executor import (
    ExecutionReport,
    IterativeExecutor,
    NonResilientExecutor,
    RestoreMode,
)
from repro.resilience.iterative import ResilientIterativeApp, RestoreContext
from repro.resilience.placement import (
    PLACEMENTS,
    ReplicaPlacement,
    RingPlacement,
    SpreadPlacement,
    StridePlacement,
    make_placement,
)
from repro.resilience.snapshot import DistObjectSnapshot, Snapshottable
from repro.resilience.stable import StableObjectSnapshot, use_stable_storage
from repro.resilience.store import AppResilientStore, AppSnapshot
from repro.resilience.young import (
    expected_overhead_fraction,
    optimal_interval,
    optimal_interval_iterations,
)

__all__ = [
    "ExecutionReport",
    "IterativeExecutor",
    "NonResilientExecutor",
    "RestoreMode",
    "ResilientIterativeApp",
    "RestoreContext",
    "PLACEMENTS",
    "ReplicaPlacement",
    "RingPlacement",
    "SpreadPlacement",
    "StridePlacement",
    "make_placement",
    "DistObjectSnapshot",
    "Snapshottable",
    "StableObjectSnapshot",
    "use_stable_storage",
    "AppResilientStore",
    "AppSnapshot",
    "expected_overhead_fraction",
    "optimal_interval",
    "optimal_interval_iterations",
]
