"""Golden-timing regression tests for the paper's Fig. 2-4 protocols.

These pin the *exact* virtual-time numbers the simulator produced before
the discrete-event engine refactor (the seed), at a reduced scale that
keeps the suite fast: places [2, 8, 20], six iterations.  The engine
rewiring was required to be bit-exact — any drift here means the timing
semantics changed, not just an implementation detail.

If a deliberate cost-model change invalidates these numbers, regenerate
them with the printed repro snippet and say so in the commit.
"""

import pytest

from repro.bench.harness import run_overhead_sweep
from repro.matrix import sparse_backend

PLACES = [2, 8, 20]
ITERATIONS = 6

#: app -> series label -> ms/iteration at PLACES (captured pre-refactor).
GOLDEN = {
    "linreg": {
        "non-resilient finish": [76.73699999999998, 96.69500000000035, 130.30499999999876],
        "resilient finish": [85.56499999999993, 128.48499999999743, 209.98000000000636],
    },
    "logreg": {
        "non-resilient finish": [117.05099999999975, 136.1249999999997, 171.2949999999952],
        "resilient finish": [124.60499999999941, 169.62499999999832, 255.32000000000914],
    },
    "pagerank": {
        "non-resilient finish": [39.297952000000045, 65.1486080000003, 132.63828799999956],
        "resilient finish": [42.818975999999985, 76.37833600000053, 155.49731199999695],
    },
}


def _backends():
    """Both sparse backends when scipy is present, else just numpy.

    The speed pass requires the scipy-backed kernels to reproduce the
    golden virtual times bit-for-bit, so the goldens are pinned once and
    asserted under each backend.
    """
    if sparse_backend.scipy_available():
        return ["numpy", "scipy"]
    return ["numpy"]


@pytest.fixture(params=_backends())
def backend(request):
    sparse_backend.set_backend(request.param)
    yield request.param
    sparse_backend.set_backend(None)


@pytest.mark.parametrize("app", sorted(GOLDEN))
def test_overhead_sweep_matches_golden(app, backend):
    series = run_overhead_sweep(app, places_list=PLACES, iterations=ITERATIONS)
    assert series.places == PLACES
    for label, golden in GOLDEN[app].items():
        measured = series.values[label]
        assert measured == pytest.approx(golden, rel=1e-12, abs=1e-9), (
            f"{app} / {label} [{backend} backend]: measured {measured!r} != "
            f"golden {golden!r}; regenerate with run_overhead_sweep"
            f"({app!r}, places_list={PLACES}, iterations={ITERATIONS})"
        )


@pytest.mark.parametrize("app", sorted(GOLDEN))
def test_resilient_overhead_is_positive_and_grows(app):
    """The paper's qualitative claim, derived from the same goldens."""
    nonres = GOLDEN[app]["non-resilient finish"]
    res = GOLDEN[app]["resilient finish"]
    overheads = [(r - n) / n for n, r in zip(nonres, res)]
    assert all(o > 0 for o in overheads)
    # Resilient-finish overhead widens with the place count (ledger is
    # serialized at place zero).
    assert overheads[-1] > overheads[0]
