"""Block-to-place mappings for ``DistBlockMatrix``.

GML's ``DistGrid`` maps grid blocks onto a ``rowPlaces × colPlaces`` place
grid; after a failure the shrink mode re-maps the *same* blocks onto fewer
places.  Fig. 1-b of the paper shows the shrink convention: blocks stay in
grid order and are re-dealt as near-even **consecutive runs**, so each
place's blocks cover a contiguous row span (which keeps matrix-vector
products mostly local).

Mappings are pure index math (no runtime dependency), so they are easy to
property-test: every block maps to exactly one valid place index and the
load (blocks per place) is near-even.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.matrix.grid import Grid, split_even
from repro.util.validation import check_index, check_positive, require


class BlockMap:
    """Abstract block → place-index mapping over a grid."""

    def __init__(self, grid: Grid, num_places: int):
        check_positive(num_places, "num_places")
        self.grid = grid
        self.num_places = num_places

    def place_index_of(self, rb: int, cb: int) -> int:
        """The place *index* (within the object's group) owning a block."""
        raise NotImplementedError

    def blocks_of_place(self, place_index: int) -> List[Tuple[int, int]]:
        """All block coordinates owned by one place index (row-major order)."""
        check_index(place_index, self.num_places, "place index")
        return [
            (rb, cb)
            for rb, cb in self.grid.iter_blocks()
            if self.place_index_of(rb, cb) == place_index
        ]

    def load_per_place(self) -> List[int]:
        """Blocks owned by each place index."""
        counts = [0] * self.num_places
        for rb, cb in self.grid.iter_blocks():
            counts[self.place_index_of(rb, cb)] += 1
        return counts

    def owner_dict(self) -> Dict[Tuple[int, int], int]:
        """``{(rb, cb): place_index}`` for the whole grid."""
        return {(rb, cb): self.place_index_of(rb, cb) for rb, cb in self.grid.iter_blocks()}


class GroupedBlockMap(BlockMap):
    """Near-even consecutive runs of blocks per place (GML/Fig. 1 layout).

    Blocks are enumerated row-major and dealt out as contiguous runs, the
    first ``num_blocks % num_places`` places receiving one extra block.
    With ``colBlocks == 1`` this gives each place a contiguous band of block
    rows — the layout the distributed matvec exploits.
    """

    def __init__(self, grid: Grid, num_places: int):
        super().__init__(grid, num_places)
        require(
            grid.num_blocks >= num_places,
            f"{grid.num_blocks} blocks cannot cover {num_places} places",
        )
        sizes = split_even(grid.num_blocks, num_places)
        self._first_block: List[int] = [0]
        for s in sizes:
            self._first_block.append(self._first_block[-1] + s)

    def place_index_of(self, rb: int, cb: int) -> int:
        block_id = self.grid.block_id(rb, cb)
        # Binary search over run boundaries.
        lo, hi = 0, self.num_places - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if block_id < self._first_block[mid + 1]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def blocks_of_place(self, place_index: int) -> List[Tuple[int, int]]:
        check_index(place_index, self.num_places, "place index")
        return [
            self.grid.block_coords(bid)
            for bid in range(self._first_block[place_index], self._first_block[place_index + 1])
        ]


class CyclicBlockMap(BlockMap):
    """Round-robin block dealing: block id ``b`` goes to place ``b % P``.

    Provided for comparison/ablation; produces even counts but scatters each
    place's row coverage, maximizing the remote traffic of matvec.
    """

    def place_index_of(self, rb: int, cb: int) -> int:
        return self.grid.block_id(rb, cb) % self.num_places


class PlaceGridBlockMap(BlockMap):
    """GML's 2-D place grid: block ``(rb, cb)`` → place ``(rb % Rp, cb % Cp)``.

    This is the ``rowPlaces × colPlaces`` configuration exposed by
    ``DistBlockMatrix.make(m, n, rowBlocks, colBlocks, rowPlaces, colPlaces)``.
    """

    def __init__(self, grid: Grid, row_places: int, col_places: int):
        check_positive(row_places, "row_places")
        check_positive(col_places, "col_places")
        super().__init__(grid, row_places * col_places)
        require(
            grid.num_row_blocks >= row_places,
            "fewer row blocks than row places",
        )
        require(
            grid.num_col_blocks >= col_places,
            "fewer col blocks than col places",
        )
        self.row_places = row_places
        self.col_places = col_places

    def place_index_of(self, rb: int, cb: int) -> int:
        self.grid.block_id(rb, cb)  # bounds check
        return (rb % self.row_places) * self.col_places + (cb % self.col_places)


def factor_place_grid(num_places: int) -> Tuple[int, int]:
    """Near-square ``(rowPlaces, colPlaces)`` factorization of *num_places*."""
    check_positive(num_places, "num_places")
    rp = int(num_places**0.5)
    while num_places % rp != 0:
        rp -= 1
    return num_places // rp, rp
