"""Single-place sparse matrices — GML's ``SparseCSR`` and ``SparseCSC``.

Implemented from scratch (compressed index arrays over NumPy) rather than on
scipy, because the paper's repartitioned restore exercises sparse-specific
code paths we must own: counting the non-zeros of an arbitrary sub-region
*before* allocating the new block, extracting the region, and assembling a
block from region pieces ("the non-zero elements for the overlapping regions
must be counted to determine the space required for the new sparse block").

All kernels are vectorized NumPy; no per-element Python loops.  When
``scipy.sparse`` is available (and not disabled via ``REPRO_SPARSE_BACKEND``
/ ``repro.matrix.sparse_backend.set_backend``), the kernels dispatch to
zero-copy ``csr_array``/``csc_array`` views over the same compressed
buffers — bit-identical results (both accumulate in the same index order),
just less per-call Python overhead.

Duplicate policy: ``from_coo`` **sums** duplicate ``(row, col)`` entries —
the same coalescing scipy applies — and does the summation on one
deterministic path (stable row-major sort, first-occurrence order) for
both backends, so NumPy- and scipy-built matrices are byte-identical even
in the last ulp of a summed duplicate.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.matrix import sparse_backend as _backend
from repro.util.validation import require
from repro.util.versioning import next_version

_INDEX_DTYPE = np.int64

#: Minimum triplet count for routing ``from_coo`` through scipy's coo→csr
#: conversion.  Below this the deterministic NumPy coalesce wins outright —
#: scipy's constructors carry ~100µs of per-call validation overhead that
#: dwarfs the O(nnz log nnz) work on the small blocks the simulator builds
#: constantly (restore stitching, link-matrix blocks).  Results are
#: bit-identical on either path (asserted by the equivalence suite).
_SCIPY_BUILD_MIN = 32768


def _as_index(a) -> np.ndarray:
    return np.asarray(a, dtype=_INDEX_DTYPE)


def _coalesce_coo(
    m: int, n: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triplets row-major and sum duplicates."""
    require(len(rows) == len(cols) == len(vals), "COO arrays differ in length")
    if len(rows):
        require(rows.min() >= 0 and rows.max() < m, "COO row index out of range")
        require(cols.min() >= 0 and cols.max() < n, "COO col index out of range")
    linear = rows * n + cols
    order = np.argsort(linear, kind="stable")
    linear, vals = linear[order], vals[order]
    unique, inverse = np.unique(linear, return_inverse=True)
    summed = np.zeros(len(unique), dtype=np.float64)
    np.add.at(summed, inverse, vals)
    return unique // n, unique % n, summed


class SparseCSR:
    """Compressed-sparse-row storage: ``indptr`` (m+1), ``indices``, ``values``.

    Column indices are sorted within each row; duplicates are coalesced at
    construction.
    """

    __slots__ = ("m", "n", "indptr", "indices", "values", "version", "_row_ids", "_sp", "_sp_ver")

    def __init__(self, m: int, n: int, indptr, indices, values):
        self.m, self.n = int(m), int(n)
        self.indptr = _as_index(indptr)
        self.indices = _as_index(indices)
        self.values = np.asarray(values, dtype=np.float64)
        self.version = next_version()
        self._row_ids = None  # lazy: the index structure is immutable
        self._sp = None  # lazy zero-copy scipy view
        self._sp_ver = None  # version the view was built at (touch invalidates)
        require(self.m >= 0 and self.n >= 0, "negative matrix dims")
        require(len(self.indptr) == self.m + 1, "indptr must have m+1 entries")
        require(self.indptr[0] == 0, "indptr must start at 0")
        require(self.indptr[-1] == len(self.indices), "indptr end must equal nnz")
        require(len(self.indices) == len(self.values), "indices/values length mismatch")
        if len(self.indices):
            require(
                int(self.indices.min()) >= 0 and int(self.indices.max()) < self.n,
                "column index out of range",
            )
        require(bool(np.all(np.diff(self.indptr) >= 0)), "indptr must be non-decreasing")


    @classmethod
    def _build(cls, m: int, n: int, indptr, indices, values) -> "SparseCSR":
        """Construct from arrays that hold the CSR invariants by construction.

        Internal fast path for kernel results (``from_coo`` output, region
        extraction, stacking, scipy conversions) — the full validation in
        ``__init__`` stays on the public constructor for caller-supplied
        arrays.
        """
        self = object.__new__(cls)
        self.m, self.n = int(m), int(n)
        self.indptr = _as_index(indptr)
        self.indices = _as_index(indices)
        self.values = np.asarray(values, dtype=np.float64)
        self.version = next_version()
        self._row_ids = None
        self._sp = None
        self._sp_ver = None
        return self

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, m: int, n: int) -> "SparseCSR":
        """An all-zero sparse matrix."""
        return cls._build(m, n, np.zeros(m + 1, dtype=_INDEX_DTYPE), [], [])

    @classmethod
    def from_coo(cls, m: int, n: int, rows, cols, vals) -> "SparseCSR":
        """Build from triplets.

        Duplicate ``(row, col)`` entries are **summed** (the same policy as
        scipy's coalescing).  On the scipy backend, builds of at least
        ``_SCIPY_BUILD_MIN`` triplets follow the coo→csr idiom with a
        duplicate-entry guard: if the conversion coalesced anything
        (``coo.data.size != csr.data.size``), the build is redone on the
        deterministic NumPy path so both backends yield byte-identical
        summed values regardless of scipy's internal summation order.
        Smaller builds always take the NumPy path, which outruns scipy's
        per-call constructor overhead at that scale — bit-identically.
        """
        rows, cols = _as_index(rows), _as_index(cols)
        vals = np.asarray(vals, dtype=np.float64)
        require(len(rows) == len(cols) == len(vals), "COO arrays differ in length")
        if len(rows) >= _SCIPY_BUILD_MIN and _backend.USE_SCIPY:
            require(rows.min() >= 0 and rows.max() < m, "COO row index out of range")
            require(cols.min() >= 0 and cols.max() < n, "COO col index out of range")
            sp = _backend.scipy_module()
            coo = sp.coo_array((vals, (rows, cols)), shape=(int(m), int(n)))
            mat = coo.tocsr()
            if coo.data.size == mat.data.size:  # duplicate-entry guard
                mat.sort_indices()
                return cls._build(m, n, mat.indptr, mat.indices, mat.data)
            # Duplicates present: fall through to the deterministic coalesce.
        rows, cols, vals = _coalesce_coo(m, n, rows, cols, vals)
        counts = np.bincount(rows, minlength=m)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls._build(m, n, indptr, cols, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "SparseCSR":
        """Compress a dense array, dropping entries with ``|x| <= tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        require(dense.ndim == 2, "from_dense needs a 2-D array")
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols])

    # -- storage ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return len(self.values)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    @property
    def nbytes(self) -> int:
        """Bytes of the compressed representation."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.values.nbytes)

    def density(self) -> float:
        """Fraction of stored cells."""
        total = self.m * self.n
        return self.nnz / total if total else 0.0

    def copy(self) -> "SparseCSR":
        return SparseCSR._build(
            self.m, self.n, self.indptr.copy(), self.indices.copy(), self.values.copy()
        )

    def touch(self) -> None:
        """Mark this matrix dirty before an in-place write.

        Only ``values`` can be mutated in place (the index structure is
        immutable after construction), so CoW detach copies just that.
        """
        if not self.values.flags.writeable:
            self.values = self.values.copy()
        self.version = next_version()

    def freeze_view(self) -> "SparseCSR":
        """Freeze the backing arrays and return a snapshot alias sharing them."""
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self.values.setflags(write=False)
        return SparseCSR._build(self.m, self.n, self.indptr, self.indices, self.values)

    def payload_arrays(self) -> Tuple[np.ndarray, ...]:
        """Backing arrays for snapshot checksumming (``repro.util.checksum``)."""
        return (self.indptr, self.indices, self.values)

    def row_ids(self) -> np.ndarray:
        """Expanded row index of every stored entry (COO view helper).

        Cached: the index structure (``indptr``) is immutable after
        construction, so repeated matvecs stop paying the O(nnz)
        ``np.repeat`` re-expansion per call.
        """
        ids = self._row_ids
        if ids is None:
            ids = np.repeat(np.arange(self.m, dtype=_INDEX_DTYPE), np.diff(self.indptr))
            ids.setflags(write=False)
            self._row_ids = ids
        return ids

    def _scipy(self):
        """Zero-copy ``scipy.sparse.csr_array`` view over the same buffers.

        Cached per :attr:`version`: ``touch()`` bumps the version before any
        mutation (in place or CoW detach), so a stale view can never serve a
        kernel.  scipy wraps ``values`` as a view (``data.base is values``) —
        no payload copy either way.
        """
        if self._sp is None or self._sp_ver != self.version:
            sp = _backend.scipy_module()
            self._sp = sp.csr_array(
                (self.values, self.indices, self.indptr), shape=(self.m, self.n)
            )
            self._sp_ver = self.version
        return self._sp

    def to_dense(self) -> np.ndarray:
        """Expand to a dense 2-D array."""
        if _backend.USE_SCIPY:
            return self._scipy().toarray()
        out = np.zeros((self.m, self.n))
        out[self.row_ids(), self.indices] = self.values
        return out

    # -- kernels ------------------------------------------------------------
    #
    # Each kernel has a NumPy segment-sum path and a scipy dispatch; both
    # accumulate contributions in the same index order, so results are
    # bit-identical (asserted by tests/matrix/test_backend_equivalence.py).

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``self @ x``: row-wise gather-multiply-segment-sum."""
        require(x.shape == (self.n,), f"spmv operand must be length {self.n}")
        if _backend.USE_SCIPY:
            return self._scipy() @ x
        out = np.zeros(self.m)
        if self.nnz:
            products = self.values * x[self.indices]
            # bincount is a fast vectorized segment-sum (add.at is unbuffered).
            out += np.bincount(self.row_ids(), weights=products, minlength=self.m)
        return out

    def spmv_t(self, x: np.ndarray) -> np.ndarray:
        """``self.T @ x``: scatter-add into column bins."""
        require(x.shape == (self.m,), f"spmv_t operand must be length {self.m}")
        if _backend.USE_SCIPY:
            return self._scipy().T @ x
        out = np.zeros(self.n)
        if self.nnz:
            products = self.values * x[self.row_ids()]
            out += np.bincount(self.indices, weights=products, minlength=self.n)
        return out

    def scale(self, alpha: float) -> "SparseCSR":
        """In-place ``self *= alpha``."""
        self.touch()
        self.values *= alpha
        return self

    def matmat(self, dense: np.ndarray) -> np.ndarray:
        """``self @ dense`` for a 2-D operand (sparse-dense product)."""
        require(dense.ndim == 2 and dense.shape[0] == self.n, "matmat shape mismatch")
        if _backend.USE_SCIPY:
            return self._scipy() @ dense
        out = np.zeros((self.m, dense.shape[1]))
        if self.nnz:
            contrib = self.values[:, None] * dense[self.indices, :]
            np.add.at(out, self.row_ids(), contrib)
        return out

    def t_matmat(self, dense: np.ndarray) -> np.ndarray:
        """``self.T @ dense`` for a 2-D operand."""
        require(dense.ndim == 2 and dense.shape[0] == self.m, "t_matmat shape mismatch")
        if _backend.USE_SCIPY:
            return self._scipy().T @ dense
        out = np.zeros((self.n, dense.shape[1]))
        if self.nnz:
            contrib = self.values[:, None] * dense[self.row_ids(), :]
            np.add.at(out, self.indices, contrib)
        return out

    def transpose(self) -> "SparseCSR":
        """A new CSR holding ``self.T``."""
        if _backend.USE_SCIPY:
            t = self._scipy().T.tocsr()
            t.sort_indices()
            return SparseCSR._build(self.n, self.m, t.indptr, t.indices, t.data)
        return SparseCSR.from_coo(self.n, self.m, self.indices, self.row_ids(), self.values)

    def to_csc(self) -> "SparseCSC":
        """Convert to compressed-sparse-column storage."""
        if _backend.USE_SCIPY:
            c = self._scipy().tocsc()
            c.sort_indices()
            return SparseCSC._build(self.m, self.n, c.indptr, c.indices, c.data)
        return SparseCSC.from_coo(self.m, self.n, self.row_ids(), self.indices, self.values)

    # -- region operations (restore paths) -----------------------------------

    def _region_mask(self, r0: int, r1: int, c0: int, c1: int) -> Tuple[np.ndarray, np.ndarray]:
        require(0 <= r0 <= r1 <= self.m, f"bad row range [{r0},{r1}) for m={self.m}")
        require(0 <= c0 <= c1 <= self.n, f"bad col range [{c0},{c1}) for n={self.n}")
        lo, hi = self.indptr[r0], self.indptr[r1]
        cols = self.indices[lo:hi]
        mask = (cols >= c0) & (cols < c1)
        return np.arange(lo, hi, dtype=_INDEX_DTYPE)[mask], cols[mask]

    def count_nnz_region(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Count stored entries in the region *without* extracting them.

        This is the paper's separate counting pass: the space for a restored
        sparse block must be known before allocation.
        """
        entry_idx, _ = self._region_mask(r0, r1, c0, c1)
        return int(len(entry_idx))

    def sub_matrix(self, r0: int, r1: int, c0: int, c1: int) -> "SparseCSR":
        """Extract the region as a new (r1-r0) × (c1-c0) CSR block."""
        entry_idx, cols = self._region_mask(r0, r1, c0, c1)
        sub_rows = np.searchsorted(self.indptr, entry_idx, side="right") - 1 - r0
        counts = np.bincount(sub_rows, minlength=r1 - r0)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return SparseCSR._build(r1 - r0, c1 - c0, indptr, cols - c0, self.values[entry_idx])

    # -- assembly (repartitioned restore) ---------------------------------------

    @staticmethod
    def hstack(blocks: Sequence["SparseCSR"]) -> "SparseCSR":
        """Concatenate blocks side by side (equal row counts)."""
        require(len(blocks) > 0, "hstack needs at least one block")
        m = blocks[0].m
        require(all(b.m == m for b in blocks), "hstack blocks differ in row count")
        n = sum(b.n for b in blocks)
        col_offset = 0
        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        vals_parts: List[np.ndarray] = []
        for b in blocks:
            rows_parts.append(b.row_ids())
            cols_parts.append(b.indices + col_offset)
            vals_parts.append(b.values)
            col_offset += b.n
        return SparseCSR.from_coo(
            m,
            n,
            np.concatenate(rows_parts) if rows_parts else [],
            np.concatenate(cols_parts) if cols_parts else [],
            np.concatenate(vals_parts) if vals_parts else [],
        )

    @staticmethod
    def vstack(blocks: Sequence["SparseCSR"]) -> "SparseCSR":
        """Concatenate blocks top to bottom (equal column counts)."""
        require(len(blocks) > 0, "vstack needs at least one block")
        n = blocks[0].n
        require(all(b.n == n for b in blocks), "vstack blocks differ in col count")
        indptr_parts = [blocks[0].indptr]
        for b in blocks[1:]:
            indptr_parts.append(b.indptr[1:] + indptr_parts[-1][-1])
        return SparseCSR._build(
            sum(b.m for b in blocks),
            n,
            np.concatenate(indptr_parts),
            np.concatenate([b.indices for b in blocks]),
            np.concatenate([b.values for b in blocks]),
        )

    @staticmethod
    def assemble(tiles: Sequence[Sequence["SparseCSR"]]) -> "SparseCSR":
        """Assemble a 2-D arrangement of tiles into one block."""
        return SparseCSR.vstack([SparseCSR.hstack(row) for row in tiles])

    # -- comparison ---------------------------------------------------------

    def equals_approx(self, other: "SparseCSR", tol: float = 1e-9) -> bool:
        """Structural + numerical equality within *tol* (via dense expansion)."""
        if self.shape != other.shape:
            return False
        return bool(np.allclose(self.to_dense(), other.to_dense(), atol=tol, rtol=0))

    def __repr__(self) -> str:
        return f"SparseCSR({self.m}x{self.n}, nnz={self.nnz})"


class SparseCSC:
    """Compressed-sparse-column storage (GML's second sparse format).

    The apps use CSR; CSC completes the GML class table and is exercised by
    format round-trip tests.
    """

    __slots__ = ("m", "n", "indptr", "indices", "values", "version", "_col_ids", "_sp", "_sp_ver")

    def __init__(self, m: int, n: int, indptr, indices, values):
        self.m, self.n = int(m), int(n)
        self.indptr = _as_index(indptr)
        self.indices = _as_index(indices)
        self.values = np.asarray(values, dtype=np.float64)
        self.version = next_version()
        self._col_ids = None  # lazy: the index structure is immutable
        self._sp = None  # lazy zero-copy scipy view
        self._sp_ver = None  # version the view was built at (touch invalidates)
        require(len(self.indptr) == self.n + 1, "indptr must have n+1 entries")
        require(self.indptr[0] == 0, "indptr must start at 0")
        require(self.indptr[-1] == len(self.indices), "indptr end must equal nnz")
        require(len(self.indices) == len(self.values), "indices/values length mismatch")
        if len(self.indices):
            require(
                int(self.indices.min()) >= 0 and int(self.indices.max()) < self.m,
                "row index out of range",
            )


    @classmethod
    def _build(cls, m: int, n: int, indptr, indices, values) -> "SparseCSC":
        """Unchecked internal constructor (see :meth:`SparseCSR._build`)."""
        self = object.__new__(cls)
        self.m, self.n = int(m), int(n)
        self.indptr = _as_index(indptr)
        self.indices = _as_index(indices)
        self.values = np.asarray(values, dtype=np.float64)
        self.version = next_version()
        self._col_ids = None
        self._sp = None
        self._sp_ver = None
        return self

    @classmethod
    def empty(cls, m: int, n: int) -> "SparseCSC":
        return cls._build(m, n, np.zeros(n + 1, dtype=_INDEX_DTYPE), [], [])

    @classmethod
    def from_coo(cls, m: int, n: int, rows, cols, vals) -> "SparseCSC":
        """Build from triplets.

        Duplicates are **summed** on the same deterministic path as
        :meth:`SparseCSR.from_coo` (see its docstring for the scipy build
        idiom and duplicate-entry guard).
        """
        rows, cols = _as_index(rows), _as_index(cols)
        vals = np.asarray(vals, dtype=np.float64)
        require(len(rows) == len(cols) == len(vals), "COO arrays differ in length")
        if len(rows) >= _SCIPY_BUILD_MIN and _backend.USE_SCIPY:
            require(rows.min() >= 0 and rows.max() < m, "COO row index out of range")
            require(cols.min() >= 0 and cols.max() < n, "COO col index out of range")
            sp = _backend.scipy_module()
            coo = sp.coo_array((vals, (rows, cols)), shape=(int(m), int(n)))
            mat = coo.tocsc()
            if coo.data.size == mat.data.size:  # duplicate-entry guard
                mat.sort_indices()
                return cls._build(m, n, mat.indptr, mat.indices, mat.data)
            # Duplicates present: fall through to the deterministic coalesce.
        # Coalesce column-major: reuse the row-major helper on the transpose.
        tcols, trows, vals = _coalesce_coo(n, m, cols, rows, vals)
        counts = np.bincount(tcols, minlength=n)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls._build(m, n, indptr, trows, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "SparseCSC":
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols])

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.values.nbytes)

    def col_ids(self) -> np.ndarray:
        """Expanded column index of every stored entry (cached; see
        :meth:`SparseCSR.row_ids`)."""
        ids = self._col_ids
        if ids is None:
            ids = np.repeat(np.arange(self.n, dtype=_INDEX_DTYPE), np.diff(self.indptr))
            ids.setflags(write=False)
            self._col_ids = ids
        return ids

    def _scipy(self):
        """Zero-copy ``scipy.sparse.csc_array`` view (see :meth:`SparseCSR._scipy`)."""
        if self._sp is None or self._sp_ver != self.version:
            sp = _backend.scipy_module()
            self._sp = sp.csc_array(
                (self.values, self.indices, self.indptr), shape=(self.m, self.n)
            )
            self._sp_ver = self.version
        return self._sp

    def to_dense(self) -> np.ndarray:
        if _backend.USE_SCIPY:
            return self._scipy().toarray()
        out = np.zeros((self.m, self.n))
        out[self.indices, self.col_ids()] = self.values
        return out

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``self @ x``: scatter-add of scaled columns."""
        require(x.shape == (self.n,), f"spmv operand must be length {self.n}")
        if _backend.USE_SCIPY:
            return self._scipy() @ x
        out = np.zeros(self.m)
        if self.nnz:
            np.add.at(out, self.indices, self.values * x[self.col_ids()])
        return out

    def spmv_t(self, x: np.ndarray) -> np.ndarray:
        """``self.T @ x``: per-column gather-sum."""
        require(x.shape == (self.m,), f"spmv_t operand must be length {self.m}")
        if _backend.USE_SCIPY:
            return self._scipy().T @ x
        out = np.zeros(self.n)
        if self.nnz:
            np.add.at(out, self.col_ids(), self.values * x[self.indices])
        return out

    def scale(self, alpha: float) -> "SparseCSC":
        self.touch()
        self.values *= alpha
        return self

    def copy(self) -> "SparseCSC":
        return SparseCSC._build(
            self.m, self.n, self.indptr.copy(), self.indices.copy(), self.values.copy()
        )

    def touch(self) -> None:
        """Mark this matrix dirty before an in-place write (CoW detach)."""
        if not self.values.flags.writeable:
            self.values = self.values.copy()
        self.version = next_version()

    def freeze_view(self) -> "SparseCSC":
        """Freeze the backing arrays and return a snapshot alias sharing them."""
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self.values.setflags(write=False)
        return SparseCSC._build(self.m, self.n, self.indptr, self.indices, self.values)

    def payload_arrays(self) -> Tuple[np.ndarray, ...]:
        """Backing arrays for snapshot checksumming (``repro.util.checksum``)."""
        return (self.indptr, self.indices, self.values)

    def to_csr(self) -> SparseCSR:
        """Convert to compressed-sparse-row storage."""
        if _backend.USE_SCIPY:
            r = self._scipy().tocsr()
            r.sort_indices()
            return SparseCSR._build(self.m, self.n, r.indptr, r.indices, r.data)
        return SparseCSR.from_coo(self.m, self.n, self.indices, self.col_ids(), self.values)

    def count_nnz_region(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Count stored entries in a region (columns sliced via indptr)."""
        require(0 <= r0 <= r1 <= self.m, "bad row range")
        require(0 <= c0 <= c1 <= self.n, "bad col range")
        lo, hi = self.indptr[c0], self.indptr[c1]
        rows = self.indices[lo:hi]
        return int(np.count_nonzero((rows >= r0) & (rows < r1)))

    def sub_matrix(self, r0: int, r1: int, c0: int, c1: int) -> "SparseCSC":
        """Extract a region as a new CSC block."""
        require(0 <= r0 <= r1 <= self.m, "bad row range")
        require(0 <= c0 <= c1 <= self.n, "bad col range")
        lo, hi = self.indptr[c0], self.indptr[c1]
        rows = self.indices[lo:hi]
        mask = (rows >= r0) & (rows < r1)
        entry_idx = np.arange(lo, hi, dtype=_INDEX_DTYPE)[mask]
        sub_cols = np.searchsorted(self.indptr, entry_idx, side="right") - 1 - c0
        counts = np.bincount(sub_cols, minlength=c1 - c0)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return SparseCSC._build(r1 - r0, c1 - c0, indptr, rows[mask] - r0, self.values[entry_idx])

    def equals_approx(self, other: "SparseCSC", tol: float = 1e-9) -> bool:
        if self.shape != other.shape:
            return False
        return bool(np.allclose(self.to_dense(), other.to_dense(), atol=tol, rtol=0))

    def __repr__(self) -> str:
        return f"SparseCSC({self.m}x{self.n}, nnz={self.nnz})"


def flops_spmv(nnz: int) -> int:
    """Flops of a sparse matrix-vector product (multiply-add per stored entry)."""
    return 2 * nnz
