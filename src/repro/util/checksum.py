"""Payload checksums and corruption for verified snapshot integrity.

Snapshot replicas are only trustworthy if they can be *verified* before a
restore reads them (ReStore, arXiv:2203.01107, makes the same argument for
in-memory recovery data).  :func:`payload_checksum` computes a structural
CRC-32 over the same payload shapes :func:`repro.util.bytesize.payload_nbytes`
sizes — NumPy arrays, numbers, strings, nested containers, and the matrix
classes (via their ``payload_arrays()`` protocol).  The checksum is recorded
at save time and re-computed at locate/restore time; a mismatch marks the
copy corrupt.

:func:`corrupt_payload` is the matching fault injector: it returns a
*corrupted copy* of a payload (the original object is never mutated, so
other replicas holding the same reference stay clean) with at least one bit
flipped, guaranteed to change the checksum of any non-empty payload.
"""

from __future__ import annotations

import copy
import struct
import zlib
from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from repro.util.versioning import payload_frozen


def _feed(crc: int, data: bytes) -> int:
    return zlib.crc32(data, crc)


def _checksum_into(crc: int, obj: Any) -> int:
    if obj is None:
        return _feed(crc, b"\x00N")
    if isinstance(obj, np.ndarray):
        crc = _feed(crc, b"\x00A" + obj.dtype.str.encode() + repr(obj.shape).encode())
        # Feed the buffer directly — tobytes() would copy the whole array.
        contiguous = obj if obj.flags.c_contiguous else np.ascontiguousarray(obj)
        return _feed(crc, contiguous.data)
    if isinstance(obj, (bool, int, np.integer)):
        return _feed(crc, b"\x00I" + repr(int(obj)).encode())
    if isinstance(obj, (float, np.floating)):
        return _feed(crc, b"\x00F" + struct.pack("<d", float(obj)))
    if isinstance(obj, str):
        return _feed(crc, b"\x00S" + obj.encode("utf-8"))
    if isinstance(obj, (list, tuple)):
        crc = _feed(crc, b"\x00L%d" % len(obj))
        for item in obj:
            crc = _checksum_into(crc, item)
        return crc
    if isinstance(obj, (set, frozenset)):
        # Order-independent: combine the sorted per-element checksums.
        parts = sorted(_checksum_into(0, item) for item in obj)
        crc = _feed(crc, b"\x00T%d" % len(obj))
        for part in parts:
            crc = _feed(crc, part.to_bytes(4, "little"))
        return crc
    if isinstance(obj, dict):
        crc = _feed(crc, b"\x00D%d" % len(obj))
        for key, value in obj.items():
            crc = _checksum_into(crc, key)
            crc = _checksum_into(crc, value)
        return crc
    arrays = getattr(obj, "payload_arrays", None)
    if callable(arrays):
        crc = _feed(crc, b"\x00O" + type(obj).__name__.encode())
        for arr in arrays():
            crc = _checksum_into(crc, arr)
        return crc
    raise TypeError(f"cannot checksum payload of type {type(obj).__name__}")


def payload_checksum(obj: Any) -> int:
    """Structural CRC-32 of a snapshot payload (type- and shape-tagged)."""
    return _checksum_into(0, obj)


_CRC_MEMO_CAPACITY = 4096
_crc_memo: "OrderedDict[Any, int]" = OrderedDict()


def memoized_checksum(obj: Any, token: Optional[Any]) -> int:
    """CRC-32 of *obj*, memoized by its mutation-version *token*.

    A token (from :mod:`repro.util.versioning`) identifies one immutable
    byte state: tokens are globally unique and a new one is minted on every
    mutation, so equal tokens imply equal bytes.  The memo is consulted
    only when the payload is fully frozen (read-only backing arrays) —
    a writable payload could have been modified *without* a token bump
    (e.g. the corrupted copies the fault injector plants), so its hash is
    always recomputed.  Capacity-bounded LRU; misses fall through to
    :func:`payload_checksum`.
    """
    if token is None or not payload_frozen(obj):
        return payload_checksum(obj)
    cached = _crc_memo.get(token)
    if cached is not None:
        _crc_memo.move_to_end(token)
        return cached
    crc = payload_checksum(obj)
    _crc_memo[token] = crc
    while len(_crc_memo) > _CRC_MEMO_CAPACITY:
        _crc_memo.popitem(last=False)
    return crc


def _flip_array(arr: np.ndarray) -> bool:
    """Flip every bit of the first byte of *arr* in place; False if empty."""
    if arr.size == 0:
        return False
    flat = arr.reshape(-1).view(np.uint8)
    flat[0] ^= 0xFF
    return True


def corrupt_payload(obj: Any) -> Any:
    """Return a corrupted *copy* of a payload (original left untouched).

    At least one bit is flipped in the first non-empty array (or scalar /
    string) found, so :func:`payload_checksum` of the result differs from
    the original's for any payload with content.  Payloads with nothing to
    flip (``None``, empty arrays/containers) are returned as plain copies.
    """
    if obj is None:
        return None
    if isinstance(obj, np.ndarray):
        out = obj.copy()
        _flip_array(out)
        return out
    if isinstance(obj, (bool, np.bool_)):
        return not bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj) ^ 1
    if isinstance(obj, (float, np.floating)):
        packed = bytearray(struct.pack("<d", float(obj)))
        packed[0] ^= 0xFF
        return struct.unpack("<d", bytes(packed))[0]
    if isinstance(obj, str):
        return obj + "\x00" if obj else "\x00"
    if isinstance(obj, (list, tuple)):
        items = list(obj)
        for i, item in enumerate(items):
            corrupted = corrupt_payload(item)
            items[i] = corrupted
            break
        return type(obj)(items) if isinstance(obj, tuple) else items
    if isinstance(obj, (set, frozenset)):
        items = sorted(obj, key=repr)
        if items:
            items[0] = corrupt_payload(items[0])
        return type(obj)(items)
    if isinstance(obj, dict):
        out = dict(obj)
        for key in out:
            out[key] = corrupt_payload(out[key])
            break
        return out
    arrays = getattr(obj, "payload_arrays", None)
    if callable(arrays):
        # deepcopy, not obj.copy(): a validating constructor would reject a
        # source that is itself already corrupt (a copy can be struck twice).
        out = copy.deepcopy(obj)
        for arr in out.payload_arrays():
            if isinstance(arr, np.ndarray) and _flip_array(arr):
                break
        return out
    raise TypeError(f"cannot corrupt payload of type {type(obj).__name__}")
