"""Table II — lines of code: non-resilient vs resilient applications.

The paper's productivity claim: adding resilience to a GML application
costs only a few tens of lines — a ``checkpoint`` method (~7-11 LOC), a
``restore`` method (~10-20 LOC) and an ``isFinished`` (3 LOC).  We count
our own application sources with the same convention (non-blank,
non-comment lines) over the two complete, independent program versions.
"""

import inspect

from _common import emit
from repro.apps.nonresilient import (
    LinRegNonResilient,
    LogRegNonResilient,
    PageRankNonResilient,
)
from repro.apps.resilient import LinRegResilient, LogRegResilient, PageRankResilient
from repro.util.loc import AppLocRow, count_loc, loc_of_object, loc_report

PAPER_TABLE2 = {
    # app: (nonres total, res total, checkpoint LOC, restore LOC)
    "LinReg": (66, 96, 10, 16),
    "LogReg": (166, 222, 11, 20),
    "PageRank": (72, 94, 7, 10),
}

APPS = [
    ("LinReg", LinRegNonResilient, LinRegResilient),
    ("LogReg", LogRegNonResilient, LogRegResilient),
    ("PageRank", PageRankNonResilient, PageRankResilient),
]


def measure_rows():
    rows = []
    for name, nonres_cls, res_cls in APPS:
        nonres_total = count_loc(inspect.getsource(inspect.getmodule(nonres_cls)))
        res_total = count_loc(inspect.getsource(inspect.getmodule(res_cls)))
        rows.append(
            AppLocRow(
                application=name,
                nonresilient_total=nonres_total,
                resilient_total=res_total,
                checkpoint_loc=loc_of_object(res_cls.checkpoint),
                restore_loc=loc_of_object(res_cls.restore),
            )
        )
    return rows


def test_table2_loc(benchmark):
    rows = benchmark.pedantic(measure_rows, rounds=1, iterations=1)
    lines = [loc_report(rows), "", "paper's Table II for comparison:"]
    for app, (nt, rt, c, r) in PAPER_TABLE2.items():
        lines.append(f"  {app:<9s} non-res {nt:4d}  res {rt:4d}  checkpoint {c:3d}  restore {r:3d}")
    emit("Table II — lines of code, non-resilient vs resilient", "\n".join(lines))

    for row in rows:
        # The paper's claim: resilience adds a modest amount of code —
        # tens of lines, concentrated in checkpoint/restore.
        added = row.resilient_total - row.nonresilient_total
        assert 0 < added < 100
        assert row.checkpoint_loc <= 15
        assert row.restore_loc <= 30
        # isFinished is 3 LOC in the paper; ours is comparable (LinReg's
        # carries the optional convergence-tolerance check the paper's
        # description of isFinished mentions).
        res_cls = {a[0]: a[2] for a in APPS}[row.application]
        assert loc_of_object(res_cls.is_finished) <= 6
