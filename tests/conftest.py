"""Test-suite configuration: pin BLAS to one thread.

The test matrices are tiny; multi-threaded BLAS only adds synchronization
overhead (and matches the paper's OPENBLAS_NUM_THREADS=1 setup anyway).
"""

import os

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")
