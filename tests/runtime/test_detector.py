"""Unit tests for the φ-accrual heartbeat failure detector."""

import pytest

from repro.runtime.cost import CostModel
from repro.runtime.detector import PhiAccrualDetector, PlaceHealth
from repro.runtime.failure import LinkPartition, TransientFaultModel
from repro.runtime.runtime import Runtime

PLACES = 4


def make_rt(**kwargs):
    return Runtime(PLACES, cost=CostModel.zero(), resilient=True, **kwargs)


class TestConfiguration:
    def test_interval_defaults_to_a_tenth_of_the_timeout(self):
        det = PhiAccrualDetector(make_rt(), detect_timeout=2.0)
        assert det.heartbeat_interval == pytest.approx(0.2)

    def test_invalid_parameters_rejected(self):
        rt = make_rt()
        with pytest.raises(ValueError, match="detect_timeout"):
            PhiAccrualDetector(rt, detect_timeout=0.0)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            PhiAccrualDetector(rt, detect_timeout=1.0, heartbeat_interval=-0.1)
        with pytest.raises(ValueError, match="ewma_alpha"):
            PhiAccrualDetector(rt, detect_timeout=1.0, ewma_alpha=0.0)

    def test_monitors_every_place_except_zero(self):
        det = PhiAccrualDetector(make_rt(), detect_timeout=1.0)
        assert det.monitored() == list(range(1, PLACES))

    def test_elastically_added_place_is_monitored(self):
        rt = make_rt()
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.attach_detector(det)
        new_place = rt.add_place()
        assert new_place.id in det.monitored()


class TestSuspicionLadder:
    def test_healthy_place_stays_alive(self):
        rt = make_rt()
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.clock.advance(0, 5.0)
        for pid in det.monitored():
            assert det.state(pid) is PlaceHealth.ALIVE
            assert det.phi(pid) < det.phi_suspect
        assert det.heartbeats_observed > 0

    def test_dead_place_is_confirmed_and_swept_once(self):
        rt = make_rt()
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.kill(2)
        rt.clock.advance(0, 3.0)
        assert det.state(2) is PlaceHealth.CONFIRMED_DEAD
        assert det.sweep() == [2]
        assert det.sweep() == []  # reported exactly once

    def test_confirmation_is_sticky_after_a_partition_heals(self):
        rt = make_rt()
        # Place 1 is cut off long enough to be confirmed, then heals.
        faults = TransientFaultModel(
            partitions=[LinkPartition({1}, set(range(PLACES)) - {1}, 0.0, 1.5)]
        )
        rt.set_faults(faults)
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.clock.advance(0, 1.4)
        assert det.state(1) is PlaceHealth.CONFIRMED_DEAD
        rt.clock.advance(0, 2.0)  # heartbeats flow again — too late
        assert det.state(1) is PlaceHealth.CONFIRMED_DEAD

    def test_pre_calibrated_straggler_never_suspected(self):
        rt = make_rt()
        rt.set_straggler(3, 8.0)
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.clock.advance(0, 10.0)
        assert det.state(3) is PlaceHealth.ALIVE

    def test_straggler_onset_absorbed_at_default_ratio(self):
        # The slowdown begins after the detector calibrated on healthy
        # gaps: φ rises toward SUSPECTED but must never reach confirmation
        # (an 8x straggler is not a failure at the default timeout).
        rt = make_rt()
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.set_straggler(3, 8.0)
        for _ in range(100):
            rt.clock.advance(0, 0.05)
            assert det.state(3) is not PlaceHealth.CONFIRMED_DEAD

    def test_lost_heartbeats_are_counted(self):
        rt = make_rt()
        rt.set_faults(TransientFaultModel(drop_rate=0.5, seed=11))
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.clock.advance(0, 5.0)
        det.suspicion_levels()
        assert det.heartbeats_lost > 0
        assert det.heartbeats_observed > 0


class TestResolve:
    def test_dead_place_confirmed_within_the_wait_budget(self):
        rt = make_rt()
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.kill(1)
        confirmed, cleared, waited = det.resolve([1])
        assert confirmed == [1]
        assert cleared == []
        assert 0.0 < waited <= det.max_resolve_wait + det.heartbeat_interval

    def test_transient_suspect_cleared_by_fresh_heartbeat(self):
        rt = make_rt()
        faults = TransientFaultModel(
            partitions=[LinkPartition({2}, set(range(PLACES)) - {2}, 0.0, 0.35)]
        )
        rt.set_faults(faults)
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.clock.advance(0, 0.5)
        confirmed, cleared, waited = det.resolve([2])
        assert confirmed == []
        assert cleared == [2]
        assert waited < det.max_resolve_wait

    def test_unmonitored_place_zero_is_vacuously_alive(self):
        rt = make_rt()
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        confirmed, cleared, _ = det.resolve([0])
        assert confirmed == []
        assert cleared == [0]

    def test_fail_safe_confirms_a_silent_but_live_place(self):
        # A partition that outlasts the resolve budget: the place is alive
        # but unreachable; the group fences it rather than hanging.
        rt = make_rt()
        faults = TransientFaultModel(
            partitions=[LinkPartition({2}, set(range(PLACES)) - {2}, 0.0, 1e9)]
        )
        rt.set_faults(faults)
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.clock.advance(0, 0.5)
        confirmed, cleared, waited = det.resolve([2])
        assert confirmed == [2]
        assert cleared == []
        assert rt.is_alive(2)  # fenced, not actually dead
        assert waited >= det.heartbeat_interval

    def test_mixed_verdicts(self):
        rt = make_rt()
        det = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.clock.advance(0, 0.5)
        rt.kill(1)
        confirmed, cleared, _ = det.resolve([1, 2])
        assert confirmed == [1]
        assert cleared == [2]
