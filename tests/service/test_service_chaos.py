"""Multi-tenant chaos: blast-radius confinement and spare economics.

The acceptance campaign for ISSUE 6 lives here: a seeded mixed-workload
stream under independent crashes, adjacent-pair bursts, and transient
faults must finish with zero cross-tenant aborts, every admitted job
either completing with the failure-free answer or dying a scoped death,
and pooled spares surviving the same kill schedules as dedicated ones
with strictly fewer reserve places.
"""

import dataclasses

import pytest

from repro.runtime.failure import LeaseScopedInjector, ScriptedKill
from repro.service import (
    ClusterService,
    ServiceConfig,
    ServiceFaultPlan,
    run_service,
    survival_on_common_jobs,
)


def chaos_config(**overrides):
    base = dict(
        n_jobs=15,
        seed=42,
        arrival_rate=1.5,
        crash_rate=0.6,
        pair_rate=0.05,
        economics="pooled",
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestConfinement:
    def test_zero_cross_tenant_aborts_under_chaos(self):
        report = run_service(chaos_config())
        assert report.cross_tenant_aborts == 0
        assert report.violations == []
        # The chaos actually happened.
        assert report.total_kills > 0
        assert any(j.kills_during_run for j in report.jobs)

    def test_every_job_has_scoped_outcome(self):
        report = run_service(chaos_config(seed=7))
        assert len(report.jobs) == 15
        for job in report.jobs:
            assert job.status in ("completed", "data-loss", "rejected")
            if job.status == "completed":
                assert job.result_ok is True

    def test_kills_confined_to_own_lease(self):
        svc = ClusterService(chaos_config(seed=9))
        report = svc.run()
        assert report.violations == []
        for job in report.jobs:
            if job.status == "rejected":
                continue
            lease_ids = svc._lease_ever_ids(job.job_id)
            for pid in job.kills_during_run:
                assert pid in lease_ids, (
                    f"job {job.job_id} saw place {pid} die outside its lease"
                )

    def test_recovered_jobs_match_failure_free_baseline(self):
        report = run_service(chaos_config(seed=13))
        recovered = [
            j for j in report.jobs if j.status == "completed" and j.restores > 0
        ]
        assert recovered, "chaos produced no recovered job at this seed"
        for job in recovered:
            assert job.result_ok is True

    def test_transient_faults_do_not_break_invariants(self):
        report = run_service(
            chaos_config(seed=21, drop_rate=0.02, dup_rate=0.01)
        )
        assert report.cross_tenant_aborts == 0
        assert report.violations == []

    def test_rack_bursts_confined(self):
        report = run_service(
            chaos_config(seed=5, pair_rate=0.0, rack_rate=0.02, rack_size=4)
        )
        assert report.cross_tenant_aborts == 0
        assert report.violations == []

    def test_detector_mode_confined(self):
        report = run_service(chaos_config(seed=3, detect_timeout=0.5))
        assert report.cross_tenant_aborts == 0
        assert report.violations == []


class TestScopedInjector:
    def _lease(self, n=6, spares=0):
        from repro.runtime import CostModel, Runtime

        rt = Runtime(n, cost=CostModel.zero(), resilient=True, spares=spares)
        return rt, rt.pool.lease(size=3)

    def test_rejects_foreign_victim(self):
        rt, lease = self._lease()
        foreign = max(rt.all_place_ids())
        assert foreign not in lease.member_ids
        with pytest.raises(ValueError):
            LeaseScopedInjector(rt, lease, [ScriptedKill(place_id=foreign, iteration=1)])

    def test_rejects_lease_driver(self):
        rt, lease = self._lease()
        with pytest.raises(ValueError):
            LeaseScopedInjector(
                rt, lease, [ScriptedKill(place_id=lease.driver.id, iteration=1)]
            )

    def test_accepts_member_victim(self):
        rt, lease = self._lease()
        victim = sorted(lease.member_ids - {lease.driver.id})[0]
        inj = LeaseScopedInjector(rt, lease, [ScriptedKill(place_id=victim, iteration=1)])
        assert inj.due_at_iteration(1) == [victim]

    def test_timed_kill_uses_driver_local_clock(self):
        rt, lease = self._lease()
        victim = sorted(lease.member_ids - {lease.driver.id})[0]
        inj = LeaseScopedInjector(rt, lease, [ScriptedKill(place_id=victim, time=5.0)])
        # Another tenant's clock races ahead; ours hasn't reached t=5.
        other = max(rt.all_place_ids())
        rt.clock.advance(other, 100.0)
        assert inj.due_at_phase("step", rt.clock.global_time()) == []
        rt.clock.advance(lease.driver.id, 6.0)
        assert inj.due_at_phase("step", rt.clock.global_time()) == [victim]


class TestStraddlingEvents:
    def test_straddling_kills_split_by_lease(self):
        from repro.runtime import CostModel, Runtime

        rt = Runtime(9, cost=CostModel.zero(), resilient=True)
        a = rt.pool.lease(size=3)  # places 1..3
        b = rt.pool.lease(size=3)  # places 4..6
        plan = ServiceFaultPlan(
            seed=0, total_places=9, horizon=10.0, pair_rate=0.2
        )
        for event in plan.pool_events:
            in_a = [v for v in event.victims if a.owns(v)]
            in_b = [v for v in event.victims if b.owns(v)]
            kills_a = {
                k.place_id for k in plan.straddling_kills(a, now=0.0)
                if k.time == event.time
            }
            kills_b = {
                k.place_id for k in plan.straddling_kills(b, now=0.0)
                if k.time == event.time
            }
            for v in in_a:
                assert (v in kills_a) == (v != a.driver.id)
                assert v not in kills_b
            for v in in_b:
                assert (v in kills_b) == (v != b.driver.id)
                assert v not in kills_a

    def test_past_events_not_replayed(self):
        from repro.runtime import CostModel, Runtime

        rt = Runtime(9, cost=CostModel.zero(), resilient=True)
        lease = rt.pool.lease(size=5)
        plan = ServiceFaultPlan(seed=1, total_places=9, horizon=50.0, pair_rate=0.2)
        events = plan.pool_events
        assert len(events) >= 2
        cutoff = events[0].time + 1e-9
        kills = plan.straddling_kills(lease, now=cutoff)
        assert all(k.time >= cutoff for k in kills)

    def test_plan_deterministic(self):
        a = ServiceFaultPlan(seed=3, total_places=12, horizon=30.0, pair_rate=0.1,
                             rack_rate=0.05)
        b = ServiceFaultPlan(seed=3, total_places=12, horizon=30.0, pair_rate=0.1,
                             rack_rate=0.05)
        assert a.pool_events == b.pool_events


class TestSpareEconomics:
    def test_pooled_survives_like_dedicated_with_smaller_reserve(self):
        """The reserve-economics headline: pooled needs fewer places.

        Per-job kill schedules are identical across modes, so survival is
        compared on the jobs admitted in *both* runs — dedicated economics
        rejects jobs once the reserve is committed, and must not look
        safer merely for having skipped the hard schedules.
        """
        kwargs = dict(n_jobs=12, seed=42, arrival_rate=1.5, crash_rate=0.6,
                      pair_rate=0.03)
        dedicated = run_service(
            ServiceConfig(economics="dedicated", reserve=4, **kwargs)
        )
        pooled = run_service(
            ServiceConfig(economics="pooled", reserve=2, **kwargs)
        )
        assert dedicated.cross_tenant_aborts == 0
        assert pooled.cross_tenant_aborts == 0
        assert pooled.reserve_size < dedicated.reserve_size
        surv_ded, surv_pool = survival_on_common_jobs(dedicated, pooled)
        assert surv_pool >= surv_ded
        # And the pooled run admitted at least as much of the stream.
        assert pooled.admitted >= dedicated.admitted

    def test_borrow_mode_survives_dry_reserve(self):
        report = run_service(
            chaos_config(seed=17, economics="borrow", reserve=0, crash_rate=0.8)
        )
        assert report.cross_tenant_aborts == 0
        assert report.violations == []
        assert report.borrows > 0

    def test_peak_reserve_occupancy_bounded(self):
        report = run_service(chaos_config(seed=42))
        assert 0 <= report.reserve_peak_claimed <= report.reserve_size
        assert 0.0 <= report.reserve_mean_occupancy <= 1.0


class TestAcceptanceCampaign:
    """The ISSUE-6 acceptance bar, scaled for the unit suite (the CI
    ``service-smoke`` job runs the full 50-job stream)."""

    def test_mixed_stream_full_chaos(self):
        cfg = ServiceConfig(
            n_jobs=25,
            seed=2026,
            arrival_rate=1.2,
            crash_rate=0.5,
            pair_rate=0.04,
            drop_rate=0.01,
            dup_rate=0.005,
            economics="pooled",
        )
        report = run_service(cfg)
        assert report.cross_tenant_aborts == 0
        assert report.violations == []
        statuses = {j.status for j in report.jobs}
        assert statuses <= {"completed", "data-loss", "rejected"}
        assert report.completed >= 0.6 * cfg.n_jobs
        # Determinism of the whole campaign.
        assert run_service(cfg).to_dict() == report.to_dict()
