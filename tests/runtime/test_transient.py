"""Transient message faults: drops, retries, duplicates, partitions.

The network stays *correct* under transient faults — retransmission with
exponential backoff re-delivers dropped messages, sequence-number
suppression absorbs duplicates (at-most-once delivery), and only a place
that stays unreachable past the retry budget escalates to the failure
detector as a ``CommTimeoutError``.
"""

import pytest

from repro.runtime import CostModel, Runtime
from repro.runtime.comm import point_to_point, tree_allreduce, tree_broadcast
from repro.runtime.exceptions import CommTimeoutError
from repro.runtime.failure import (
    LinkPartition,
    MessageFate,
    RetryPolicy,
    TransientFaultModel,
)


def rt_with(n, **cost_kwargs):
    return Runtime(n, cost=CostModel(**cost_kwargs))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(rto_seconds=-0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)

    def test_explicit_rto_doubles_per_attempt(self):
        policy = RetryPolicy(rto_seconds=0.5, backoff=2.0)
        cost = CostModel()
        assert policy.rto(0, cost) == pytest.approx(0.5)
        assert policy.rto(1, cost) == pytest.approx(1.0)
        assert policy.rto(3, cost) == pytest.approx(4.0)

    def test_default_rto_derived_from_cost_model(self):
        policy = RetryPolicy()
        cost = CostModel(latency=0.1, byte_time=0.01)
        expected = 4 * 0.1 + 0.01 * cost.scaled_bytes(8.0)
        assert policy.rto(0, cost, nbytes=8.0) == pytest.approx(expected)
        # The all-zero test cost model keeps retries free.
        assert policy.rto(0, CostModel.zero()) == 0.0


class TestLinkPartition:
    def test_validation(self):
        with pytest.raises(ValueError, match="t_heal"):
            LinkPartition({1}, {2}, 1.0, 1.0)
        with pytest.raises(ValueError, match="disjoint"):
            LinkPartition({1, 2}, {2, 3}, 0.0, 1.0)

    def test_blocks_both_directions_only_inside_the_window(self):
        cut = LinkPartition({1}, {0, 2}, 1.0, 2.0)
        assert cut.blocks(1, 0, 1.5) and cut.blocks(0, 1, 1.5)
        assert not cut.blocks(1, 0, 0.5)  # before
        assert not cut.blocks(1, 0, 2.0)  # healed
        assert not cut.blocks(0, 2, 1.5)  # same side


class TestTransientFaultModel:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="drop_rate"):
            TransientFaultModel(drop_rate=1.0)
        with pytest.raises(ValueError, match="dup_rate"):
            TransientFaultModel(dup_rate=-0.1)
        with pytest.raises(ValueError):
            TransientFaultModel(delay_seconds=-1.0)

    def test_fate_sequence_deterministic_given_seed(self):
        draws_a = [TransientFaultModel(drop_rate=0.5, seed=7).fate(0, 1, 0.0)
                   for _ in range(1)]
        model_a = TransientFaultModel(drop_rate=0.5, dup_rate=0.3, seed=7)
        model_b = TransientFaultModel(drop_rate=0.5, dup_rate=0.3, seed=7)
        fates_a = [model_a.fate(0, 1, float(t)) for t in range(50)]
        fates_b = [model_b.fate(0, 1, float(t)) for t in range(50)]
        assert fates_a == fates_b
        assert model_a.dropped == model_b.dropped > 0
        del draws_a

    def test_partition_drops_without_consuming_randomness(self):
        cut = LinkPartition({1}, {0}, 0.0, 1.0)
        model = TransientFaultModel(partitions=[cut])
        assert model.fate(0, 1, 0.5) == MessageFate(delivered=False)
        assert model.fate(0, 1, 1.5).delivered
        assert model.dropped == 1

    def test_heartbeat_loss_is_stable_per_sequence_number(self):
        model = TransientFaultModel(drop_rate=0.4, seed=3)
        first = [model.heartbeat_lost(2, seq, 0.1 * seq) for seq in range(100)]
        again = [model.heartbeat_lost(2, seq, 0.1 * seq) for seq in range(100)]
        assert first == again  # hash-based, not draw-order dependent
        assert any(first) and not all(first)


class TestRetriesEndToEnd:
    def test_dropped_messages_are_retransmitted_and_delivered(self):
        rt = rt_with(3, latency=0.01)
        rt.set_faults(TransientFaultModel(drop_rate=0.4, seed=5))
        for _ in range(30):
            point_to_point(rt, 1, 2, nbytes=8)
        assert rt.faults.dropped > 0
        assert rt.faults.retransmissions == rt.faults.dropped
        assert rt.faults.timeouts == 0

    def test_retry_pays_backoff_in_virtual_time(self):
        rt_clean = rt_with(3, latency=0.01)
        point_to_point(rt_clean, 1, 2, nbytes=8)
        rt_lossy = rt_with(3, latency=0.01)
        # Seed chosen so the first draw drops and the retry delivers.
        model = TransientFaultModel(drop_rate=0.5, seed=8)
        rt_lossy.set_faults(model)
        point_to_point(rt_lossy, 1, 2, nbytes=8)
        assert model.retransmissions > 0
        assert rt_lossy.clock.now(2) > rt_clean.clock.now(2)

    def test_unreachable_place_escalates_after_bounded_retries(self):
        rt = rt_with(3, latency=0.01)
        cut = LinkPartition({2}, {0, 1}, 0.0, 1e9)
        rt.set_faults(TransientFaultModel(partitions=[cut]))
        with pytest.raises(CommTimeoutError) as exc_info:
            point_to_point(rt, 1, 2, nbytes=8)
        assert exc_info.value.place_id == 2
        assert exc_info.value.retries == rt.retry_policy.max_retries
        assert rt.faults.timeouts == 1

    def test_duplicates_are_absorbed_at_most_once(self):
        rt = rt_with(3, latency=0.01)
        rt.set_faults(TransientFaultModel(dup_rate=0.9, seed=1))
        t_done = point_to_point(rt, 1, 2, nbytes=8)
        assert rt.faults.duplicates > 0
        # The duplicate burns receive-side server time strictly after the
        # real delivery; the receiver's clock reflects one delivery.
        assert rt.clock.now(2) == pytest.approx(t_done)

    def test_collectives_survive_drops(self):
        rt = rt_with(8, latency=0.01)
        rt.set_faults(TransientFaultModel(drop_rate=0.3, seed=9))
        tree_broadcast(rt, rt.world, 0, nbytes=64)
        tree_allreduce(rt, rt.world, nbytes=64)
        assert rt.faults.dropped > 0
        assert rt.faults.timeouts == 0

    def test_zero_rate_model_changes_nothing(self):
        clocks = {}
        for label, faults in (
            ("off", None),
            ("zero", TransientFaultModel(seed=4)),
        ):
            rt = rt_with(4, latency=0.01, byte_time=0.001)
            if faults is not None:
                rt.set_faults(faults)
            tree_broadcast(rt, rt.world, 0, nbytes=128)
            tree_allreduce(rt, rt.world, nbytes=128)
            clocks[label] = [rt.clock.now(i) for i in range(4)]
        assert clocks["off"] == clocks["zero"]
