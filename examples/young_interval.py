"""Choosing the checkpoint interval with Young's formula.

The paper cites Young's first-order optimum, sqrt(2 * T_ckpt * MTTF), for
balancing checkpoint overhead against post-failure rework.  This example
measures the framework's actual checkpoint cost and time per iteration for
the LogReg benchmark, derives the optimal interval for a range of MTTFs,
and then *validates* the choice empirically: it runs the application under
randomly injected failures with the derived interval vs. a much shorter
and a much longer one, comparing total virtual runtime.

Run:  python examples/young_interval.py
"""

import numpy as np

from repro import Runtime
from repro.apps import LogRegResilient, RegressionWorkload
from repro.bench.calibration import cluster_2015
from repro.resilience import IterativeExecutor, optimal_interval_iterations
from repro.runtime.failure import ExponentialFailureModel

workload = RegressionWorkload(
    features=60, examples_per_place=400, iterations=60, blocks_per_place=2
)
PLACES = 6

# -- measure the app's checkpoint cost and iteration time once -------------
probe_rt = Runtime(PLACES, cost=cluster_2015(), resilient=True)
probe = LogRegResilient(probe_rt, workload)
report = IterativeExecutor(probe_rt, probe, checkpoint_interval=10).run()
t_iter = report.step_time / report.iterations_executed
t_ckpt = report.checkpoint_durations[-1]  # steady-state (read-only reused)
print(f"measured: {t_iter * 1e3:.2f} ms/iteration, {t_ckpt * 1e3:.2f} ms/checkpoint")

for mttf in (50 * t_iter, 200 * t_iter, 1000 * t_iter):
    k = optimal_interval_iterations(t_ckpt, mttf, t_iter)
    print(f"MTTF {mttf * 1e3:8.1f} ms → Young-optimal interval: every {k} iterations")

# -- validate empirically under random failures ------------------------------
mttf = 300 * t_iter
k_opt = optimal_interval_iterations(t_ckpt, mttf, t_iter)
candidates = sorted({1, k_opt, 50})
print(f"\nvalidating intervals {candidates} under MTTF = {mttf * 1e3:.1f} ms (20 seeds):")
for interval in candidates:
    totals = []
    for seed in range(20):
        rt = Runtime(PLACES, cost=cluster_2015(), resilient=True)
        app = LogRegResilient(rt, workload)
        horizon = workload.iterations * t_iter * 3
        for kill in ExponentialFailureModel(mttf, seed=seed).schedule(
            rt.world.ids, horizon
        ):
            rt.injector.kills.append(kill)
        try:
            rep = IterativeExecutor(rt, app, checkpoint_interval=interval).run()
            totals.append(rep.total_time)
        except Exception:
            continue  # e.g. adjacent double failure: unrecoverable seed
    label = " (Young)" if interval == k_opt else ""
    print(
        f"  interval {interval:3d}{label:8s}: mean total "
        f"{np.mean(totals) * 1e3:8.1f} ms over {len(totals)} runs"
    )
