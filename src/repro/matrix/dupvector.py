"""``DupVector`` — a vector duplicated at every place of a group.

Each member place holds a full copy.  Cell-wise operations run at every
place (one finish each) to keep the replicas consistent, exactly as GML
does; :meth:`sync` re-broadcasts the root copy after a driver-side update
(the gather-then-broadcast pattern of the paper's PageRank, Listing 2).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.matrix.dense import flops_cellwise
from repro.matrix.multiplace import MultiPlaceObject
from repro.matrix.random import random_vector
from repro.matrix.vector import Vector
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime.comm import tree_allreduce, tree_broadcast
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.validation import check_positive, require


class DupVector(MultiPlaceObject):
    """A length-``n`` vector with one full copy per member place."""

    def __init__(self, runtime: Runtime, n: int, group: PlaceGroup):
        check_positive(n, "n")
        super().__init__(runtime, group, "DupVector")
        self.n = n
        self._allocate(group)

    @classmethod
    def make(cls, runtime: Runtime, n: int, group: Optional[PlaceGroup] = None) -> "DupVector":
        """GML-style factory: duplicate a zero vector over *group*."""
        return cls(runtime, n, group if group is not None else runtime.world)

    def _allocate(self, group: PlaceGroup) -> None:
        n, key = self.n, self.heap_key
        self.runtime.finish_all(
            group,
            lambda ctx: ctx.heap.put(key, Vector.make(n)),
            label=f"{self.name}:alloc",
        )

    # -- element bytes of one full copy -----------------------------------------

    @property
    def copy_nbytes(self) -> int:
        return self.n * 8

    # -- initialization -----------------------------------------------------

    def init(self, value: float) -> "DupVector":
        """Set every copy to the constant *value*."""
        return self._cellwise(lambda v: v.fill(value), label="init")

    def init_random(self, seed: int, tag: int = 0) -> "DupVector":
        """Fill every copy with the *same* deterministic random values."""
        data = random_vector(seed, self.n, tag)

        def fill(ctx: PlaceContext) -> None:
            vec: Vector = ctx.heap.get(self.heap_key)
            vec.touch()
            vec.data[:] = data
            ctx.charge_flops(flops_cellwise(self.n))

        self.runtime.finish_all(self.group, fill, label=f"{self.name}:init_random")
        return self

    # -- driver-side access ---------------------------------------------------

    def local(self) -> Vector:
        """The root (group index 0) copy, as GML's ``v.local()``.

        Driver-side mutations of this copy are made consistent by a
        subsequent :meth:`sync`.
        """
        return self.payload_at_index(0)

    def to_array(self) -> np.ndarray:
        """A driver-side copy of the root replica's values."""
        return self.local().data.copy()

    # -- replica-consistent cell-wise operations -----------------------------

    def _cellwise(
        self,
        fn: Callable[[Vector], None],
        flops: Optional[float] = None,
        label: str = "cellwise",
    ) -> "DupVector":
        per_place_flops = flops_cellwise(self.n) if flops is None else flops
        key = self.heap_key
        charged = self.runtime.cost.flop_time != 0.0

        def task(ctx: PlaceContext) -> None:
            fn(ctx.heap.get(key))
            if charged:
                ctx.charge_flops(per_place_flops)

        self.runtime.finish_all(self.group, task, label=f"{self.name}:{label}")
        return self

    def scale(self, alpha: float) -> "DupVector":
        """``self *= alpha`` on every copy."""
        return self._cellwise(lambda v: v.scale(alpha), label="scale")

    def fill(self, value: float) -> "DupVector":
        """Set every copy to *value*."""
        return self._cellwise(lambda v: v.fill(value), label="fill")

    def _cellwise_pair(
        self,
        other: "DupVector",
        fn: Callable[[Vector, Vector], None],
        flops: Optional[float] = None,
        label: str = "cellwise",
    ) -> "DupVector":
        """Binary replica-aligned operation: fn(mine, theirs) at every place."""
        self._check_aligned(other)
        per_place_flops = flops_cellwise(self.n) if flops is None else flops
        key, other_key = self.heap_key, other.heap_key
        charged = self.runtime.cost.flop_time != 0.0

        def task(ctx: PlaceContext) -> None:
            fn(ctx.heap.get(key), ctx.heap.get(other_key))
            if charged:
                ctx.charge_flops(per_place_flops)

        self.runtime.finish_all(self.group, task, label=f"{self.name}:{label}")
        return self

    def cell_add(self, other: "DupVector | float") -> "DupVector":
        """``self += other`` (replica-aligned DupVector or scalar)."""
        if isinstance(other, DupVector):
            return self._cellwise_pair(other, lambda v, o: v.cell_add(o), label="cell_add")
        return self._cellwise(lambda v: v.cell_add(float(other)), label="cell_add")

    def cell_sub(self, other: "DupVector | float") -> "DupVector":
        """``self -= other``."""
        if isinstance(other, DupVector):
            return self._cellwise_pair(other, lambda v, o: v.cell_sub(o), label="cell_sub")
        return self._cellwise(lambda v: v.cell_sub(float(other)), label="cell_sub")

    def cell_mult(self, other: "DupVector") -> "DupVector":
        """Hadamard ``self *= other``."""
        return self._cellwise_pair(other, lambda v, o: v.cell_mult(o), label="cell_mult")

    def axpy(self, alpha: float, x: "DupVector") -> "DupVector":
        """``self += alpha * x`` on every copy (2n flops per place)."""
        return self._cellwise_pair(
            x, lambda v, o: v.axpy(alpha, o), flops=2 * self.n, label="axpy"
        )

    def copy_from(self, other: "DupVector") -> "DupVector":
        """Overwrite every copy with *other*'s replica on the same place."""
        return self._cellwise_pair(
            other, lambda v, o: v.set_sub_vector(0, o), label="copy_from"
        )

    def map(self, fn: Callable[[np.ndarray], np.ndarray], flops_per_cell: float = 1.0) -> "DupVector":
        """Vectorized elementwise transform on every copy."""
        return self._cellwise(
            lambda v: v.map(fn), flops=flops_per_cell * self.n, label="map"
        )

    def _check_aligned(self, other: "DupVector") -> None:
        require(other.n == self.n, "DupVector length mismatch")
        require(other.group == self.group, "DupVector operands live on different groups")

    # -- reductions -----------------------------------------------------------

    def dot(self, other: "DupVector") -> float:
        """Inner product, computed redundantly at every place (GML style).

        Replicas are identical, so no communication is needed; each place
        charges 2n flops and the driver reads the root's result.
        """
        self._check_aligned(other)
        results = self.runtime.finish_all(
            self.group,
            lambda ctx: self._dot_task(ctx, other),
            ret_bytes=8,
            label=f"{self.name}:dot",
        )
        return float(results[0])

    def _dot_task(self, ctx: PlaceContext, other: "DupVector") -> float:
        mine: Vector = ctx.heap.get(self.heap_key)
        theirs: Vector = ctx.heap.get(other.heap_key)
        ctx.charge_flops(2 * self.n)
        return mine.dot(theirs)

    def norm2(self) -> float:
        """Euclidean norm (redundant per-place computation)."""
        return float(np.sqrt(max(self.dot(self), 0.0)))

    def reduce_sum(self) -> "DupVector":
        """All-reduce: every copy becomes the element-wise sum of all copies.

        This is the gradient-combine step of the regression apps: each place
        contributes its partial and ends up with the global sum.
        """
        total = np.zeros(self.n)
        for place in self.group:
            total += self.local_payload(place).data
        tree_allreduce(
            self.runtime,
            self.group,
            nbytes=self.copy_nbytes,
            reduce_flops=self.n,
            label=f"{self.name}:reduce_sum",
        )
        for place in self.group:
            replica = self.local_payload(place)
            replica.touch()
            replica.data[:] = total
        return self

    # -- consistency ------------------------------------------------------------

    def sync(self) -> "DupVector":
        """Broadcast the root copy to every replica (Listing 2's ``P.sync()``)."""
        root_data = self.payload_at_index(0).data
        tree_broadcast(
            self.runtime,
            self.group,
            root_index=0,
            nbytes=self.copy_nbytes,
            label=f"{self.name}:sync",
        )
        for index in range(1, self.group.size):
            replica = self.payload_at_index(index)
            replica.touch()
            replica.data[:] = root_data
        return self

    def replicas_consistent(self, tol: float = 0.0) -> bool:
        """True when all live replicas agree within *tol* (test helper)."""
        root = self.payload_at_index(0).data
        return all(
            np.allclose(self.payload_at_index(i).data, root, atol=tol, rtol=0)
            for i in range(1, self.group.size)
        )

    # -- resilience (Snapshottable) ------------------------------------------

    def remake(self, new_group: PlaceGroup) -> "DupVector":
        """Reallocate the duplicates over *new_group* (§IV-A: remake)."""
        self._release_payloads()
        self.group = new_group
        self._allocate(new_group)
        return self

    def rehome(self, new_group: PlaceGroup) -> "DupVector":
        """Adopt a same-size group, allocating only the missing replicas.

        New members get zeroed replicas; the next ``sync()`` (or any full
        rewrite such as ``DistVector.to_dup``) makes them consistent.
        """
        require(new_group.size == self.group.size, "rehome cannot resize the group")
        self.group = new_group
        key, n = self.heap_key, self.n
        missing = [
            place
            for place in new_group
            if not self.runtime.heap_of(place.id).contains(key)
        ]
        if not missing:
            return self

        def alloc(ctx: PlaceContext) -> None:
            ctx.heap.put(key, Vector.make(n))

        self.runtime.finish_all(
            PlaceGroup(missing), alloc, label=f"{self.name}:rehome"
        )
        return self

    def make_snapshot(self, base: Optional[DistObjectSnapshot] = None) -> DistObjectSnapshot:
        """Save every replica under its place index, doubly stored.

        Delta mode adopts unchanged replicas from *base* by reference.
        """
        snap = self._new_snapshot({"n": self.n})
        base = self._delta_base(snap, base)

        def save(ctx: PlaceContext) -> None:
            index = self.group.index_of(ctx.place)
            vec: Vector = ctx.heap.get(self.heap_key)
            self._save_partition(
                snap, ctx, index, vec.version, base, vec.copy, vec.freeze_view
            )

        self.runtime.finish_all(self.group, save, label=f"{self.name}:snapshot")
        return snap

    def restore_snapshot(self, snapshot: DistObjectSnapshot) -> None:
        """Reload each replica from the key matching its *new* index.

        Valid whenever the new group is no larger than the snapshot group
        (duplicates are interchangeable, §IV-B2).
        """
        require(snapshot.meta.get("n") == self.n, "snapshot is for a different vector")
        require(
            self.group.size <= snapshot.group.size,
            "cannot restore duplicates onto a larger group than was saved",
        )

        def load(ctx: PlaceContext) -> None:
            index = self.group.index_of(ctx.place)
            payload: Vector = snapshot.fetch(ctx, index)
            vec: Vector = ctx.heap.get(self.heap_key)
            vec.touch()
            vec.data[:] = payload.data

        self.runtime.finish_all(self.group, load, label=f"{self.name}:restore")
