"""Block partitioning — GML's ``x10.matrix.block.Grid`` equivalent.

A :class:`Grid` cuts an ``m × n`` matrix into ``rowBlocks × colBlocks``
rectangular blocks (near-even, GML's convention: the first ``m % rowBlocks``
row-bands get one extra row).  :class:`Partition1D` is the vector analogue
used by ``DistVector`` segments.

The *overlap* computation between two grids is the core of the paper's
repartitioned restore (§IV-B2, Fig. 1-c): when a ``DistBlockMatrix`` is
restored with a different data grid, every new block must be assembled from
the sub-regions of old blocks it intersects.  :meth:`Grid.overlaps_of_block`
enumerates those regions exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.util.validation import check_index, check_positive, require


def split_even(total: int, parts: int) -> List[int]:
    """Near-even split: the first ``total % parts`` parts get one extra.

    ``split_even(10, 3) == [4, 3, 3]`` — GML's block-size convention.
    """
    check_positive(parts, "parts")
    require(total >= 0, f"total must be >= 0, got {total}")
    base, extra = divmod(total, parts)
    return [base + 1 if i < extra else base for i in range(parts)]


def offsets_of(sizes: Sequence[int]) -> List[int]:
    """Prefix sums with a leading 0: block origins from block sizes."""
    offsets = [0]
    for s in sizes:
        offsets.append(offsets[-1] + s)
    return offsets


@dataclass(frozen=True)
class Region:
    """A half-open rectangular region in *global* matrix coordinates."""

    row_start: int
    row_end: int
    col_start: int
    col_end: int

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start

    @property
    def cols(self) -> int:
        return self.col_end - self.col_start

    @property
    def area(self) -> int:
        return self.rows * self.cols

    def is_empty(self) -> bool:
        return self.rows <= 0 or self.cols <= 0

    def intersect(self, other: "Region") -> "Region":
        return Region(
            max(self.row_start, other.row_start),
            min(self.row_end, other.row_end),
            max(self.col_start, other.col_start),
            min(self.col_end, other.col_end),
        )


@dataclass(frozen=True)
class Overlap:
    """One overlap region between a new block and an old block."""

    new_block: Tuple[int, int]
    old_block: Tuple[int, int]
    region: Region


class Partition1D:
    """A contiguous 1-D partition of ``0..n`` into segments."""

    def __init__(self, n: int, sizes: Sequence[int]):
        require(n >= 0, "n must be >= 0")
        require(sum(sizes) == n, f"segment sizes {list(sizes)} must sum to {n}")
        require(all(s >= 0 for s in sizes), "segment sizes must be >= 0")
        self.n = n
        self.sizes = list(sizes)
        self.offsets = offsets_of(self.sizes)
        # Partitions are immutable after construction, so segment ranges
        # are precomputed and the overlap queries of the distributed
        # matvec routing (same handful of ranges every iteration) are
        # memoized.
        self._ranges = list(zip(self.offsets[:-1], self.offsets[1:]))
        self._overlap_memo: dict = {}

    @classmethod
    def even(cls, n: int, parts: int) -> "Partition1D":
        """The default near-even partition."""
        return cls(n, split_even(n, parts))

    @property
    def num_segments(self) -> int:
        return len(self.sizes)

    def range_of(self, segment: int) -> Tuple[int, int]:
        """Half-open global index range of a segment."""
        if 0 <= segment < len(self._ranges):
            return self._ranges[segment]
        check_index(segment, self.num_segments, "segment")
        return self._ranges[segment]  # pragma: no cover - check_index raised

    def segment_of(self, index: int) -> int:
        """The segment containing global index *index*."""
        check_index(index, self.n, "index")
        return bisect.bisect_right(self.offsets, index) - 1

    def overlapping_segments(self, lo: int, hi: int) -> List[Tuple[int, int, int]]:
        """Segments intersecting ``[lo, hi)`` as ``(segment, start, end)``.

        Coordinates are global; used to route block-row results of the
        distributed matvec into the output vector's segments.  Results are
        memoized (callers only iterate them, never mutate).
        """
        memo_key = (lo, hi)
        cached = self._overlap_memo.get(memo_key)
        if cached is not None:
            return cached
        require(0 <= lo <= hi <= self.n, f"bad range [{lo},{hi}) for n={self.n}")
        if lo == hi:
            self._overlap_memo[memo_key] = []
            return self._overlap_memo[memo_key]
        result = []
        seg = self.segment_of(lo)
        while seg < self.num_segments:
            slo, shi = self.range_of(seg)
            start, end = max(lo, slo), min(hi, shi)
            if start < end:
                result.append((seg, start, end))
            if shi >= hi:
                break
            seg += 1
        self._overlap_memo[memo_key] = result
        return result

    def overlaps(self, old: "Partition1D") -> List[Tuple[int, int, int, int]]:
        """Intersections ``(new_seg, old_seg, start, end)`` in global coords.

        Used when a ``DistVector`` is restored over a different number of
        places: each new segment pulls the sub-ranges of the old segments
        it overlaps.
        """
        require(self.n == old.n, "partitions cover different lengths")
        result = []
        for new_seg in range(self.num_segments):
            lo, hi = self.range_of(new_seg)
            if hi <= lo:
                continue
            first = old.segment_of(lo)
            for old_seg in range(first, old.num_segments):
                olo, ohi = old.range_of(old_seg)
                start, end = max(lo, olo), min(hi, ohi)
                if start < end:
                    result.append((new_seg, old_seg, start, end))
                if ohi >= hi:
                    break
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Partition1D)
            and other.n == self.n
            and other.sizes == self.sizes
        )

    def __repr__(self) -> str:
        return f"Partition1D(n={self.n}, sizes={self.sizes})"


class Grid:
    """A 2-D block partitioning of an ``m × n`` matrix."""

    def __init__(self, m: int, n: int, row_sizes: Sequence[int], col_sizes: Sequence[int]):
        require(sum(row_sizes) == m, "row block sizes must sum to m")
        require(sum(col_sizes) == n, "col block sizes must sum to n")
        require(all(s >= 0 for s in row_sizes), "row sizes must be >= 0")
        require(all(s >= 0 for s in col_sizes), "col sizes must be >= 0")
        self.m = m
        self.n = n
        self.row_sizes = list(row_sizes)
        self.col_sizes = list(col_sizes)
        self.row_offsets = offsets_of(self.row_sizes)
        self.col_offsets = offsets_of(self.col_sizes)

    @classmethod
    def partition(cls, m: int, n: int, row_blocks: int, col_blocks: int) -> "Grid":
        """GML's near-even ``rowBlocks × colBlocks`` grid."""
        return cls(m, n, split_even(m, row_blocks), split_even(n, col_blocks))

    # -- shape -----------------------------------------------------------

    @property
    def num_row_blocks(self) -> int:
        return len(self.row_sizes)

    @property
    def num_col_blocks(self) -> int:
        return len(self.col_sizes)

    @property
    def num_blocks(self) -> int:
        return self.num_row_blocks * self.num_col_blocks

    # -- block coordinate math ------------------------------------------

    def block_id(self, rb: int, cb: int) -> int:
        """Row-major linear id of block ``(rb, cb)``."""
        check_index(rb, self.num_row_blocks, "row block")
        check_index(cb, self.num_col_blocks, "col block")
        return rb * self.num_col_blocks + cb

    def block_coords(self, block_id: int) -> Tuple[int, int]:
        """Inverse of :meth:`block_id`."""
        check_index(block_id, self.num_blocks, "block id")
        return divmod(block_id, self.num_col_blocks)

    def block_dims(self, rb: int, cb: int) -> Tuple[int, int]:
        """``(rows, cols)`` of block ``(rb, cb)``."""
        check_index(rb, self.num_row_blocks, "row block")
        check_index(cb, self.num_col_blocks, "col block")
        return self.row_sizes[rb], self.col_sizes[cb]

    def block_origin(self, rb: int, cb: int) -> Tuple[int, int]:
        """Global ``(row, col)`` of the block's top-left element."""
        check_index(rb, self.num_row_blocks, "row block")
        check_index(cb, self.num_col_blocks, "col block")
        return self.row_offsets[rb], self.col_offsets[cb]

    def block_region(self, rb: int, cb: int) -> Region:
        """The block's extent as a global-coordinate :class:`Region`."""
        r0, c0 = self.block_origin(rb, cb)
        h, w = self.block_dims(rb, cb)
        return Region(r0, r0 + h, c0, c0 + w)

    def block_containing(self, i: int, j: int) -> Tuple[int, int]:
        """The ``(rb, cb)`` of the block holding element ``(i, j)``."""
        check_index(i, self.m, "row")
        check_index(j, self.n, "col")
        rb = bisect.bisect_right(self.row_offsets, i) - 1
        cb = bisect.bisect_right(self.col_offsets, j) - 1
        return rb, cb

    def iter_blocks(self) -> Iterator[Tuple[int, int]]:
        """All block coordinates in row-major order."""
        for rb in range(self.num_row_blocks):
            for cb in range(self.num_col_blocks):
                yield rb, cb

    def row_partition(self) -> Partition1D:
        """The grid's row-band structure as a 1-D partition."""
        return Partition1D(self.m, self.row_sizes)

    def col_partition(self) -> Partition1D:
        """The grid's column-band structure as a 1-D partition."""
        return Partition1D(self.n, self.col_sizes)

    # -- overlap math (repartitioned restore) -----------------------------

    def _band_range(self, offsets: List[int], start: int, end: int) -> range:
        """Indices of bands intersecting the half-open range [start, end)."""
        first = bisect.bisect_right(offsets, start) - 1
        last = bisect.bisect_left(offsets, end)
        return range(max(first, 0), last)

    def overlaps_of_block(self, rb: int, cb: int, old: "Grid") -> List[Overlap]:
        """All regions of *old* grid blocks covering new block ``(rb, cb)``.

        The union of the returned regions is exactly the new block's extent
        (property-tested); this enumerates the sub-block copies the paper's
        repartitioned restore performs.
        """
        require(old.m == self.m and old.n == self.n, "grids cover different matrices")
        new_region = self.block_region(rb, cb)
        if new_region.is_empty():
            return []
        result: List[Overlap] = []
        for orb in self._band_range(old.row_offsets, new_region.row_start, new_region.row_end):
            for ocb in self._band_range(old.col_offsets, new_region.col_start, new_region.col_end):
                region = new_region.intersect(old.block_region(orb, ocb))
                if not region.is_empty():
                    result.append(Overlap((rb, cb), (orb, ocb), region))
        return result

    def same_blocking(self, other: "Grid") -> bool:
        """True if both grids cut the matrix identically (block-by-block restore)."""
        return (
            self.m == other.m
            and self.n == other.n
            and self.row_sizes == other.row_sizes
            and self.col_sizes == other.col_sizes
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Grid) and self.same_blocking(other)

    def __repr__(self) -> str:
        return (
            f"Grid({self.m}x{self.n}, "
            f"{self.num_row_blocks}x{self.num_col_blocks} blocks)"
        )
