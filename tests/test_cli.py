"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_apps_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("linreg", "logreg", "pagerank", "gnmf", "fig2", "table4"):
            assert name in out


class TestRun:
    def test_nonresilient_run(self, capsys):
        assert main(["run", "pagerank", "--places", "3", "--iterations", "4",
                     "--non-resilient"]) == 0
        out = capsys.readouterr().out
        assert "iterations executed:  4" in out
        assert "checkpoints/restores: 0/0" in out

    def test_resilient_run_with_failure(self, capsys):
        assert main([
            "run", "linreg", "--places", "4", "--iterations", "8",
            "--ckpt-interval", "4", "--fail-at", "5", "--victim", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "failures observed:    1" in out
        assert "[0, 1, 3]" in out  # shrank

    def test_replace_redundant_with_spares(self, capsys):
        assert main([
            "run", "pagerank", "--places", "4", "--iterations", "6",
            "--ckpt-interval", "3", "--fail-at", "4", "--victim", "1",
            "--mode", "replace-redundant", "--spares", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "[0, 4, 2, 3]" in out  # spare took index 1

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuchapp"])


class TestSweep:
    def test_overhead_sweep(self, capsys):
        assert main(["sweep", "fig4", "--max-places", "4", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "non-resilient finish" in out
        assert "resilient finish" in out

    def test_restore_sweep(self, capsys):
        assert main(["sweep", "fig7", "--max-places", "4", "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "shrink-rebalance" in out

    def test_table4(self, capsys):
        assert main(["sweep", "table4", "--max-places", "4", "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "C%" in out and "R%" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "fig99"])


class TestTraceOut:
    def test_dumps_engine_event_log(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main([
            "run", "linreg", "--places", "3", "--iterations", "4",
            "--ckpt-interval", "2", "--trace-out", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "engine trace:" in out

        from repro.bench.timeline import load_engine_events

        events = load_engine_events(path)
        assert events
        kinds = {e.kind for e in events}
        assert "finish" in kinds
        assert "transfer" in kinds

    def test_trace_round_trips_into_profile(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main([
            "run", "pagerank", "--places", "3", "--iterations", "3",
            "--non-resilient", "--trace-out", path,
        ]) == 0
        capsys.readouterr()

        from repro.bench.timeline import (
            finish_reports_from_events,
            load_engine_events,
            render_profile,
        )

        reports = finish_reports_from_events(load_engine_events(path))
        assert reports
        assert "operation" in render_profile(reports)


class TestCheckpointMode:
    def test_overlapped_run(self, capsys):
        assert main([
            "run", "linreg", "--places", "4", "--iterations", "6",
            "--ckpt-interval", "3", "--ckpt-mode", "overlapped",
        ]) == 0
        out = capsys.readouterr().out
        assert "iterations executed:  6" in out

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "linreg", "--ckpt-mode", "bogus"])

    def test_overlap_sweep(self, capsys):
        assert main(["sweep", "overlap", "--max-places", "4",
                     "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "blocking stall (ms)" in out
        assert "overlapped stall (ms)" in out


class TestReplication:
    def test_k2_spread_survives_adjacent_pair(self, capsys):
        # The seed configuration would abort here; k=2 spread recovers.
        assert main([
            "run", "linreg", "--places", "6", "--iterations", "8",
            "--ckpt-interval", "3", "--fail-at", "5", "--victim", "2",
            "--replicas", "2", "--placement", "spread",
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpoints/restores" in out

    def test_stable_fallback_reports_disk_reads(self, capsys):
        assert main([
            "run", "linreg", "--places", "4", "--iterations", "8",
            "--ckpt-interval", "3", "--fail-at", "5", "--victim", "2",
            "--stable-fallback",
        ]) == 0
        # Single failure, k=1: memory tier suffices, so no disk lines
        # required — just a clean exit with the knob on.
        assert "checkpoints/restores: 3/1" in capsys.readouterr().out

    def test_unrecoverable_run_exits_nonzero(self, capsys):
        # Adjacent double kill with the seed's k=1 ring: data loss.
        assert main([
            "run", "linreg", "--places", "6", "--iterations", "8",
            "--ckpt-interval", "3", "--fail-at", "5", "--victim", "2",
            "--fail-at", "5", "--victim", "3",
        ]) == 1
        err = capsys.readouterr().err
        assert "unrecoverable" in err
        assert "--stable-fallback" in err  # the hint points at the ladder

    def test_mttf_schedules_random_failures(self, capsys):
        assert main([
            "run", "linreg", "--places", "6", "--iterations", "8",
            "--ckpt-interval", "3", "--mttf", "1e9", "--chaos-seed", "7",
        ]) == 0
        # Astronomically large MTTF: kills scheduled but never due.
        assert "iterations executed:  8" in capsys.readouterr().out

    def test_bad_placement_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "linreg", "--placement", "mirror"])


class TestChaosCommand:
    def test_small_campaign_exits_clean(self, capsys):
        assert main([
            "chaos", "linreg", "--schedules", "5", "--chaos-seed", "3",
            "--replicas", "2", "--placement", "spread",
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos campaign" in out
        assert "schedules=5" in out
        assert "all recovery invariants held" in out

    def test_stable_fallback_campaign(self, capsys):
        assert main([
            "chaos", "pagerank", "--schedules", "5", "--chaos-seed", "4",
            "--replicas", "1", "--placement", "ring", "--stable-fallback",
        ]) == 0
        assert "stable_fallback=True" in capsys.readouterr().out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "nosuchapp"])


class TestDeltaAndJobs:
    def test_run_with_ckpt_delta(self, capsys):
        assert main([
            "run", "pagerank", "--places", "3", "--iterations", "8",
            "--ckpt-interval", "3", "--ckpt-delta",
        ]) == 0
        out = capsys.readouterr().out
        assert "virtual total" in out

    def test_chaos_delta_with_jobs(self, capsys):
        assert main([
            "chaos", "linreg", "--schedules", "6", "--ckpt-delta",
            "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "ckpt_delta=True" in out
        assert "all recovery invariants held" in out

    def test_sweep_with_jobs(self, capsys):
        assert main([
            "sweep", "fig2", "--max-places", "4", "--iterations", "2",
            "--jobs", "2",
        ]) == 0
        assert "ms/iteration" in capsys.readouterr().out
