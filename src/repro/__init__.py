"""repro — reproduction of "A Resilient Framework for Iterative Linear
Algebra Applications in X10" (Hamouda, Milthorpe, Strazdins, Saraswat;
IPDPS workshops 2015).

The package provides:

* ``repro.runtime`` — a deterministic APGAS (X10-style) runtime simulator
  with places, finish semantics, fail-stop failure injection and the
  place-zero bookkeeping cost of Resilient X10;
* ``repro.matrix`` — the Global Matrix Library (GML): single-place dense and
  sparse matrices, duplicated and distributed multi-place classes;
* ``repro.resilience`` — the paper's contribution: snapshot/restore for GML
  objects, the application resilient store, and the resilient iterative
  executor with shrink / shrink-rebalance / replace-redundant modes;
* ``repro.apps`` — Linear Regression, Logistic Regression and PageRank in
  both non-resilient and resilient forms;
* ``repro.bench`` — the harness regenerating every table and figure of the
  paper's evaluation.
"""

__version__ = "1.0.0"

from repro.runtime import (
    CostModel,
    DeadPlaceException,
    FailureInjector,
    Place,
    PlaceGroup,
    Runtime,
)

__all__ = [
    "__version__",
    "CostModel",
    "DeadPlaceException",
    "FailureInjector",
    "Place",
    "PlaceGroup",
    "Runtime",
]
