"""Tests for the distributed kernels against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Grid
from repro.matrix.mapping import CyclicBlockMap
from repro.matrix.ops import dist_block_matvec, dist_block_t_matvec
from repro.matrix.random import LinkMatrix
from repro.runtime import CostModel, PlaceGroup, Runtime


def make_rt(n=4):
    return Runtime(n, cost=CostModel.zero())


def aligned_out(rt, G):
    return DistVector.make(rt, G.m, G.group, partition=G.aligned_row_partition())


class TestMatvec:
    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_matches_numpy_aligned(self, kind):
        rt = make_rt(4)
        maker = DistBlockMatrix.make_dense if kind == "dense" else DistBlockMatrix.make_sparse
        G = maker(rt, 16, 10, 8, 1).init_random(3, **({} if kind == "dense" else {"density": 0.4}))
        x = DupVector.make(rt, 10).init_random(5)
        y = aligned_out(rt, G).mult(G, x)
        assert np.allclose(y.to_array(), G.to_dense().data @ x.to_array())

    def test_multi_col_blocks(self):
        rt = make_rt(3)
        G = DistBlockMatrix.make_dense(rt, 12, 9, 6, 3).init_random(1)
        x = DupVector.make(rt, 9).init_random(2)
        y = DistVector.make(rt, 12)
        dist_block_matvec(G, x, y)
        assert np.allclose(y.to_array(), G.to_dense().data @ x.to_array())

    def test_scattered_blocks_route_remotely(self):
        # Cyclic map: a place's blocks do not match the output partition,
        # so results are shipped — the answer must still be exact.
        rt = Runtime(3, cost=CostModel.unit())
        grid = Grid.partition(12, 6, 6, 1)
        G = DistBlockMatrix(rt, grid, rt.world, "dense", CyclicBlockMap(grid, 3))
        G.init_random(4)
        x = DupVector.make(rt, 6).init_random(5)
        y = DistVector.make(rt, 12)
        messages_before = rt.stats.messages
        dist_block_matvec(G, x, y)
        assert np.allclose(y.to_array(), G.to_dense().data @ x.to_array())
        assert rt.stats.messages > messages_before

    def test_after_shrink_remap(self):
        rt = make_rt(4)
        G = DistBlockMatrix.make_dense(rt, 16, 6, 8, 1).init_random(1)
        ref = G.to_dense().data
        snap = G.make_snapshot()
        rt.kill(2)
        survivors = rt.live_world()
        G.remake(survivors)
        G.restore_snapshot(snap)
        x = DupVector.make(rt, 6, survivors).init_random(2)
        y = aligned_out(rt, G).mult(G, x)
        assert np.allclose(y.to_array(), ref @ x.to_array())

    def test_dimension_checks(self):
        rt = make_rt(2)
        G = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1)
        with pytest.raises(ValueError):
            dist_block_matvec(G, DupVector.make(rt, 5), DistVector.make(rt, 8))
        with pytest.raises(ValueError):
            dist_block_matvec(G, DupVector.make(rt, 4), DistVector.make(rt, 9))

    def test_group_checks(self):
        rt = make_rt(3)
        G = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1, group=PlaceGroup.of_ids([0, 1]))
        x = DupVector.make(rt, 4, PlaceGroup.of_ids([0, 2]))
        with pytest.raises(ValueError):
            dist_block_matvec(G, x, DistVector.make(rt, 8, PlaceGroup.of_ids([0, 1])))


class TestTransposeMatvec:
    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_matches_numpy(self, kind):
        rt = make_rt(4)
        maker = DistBlockMatrix.make_dense if kind == "dense" else DistBlockMatrix.make_sparse
        G = maker(rt, 16, 10, 8, 1).init_random(3, **({} if kind == "dense" else {"density": 0.4}))
        r = aligned_out(rt, G).init_random(6)
        g = DupVector.make(rt, 10)
        dist_block_t_matvec(G, r, g)
        assert np.allclose(g.to_array(), G.to_dense().data.T @ r.to_array())
        assert g.replicas_consistent(1e-12)

    def test_misaligned_operand_fetches_remote(self):
        rt = Runtime(3, cost=CostModel.unit())
        grid = Grid.partition(12, 6, 6, 1)
        G = DistBlockMatrix(rt, grid, rt.world, "dense", CyclicBlockMap(grid, 3))
        G.init_random(4)
        r = DistVector.make(rt, 12).init_random(5)  # even partition != cyclic blocks
        g = DupVector.make(rt, 6)
        dist_block_t_matvec(G, r, g)
        assert np.allclose(g.to_array(), G.to_dense().data.T @ r.to_array())

    def test_dimension_checks(self):
        rt = make_rt(2)
        G = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1)
        with pytest.raises(ValueError):
            dist_block_t_matvec(G, DistVector.make(rt, 7), DupVector.make(rt, 4))
        with pytest.raises(ValueError):
            dist_block_t_matvec(G, DistVector.make(rt, 8), DupVector.make(rt, 5))


class TestPageRankKernelChain:
    def test_one_power_iteration_matches_numpy(self):
        # The exact Listing 2 chain on a small graph.
        rt = make_rt(4)
        n, alpha = 20, 0.85
        link = LinkMatrix(n, 3, seed=1)
        G = DistBlockMatrix.make_sparse(rt, n, n, 8, 1).init_link_matrix(link)
        P = DupVector.make(rt, n).init(1.0 / n)
        GP = DistVector.make(rt, n, partition=G.aligned_row_partition())

        Gd = G.to_dense().data
        expected = alpha * (Gd @ P.to_array()) + (1 - alpha) / n

        GP.mult(G, P).scale(alpha)
        GP.copy_to(P.local())
        P.local().cell_add((1 - alpha) / n)
        P.sync()

        assert np.allclose(P.to_array(), expected)
        assert P.replicas_consistent(1e-12)

    @settings(max_examples=10, deadline=None)
    @given(places=st.integers(1, 6), row_blocks=st.integers(1, 10), seed=st.integers(0, 20))
    def test_matvec_place_count_invariance(self, places, row_blocks, seed):
        """The kernel result is independent of distribution."""
        n = 15
        row_blocks = max(row_blocks, places)
        link = LinkMatrix(n, 2, seed=seed)
        rt = make_rt(places)
        G = DistBlockMatrix.make_sparse(rt, n, n, row_blocks, 1).init_link_matrix(link)
        x = DupVector.make(rt, n).init_random(seed)
        y = aligned_out(rt, G).mult(G, x)
        assert np.allclose(y.to_array(), link.block(0, n, 0, n).to_dense() @ x.to_array())
