"""Reproduce the paper's evaluation in one run (scaled-down axis).

Runs every experiment of §VII — the Figs. 2-4 overhead sweeps, Table II's
lines-of-code comparison, Table III's checkpoint times, and the Figs. 5-7 /
Table IV restore protocol — on a reduced place axis so the whole thing
finishes in about a minute, and prints paper-style summaries.  The full
44-place axis with assertions lives in ``benchmarks/``.

Run:  python examples/reproduce_paper.py
"""

import inspect

from repro.bench import figures
from repro.bench.harness import (
    run_checkpoint_sweep,
    run_overhead_sweep,
    run_restore_sweep,
    table4_from_reports,
)
from repro.util.loc import count_loc, loc_of_object

AXIS = [2, 8, 16, 24]
TOP = 24  # the largest place count of this scaled-down run


def banner(text: str) -> None:
    print("\n" + "=" * 72 + f"\n{text}\n" + "=" * 72)


# -- Figures 2-4: resilient X10 overhead -------------------------------------
for fig, app in (("Figure 2", "linreg"), ("Figure 3", "logreg"), ("Figure 4", "pagerank")):
    series = run_overhead_sweep(app, places_list=AXIS, iterations=10)
    banner(f"{fig} — {app}: time per iteration (ms), resilient vs non-resilient X10")
    print(figures.series_table(series.places, series.values, header_unit="ms/iteration"))
    nonres = series.values["non-resilient finish"][-1]
    res = series.values["resilient finish"][-1]
    print(f"resilient overhead @ {TOP} places: {100 * (res - nonres) / nonres:.0f}%")

# -- Table II: lines of code ----------------------------------------------------
from repro.apps.nonresilient import linreg as nr_lin, logreg as nr_log, pagerank as nr_pr
from repro.apps.resilient import (
    LinRegResilient,
    LogRegResilient,
    PageRankResilient,
)

banner("Table II — lines of code, non-resilient vs resilient")
print(f"{'app':<10s} {'non-res':>8s} {'res':>6s} {'ckpt':>5s} {'restore':>8s}")
for name, module, cls in (
    ("LinReg", nr_lin, LinRegResilient),
    ("LogReg", nr_log, LogRegResilient),
    ("PageRank", nr_pr, PageRankResilient),
):
    print(
        f"{name:<10s} {count_loc(inspect.getsource(module)):>8d} "
        f"{count_loc(inspect.getsource(inspect.getmodule(cls))):>6d} "
        f"{loc_of_object(cls.checkpoint):>5d} {loc_of_object(cls.restore):>8d}"
    )

# -- Table III: checkpoint times ----------------------------------------------
banner("Table III — mean time per checkpoint (ms), 3 checkpoints per run")
values = {}
for app in ("linreg", "logreg", "pagerank"):
    sweep = run_checkpoint_sweep(app, places_list=AXIS, iterations=30)
    values[app] = sweep.values["mean checkpoint (ms)"]
print(figures.series_table(AXIS, values, header_unit="ms/checkpoint"))

# -- Figures 5-7 + Table IV: restore protocol ----------------------------------
for fig, app in (("Figure 5", "linreg"), ("Figure 6", "logreg"), ("Figure 7", "pagerank")):
    out = run_restore_sweep(app, places_list=AXIS, iterations=30)
    series = out["series"]
    banner(
        f"{fig} — {app}: total runtime (s), 30 iterations, failure @ 15, "
        "checkpoints every 10"
    )
    print(figures.series_table(series.places, series.values, value_format="{:10.2f}"))
    t4 = table4_from_reports(out["reports"], places=TOP)
    print(f"\nTable IV slice @ {TOP} places:")
    for mode, row in t4.items():
        print(f"  {mode:<20s} C% {row['C%']:5.1f}   R% {row['R%']:5.1f}")

print("\nDone. Full-axis runs with paper-vs-measured assertions:")
print("  pytest benchmarks/ --benchmark-only")
