"""Non-negative matrix factorization that survives a failure mid-run.

Factors a sparse 480×120 matrix into rank-6 factors with multiplicative
updates on 4 places, loses a place at iteration 10 of 25, shrinks onto the
survivors, and converges to the same factorization as a failure-free run.

Run:  python examples/gnmf_factorization.py
"""

import numpy as np

from repro import Runtime
from repro.apps import GnmfNonResilient, GnmfResilient, GnmfWorkload
from repro.bench.calibration import cluster_2015
from repro.resilience import IterativeExecutor, RestoreMode

workload = GnmfWorkload(
    rows_per_place=120, cols=120, rank=6, density=0.15, iterations=25
)

# Failure-free reference.
ref_rt = Runtime(4, cost=cluster_2015())
reference = GnmfNonResilient(ref_rt, workload)
error_before = reference.reconstruction_error()
reference.run()
error_after = reference.reconstruction_error()
print(f"reference:  ||V - WH||_F  {error_before:.3f} → {error_after:.3f}")

# Resilient run with a failure.
rt = Runtime(4, cost=cluster_2015(), resilient=True)
app = GnmfResilient(rt, workload)
rt.injector.kill_at_iteration(2, iteration=10)
report = IterativeExecutor(
    rt, app, checkpoint_interval=5, mode=RestoreMode.SHRINK_REBALANCE
).run()

print(f"resilient:  ||V - WH||_F  {app.reconstruction_error():.3f} "
      f"after {report.failures_observed} failure, {report.restores} restore")
print(f"final places: {app.places.ids}; blocks/place: {app.V.blocks_per_place()}")
W_ref, H_ref = reference.factors()
W, H = app.factors()
print(f"factor deviation vs failure-free: W {np.abs(W - W_ref).max():.2e}, "
      f"H {np.abs(H - H_ref).max():.2e}")
assert np.allclose(W, W_ref, atol=1e-8) and np.allclose(H, H_ref, atol=1e-8)
print("factors match the failure-free run ✓")
