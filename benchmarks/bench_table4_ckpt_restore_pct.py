"""Table IV — percentage of total time in checkpoint (C%) and restore (R%)
at 44 places, per application and restoration mode.

Protocol: the Figs. 5-7 runs at 44 places (30 iterations, checkpoints
every 10, one failure at iteration 15); C% and R% are the checkpoint and
restore segments' share of the total runtime.

Paper shape: shrink-rebalance has the highest restore share
(repartitioning + multi-sub-block copies); replace-redundant the lowest
(same-index block reload, only the spare pulls data remotely).
"""

from _common import emit
from repro.bench.calibration import PaperTargets
from repro.bench.harness import run_restore_sweep, table4_from_reports

MODES = ("shrink", "shrink-rebalance", "replace-redundant")


def run_all():
    out = {}
    for app in ("linreg", "logreg", "pagerank"):
        sweep = run_restore_sweep(app, places_list=[44], iterations=30)
        out[app] = table4_from_reports(sweep["reports"], places=44)
    return out


def test_table4_checkpoint_restore_percentages(benchmark):
    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["                      " + "".join(f"{m:>20s}" for m in MODES)]
    lines.append("application           " + "   C%   R%" * 3)
    for app in ("linreg", "logreg", "pagerank"):
        paper = PaperTargets.table4[app]
        ours = measured[app]
        row_p = "  ".join(f"{paper[m][0]:4.0f} {paper[m][1]:4.0f}" for m in MODES)
        row_o = "  ".join(f"{ours[m]['C%']:4.1f} {ours[m]['R%']:4.1f}" for m in MODES)
        lines.append(f"{app:<12s} paper    {row_p}")
        lines.append(f"{app:<12s} ours     {row_o}")
    emit("Table IV — C% / R% of total time at 44 places", "\n".join(lines))

    for app in ("linreg", "logreg", "pagerank"):
        ours = measured[app]
        # Restore-share ordering: rebalance most expensive, replace least.
        assert ours["shrink-rebalance"]["R%"] >= ours["shrink"]["R%"]
        assert ours["shrink"]["R%"] >= ours["replace-redundant"]["R%"]
        # Checkpoints are a visible but not dominant fraction of runtime.
        for m in MODES:
            assert 2.0 < ours[m]["C%"] < 50.0
    # PageRank's shares are the smallest of the three apps (cheap re-saves).
    assert measured["pagerank"]["shrink"]["C%"] < measured["linreg"]["shrink"]["C%"]
