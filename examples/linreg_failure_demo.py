"""Linear regression through three different failure scenarios.

Exercises the resilient framework end-to-end for the three restoration
modes — shrink, shrink-rebalance and replace-redundant — each against the
same failure (place 2 dying at iteration 12 of 20), and compares the
learned model to a failure-free run.  Replace-redundant reproduces the
failure-free model *bitwise* (identical data layout after recovery);
the shrink modes match to floating-point roundoff (reduction grouping
changes with the place count).

Run:  python examples/linreg_failure_demo.py
"""

import numpy as np

from repro import Runtime
from repro.apps import LinRegNonResilient, LinRegResilient, RegressionWorkload
from repro.bench.calibration import cluster_2015
from repro.resilience import IterativeExecutor, RestoreMode

workload = RegressionWorkload(
    features=60, examples_per_place=400, iterations=20, blocks_per_place=2
)

ref_rt = Runtime(6, cost=cluster_2015())
reference = LinRegNonResilient(ref_rt, workload)
reference.run()
print(f"reference model norm: {np.linalg.norm(reference.model()):.6f}")

for mode in (RestoreMode.SHRINK, RestoreMode.SHRINK_REBALANCE, RestoreMode.REPLACE_REDUNDANT):
    spares = 1 if mode == RestoreMode.REPLACE_REDUNDANT else 0
    rt = Runtime(6, cost=cluster_2015(), resilient=True, spares=spares)
    app = LinRegResilient(rt, workload)
    rt.injector.kill_at_iteration(2, iteration=12)
    report = IterativeExecutor(rt, app, checkpoint_interval=5, mode=mode).run()

    err = np.abs(app.model() - reference.model()).max()
    exact = "bitwise" if np.array_equal(app.model(), reference.model()) else f"{err:.2e}"
    print(
        f"{mode.value:>18s}: group {app.places.ids}  "
        f"blocks/place {app.X.blocks_per_place()}  "
        f"restore {report.restore_time * 1e3:7.2f} ms  "
        f"model match: {exact}"
    )
