"""Tests for the workload dataclasses (validation and derived sizes)."""

import pytest

from repro.apps.data import GnmfWorkload, PageRankWorkload, RegressionWorkload


class TestRegressionWorkload:
    def test_derived_sizes(self):
        wl = RegressionWorkload(features=10, examples_per_place=100, blocks_per_place=3)
        assert wl.examples(4) == 400
        assert wl.row_blocks(4) == 12

    def test_paper_preset(self):
        wl = RegressionWorkload.paper()
        assert wl.features == 500
        assert wl.examples_per_place == 50_000

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionWorkload(features=0)
        with pytest.raises(ValueError):
            RegressionWorkload(ridge_lambda=-1.0)
        with pytest.raises(ValueError):
            RegressionWorkload(iterations=0)

    def test_frozen(self):
        wl = RegressionWorkload.small()
        with pytest.raises(Exception):
            wl.features = 7


class TestPageRankWorkload:
    def test_edges_per_place(self):
        wl = PageRankWorkload(nodes_per_place=100, out_degree=7)
        assert wl.edges_per_place() == 700
        assert wl.nodes(3) == 300

    def test_paper_preset_is_2m_edges(self):
        assert PageRankWorkload.paper().edges_per_place() == 2_000_000

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            PageRankWorkload(alpha=0.0)
        with pytest.raises(ValueError):
            PageRankWorkload(alpha=1.0)


class TestGnmfWorkload:
    def test_derived_sizes(self):
        wl = GnmfWorkload(rows_per_place=50, blocks_per_place=2)
        assert wl.rows(4) == 200
        assert wl.row_blocks(4) == 8

    def test_density_bounds(self):
        with pytest.raises(ValueError):
            GnmfWorkload(density=0.0)
        with pytest.raises(ValueError):
            GnmfWorkload(density=1.5)

    def test_small_preset_is_fast(self):
        wl = GnmfWorkload.small()
        assert wl.rows_per_place * wl.cols < 10_000
