"""Figure 3 — Logistic Regression: resilient X10 overhead.

Same protocol as Figure 2 for the LogReg benchmark (two forward passes plus
a gradient pass per iteration, so its base time is roughly twice LinReg's).

Paper shape: non-resilient grows 110 → 295 ms; resilient 110 → 595 ms
(up to ~100 % overhead).
"""

from _common import emit, overhead_report
from repro.bench.calibration import PaperTargets
from repro.bench.harness import run_overhead_sweep


def test_fig3_logreg_overhead(benchmark):
    series = benchmark.pedantic(
        lambda: run_overhead_sweep("logreg", iterations=30), rounds=1, iterations=1
    )
    report = overhead_report(
        "logreg", series, PaperTargets.logreg_nonres_ms, PaperTargets.logreg_res_ms
    )
    emit("Figure 3 — LogReg: resilient X10 overhead (time per iteration)", report)
    nonres = series.values["non-resilient finish"]
    res = series.values["resilient finish"]
    assert nonres[-1] > 1.8 * nonres[0]
    assert all(r >= n for r, n in zip(res, nonres))
    assert 1.4 < res[-1] / nonres[-1] < 3.0
