"""Tests for Grid / Partition1D: tiling, lookup, and overlap math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.grid import Grid, Partition1D, Region, offsets_of, split_even


class TestSplitEven:
    def test_exact_division(self):
        assert split_even(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_first(self):
        assert split_even(10, 3) == [4, 3, 3]

    def test_more_parts_than_items(self):
        assert split_even(2, 4) == [1, 1, 0, 0]

    def test_zero_total(self):
        assert split_even(0, 3) == [0, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_even(5, 0)
        with pytest.raises(ValueError):
            split_even(-1, 2)

    @given(total=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_properties(self, total, parts):
        sizes = split_even(total, parts)
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)


class TestPartition1D:
    def test_even(self):
        p = Partition1D.even(10, 3)
        assert p.sizes == [4, 3, 3]
        assert p.offsets == [0, 4, 7, 10]

    def test_range_and_segment_of(self):
        p = Partition1D.even(10, 3)
        assert p.range_of(1) == (4, 7)
        assert p.segment_of(0) == 0
        assert p.segment_of(4) == 1
        assert p.segment_of(9) == 2

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Partition1D(10, [5, 4])
        with pytest.raises(ValueError):
            Partition1D(5, [6, -1])

    def test_overlapping_segments(self):
        p = Partition1D(10, [4, 3, 3])
        assert p.overlapping_segments(2, 9) == [(0, 2, 4), (1, 4, 7), (2, 7, 9)]
        assert p.overlapping_segments(4, 7) == [(1, 4, 7)]
        assert p.overlapping_segments(3, 3) == []

    def test_overlaps_identity(self):
        p = Partition1D.even(10, 3)
        ovs = p.overlaps(p)
        assert ovs == [(0, 0, 0, 4), (1, 1, 4, 7), (2, 2, 7, 10)]

    def test_overlaps_shrink(self):
        new = Partition1D.even(10, 2)  # [5, 5]
        old = Partition1D.even(10, 3)  # [4, 3, 3]
        ovs = new.overlaps(old)
        assert ovs == [
            (0, 0, 0, 4),
            (0, 1, 4, 5),
            (1, 1, 5, 7),
            (1, 2, 7, 10),
        ]

    @given(
        n=st.integers(1, 500),
        old_parts=st.integers(1, 12),
        new_parts=st.integers(1, 12),
    )
    def test_overlaps_cover_exactly(self, n, old_parts, new_parts):
        """Overlap ranges tile each new segment exactly once."""
        old = Partition1D.even(n, old_parts)
        new = Partition1D.even(n, new_parts)
        covered = np.zeros(n, dtype=int)
        for _new_seg, _old_seg, start, end in new.overlaps(old):
            covered[start:end] += 1
        assert np.all(covered == 1)


class TestGrid:
    def test_partition(self):
        g = Grid.partition(10, 7, 3, 2)
        assert g.row_sizes == [4, 3, 3]
        assert g.col_sizes == [4, 3]
        assert g.num_blocks == 6

    def test_block_dims_origin(self):
        g = Grid.partition(10, 7, 3, 2)
        assert g.block_dims(1, 1) == (3, 3)
        assert g.block_origin(1, 1) == (4, 4)
        assert g.block_region(2, 0) == Region(7, 10, 0, 4)

    def test_block_id_roundtrip(self):
        g = Grid.partition(10, 7, 3, 2)
        for rb in range(3):
            for cb in range(2):
                assert g.block_coords(g.block_id(rb, cb)) == (rb, cb)

    def test_block_containing(self):
        g = Grid.partition(10, 7, 3, 2)
        assert g.block_containing(0, 0) == (0, 0)
        assert g.block_containing(4, 4) == (1, 1)
        assert g.block_containing(9, 6) == (2, 1)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            Grid(10, 7, [5, 4], [4, 3])
        with pytest.raises(ValueError):
            Grid(10, 7, [4, 3, 3], [4, 4])

    def test_same_blocking(self):
        a = Grid.partition(10, 7, 3, 2)
        b = Grid(10, 7, [4, 3, 3], [4, 3])
        c = Grid.partition(10, 7, 2, 2)
        assert a.same_blocking(b)
        assert not a.same_blocking(c)

    def test_partitions(self):
        g = Grid.partition(10, 7, 3, 2)
        assert g.row_partition().sizes == [4, 3, 3]
        assert g.col_partition().sizes == [4, 3]

    def test_overlaps_same_grid(self):
        g = Grid.partition(10, 7, 3, 2)
        ovs = g.overlaps_of_block(1, 1, g)
        assert len(ovs) == 1
        assert ovs[0].old_block == (1, 1)
        assert ovs[0].region == g.block_region(1, 1)

    def test_overlaps_regridded(self):
        old = Grid.partition(10, 10, 2, 2)  # 5x5 blocks
        new = Grid.partition(10, 10, 3, 3)
        ovs = new.overlaps_of_block(1, 1, old)  # rows 4-7, cols 4-7 spans all 4 old blocks
        assert {o.old_block for o in ovs} == {(0, 0), (0, 1), (1, 0), (1, 1)}

    @settings(max_examples=60)
    @given(
        m=st.integers(1, 60),
        n=st.integers(1, 60),
        orb=st.integers(1, 6),
        ocb=st.integers(1, 6),
        nrb=st.integers(1, 6),
        ncb=st.integers(1, 6),
    )
    def test_overlaps_tile_every_new_block(self, m, n, orb, ocb, nrb, ncb):
        """For every new block, the overlap regions partition it exactly."""
        old = Grid.partition(m, n, orb, ocb)
        new = Grid.partition(m, n, nrb, ncb)
        for rb in range(new.num_row_blocks):
            for cb in range(new.num_col_blocks):
                region = new.block_region(rb, cb)
                if region.is_empty():
                    continue
                cover = np.zeros((region.rows, region.cols), dtype=int)
                for ov in new.overlaps_of_block(rb, cb, old):
                    r = ov.region
                    cover[
                        r.row_start - region.row_start : r.row_end - region.row_start,
                        r.col_start - region.col_start : r.col_end - region.col_start,
                    ] += 1
                assert np.all(cover == 1)

    @given(m=st.integers(1, 80), n=st.integers(1, 80), rb=st.integers(1, 8), cb=st.integers(1, 8))
    def test_blocks_tile_matrix(self, m, n, rb, cb):
        """All blocks of a grid tile the matrix exactly once."""
        g = Grid.partition(m, n, rb, cb)
        cover = np.zeros((m, n), dtype=int)
        for brb, bcb in g.iter_blocks():
            r = g.block_region(brb, bcb)
            cover[r.row_start : r.row_end, r.col_start : r.col_end] += 1
        assert np.all(cover == 1)


class TestRegion:
    def test_intersect(self):
        a = Region(0, 5, 0, 5)
        b = Region(3, 8, 2, 4)
        assert a.intersect(b) == Region(3, 5, 2, 4)

    def test_empty(self):
        assert Region(3, 3, 0, 5).is_empty()
        assert Region(0, 5, 0, 5).intersect(Region(5, 9, 0, 5)).is_empty()

    def test_area(self):
        assert Region(1, 4, 2, 7).area == 15


def test_offsets_of():
    assert offsets_of([3, 2, 4]) == [0, 3, 5, 9]
    assert offsets_of([]) == [0]
