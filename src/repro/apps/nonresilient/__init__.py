"""Non-resilient GML applications (the left column of Table II).

Plain GML programs in a sequential style: no checkpoints, no recovery —
a place failure aborts the run.  The resilient counterparts live in
``repro.apps.resilient``; the two versions are intentionally separate,
self-contained programs so the Table II lines-of-code comparison measures
real code.
"""

from repro.apps.nonresilient.cg import CGNonResilient
from repro.apps.nonresilient.gnmf import GnmfNonResilient
from repro.apps.nonresilient.linreg import LinRegNonResilient
from repro.apps.nonresilient.logreg import LogRegNonResilient
from repro.apps.nonresilient.pagerank import PageRankNonResilient

__all__ = [
    "CGNonResilient",
    "GnmfNonResilient",
    "LinRegNonResilient",
    "LogRegNonResilient",
    "PageRankNonResilient",
]
