"""Exception types mirroring Resilient X10's failure surface.

Resilient X10 turns the death of a place into a ``DeadPlaceException``
delivered at the enclosing ``finish``; multiple simultaneous failures are
aggregated.  Place zero is immortal by assumption — its death aborts the
whole run — and losing both copies of a snapshot partition is unrecoverable
data loss.
"""

from __future__ import annotations

from typing import List, Sequence


class RuntimeFault(Exception):
    """Base class for all simulator faults."""


class DeadPlaceException(RuntimeFault):
    """A task touched (or was to be spawned on) a dead place.

    Mirrors ``x10.lang.DeadPlaceException``: raised at the enclosing finish
    after all surviving tasks have terminated.
    """

    def __init__(self, place_id: int, message: str = ""):
        self.place_id = place_id
        super().__init__(message or f"place {place_id} is dead")

    @property
    def places(self) -> List[int]:
        """Uniform accessor shared with :class:`MultipleException`."""
        return [self.place_id]


class CommTimeoutError(DeadPlaceException):
    """A message to a place exhausted its retransmission budget.

    Subclasses :class:`DeadPlaceException` deliberately: to the enclosing
    finish, an *unreachable* place is indistinguishable from a dead one —
    only the failure detector, consulted afterwards by the executor, can
    tell a crash from a transient partition or a lossy link.  Carries the
    number of retransmissions attempted before giving up.
    """

    def __init__(self, place_id: int, retries: int = 0):
        self.retries = retries
        super().__init__(
            place_id,
            f"place {place_id} unreachable (no acknowledgement after "
            f"{retries} retransmissions)",
        )


class MultipleException(RuntimeFault):
    """Several tasks of one finish failed (e.g. several places died).

    Mirrors ``x10.lang.MultipleExceptions``; carries the individual
    exceptions so handlers can extract every dead place.
    """

    def __init__(self, exceptions: Sequence[Exception]):
        self.exceptions = list(exceptions)
        super().__init__(f"{len(self.exceptions)} tasks failed: {self.exceptions!r}")

    @property
    def places(self) -> List[int]:
        """Ids of all dead places named by the aggregated exceptions."""
        ids: List[int] = []
        for exc in self.exceptions:
            if isinstance(exc, (DeadPlaceException, MultipleException)):
                ids.extend(exc.places)
        return sorted(set(ids))

    def flattened(self) -> List[Exception]:
        """All leaf exceptions, with nested ``MultipleException`` expanded.

        X10 nests ``MultipleExceptions`` when finishes nest; handlers want
        the flat list of underlying faults regardless of aggregation depth.
        Non-place exceptions (application errors raised inside tasks) are
        preserved in order.
        """
        leaves: List[Exception] = []
        for exc in self.exceptions:
            if isinstance(exc, MultipleException):
                leaves.extend(exc.flattened())
            else:
                leaves.append(exc)
        return leaves


def collapse_failures(failures: Sequence[Exception]) -> Exception:
    """Aggregate task failures the way a finish surfaces them.

    A single failure is raised as itself (no pointless wrapper); several
    are flattened into one :class:`MultipleException` — nested multiples
    from inner finishes are expanded so the result is always one level
    deep.  Raises ``ValueError`` on an empty sequence (a finish with no
    failures has nothing to surface).
    """
    flat: List[Exception] = []
    for exc in failures:
        if isinstance(exc, MultipleException):
            flat.extend(exc.flattened())
        else:
            flat.append(exc)
    if not flat:
        raise ValueError("collapse_failures() needs at least one failure")
    if len(flat) == 1:
        return flat[0]
    return MultipleException(flat)


class PlaceZeroDeadError(RuntimeFault):
    """Place zero died: the whole application fails (X10 assumption)."""

    def __init__(self) -> None:
        super().__init__("place 0 died: resilient X10 cannot survive place zero")


class DataLossError(RuntimeFault):
    """Both the primary and the backup copy of a snapshot entry are gone.

    Happens when two *adjacent* places in a snapshot's place group die
    between a checkpoint and the restore — the double in-memory store only
    protects against non-adjacent failures.
    """


class SnapshotCorruptionError(DataLossError):
    """A snapshot partition was lost to *corruption* rather than crashes.

    Raised only when corruption is unrecoverable — every surviving tier of
    a partition failed checksum verification and was quarantined.  A
    corrupt copy with a clean copy behind it is quarantined silently and
    recovery falls through to the next tier.  Subclasses
    :class:`DataLossError`: to the recovery ladder the partition is gone
    either way, but the type distinguishes "places died" from "bits
    rotted" for reports and campaigns.
    """


class DanglingReferenceError(RuntimeFault):
    """A GlobalRef / PlaceLocalHandle was resolved on the wrong or a dead place."""


class SpareExhaustedError(RuntimeFault):
    """Replace-redundant restoration requested more spare places than remain."""
