"""Figure 7 — PageRank: total runtime with a single failure under the
three restoration modes (plus the non-resilient baseline).

Same protocol as Figure 5.  PageRank's checkpoint/restore overheads are
proportionally smaller (Table IV: ~10 % / ~4-10 %) because the heavy input
— the sparse link matrix — is saved read-only once, and only the small
rank vector is re-saved every checkpoint.
"""

from _restore_common import assert_shapes, run_and_report


def test_fig7_pagerank_restore_modes(benchmark):
    out = benchmark.pedantic(
        lambda: run_and_report("pagerank", "Figure 7"), rounds=1, iterations=1
    )
    assert_shapes(out)
