"""Typed engine events: the inspectable record of where virtual time went.

The engine records one event per scheduled unit of work — a transfer
served by communication resources, a bookkeeping event on the place-zero
ledger, a stable-storage disk access, a completed finish.  Unlike the
free-form ``TraceLog`` tuples, these are typed records with fixed fields,
so tools (``repro.bench.timeline``, the CLI's ``--trace-out``) can consume
them without re-deriving timings from the runtime's internals.

Events serialize to JSON-lines (one object per line, a ``kind`` field
first) and load back into the same typed records.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, IO, Iterable, List, Optional, Type, Union


@dataclass(frozen=True)
class EngineEvent:
    """Base record: a span of virtual time on some engine resource."""

    t_start: float
    t_end: float

    #: Discriminator used in JSONL serialization; set per subclass.
    kind = "event"

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": self.kind}
        record.update(asdict(self))
        return record


@dataclass(frozen=True)
class TransferEvent(EngineEvent):
    """One point-to-point transfer between places.

    ``route`` distinguishes the contention model that served it: ``"p2p"``
    (per-place duplex link), ``"shm"`` (intra-node shared memory through
    the destination's server) or ``"nic"`` (shared per-node NIC pair).
    ``t_start`` is the request time; the gap to ``t_end`` includes any
    queueing behind earlier transfers.
    """

    src: int = -1
    dst: int = -1
    nbytes: float = 0.0
    route: str = "p2p"

    kind = "transfer"


@dataclass(frozen=True)
class ServiceEvent(EngineEvent):
    """One request served by a named serial resource (e.g. the ledger)."""

    resource: str = ""

    kind = "service"


@dataclass(frozen=True)
class DiskEvent(EngineEvent):
    """One stable-storage access (the shared distributed-filesystem disk)."""

    place: int = -1
    nbytes: float = 0.0
    op: str = "write"

    kind = "disk"


@dataclass(frozen=True)
class FinishEvent(EngineEvent):
    """One completed finish (or collective) with its timing decomposition."""

    label: str = ""
    n_tasks: int = 0
    task_end_max: float = 0.0
    ledger_ready: float = 0.0

    kind = "finish"


_EVENT_TYPES: Dict[str, Type[EngineEvent]] = {
    cls.kind: cls for cls in (TransferEvent, ServiceEvent, DiskEvent, FinishEvent)
}


def event_from_record(record: Dict[str, Any]) -> EngineEvent:
    """Rebuild a typed event from its JSONL record."""
    data = dict(record)
    kind = data.pop("kind", "event")
    cls = _EVENT_TYPES.get(kind, EngineEvent)
    if cls is EngineEvent:
        data = {k: data[k] for k in ("t_start", "t_end") if k in data}
    return cls(**data)


class Timeline:
    """Append-only log of typed engine events.

    Disabled by default (recording every transfer of a benchmark sweep
    would dominate its runtime); the runtime's ``trace`` flag or the CLI's
    ``--trace-out`` enables it.
    """

    def __init__(self, enabled: bool = False):
        self._enabled = bool(enabled)
        self._toggle_listeners: List = []
        self.events: List[EngineEvent] = []

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        for listener in self._toggle_listeners:
            listener(self._enabled)

    def on_toggle(self, listener) -> None:
        """Register ``listener(enabled)``; called now and on every toggle.

        Lets hot paths install per-event hooks only while recording is on
        (e.g. the scheduler's ledger hook, whose absence unlocks the
        batched ledger fast path).
        """
        self._toggle_listeners.append(listener)
        listener(self._enabled)

    def record(self, event: EngineEvent) -> None:
        """Append an event (no-op while disabled)."""
        if self.enabled:
            self.events.append(event)

    def of_kind(self, kind: str) -> List[EngineEvent]:
        """All recorded events with the given ``kind``."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- JSONL ---------------------------------------------------------------

    def dump_jsonl(self, path_or_file: Union[str, IO[str]]) -> int:
        """Write all events as JSON lines; returns the number written."""
        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as fh:
                return self.dump_jsonl(fh)
        for event in self.events:
            path_or_file.write(json.dumps(event.to_record()) + "\n")
        return len(self.events)


def load_jsonl(path_or_file: Union[str, IO[str]]) -> List[EngineEvent]:
    """Load typed events back from a JSONL dump."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as fh:
            return load_jsonl(fh)
    events: List[EngineEvent] = []
    for line in path_or_file:
        line = line.strip()
        if line:
            events.append(event_from_record(json.loads(line)))
    return events


def iter_spans(
    events: Iterable[EngineEvent], kind: Optional[str] = None
) -> Iterable[EngineEvent]:
    """Filter helper used by the bench tooling."""
    for event in events:
        if kind is None or event.kind == kind:
            yield event
