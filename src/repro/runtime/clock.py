"""Per-place virtual clocks.

The simulator computes real numerical results but charges *time* on virtual
clocks, one per place, so that timing is deterministic and reflects the
modeled cluster rather than the host laptop.  A bulk-synchronous GML phase
advances the clocks of the participating places independently and then
synchronizes them at the finish join.
"""

from __future__ import annotations

from typing import Dict, Iterable


class VirtualClock:
    """Tracks one virtual timeline per place id.

    Times are seconds (floats) since runtime start.  New place ids (spares,
    elastic places) start at the current global maximum so a freshly created
    place cannot appear to be "in the past".
    """

    #: False while every timeline has only ever held 0.0 — the class-level
    #: default also covers clocks unpickled from older captures.  Combined
    #: with ``CostModel.is_zero`` this licenses the zero-time fast paths:
    #: if no charge can be nonzero and nothing external (a detector
    #: heartbeat, a service stream arrival) has moved a clock, every
    #: ``now()`` is provably 0.0 and the bookkeeping that shuffles those
    #: zeros around can be skipped wholesale.  Monotone: any nonzero store
    #: flips it permanently.
    _moved = False

    def __init__(self) -> None:
        self._times: Dict[int, float] = {}
        #: Straggler slowdown factors: work charged to these places takes
        #: ``factor`` times longer (message waits are *not* slowed — a slow
        #: node computes slowly but the network still runs at full speed).
        self._slowdown: Dict[int, float] = {}

    def register(self, place_id: int, at_time: float = 0.0) -> None:
        """Start a timeline for *place_id* at *at_time*."""
        if place_id in self._times:
            raise ValueError(f"place {place_id} already registered")
        if at_time:
            self._moved = True
        self._times[place_id] = at_time

    def now(self, place_id: int) -> float:
        """Current virtual time at *place_id*."""
        return self._times[place_id]

    def set_slowdown(self, place_id: int, factor: float) -> None:
        """Mark *place_id* a straggler: its work charges stretch by *factor*."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        if factor == 1.0:
            self._slowdown.pop(place_id, None)
        else:
            self._slowdown[place_id] = factor

    def slowdown(self, place_id: int) -> float:
        """The straggler factor of a place (1.0 = full speed)."""
        return self._slowdown.get(place_id, 1.0)

    def advance(self, place_id: int, seconds: float) -> float:
        """Charge *seconds* of work to *place_id*'s timeline.

        A straggler's charge is stretched by its slowdown factor.
        """
        if seconds == 0.0:
            # Zero-rate cost models charge 0.0 everywhere; adding 0.0 to a
            # non-negative timeline is a bitwise no-op, so skip the store.
            return self._times[place_id]
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        if self._slowdown:
            seconds *= self._slowdown.get(place_id, 1.0)
        self._moved = True
        self._times[place_id] += seconds
        return self._times[place_id]

    def set(self, place_id: int, time: float) -> None:
        """Force a timeline to *time* (runtime-internal: used by the finish
        engine to start concurrent tasks from the phase-start time even
        though the interpreter runs them one after another)."""
        if time:
            self._moved = True
        self._times[place_id] = time

    def set_at_least(self, place_id: int, time: float) -> float:
        """Move *place_id* forward to *time* if it is behind (message wait)."""
        if time > self._times[place_id]:
            self._moved = True
            self._times[place_id] = time
        return self._times[place_id]

    def barrier(self, place_ids: Iterable[int]) -> float:
        """Synchronize the given places to their common maximum time."""
        ids = list(place_ids)
        if not ids:
            return 0.0
        t = max(self._times[i] for i in ids)
        if t:
            self._moved = True
        for i in ids:
            self._times[i] = t
        return t

    def global_time(self) -> float:
        """Maximum time across all registered places."""
        return max(self._times.values()) if self._times else 0.0

    def snapshot(self) -> Dict[int, float]:
        """Copy of all timelines (for assertions in tests)."""
        return dict(self._times)

    def __contains__(self, place_id: int) -> bool:
        return place_id in self._times

    def __repr__(self) -> str:
        return f"VirtualClock({self._times})"
