"""Sweep drivers regenerating the paper's experiments.

Each function runs one experiment protocol over a list of place counts and
returns structured results; the ``benchmarks/`` targets print them as
paper-style tables/series and compare against the paper's numbers.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.nonresilient import (
    CGNonResilient,
    GnmfNonResilient,
    LinRegNonResilient,
    LogRegNonResilient,
    PageRankNonResilient,
)
from repro.apps.resilient import (
    CGResilient,
    GnmfResilient,
    LinRegResilient,
    LogRegResilient,
    PageRankResilient,
)
from repro.bench import calibration
from repro.resilience.executor import (
    ExecutionReport,
    IterativeExecutor,
    RestoreMode,
)
from repro.runtime.factory import make_runtime

#: app name → (non-resilient class, resilient class, workload factory, cost factory)
APP_REGISTRY = {
    "linreg": (
        LinRegNonResilient,
        LinRegResilient,
        calibration.regression_bench_workload,
        calibration.regression_cost,
    ),
    "logreg": (
        LogRegNonResilient,
        LogRegResilient,
        calibration.regression_bench_workload,
        calibration.regression_cost,
    ),
    "pagerank": (
        PageRankNonResilient,
        PageRankResilient,
        calibration.pagerank_bench_workload,
        calibration.pagerank_cost,
    ),
    # Extension application (not in the paper's evaluation).
    "gnmf": (
        GnmfNonResilient,
        GnmfResilient,
        calibration.gnmf_bench_workload,
        calibration.gnmf_cost,
    ),
    # Extension application: ABFT PCG, the checkpoint-free recovery app.
    "cg": (
        CGNonResilient,
        CGResilient,
        calibration.cg_bench_workload,
        calibration.cg_cost,
    ),
}


def _pmap(fn: Callable, items: Sequence, jobs: Optional[int]) -> List:
    """Map *fn* over *items*, optionally on a process pool.

    Each item is an independent simulation cell (its own Runtime), so
    fan-out cannot change any result; ``pool.map`` preserves input order,
    keeping the output identical to the serial loop.  ``jobs`` of None or
    1 stays serial — the default, and what the golden-timing tests pin.
    """
    items = list(items)
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(min(jobs, len(items))) as pool:
        return pool.map(fn, items)


@dataclass
class SweepSeries:
    """One experiment series over the place axis."""

    places: List[int]
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, name: str, value: float) -> None:
        self.values.setdefault(name, []).append(value)


def _overhead_cell(
    app_name: str, iterations: int, places: int
) -> List[Tuple[str, float]]:
    """One place-count cell of the Figs. 2-4 protocol (picklable)."""
    NonRes, _Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    out: List[Tuple[str, float]] = []
    for resilient, label in ((False, "non-resilient finish"), (True, "resilient finish")):
        rt = make_runtime(places, cost=cost_factory(), resilient=resilient)
        app = NonRes(rt, wl)
        t0 = rt.now()
        app.run()
        out.append((label, (rt.now() - t0) / iterations * 1e3))
    return out


def run_overhead_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
    jobs: Optional[int] = None,
) -> SweepSeries:
    """Figs. 2-4 protocol: time/iteration, resilient vs non-resilient X10.

    The *same* non-resilient GML benchmark runs under both runtimes (no
    checkpointing involved); the difference is pure resilient-finish
    bookkeeping.  ``jobs`` > 1 fans the place axis out over processes
    without changing any value.
    """
    places_list = places_list or calibration.places_axis()
    series = SweepSeries(places=list(places_list))
    cells = _pmap(partial(_overhead_cell, app_name, iterations), places_list, jobs)
    for cell in cells:
        for label, per_iter_ms in cell:
            series.add(label, per_iter_ms)
    return series


def _checkpoint_cell(
    app_name: str,
    iterations: int,
    checkpoint_interval: int,
    delta: bool,
    places: int,
) -> ExecutionReport:
    """One place-count cell of the Table III protocol (picklable)."""
    _NonRes, Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    rt = make_runtime(places, cost=cost_factory(), resilient=True)
    app = Res(rt, wl)
    return IterativeExecutor(
        rt, app, checkpoint_interval=checkpoint_interval, delta=delta
    ).run()


def run_checkpoint_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
    checkpoint_interval: int = 10,
    jobs: Optional[int] = None,
    delta: bool = False,
) -> SweepSeries:
    """Table III protocol: mean checkpoint time, no failures.

    30 iterations with a checkpoint every 10 → three checkpoints per run;
    read-only inputs are saved only in the first one.  ``delta`` switches
    on incremental (dirty-partition-only) checkpointing.
    """
    places_list = places_list or calibration.places_axis()
    series = SweepSeries(places=list(places_list))
    reports = _pmap(
        partial(_checkpoint_cell, app_name, iterations, checkpoint_interval, delta),
        places_list,
        jobs,
    )
    for report in reports:
        series.add("mean checkpoint (ms)", report.mean_checkpoint_time * 1e3)
        series.add("checkpoints", float(report.checkpoints))
    return series


def _checkpoint_mode_cell(
    app_name: str,
    iterations: int,
    checkpoint_interval: int,
    places: int,
) -> Dict[str, ExecutionReport]:
    """One place-count cell of the blocking-vs-overlapped protocol."""
    _NonRes, Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    out: Dict[str, ExecutionReport] = {}
    for ckpt_mode in ("blocking", "overlapped"):
        rt = make_runtime(places, cost=cost_factory(), resilient=True)
        app = Res(rt, wl)
        out[ckpt_mode] = IterativeExecutor(
            rt,
            app,
            checkpoint_interval=checkpoint_interval,
            checkpoint_mode=ckpt_mode,
        ).run()
    return out


def run_checkpoint_mode_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
    checkpoint_interval: int = 5,
    jobs: Optional[int] = None,
) -> Dict[str, object]:
    """Blocking vs overlapped checkpointing, no failures.

    The same resilient application runs twice per place count: once with
    the paper's blocking checkpoints and once with the engine's overlapped
    mode (backup transfers scheduled on the communication resources
    concurrently with the next iterations' compute).  The series report
    the checkpoint *stall* — the time the application was actually blocked
    by checkpointing — and the end-to-end total, per mode.

    Returns ``{"series": SweepSeries, "reports": {mode: {places: report}}}``.
    """
    places_list = places_list or calibration.places_axis()
    series = SweepSeries(places=list(places_list))
    reports: Dict[str, Dict[int, ExecutionReport]] = {
        "blocking": {},
        "overlapped": {},
    }
    cells = _pmap(
        partial(_checkpoint_mode_cell, app_name, iterations, checkpoint_interval),
        places_list,
        jobs,
    )
    for places, cell in zip(places_list, cells):
        for ckpt_mode in ("blocking", "overlapped"):
            report = cell[ckpt_mode]
            series.add(f"{ckpt_mode} stall (ms)", report.checkpoint_stall_time * 1e3)
            series.add(f"{ckpt_mode} total (s)", report.total_time)
            reports[ckpt_mode][places] = report
    return {"series": series, "reports": reports}


@dataclass
class RestoreRunResult:
    """One Fig. 5-7 data point: a full run with one injected failure."""

    places: int
    mode: str
    report: ExecutionReport

    @property
    def total_s(self) -> float:
        return self.report.total_time


def _restore_cell(
    app_name: str,
    iterations: int,
    checkpoint_interval: int,
    failure_iteration: int,
    mode_values: Tuple[str, ...],
    places: int,
) -> Dict[str, object]:
    """One place-count cell of the Figs. 5-7 protocol (picklable)."""
    NonRes, Res, wl_factory, cost_factory = APP_REGISTRY[app_name]
    wl = wl_factory(iterations)
    victim = places // 2  # a mid-axis non-zero place
    reports: Dict[str, ExecutionReport] = {}
    for mode_value in mode_values:
        mode = RestoreMode(mode_value)
        spares = 1 if mode == RestoreMode.REPLACE_REDUNDANT else 0
        rt = make_runtime(places, cost=cost_factory(), resilient=True, spares=spares)
        app = Res(rt, wl)
        rt.injector.kill_at_iteration(victim, iteration=failure_iteration)
        reports[mode_value] = IterativeExecutor(
            rt, app, checkpoint_interval=checkpoint_interval, mode=mode
        ).run()
    # Non-resilient, no-failure baseline.
    rt = make_runtime(places, cost=cost_factory(), resilient=False)
    app = NonRes(rt, wl)
    t0 = rt.now()
    app.run()
    return {"reports": reports, "baseline": rt.now() - t0}


def run_restore_sweep(
    app_name: str,
    places_list: Optional[List[int]] = None,
    iterations: int = 30,
    checkpoint_interval: int = 10,
    failure_iteration: int = 15,
    modes: Optional[List[RestoreMode]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, SweepSeries]:
    """Figs. 5-7 protocol: total runtime for 30 iterations with a single
    place failure at iteration 15 and checkpoints every 10 iterations,
    under each restoration mode, plus the non-resilient no-failure
    baseline.

    Returns ``{series_label: SweepSeries}`` with one series per mode; the
    per-point ExecutionReports (for Table IV) ride along in ``reports``.
    """
    places_list = places_list or calibration.places_axis()
    modes = modes or [
        RestoreMode.SHRINK_REBALANCE,
        RestoreMode.SHRINK,
        RestoreMode.REPLACE_REDUNDANT,
    ]
    mode_values = tuple(m.value for m in modes)

    series = SweepSeries(places=list(places_list))
    reports: Dict[str, Dict[int, ExecutionReport]] = {m.value: {} for m in modes}

    cells = _pmap(
        partial(
            _restore_cell,
            app_name,
            iterations,
            checkpoint_interval,
            failure_iteration,
            mode_values,
        ),
        places_list,
        jobs,
    )
    for places, cell in zip(places_list, cells):
        for mode_value in mode_values:
            report = cell["reports"][mode_value]
            series.add(mode_value, report.total_time)
            reports[mode_value][places] = report
        series.add("non-resilient (no failure)", cell["baseline"])

    return {"series": series, "reports": reports}


def table4_from_reports(
    reports: Dict[str, Dict[int, ExecutionReport]], places: int = 44
) -> Dict[str, Dict[str, float]]:
    """Table IV: C% and R% of total time at the given place count."""
    out: Dict[str, Dict[str, float]] = {}
    for mode, by_places in reports.items():
        report = by_places[places]
        out[mode] = {
            "C%": report.checkpoint_pct,
            "R%": report.restore_pct,
        }
    return out
