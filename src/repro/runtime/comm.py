"""Collective communication with modeled timing.

GML's multi-place operations move data in three patterns, all reproduced
here with explicit virtual-time models:

* **tree broadcast** — ``DupVector.sync()`` ships one place's copy to every
  other place; GML uses a binomial tree, so cost grows as
  ``log2(P) * (latency + bytes/bw)``;
* **flat gather** — ``DistVector.copyTo(local)`` pulls every segment to one
  place, which absorbs the messages serially (cost grows linearly in P);
* **tree reduce / allreduce** — dot products and gradient sums.

Each collective is an X10 *finish* under the hood, so under resilience it
posts spawn/termination events to the place-zero ledger exactly like
:meth:`repro.runtime.runtime.Runtime.finish_all` does — the join and the
ledger wait are completed by the runtime's engine
(:meth:`~repro.engine.scheduler.Scheduler.complete_finish`) rather than
re-derived here.

These helpers only account *time and liveness*; the caller (the matrix
layer) performs the actual NumPy data movement between heaps.  They raise
``DeadPlaceException`` when a participating place is dead.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.runtime.exceptions import (
    CommTimeoutError,
    DeadPlaceException,
    MultipleException,
)
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime
from repro.util.validation import check_index


def check_group_alive(rt: Runtime, group: PlaceGroup) -> None:
    """Raise for any dead member of *group* (before moving any data)."""
    alive = rt._alive
    dead = [p.id for p in group if not alive.get(p.id, False)]
    if len(dead) == 1:
        raise DeadPlaceException(dead[0])
    if dead:
        raise MultipleException([DeadPlaceException(d) for d in dead])


def _edge_fault(
    rt: Runtime, src_id: int, dst_id: int, t_send: float, nbytes: float
) -> Tuple[float, float]:
    """Transient-fault outcome of one collective edge.

    Returns ``(wait, extra_delay)``: *wait* is sender-side time lost to
    retransmissions before the successful attempt (zero on a reliable
    network — the fault-free timing stays bit-exact), *extra_delay* is
    in-flight jitter on the delivered copy.  A duplicated delivery burns
    receive-side server time but is suppressed (at-most-once).  Raises
    :class:`CommTimeoutError` when the retransmission budget is exhausted.
    """
    faults = rt.faults
    if faults is None:
        return 0.0, 0.0
    policy = rt.retry_policy
    wait = 0.0
    attempt = 0
    while True:
        fate = faults.fate(src_id, dst_id, t_send + wait)
        if fate.delivered:
            if fate.duplicated:
                rt.engine.resource(("srv", dst_id)).acquire(
                    t_send + wait, rt.cost.message(0)
                )
            return wait, fate.extra_delay
        if attempt >= policy.max_retries:
            faults.timeouts += 1
            raise CommTimeoutError(dst_id, retries=attempt)
        wait += policy.rto(attempt, rt.cost, nbytes)
        attempt += 1
        faults.retransmissions += 1


def _finish_phase(
    rt: Runtime,
    label: str,
    t_start: float,
    task_ends: List[float],
    n_tasks: int,
) -> float:
    """Join + ledger accounting shared by all collectives.

    The driver serially absorbs one termination message per task; under
    resilience the phase additionally waits for the ledger to drain two
    events per task (spawn + termination).  Both are scheduled by the
    engine; this is the same completion path ``finish_tasks`` uses.
    """
    arrivals = None
    if rt.resilient:
        latency = rt.cost.latency
        arrivals = [t_start + latency] * n_tasks
        arrivals += [t + latency for t in task_ends]
    report = rt.engine.complete_finish(rt, label, t_start, task_ends, n_tasks, arrivals)
    return report.end


def _zero_collective(
    rt: Runtime, label: str, size: int, n_edges: int, scaled_bytes: float
) -> float:
    """Zero-time completion shared by the collective fast paths.

    Every binomial/flat pattern over a *size*-place group moves exactly
    *n_edges* payload messages and completes a *size*-task finish; under
    :meth:`~repro.engine.scheduler.Scheduler.zero_fast` all its timing
    math lands on 0.0, so only the stats trail remains.  The byte counter
    accumulates by repeated addition, bit-identical to the per-edge loop.
    """
    stats = rt.stats
    for _ in range(n_edges):
        stats.messages += 1
        stats.bytes_sent += scaled_bytes
    rt.engine.complete_finish_zero(
        rt, label, size, size, 2 * size if rt.resilient else 0
    )
    return 0.0


def point_to_point(rt: Runtime, src_id: int, dst_id: int, nbytes: float) -> float:
    """One payload message from *src* to *dst*; returns arrival time.

    The receive is served by the destination's communication server
    (concurrent with its compute, serialized against other transfers).
    """
    rt.check_alive(src_id)
    rt.check_alive(dst_id)
    t_arrive = rt.transfer(src_id, dst_id, nbytes, rt.clock.now(src_id))
    rt.stats.messages += 1
    rt.stats.bytes_sent += rt.cost.scaled_bytes(nbytes)
    return t_arrive


def tree_broadcast(
    rt: Runtime,
    group: PlaceGroup,
    root_index: int,
    nbytes: float,
    label: str = "bcast",
) -> float:
    """Binomial-tree broadcast of *nbytes* from the group's *root_index*.

    Returns the finish completion time at the driver.
    """
    check_index(root_index, group.size, "root_index")
    check_group_alive(rt, group)
    clock, cost = rt.clock, rt.cost
    size = group.size
    if rt.engine.zero_fast():
        return _zero_collective(rt, label, size, size - 1, cost.scaled_bytes(nbytes))
    t_start = clock.now(rt.DRIVER_ID)

    # Virtual ranks: rank 0 = root; rank r lives at group index
    # (root_index + r) % size.  Round k: ranks < 2^k send to rank + 2^k.
    def pid(rank: int) -> int:
        return group[(root_index + rank) % size].id

    ready = {0: max(clock.now(pid(0)), t_start)}
    span = 1
    while span < size:
        for rank in range(span):
            peer = rank + span
            if peer >= size:
                break
            t_send = ready[rank]
            w, extra = _edge_fault(rt, pid(rank), pid(peer), t_send, nbytes)
            t_arrive = max(t_send + w, clock.now(pid(peer))) + cost.message(nbytes) + extra
            ready[peer] = t_arrive
            ready[rank] = t_send + w + cost.message(nbytes)  # sender busy per send
            rt.stats.messages += 1
            rt.stats.bytes_sent += cost.scaled_bytes(nbytes)
        span *= 2
    for rank, t in ready.items():
        clock.set_at_least(pid(rank), t)

    task_ends = [ready[r] for r in range(size)]
    return _finish_phase(rt, label, t_start, task_ends, n_tasks=size)


def flat_gather(
    rt: Runtime,
    group: PlaceGroup,
    root_index: int,
    nbytes_each: float,
    label: str = "gather",
) -> float:
    """Flat gather: every place sends *nbytes_each* to the root serially.

    The root absorbs one message per sender, one after another — this is the
    linear-in-P pattern of GML's ``copyTo`` (gather into a local vector).
    Returns the finish completion time at the driver.
    """
    check_index(root_index, group.size, "root_index")
    check_group_alive(rt, group)
    clock, cost = rt.clock, rt.cost
    if rt.engine.zero_fast():
        return _zero_collective(
            rt, label, group.size, group.size - 1, cost.scaled_bytes(nbytes_each)
        )
    root_id = group[root_index].id
    t_start = clock.now(rt.DRIVER_ID)

    t_root = max(clock.now(root_id), t_start)
    task_ends = []
    senders = [(clock.now(p.id), p.id) for p in group if p.id != root_id]
    for t_sender, sender_id in sorted(senders):
        w, extra = _edge_fault(rt, sender_id, root_id, max(t_sender, t_start), nbytes_each)
        send_done = max(t_sender, t_start) + w + cost.latency + extra
        t_root = max(t_root, send_done) + cost.byte_time * cost.scaled_bytes(nbytes_each)
        clock.set_at_least(sender_id, send_done)
        task_ends.append(t_root)
        rt.stats.messages += 1
        rt.stats.bytes_sent += cost.scaled_bytes(nbytes_each)
    clock.set_at_least(root_id, t_root)
    task_ends.append(t_root)
    return _finish_phase(rt, label, t_start, task_ends, n_tasks=group.size)


def tree_reduce(
    rt: Runtime,
    group: PlaceGroup,
    root_index: int,
    nbytes: float,
    reduce_flops: float = 0.0,
    label: str = "reduce",
) -> float:
    """Binomial-tree reduction of *nbytes* payloads toward the root.

    Each merge step receives a peer's payload and folds it in at
    *reduce_flops* cost.  Returns the finish completion time at the driver.
    """
    check_index(root_index, group.size, "root_index")
    check_group_alive(rt, group)
    clock, cost = rt.clock, rt.cost
    size = group.size
    if rt.engine.zero_fast():
        return _zero_collective(rt, label, size, size - 1, cost.scaled_bytes(nbytes))
    t_start = clock.now(rt.DRIVER_ID)

    def pid(rank: int) -> int:
        return group[(root_index + rank) % size].id

    ready = {r: max(clock.now(pid(r)), t_start) for r in range(size)}
    span = 1
    while span < size:
        for rank in range(0, size, span * 2):
            peer = rank + span
            if peer >= size:
                continue
            w, extra = _edge_fault(rt, pid(peer), pid(rank), ready[peer], nbytes)
            t_arrive = max(ready[peer] + w, ready[rank]) + cost.message(nbytes) + extra
            ready[rank] = t_arrive + cost.flops(reduce_flops)
            ready[peer] = ready[peer] + w + cost.message(0)
            rt.stats.messages += 1
            rt.stats.bytes_sent += cost.scaled_bytes(nbytes)
        span *= 2
    for rank, t in ready.items():
        clock.set_at_least(pid(rank), t)

    task_ends = [ready[r] for r in range(size)]
    return _finish_phase(rt, label, t_start, task_ends, n_tasks=size)


def tree_allreduce(
    rt: Runtime,
    group: PlaceGroup,
    nbytes: float,
    reduce_flops: float = 0.0,
    label: str = "allreduce",
) -> float:
    """Reduce to the group's first place, then broadcast back out."""
    tree_reduce(rt, group, 0, nbytes, reduce_flops, label=label + ":reduce")
    return tree_broadcast(rt, group, 0, nbytes, label=label + ":bcast")
