"""Checkpoint-free recovery: the ReconstructionStore and the executor's
``recovery="reconstruct"`` ladder, including multi-place simultaneous
failure bursts and the fallback to checkpoint/restart."""

import numpy as np
import pytest

from repro.apps.data import CGWorkload
from repro.apps.nonresilient.cg import CGNonResilient
from repro.apps.resilient.cg import CGResilient
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.placement import RingPlacement, SpreadPlacement
from repro.resilience.reconstruct import ReconstructionStore
from repro.runtime import CostModel, Runtime
from repro.runtime.exceptions import DataLossError

WL = CGWorkload(rows_per_place=24, stride=7, iterations=12)


def make_rt(n=6, spares=0):
    return Runtime(n, cost=CostModel.zero(), resilient=True, spares=spares)


def baseline(places=6, iterations=12):
    rt = Runtime(places, cost=CostModel.zero())
    wl = CGWorkload(rows_per_place=24, stride=7, iterations=iterations)
    app = CGNonResilient(rt, wl)
    app.run()
    return app.solution()


def run_reconstruct(rt, app, **kw):
    kw.setdefault("checkpoint_interval", 4)
    kw.setdefault("mode", RestoreMode.REPLACE_REDUNDANT)
    kw.setdefault("replicas", 2)
    kw.setdefault("placement", SpreadPlacement())
    return IterativeExecutor(rt, app, recovery="reconstruct", **kw).run()


class TestStore:
    def test_publish_commits_a_generation(self):
        rt = make_rt(4)
        app = CGResilient(rt, WL)
        store = ReconstructionStore(rt, replicas=2, placement=SpreadPlacement())
        assert not store.ready
        app.publish_redundant(store, iteration=0)
        assert store.ready
        assert store.statics_saved
        assert store.state_iteration == 0
        assert store.redundancy_bytes > 0
        assert store.placement_ok()
        assert store.fully_redundant()

    def test_save_static_is_idempotent(self):
        rt = make_rt(4)
        app = CGResilient(rt, WL)
        store = ReconstructionStore(rt, replicas=1)
        store.save_static(app.b)
        published = store.redundancy_bytes
        store.save_static(app.b)
        assert store.redundancy_bytes == published

    def test_publish_supersedes_previous_generation(self):
        rt = make_rt(4)
        app = CGResilient(rt, WL)
        store = ReconstructionStore(rt, replicas=1)
        app.publish_redundant(store, iteration=0)
        app.step()
        app.publish_redundant(store, iteration=1)
        assert store.state_iteration == 1

    def test_invalidate_empties_the_store(self):
        rt = make_rt(4)
        app = CGResilient(rt, WL)
        store = ReconstructionStore(rt, replicas=1)
        app.publish_redundant(store, iteration=0)
        store.invalidate()
        assert not store.ready
        assert store.state_iteration == -1
        # The next publish rebuilds everything, statics included.
        app.publish_redundant(store, iteration=3)
        assert store.ready and store.statics_saved

    def test_burst_beyond_redundancy_raises_data_loss(self):
        rt = make_rt(6, spares=2)
        app = CGResilient(rt, WL)
        store = ReconstructionStore(rt, replicas=1, placement=RingPlacement())
        app.publish_redundant(store, iteration=0)
        # Ring replicas sit at offset +1: killing an adjacent pair wipes
        # both copies of the first victim's partitions.
        rt.kill(2)
        rt.kill(3)
        spares = [rt.claim_spare(), rt.claim_spare()]
        group = app.places
        new_group = group.replace(group[2], spares[0]).replace(group[3], spares[1])
        with pytest.raises(DataLossError):
            app.reconstruct(new_group, store, [2, 3])


class TestExecutorReconstruct:
    def test_single_failure_no_rollback(self):
        ref = baseline()
        rt = make_rt(6, spares=1)
        app = CGResilient(rt, WL)
        rt.injector.kill_at_iteration(3, iteration=6)
        report = run_reconstruct(rt, app)
        assert report.reconstructions == 1
        assert report.reconstructed_partitions == 1
        assert report.restores == 0
        assert report.fallback_restores == 0
        assert report.restored_iterations == []
        assert report.repaired_static_keys > 0
        assert np.allclose(app.solution(), ref, atol=1e-8)

    def test_trajectory_bit_exact_after_reconstruction(self):
        # Stronger than the 1e-8 acceptance bar: the scalar trajectory is
        # bit-identical because r/p/z and every reduction are restored or
        # recomputed exactly; only the re-solved x rows carry ~1e-16.
        rt0 = Runtime(6, cost=CostModel.zero())
        ref = CGNonResilient(rt0, WL)
        ref.run()
        rt = make_rt(6, spares=1)
        app = CGResilient(rt, WL)
        rt.injector.kill_at_iteration(2, iteration=5)
        run_reconstruct(rt, app)
        assert app.rz == ref.rz
        assert np.allclose(app.solution(), ref.solution(), atol=1e-12)

    @pytest.mark.parametrize("victims", [(2, 3), (1, 4)], ids=["adjacent", "spread"])
    def test_simultaneous_pair_recovered(self, victims):
        ref = baseline()
        rt = make_rt(6, spares=2)
        app = CGResilient(rt, WL)
        for victim in victims:
            rt.injector.kill_at_iteration(victim, iteration=7)
        report = run_reconstruct(rt, app)
        assert report.reconstructions == 1
        assert report.reconstructed_partitions == 2
        assert report.restored_iterations == []
        assert np.allclose(app.solution(), ref, atol=1e-8)

    def test_simultaneous_rack_recovered_with_three_replicas(self):
        ref = baseline(places=8)
        rt = make_rt(8, spares=3)
        app = CGResilient(rt, WL)
        for victim in (3, 4, 5):
            rt.injector.kill_at_iteration(victim, iteration=6)
        report = run_reconstruct(rt, app, replicas=3)
        assert report.reconstructions == 1
        assert report.reconstructed_partitions == 3
        assert report.restored_iterations == []
        assert np.allclose(app.solution(), ref, atol=1e-8)

    def test_burst_beyond_redundancy_falls_back_to_checkpoint(self):
        # replicas=1 + an adjacent pair under ring placement co-kills a
        # partition's only copies: reconstruction must abort and the
        # classic rollback must finish the run.
        ref = baseline()
        rt = make_rt(6, spares=2)
        app = CGResilient(rt, WL)
        for victim in (2, 3):
            rt.injector.kill_at_iteration(victim, iteration=6)
        # The checkpoint tier shares the ring/replicas=1 shape, so its
        # in-memory copies of the victim partition co-died too — stable
        # storage is what makes the rollback recoverable at all here.
        report = run_reconstruct(
            rt,
            app,
            replicas=1,
            placement=RingPlacement(),
            checkpoint_interval=3,
            stable_fallback=True,
        )
        assert report.reconstructions == 0
        assert report.fallback_restores == 1
        assert report.restores == 1
        assert report.restored_iterations  # rolled back: work was lost
        assert np.allclose(app.solution(), ref, atol=1e-8)

    def test_kill_during_reconstruct_retries(self):
        ref = baseline()
        rt = make_rt(6, spares=2)
        app = CGResilient(rt, WL)
        rt.injector.kill_at_iteration(2, iteration=5)
        rt.injector.kill_during(4, context="reconstruct")
        report = run_reconstruct(rt, app)
        assert report.reconstructions == 1
        assert report.aborted_reconstructions >= 1
        assert report.reconstructed_partitions == 2
        assert report.restored_iterations == []
        assert np.allclose(app.solution(), ref, atol=1e-8)

    def test_no_spares_falls_back_to_shrink(self):
        # Reconstruction preserves the group width by definition; with no
        # spare to install it must hand over to the shrink fallback.
        ref = baseline()
        rt = make_rt(6, spares=0)
        app = CGResilient(rt, WL)
        rt.injector.kill_at_iteration(3, iteration=6)
        report = IterativeExecutor(
            rt,
            app,
            checkpoint_interval=4,
            mode=RestoreMode.REPLACE_REDUNDANT,
            spare_fallback=RestoreMode.SHRINK_REBALANCE,
            replicas=2,
            placement=SpreadPlacement(),
            recovery="reconstruct",
        ).run()
        assert report.reconstructions == 0
        assert report.fallback_restores == 1
        assert report.final_group_size == 5
        assert np.allclose(app.solution(), ref, atol=1e-6)

    def test_sequential_failures_two_reconstructions(self):
        ref = baseline()
        rt = make_rt(6, spares=2)
        app = CGResilient(rt, WL)
        rt.injector.kill_at_iteration(2, iteration=4)
        rt.injector.kill_at_iteration(4, iteration=8)
        report = run_reconstruct(rt, app)
        assert report.reconstructions == 2
        assert report.restored_iterations == []
        assert np.allclose(app.solution(), ref, atol=1e-8)

    def test_reconstruct_mode_requires_capable_app(self):
        from repro.apps.data import RegressionWorkload
        from repro.apps.resilient import LinRegResilient

        rt = make_rt(4)
        app = LinRegResilient(
            rt, RegressionWorkload(features=8, examples_per_place=32, iterations=4)
        )
        with pytest.raises(ValueError):
            IterativeExecutor(rt, app, recovery="reconstruct")

    def test_unknown_recovery_mode_rejected(self):
        rt = make_rt(4)
        app = CGResilient(rt, WL)
        with pytest.raises(ValueError):
            IterativeExecutor(rt, app, recovery="abft")
