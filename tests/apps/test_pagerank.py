"""Tests for the PageRank application against a NumPy power iteration."""

import numpy as np
import pytest

from repro.apps.data import PageRankWorkload
from repro.apps.nonresilient.pagerank import PageRankNonResilient
from repro.apps.resilient.pagerank import PageRankResilient
from repro.resilience.executor import IterativeExecutor, NonResilientExecutor
from repro.runtime import CostModel, Runtime


def small_wl(iterations=10):
    return PageRankWorkload(
        nodes_per_place=40, out_degree=4, iterations=iterations, blocks_per_place=2
    )


def make_rt(n=3):
    return Runtime(n, cost=CostModel.zero())


def numpy_pagerank(G, alpha, iterations):
    n = G.shape[0]
    p = np.full(n, 1.0 / n)
    for _ in range(iterations):
        # U = (1/n) * ones, so (1-α)·E·UᵀP = (1-α)/n · sum(P) replicated.
        p = alpha * (G @ p) + (1 - alpha) * (p.sum() / n)
    return p


class TestAlgorithm:
    def test_matches_numpy_power_iteration(self):
        rt = make_rt(3)
        wl = small_wl(iterations=12)
        app = PageRankNonResilient(rt, wl)
        G = app.G.to_dense().data
        app.run()
        assert np.allclose(app.ranks(), numpy_pagerank(G, wl.alpha, 12), atol=1e-12)

    def test_rank_mass_conserved(self):
        rt = make_rt(3)
        app = PageRankNonResilient(rt, small_wl(iterations=15))
        app.run()
        assert app.ranks().sum() == pytest.approx(1.0, abs=1e-9)

    def test_converges(self):
        rt = make_rt(2)
        app = PageRankNonResilient(rt, small_wl(iterations=40))
        app.step()
        prev = app.ranks()
        deltas = []
        for _ in range(39):
            app.step()
            cur = app.ranks()
            deltas.append(np.abs(cur - prev).max())
            prev = cur
        assert deltas[-1] < deltas[0]
        assert deltas[-1] < 1e-6

    def test_replicas_consistent_after_iterations(self):
        rt = make_rt(4)
        app = PageRankNonResilient(rt, small_wl(iterations=5))
        app.run()
        assert app.P.replicas_consistent(1e-15)

    def test_resilient_equals_nonresilient_without_failure(self):
        wl = small_wl(iterations=8)
        rt1, rt2 = make_rt(3), make_rt(3)
        a = PageRankNonResilient(rt1, wl)
        NonResilientExecutor(rt1, a).run()
        b = PageRankResilient(rt2, wl)
        IterativeExecutor(rt2, b, checkpoint_interval=3).run()
        assert np.array_equal(a.ranks(), b.ranks())

    def test_uses_fewer_finishes_than_linreg(self):
        # The paper attributes PageRank's low resilient overhead to its
        # lower finish count per iteration — verify that structural claim.
        from repro.apps.data import RegressionWorkload
        from repro.apps.nonresilient.linreg import LinRegNonResilient

        rt_a = make_rt(2)
        pr = PageRankNonResilient(rt_a, small_wl())
        before = rt_a.stats.finishes
        pr.step()
        pr_finishes = rt_a.stats.finishes - before

        rt_b = make_rt(2)
        lin = LinRegNonResilient(
            rt_b, RegressionWorkload(features=8, examples_per_place=40, iterations=1)
        )
        before = rt_b.stats.finishes
        lin.step()
        lin_finishes = rt_b.stats.finishes - before
        assert pr_finishes < lin_finishes
