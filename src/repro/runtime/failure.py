"""Fail-stop failure injection, including correlated chaos models.

The paper's experiments kill one place at a chosen iteration; the framework
must also survive arbitrary additional failures (including failures *during*
checkpoint or restore).  The injector supports:

* scripted kills — "kill place *p* before iteration *n*" or "at the *k*-th
  runtime phase" (a phase is one collective finish), which lets tests kill a
  place in the middle of an iteration or mid-checkpoint;
* **context-triggered** kills — "kill place *p* during the *n*-th
  checkpoint (or restore)": the executor announces entering/leaving those
  phases, and the kill fires at the first finish inside the matching one;
* random kills drawn from an exponential MTTF model, as assumed by Young's
  checkpoint-interval formula;
* **correlated** burst models for the chaos campaigns: an adjacent pair of
  places dying together (the scenario that defeats the paper's double
  store) and whole-"rack" bursts where every place of a failure group dies
  at once.

Scheduling a kill of place zero (immortal by Resilient X10 assumption) or a
second kill of a place that an earlier scripted kill already condemns is
rejected with a clear error — such schedules never fire and silently turn
chaos tests into no-ops.

The injector only *decides* when a place dies; the runtime performs the kill
(destroying the heap) and surfaces ``DeadPlaceException`` at the enclosing
finish, mirroring Resilient X10 semantics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store ↔ failure)
    from repro.resilience.store import AppResilientStore

#: Context names the executor announces for ``during=`` triggers.
KILL_CONTEXTS = ("checkpoint", "restore", "reconstruct", "scrub")


@dataclass(frozen=True)
class ScriptedKill:
    """One planned failure."""

    place_id: int
    #: Fire before the executor starts this iteration (None = not used).
    iteration: Optional[int] = None
    #: Fire before the runtime executes this phase number (None = not used).
    phase: Optional[int] = None
    #: Fire once virtual global time reaches this value (None = not used).
    time: Optional[float] = None
    #: Fire at the first finish inside this executor context
    #: ("checkpoint", "restore" or "reconstruct"); see ``occurrence``.
    during: Optional[str] = None
    #: With ``during``: fire inside the *occurrence*-th entry of the context
    #: (1 = the first checkpoint/restore, 2 = the second, ...).
    occurrence: int = 1

    def __post_init__(self) -> None:
        if self.place_id == 0:
            raise ValueError(
                "cannot script a kill of place 0: Resilient X10 assumes an "
                "immortal place zero (its death aborts the whole run)"
            )
        triggers = [
            t is not None
            for t in (self.iteration, self.phase, self.time, self.during)
        ]
        if sum(triggers) != 1:
            raise ValueError(
                "exactly one of iteration/phase/time/during must be set"
            )
        if self.during is not None and self.during not in KILL_CONTEXTS:
            raise ValueError(f"during must be one of {KILL_CONTEXTS}")
        if self.occurrence < 1:
            raise ValueError("occurrence must be >= 1")


class FailureInjector:
    """Decides which places die and when.

    The runtime polls :meth:`due_at_phase` at every phase boundary and the
    executor polls :meth:`due_at_iteration` at every iteration boundary.
    The executor additionally brackets checkpoints and restores with
    :meth:`enter_context` / :meth:`exit_context` so ``during=`` kills land
    mid-protocol (while backup transfers or partition reloads are in
    flight).
    """

    def __init__(self, kills: Optional[List[ScriptedKill]] = None):
        self.kills: List[ScriptedKill] = []
        self._fired: Set[int] = set()
        self._active_contexts: List[str] = []
        self._context_counts: Dict[str, int] = {}
        for kill in kills or []:
            self.add(kill)

    @property
    def all_fired(self) -> bool:
        """True when no scripted kill is still pending (O(1) hot-path gate)."""
        return len(self._fired) >= len(self.kills)

    # -- scripting ----------------------------------------------------------

    def add(self, kill: ScriptedKill) -> "FailureInjector":
        """Schedule one validated kill (duplicates rejected).

        A place dies exactly once under fail-stop semantics: a second
        scripted kill of the same place could never fire and would silently
        weaken the schedule, so it is an error.
        """
        for existing in self.kills:
            if existing.place_id == kill.place_id:
                raise ValueError(
                    f"duplicate scripted kill of place {kill.place_id}: it is "
                    f"already condemned by {existing} and will be dead when "
                    f"this kill fires"
                )
        self.kills.append(kill)
        return self

    def kill_at_iteration(self, place_id: int, iteration: int) -> "FailureInjector":
        """Schedule *place_id* to die just before *iteration* starts."""
        return self.add(ScriptedKill(place_id=place_id, iteration=iteration))

    def kill_at_phase(self, place_id: int, phase: int) -> "FailureInjector":
        """Schedule *place_id* to die just before runtime phase *phase*."""
        return self.add(ScriptedKill(place_id=place_id, phase=phase))

    def kill_at_time(self, place_id: int, time: float) -> "FailureInjector":
        """Schedule *place_id* to die once virtual time reaches *time*."""
        return self.add(ScriptedKill(place_id=place_id, time=time))

    def kill_during(
        self, place_id: int, context: str, occurrence: int = 1
    ) -> "FailureInjector":
        """Schedule *place_id* to die inside the *occurrence*-th *context*
        ("checkpoint" or "restore")."""
        return self.add(
            ScriptedKill(place_id=place_id, during=context, occurrence=occurrence)
        )

    # -- executor context tracking -------------------------------------------

    def enter_context(self, name: str) -> None:
        """The executor is entering a checkpoint/restore protocol."""
        self._active_contexts.append(name)
        self._context_counts[name] = self._context_counts.get(name, 0) + 1

    def exit_context(self, name: str) -> None:
        """The executor left the innermost protocol context.

        Enter/exit must nest (strictly balanced, innermost-first): a
        mismatched exit means the executor's protocol bracketing is broken
        and every later ``during=`` trigger would silently fire in the
        wrong context, so it raises immediately, naming the current stack.
        """
        if not self._active_contexts:
            raise RuntimeError(
                f"exit_context({name!r}) with no context active: enter/exit "
                f"calls must be balanced (context stack is empty)"
            )
        if self._active_contexts[-1] != name:
            raise RuntimeError(
                f"exit_context({name!r}) does not match the innermost active "
                f"context {self._active_contexts[-1]!r}; current context "
                f"stack (outermost first): {self._active_contexts}"
            )
        self._active_contexts.pop()

    def _context_due(self, kill: ScriptedKill) -> bool:
        return (
            kill.during is not None
            and kill.during in self._active_contexts
            and self._context_counts.get(kill.during, 0) >= kill.occurrence
        )

    # -- polling -------------------------------------------------------------

    def _take(self, predicate) -> List[int]:
        due: List[int] = []
        for idx, kill in enumerate(self.kills):
            if idx in self._fired:
                continue
            if predicate(kill):
                self._fired.add(idx)
                due.append(kill.place_id)
        return due

    def due_at_iteration(self, iteration: int) -> List[int]:
        """Place ids that should die before this iteration."""
        return self._take(
            lambda k: k.iteration is not None and iteration >= k.iteration
        )

    def due_at_phase(self, phase: int, global_time: float) -> List[int]:
        """Place ids that should die before this phase (incl. timed and
        context-triggered kills)."""
        return self._take(
            lambda k: (k.phase is not None and phase >= k.phase)
            or (k.time is not None and global_time >= k.time)
            or self._context_due(k)
        )

    def unfired(self) -> List[ScriptedKill]:
        """Scripted kills that have not fired (yet).

        Exposed through ``ExecutionReport.pending_kills`` so tests notice
        schedules that never triggered.
        """
        return [k for i, k in enumerate(self.kills) if i not in self._fired]

    @property
    def pending(self) -> int:
        """Number of scheduled kills that have not fired yet."""
        return len(self.unfired())


class LeaseScopedInjector(FailureInjector):
    """A per-tenant injector whose clock is the lease driver's clock.

    The runtime polls ``due_at_phase`` with the *global* maximum time,
    which in a shared pool includes every other tenant's progress — a
    time-triggered kill scripted against job A's timeline would fire
    instantly just because job B ran first.  This subclass substitutes the
    owning lease's driver-local time, so ``kill_at_time`` means "at this
    point in *this job's* execution".

    Iteration / context kills are already job-local (the executor polls
    them); service fault plans use those plus lease-local timed kills, and
    never global phase triggers.
    """

    def __init__(self, runtime, lease, kills: Optional[List[ScriptedKill]] = None):
        self.runtime = runtime
        self.lease = lease
        super().__init__(kills)  # routes through add(), checking scope

    def add(self, kill: ScriptedKill) -> "FailureInjector":
        self._check_scope(kill)
        return super().add(kill)

    def _check_scope(self, kill: ScriptedKill) -> None:
        require(
            kill.place_id != self.lease.driver.id,
            f"kill targets lease driver {kill.place_id} — the per-tenant "
            f"coordinator is immortal (the lease analogue of place zero)",
        )
        require(
            kill.place_id in self.lease.ever_ids,
            f"kill targets place {kill.place_id} outside lease "
            f"{self.lease.name!r} (members {sorted(self.lease.ever_ids)}) — "
            f"a scoped injector must not reach into other tenants",
        )

    def due_at_phase(self, phase: int, global_time: float) -> List[int]:
        local_time = self.runtime.clock.now(self.lease.driver.id)
        return super().due_at_phase(phase, local_time)


@dataclass
class ExponentialFailureModel:
    """Random fail-stop model with exponential inter-failure times.

    Used by the Young's-formula utilities and by the random-failure
    integration tests.  Draws (time, victim) pairs over a given set of
    candidate places; place zero is never a victim (immortality assumption).
    """

    mttf: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ValueError("mttf must be positive")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def schedule(
        self, candidate_ids: List[int], horizon: float
    ) -> List[ScriptedKill]:
        """Sample scripted kills up to virtual time *horizon*."""
        victims = [i for i in candidate_ids if i != 0]
        if not victims:
            return []
        kills: List[ScriptedKill] = []
        t = 0.0
        remaining = list(victims)
        while remaining:
            t += float(self._rng.exponential(self.mttf))
            if t > horizon:
                break
            victim = remaining.pop(int(self._rng.integers(len(remaining))))
            kills.append(ScriptedKill(place_id=victim, time=t))
        return kills


@dataclass
class AdjacentPairFailureModel:
    """Correlated bursts: both places of an adjacent pair die *together*.

    Adjacency is positional in *candidate_ids* (the snapshot ring order) —
    exactly the correlation that destroys both copies of a partition in the
    paper's double store.  Events arrive at exponential intervals; each
    event picks one random not-yet-condemned adjacent pair (place zero
    never participates) and schedules both members at the same instant.
    """

    mttf: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ValueError("mttf must be positive")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def schedule(
        self, candidate_ids: List[int], horizon: float
    ) -> List[ScriptedKill]:
        """Sample simultaneous adjacent-pair kills up to *horizon*."""
        kills: List[ScriptedKill] = []
        condemned: Set[int] = {0}
        t = 0.0
        while True:
            pairs = [
                (a, b)
                for a, b in zip(candidate_ids, candidate_ids[1:])
                if a not in condemned and b not in condemned
            ]
            if not pairs:
                break
            t += float(self._rng.exponential(self.mttf))
            if t > horizon:
                break
            a, b = pairs[int(self._rng.integers(len(pairs)))]
            condemned.update((a, b))
            kills.append(ScriptedKill(place_id=a, time=t))
            kills.append(ScriptedKill(place_id=b, time=t))
        return kills


# -- transient faults ---------------------------------------------------------
#
# Everything below injects faults that do NOT kill places: messages that are
# dropped, duplicated or delayed, links that partition and later heal,
# stragglers, and corrupted snapshot copies.  The GASPI fault-tolerance work
# (arXiv:1505.04628) argues these — not clean crash-stops — are what a
# deployable recovery layer must absorb; the runtime pairs them with the
# heartbeat detector (``repro.runtime.detector``) and the retransmission
# machinery in ``repro.runtime.comm`` / the engine scheduler.


@dataclass(frozen=True)
class MessageFate:
    """Outcome drawn for one message transmission attempt."""

    delivered: bool
    duplicated: bool = False
    extra_delay: float = 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with exponential backoff (at-most-once).

    A sender that receives no acknowledgement retransmits after an RTO
    that doubles per attempt; after ``max_retries`` retransmissions the
    destination is declared unreachable (``CommTimeoutError``) and the
    decision escalates to the failure detector.  ``rto_seconds`` of 0
    derives the base RTO from the cost model (a few message round-trips),
    which also keeps retries free under the all-zero test cost model.
    """

    max_retries: int = 4
    rto_seconds: float = 0.0
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.rto_seconds < 0:
            raise ValueError("rto_seconds must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")

    def rto(self, attempt: int, cost, nbytes: float = 0.0) -> float:
        """Retransmission timeout before attempt ``attempt + 1``."""
        base = self.rto_seconds
        if base == 0.0:
            base = 4.0 * cost.latency + cost.byte_time * cost.scaled_bytes(nbytes)
        return base * self.backoff**attempt


@dataclass(frozen=True)
class LinkPartition:
    """A temporary network partition between two sets of places.

    Messages (and heartbeats) crossing between ``side_a`` and ``side_b``
    in either direction are lost while ``t_start <= t < t_heal``; the
    partition then *heals* — the transient scenario that a crash-only
    failure model cannot express.
    """

    side_a: frozenset
    side_b: frozenset
    t_start: float
    t_heal: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "side_a", frozenset(self.side_a))
        object.__setattr__(self, "side_b", frozenset(self.side_b))
        if self.t_heal <= self.t_start:
            raise ValueError("t_heal must be after t_start")
        if self.side_a & self.side_b:
            raise ValueError("partition sides must be disjoint")

    def blocks(self, src_id: int, dst_id: int, t: float) -> bool:
        """True if a message src → dst at time *t* is cut by this partition."""
        if not (self.t_start <= t < self.t_heal):
            return False
        return (src_id in self.side_a and dst_id in self.side_b) or (
            src_id in self.side_b and dst_id in self.side_a
        )


class TransientFaultModel:
    """Seeded message-level fault injection: drop / duplicate / delay / cut.

    One model per runtime; the engine scheduler and the collectives consult
    :meth:`fate` for every data-plane transmission attempt, and the failure
    detector consults :meth:`heartbeat_lost` for every heartbeat.  Message
    fates are drawn from a sequential seeded generator (deterministic for a
    given run); heartbeat fates are hash-based on ``(place, seq)`` so they
    do not depend on how lazily the detector evaluates them.

    Counters (``dropped`` / ``duplicates`` / ``retransmissions`` /
    ``timeouts``) accumulate across the run for reports and invariants.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.0,
        partitions: Sequence[LinkPartition] = (),
        seed: int = 0,
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("dup_rate", dup_rate),
            ("delay_rate", delay_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.delay_rate = delay_rate
        self.delay_seconds = delay_seconds
        self.partitions: List[LinkPartition] = list(partitions)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.dropped = 0
        self.duplicates = 0
        self.retransmissions = 0
        self.timeouts = 0

    def add_partition(self, partition: LinkPartition) -> "TransientFaultModel":
        self.partitions.append(partition)
        return self

    def partitioned(self, src_id: int, dst_id: int, t: float) -> bool:
        """True if any active partition cuts src → dst at time *t*."""
        return any(p.blocks(src_id, dst_id, t) for p in self.partitions)

    def fate(self, src_id: int, dst_id: int, t: float) -> MessageFate:
        """Draw the fate of one transmission attempt at time *t*."""
        if self.partitioned(src_id, dst_id, t):
            self.dropped += 1
            return MessageFate(delivered=False)
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.dropped += 1
            return MessageFate(delivered=False)
        duplicated = bool(self.dup_rate) and self._rng.random() < self.dup_rate
        extra = 0.0
        if self.delay_rate and self._rng.random() < self.delay_rate:
            extra = self.delay_seconds * self._rng.random()
        if duplicated:
            self.duplicates += 1
        return MessageFate(delivered=True, duplicated=duplicated, extra_delay=extra)

    def heartbeat_lost(self, place_id: int, seq: int, t_emit: float) -> bool:
        """Whether heartbeat *seq* of a place is lost on its way to place 0.

        Hash-based (not generator-based) so the outcome of a given
        heartbeat is independent of when the detector lazily evaluates it.
        """
        if self.partitioned(place_id, 0, t_emit):
            return True
        if not self.drop_rate:
            return False
        digest = zlib.crc32(f"{self.seed}:{place_id}:{seq}".encode())
        return (digest / 2**32) < self.drop_rate


class CorruptionModel:
    """Seeded bit-rot on committed snapshot copies.

    After each checkpoint commit, every copy (primary, each replica, and
    the disk-tier copy) of every partition of the newly committed snapshot
    is independently corrupted with probability ``rate``.  Strikes are
    recorded as ``(snap_id, key, tier)`` so campaigns can distinguish
    "disk tier itself was hit" from recoverable in-memory corruption.
    """

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"corruption rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self.strikes: List[Tuple[int, int, int]] = []

    def strike(self, store: "AppResilientStore") -> int:
        """Corrupt copies of the latest committed checkpoint; returns count."""
        latest = store.latest()
        if latest is None or not self.rate:
            return 0
        hit = 0
        for snap in list(latest.snapshots.values()) + list(latest.read_only.values()):
            for key in sorted(snap.saved_keys()):
                for tier in snap.tiers(key):
                    if self._rng.random() < self.rate and snap.corrupt_copy(key, tier):
                        self.strikes.append((snap.snap_id, key, tier))
                        hit += 1
        return hit

    def disk_strikes(self) -> List[Tuple[int, int, int]]:
        """Strikes that landed on the stable (disk) tier."""
        return [s for s in self.strikes if s[2] < 0]


@dataclass
class RackFailureModel:
    """Same-"rack" correlated failures: a whole failure group dies at once.

    Places are grouped into racks of *rack_size* consecutive ids (the
    shared-power/shared-switch unit).  Each exponential event kills every
    not-yet-dead member of one random rack simultaneously; place zero is
    spared even when its rack is hit (immortality assumption), so the
    paper's framework observes the worst legal burst.
    """

    rack_size: int
    mttf: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.mttf <= 0:
            raise ValueError("mttf must be positive")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def racks(self, candidate_ids: Sequence[int]) -> List[List[int]]:
        """The failure groups over *candidate_ids* (place zero excluded)."""
        by_rack: Dict[int, List[int]] = {}
        for pid in candidate_ids:
            if pid == 0:
                continue
            by_rack.setdefault(pid // self.rack_size, []).append(pid)
        return [by_rack[r] for r in sorted(by_rack)]

    def schedule(
        self, candidate_ids: List[int], horizon: float
    ) -> List[ScriptedKill]:
        """Sample whole-rack bursts up to virtual time *horizon*."""
        kills: List[ScriptedKill] = []
        remaining = self.racks(candidate_ids)
        t = 0.0
        while remaining:
            t += float(self._rng.exponential(self.mttf))
            if t > horizon:
                break
            rack = remaining.pop(int(self._rng.integers(len(remaining))))
            for pid in rack:
                kills.append(ScriptedKill(place_id=pid, time=t))
        return kills
