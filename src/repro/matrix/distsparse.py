"""``DistSparseRowMatrix`` — a sparse matrix stored as one row band per place.

The CG application's operator: an ``m × n`` sparse matrix partitioned into
contiguous row bands, one :class:`~repro.matrix.sparse.SparseCSR` band per
member place, aligned to a :class:`~repro.matrix.grid.Partition1D`.  The
matvec against a :class:`~repro.matrix.dupvector.DupVector` operand writes
into a partition-aligned :class:`~repro.matrix.distvector.DistVector`, so
results never move: each place multiplies its band against its full-width
local replica and stores straight into its own output segment.

Compared to :class:`~repro.matrix.distblock.DistBlockMatrix` this class
trades the general block grid for direct row-band access — exactly what
ABFT reconstruction needs: the band of a lost place *is* the ``A_J`` of
the local re-solve, and a principal sub-block ``A_JJ`` is one
``sub_matrix`` call away.

Restore semantics match :class:`~repro.matrix.distvector.DistVector`: an
unchanged partition reloads whole bands; a changed partition assembles
each new band from the overlapping row ranges of the old ones.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.matrix.grid import Partition1D
from repro.matrix.multiplace import MultiPlaceObject
from repro.matrix.sparse import SparseCSR
from repro.matrix.vector import Vector
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.validation import check_positive, require

#: Bytes per stored non-zero (value + column index) plus row-pointer share.
_NNZ_BYTES = 16.0


class DistSparseRowMatrix(MultiPlaceObject):
    """A sparse ``m × n`` matrix as one contiguous CSR row band per place."""

    def __init__(
        self,
        runtime: Runtime,
        m: int,
        n: int,
        group: PlaceGroup,
        builder: Callable[[int, int], SparseCSR],
        partition: Optional[Partition1D] = None,
    ):
        check_positive(m, "m")
        check_positive(n, "n")
        super().__init__(runtime, group, "DistSparseRowMatrix")
        self.m = m
        self.n = n
        #: ``builder(lo, hi)`` returns global rows ``[lo, hi)`` as a
        #: ``SparseCSR`` of shape ``(hi - lo, n)``; it must be pure in its
        #: arguments (partition-independent), so any place — original,
        #: spare, or rebalanced — can regenerate or verify its band.
        self.builder = builder
        self.partition = (
            partition if partition is not None else Partition1D.even(m, group.size)
        )
        require(
            self.partition.num_segments == group.size,
            "partition must have one row band per group place",
        )
        require(self.partition.n == m, "row partition length mismatch")
        self._allocate()

    @classmethod
    def make(
        cls,
        runtime: Runtime,
        n: int,
        group: Optional[PlaceGroup] = None,
        builder: Optional[Callable[[int, int], SparseCSR]] = None,
        partition: Optional[Partition1D] = None,
    ) -> "DistSparseRowMatrix":
        """Square-operator factory over *group* (defaults to the world)."""
        require(builder is not None, "make requires a band builder")
        group = group if group is not None else runtime.world
        return cls(runtime, n, n, group, builder, partition)

    def _allocate(self) -> None:
        key, group, partition, builder = (
            self.heap_key,
            self.group,
            self.partition,
            self.builder,
        )

        def alloc(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            lo, hi = partition.range_of(index)
            band = builder(lo, hi)
            require(
                band.shape == (hi - lo, self.n),
                f"builder returned shape {band.shape}, expected {(hi - lo, self.n)}",
            )
            ctx.heap.put(key, band)
            # Generation cost: one pass over the band's entries.
            ctx.charge_flops(band.nnz)

        self.runtime.finish_all(group, alloc, label=f"{self.name}:alloc")

    # -- band access ---------------------------------------------------------

    def band_range(self, index: int):
        """Global half-open row range of the band at group index *index*."""
        return self.partition.range_of(index)

    def band(self, index: int) -> SparseCSR:
        """Library-internal: the live row band at a group index."""
        return self.payload_at_index(index)

    def nnz_total(self) -> int:
        """Total stored non-zeros across live bands."""
        total = 0
        for index in range(self.group.size):
            if self.runtime.is_alive(self.group[index].id):
                total += self.band(index).nnz
        return total

    # -- matvec --------------------------------------------------------------

    def mult_into(self, out, dup) -> None:
        """``out = self @ dup`` with an aligned output partition.

        Each place multiplies its row band against its full-width local
        replica of *dup* and overwrites its own segment of *out* — zero
        result routing, the payoff of row-band/output alignment.
        """
        from repro.matrix.distvector import DistVector
        from repro.matrix.dupvector import DupVector

        require(isinstance(out, DistVector), "mult_into output must be a DistVector")
        require(isinstance(dup, DupVector), "mult_into operand must be a DupVector")
        require(dup.n == self.n, f"operand length {dup.n} != matrix cols {self.n}")
        require(out.n == self.m, f"output length {out.n} != matrix rows {self.m}")
        require(self.group == dup.group, "matrix and operand on different groups")
        require(self.group == out.group, "matrix and output on different groups")
        require(
            out.partition == self.partition,
            "output partition must align to the matrix row bands",
        )
        group, key = self.group, self.heap_key
        dup_key, out_key = dup.heap_key, out.heap_key
        sparse_factor = self.runtime.cost.sparse_flop_factor

        def task(ctx: PlaceContext) -> None:
            heap_get = ctx.heap.get
            band: SparseCSR = heap_get(key)
            xdata = heap_get(dup_key).data
            seg: Vector = heap_get(out_key)
            seg.touch()
            seg.data[:] = band.spmv(xdata)
            ctx.charge_flops(2.0 * band.nnz * sparse_factor)

        self.runtime.finish_all(group, task, label=f"{self.name}:matvec")

    # -- resilience (Snapshottable) -------------------------------------------

    def remake(
        self, new_group: PlaceGroup, partition: Optional[Partition1D] = None
    ) -> "DistSparseRowMatrix":
        """Reallocate placeholder bands over *new_group*.

        Callers must reload real content afterwards — the restore path
        always follows with :meth:`restore_snapshot`, which overwrites the
        placeholders, so regenerating bands here would double-charge.
        """
        self._release_payloads()
        self.group = new_group
        self.partition = (
            partition
            if partition is not None
            else Partition1D.even(self.m, new_group.size)
        )
        require(
            self.partition.num_segments == new_group.size,
            "partition/group size mismatch",
        )
        key, n, partition_, group = self.heap_key, self.n, self.partition, new_group

        def alloc(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            lo, hi = partition_.range_of(index)
            ctx.heap.put(key, SparseCSR.empty(hi - lo, n))

        self.runtime.finish_all(group, alloc, label=f"{self.name}:remake")
        return self

    def rehome(self, new_group: PlaceGroup) -> "DistSparseRowMatrix":
        """Adopt a same-size group without touching any payload.

        The reconstruction path: survivors keep their live bands (same
        group indices), and the caller installs the replaced places' bands
        itself — fetched from the static snapshot's surviving replicas, so
        the cost lands on the snapshot machinery where it belongs.
        """
        require(new_group.size == self.group.size, "rehome cannot resize the group")
        self.group = new_group
        return self

    def make_snapshot(
        self, base: Optional[DistObjectSnapshot] = None
    ) -> DistObjectSnapshot:
        """Save each row band under its place index, doubly stored."""
        snap = self._new_snapshot(
            {"m": self.m, "n": self.n, "sizes": list(self.partition.sizes)}
        )
        base = self._delta_base(snap, base)
        group, key = self.group, self.heap_key

        def save(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            band: SparseCSR = ctx.heap.get(key)
            self._save_partition(
                snap, ctx, index, band.version, base, band.copy, band.freeze_view
            )

        self.runtime.finish_all(group, save, label=f"{self.name}:snapshot")
        return snap

    def restore_snapshot(self, snapshot: DistObjectSnapshot) -> None:
        """Reload bands; repartition via overlapping row-range copies."""
        require(
            snapshot.meta.get("m") == self.m and snapshot.meta.get("n") == self.n,
            "snapshot is for a different matrix",
        )
        old_partition = Partition1D(self.m, snapshot.meta["sizes"])
        group, key = self.group, self.heap_key

        if old_partition == self.partition:
            def load(ctx: PlaceContext) -> None:
                index = group.index_of(ctx.place)
                payload: SparseCSR = snapshot.fetch(ctx, index)
                ctx.heap.put(key, payload.copy())
                ctx.charge_memcpy(payload.nbytes)

            self.runtime.finish_all(group, load, label=f"{self.name}:restore")
            return

        # Changed partition: each new band is stitched from the overlapping
        # row sub-ranges of the old bands (§IV-B2's sub-block copies).
        overlaps = self.partition.overlaps(old_partition)
        by_new: dict = {}
        for new_seg, old_seg, start, end in overlaps:
            by_new.setdefault(new_seg, []).append((old_seg, start, end))

        def load_repartitioned(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            pieces = []
            for old_seg, start, end in sorted(by_new.get(index, [])):
                olo, _ohi = old_partition.range_of(old_seg)
                piece: SparseCSR = snapshot.fetch(
                    ctx,
                    old_seg,
                    extract=lambda band, s=start - olo, e=end - olo: band.sub_matrix(
                        s, e, 0, band.n
                    ),
                    extract_flops=(end - start),
                    extract_bytes=(end - start) * _NNZ_BYTES,
                )
                pieces.append(piece)
            ctx.heap.put(key, SparseCSR.vstack(pieces))

        self.runtime.finish_all(group, load_repartitioned, label=f"{self.name}:restore")
