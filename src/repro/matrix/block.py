"""Matrix blocks and per-place block sets.

``MatrixBlock`` pairs grid coordinates with a dense or sparse payload;
``BlockSet`` is GML's ``x10.matrix.distblock.BlockSet`` — the container of
all blocks mapped to one place.  Letting a place hold a *set* of blocks
(rather than exactly one) is what allows the shrink mode to remap existing
blocks onto fewer places without repartitioning (paper §III-A).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

from repro.matrix.dense import DenseMatrix
from repro.matrix.grid import Grid
from repro.matrix.sparse import SparseCSR
from repro.util.validation import require

BlockData = Union[DenseMatrix, SparseCSR]


class MatrixBlock:
    """One grid block: coordinates, global origin, and its payload."""

    __slots__ = ("rb", "cb", "row_offset", "col_offset", "data")

    def __init__(self, rb: int, cb: int, row_offset: int, col_offset: int, data: BlockData):
        self.rb = rb
        self.cb = cb
        self.row_offset = row_offset
        self.col_offset = col_offset
        self.data = data

    @classmethod
    def for_grid(cls, grid: Grid, rb: int, cb: int, data: BlockData) -> "MatrixBlock":
        """Build a block for grid slot ``(rb, cb)``, validating the shape."""
        h, w = grid.block_dims(rb, cb)
        require(
            data.shape == (h, w),
            f"block ({rb},{cb}) payload shape {data.shape} != grid slot {(h, w)}",
        )
        r0, c0 = grid.block_origin(rb, cb)
        return cls(rb, cb, r0, c0, data)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.rb, self.cb)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.data, SparseCSR)

    def row_range(self) -> Tuple[int, int]:
        """Global half-open row range covered by this block."""
        return self.row_offset, self.row_offset + self.data.shape[0]

    def col_range(self) -> Tuple[int, int]:
        """Global half-open column range covered by this block."""
        return self.col_offset, self.col_offset + self.data.shape[1]

    def deep_copy(self) -> "MatrixBlock":
        return MatrixBlock(self.rb, self.cb, self.row_offset, self.col_offset, self.data.copy())

    def __repr__(self) -> str:
        kind = "sparse" if self.is_sparse else "dense"
        return f"MatrixBlock(({self.rb},{self.cb}), {kind} {self.shape})"


class BlockSet:
    """All blocks held by one place of a ``DistBlockMatrix``."""

    def __init__(self, place_index: int):
        self.place_index = place_index
        self._blocks: Dict[Tuple[int, int], MatrixBlock] = {}

    def add(self, block: MatrixBlock) -> None:
        """Insert a block (duplicate coordinates rejected)."""
        require(block.key not in self._blocks, f"duplicate block {block.key}")
        self._blocks[block.key] = block

    def get(self, rb: int, cb: int) -> MatrixBlock:
        """Fetch the block at ``(rb, cb)``; ``KeyError`` if not held here."""
        if (rb, cb) not in self._blocks:
            raise KeyError(f"place index {self.place_index} holds no block ({rb},{cb})")
        return self._blocks[(rb, cb)]

    def contains(self, rb: int, cb: int) -> bool:
        return (rb, cb) in self._blocks

    def keys(self) -> List[Tuple[int, int]]:
        """Held block coordinates, sorted row-major."""
        return sorted(self._blocks)

    def __iter__(self) -> Iterator[MatrixBlock]:
        for key in self.keys():
            yield self._blocks[key]

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def nbytes(self) -> int:
        """Total payload bytes held by this place."""
        return sum(b.nbytes for b in self._blocks.values())

    def total_nnz(self) -> int:
        """Total stored non-zeros (sparse blocks only)."""
        return sum(b.data.nnz for b in self._blocks.values() if b.is_sparse)

    def row_span(self) -> Tuple[int, int]:
        """Smallest global row range covering all held blocks."""
        require(len(self._blocks) > 0, "empty block set has no row span")
        lows, highs = zip(*(b.row_range() for b in self._blocks.values()))
        return min(lows), max(highs)

    def deep_copy(self) -> "BlockSet":
        out = BlockSet(self.place_index)
        for block in self:
            out.add(block.deep_copy())
        return out

    def payload_dict(self) -> Dict[Tuple[int, int], BlockData]:
        """Deep-copied ``{(rb, cb): data}`` map — the snapshot payload."""
        return {b.key: b.data.copy() for b in self}

    def version_token(self) -> Tuple[Tuple[Tuple[int, int], int], ...]:
        """Aggregate mutation token: every block's key and version."""
        return tuple((b.key, b.data.version) for b in self)

    def freeze_view_dict(self) -> Dict[Tuple[int, int], BlockData]:
        """Copy-on-write snapshot payload: frozen aliases, no deep copies."""
        return {b.key: b.data.freeze_view() for b in self}

    def __repr__(self) -> str:
        return f"BlockSet(place_index={self.place_index}, blocks={self.keys()})"
