"""Tests for matrix-matrix kernels and DupDenseMatrix operations."""

import numpy as np
import pytest

from repro.matrix.dense import DenseMatrix
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.dupmatrix import DupDenseMatrix
from repro.matrix.ops import dist_gram, dist_matmat_dup
from repro.runtime import CostModel, Runtime


def make_rt(n=3):
    return Runtime(n, cost=CostModel.zero())


def dense_dist(rt, m, n, seed):
    return DistBlockMatrix.make_dense(rt, m, n, rt.world.size * 2, 1).init_random(seed)


def sparse_dist(rt, m, n, seed):
    return DistBlockMatrix.make_sparse(rt, m, n, rt.world.size * 2, 1).init_random(
        seed, density=0.35
    )


class TestSparseMatmat:
    def test_matmat_matches_dense(self):
        from repro.matrix.sparse import SparseCSR

        rng = np.random.default_rng(0)
        dense = rng.random((8, 6))
        dense[dense < 0.5] = 0
        a = SparseCSR.from_dense(dense)
        b = rng.random((6, 3))
        assert np.allclose(a.matmat(b), dense @ b)
        c = rng.random((8, 3))
        assert np.allclose(a.t_matmat(c), dense.T @ c)

    def test_shape_checks(self):
        from repro.matrix.sparse import SparseCSR

        a = SparseCSR.empty(4, 3)
        with pytest.raises(ValueError):
            a.matmat(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            a.t_matmat(np.zeros((3, 2)))


class TestDistGram:
    def test_dense_dense(self):
        rt = make_rt()
        W = dense_dist(rt, 18, 4, 1)
        out = DupDenseMatrix.make_zero(rt, 4, 4)
        dist_gram(W, W, out)
        Wd = W.to_dense().data
        assert np.allclose(out.to_array(), Wd.T @ Wd)
        assert out.replicas_consistent(1e-12)

    def test_dense_sparse(self):
        rt = make_rt()
        W = dense_dist(rt, 18, 4, 1)
        V = sparse_dist(rt, 18, 6, 2)
        out = DupDenseMatrix.make_zero(rt, 4, 6)
        dist_gram(W, V, out)
        assert np.allclose(out.to_array(), W.to_dense().data.T @ V.to_dense().data)

    def test_sparse_dense(self):
        rt = make_rt()
        V = sparse_dist(rt, 18, 6, 2)
        W = dense_dist(rt, 18, 4, 1)
        out = DupDenseMatrix.make_zero(rt, 6, 4)
        dist_gram(V, W, out)
        assert np.allclose(out.to_array(), V.to_dense().data.T @ W.to_dense().data)

    def test_rejects_misaligned(self):
        rt = make_rt()
        a = DistBlockMatrix.make_dense(rt, 18, 4, 6, 1)
        b = DistBlockMatrix.make_dense(rt, 18, 4, 9, 1)  # different blocking
        out = DupDenseMatrix.make_zero(rt, 4, 4)
        with pytest.raises(ValueError):
            dist_gram(a, b, out)

    def test_rejects_wrong_output_shape(self):
        rt = make_rt()
        W = dense_dist(rt, 18, 4, 1)
        with pytest.raises(ValueError):
            dist_gram(W, W, DupDenseMatrix.make_zero(rt, 4, 5))


class TestDistMatmatDup:
    def test_dense(self):
        rt = make_rt()
        A = dense_dist(rt, 18, 4, 1)
        B = DupDenseMatrix.make_zero(rt, 4, 5)
        B.init_from(DenseMatrix(np.random.default_rng(3).random((4, 5))))
        out = DistBlockMatrix.make_dense(rt, 18, 5, 6, 1)
        dist_matmat_dup(A, B, out)
        assert np.allclose(out.to_dense().data, A.to_dense().data @ B.to_array())

    def test_sparse(self):
        rt = make_rt()
        V = sparse_dist(rt, 18, 6, 2)
        B = DupDenseMatrix.make_zero(rt, 6, 3)
        B.init_from(DenseMatrix(np.random.default_rng(3).random((6, 3))))
        out = DistBlockMatrix.make_dense(rt, 18, 3, 6, 1)
        dist_matmat_dup(V, B, out)
        assert np.allclose(out.to_dense().data, V.to_dense().data @ B.to_array())

    def test_inner_dim_check(self):
        rt = make_rt()
        A = dense_dist(rt, 18, 4, 1)
        B = DupDenseMatrix.make_zero(rt, 5, 3)
        out = DistBlockMatrix.make_dense(rt, 18, 3, 6, 1)
        with pytest.raises(ValueError):
            dist_matmat_dup(A, B, out)


class TestDupDenseOps:
    def test_cellwise_chain_matches_numpy(self):
        rt = make_rt()
        a = DupDenseMatrix.make_zero(rt, 3, 3)
        b = DupDenseMatrix.make_zero(rt, 3, 3)
        a.fill(6.0)
        b.fill(2.0)
        a.cell_mult(b).cell_div(b).cell_add(1.0).scale(0.5)
        assert np.allclose(a.to_array(), 3.5)
        assert a.replicas_consistent()

    def test_cell_div_eps_floor(self):
        rt = make_rt(2)
        a = DupDenseMatrix.make_zero(rt, 2, 2).fill(1.0)
        z = DupDenseMatrix.make_zero(rt, 2, 2)  # zeros
        a.cell_div(z, eps=0.5)
        assert np.allclose(a.to_array(), 2.0)

    def test_mult(self):
        rt = make_rt()
        rng = np.random.default_rng(5)
        a = DupDenseMatrix.make_zero(rt, 3, 4)
        b = DupDenseMatrix.make_zero(rt, 4, 2)
        a.init_from(DenseMatrix(rng.random((3, 4))))
        b.init_from(DenseMatrix(rng.random((4, 2))))
        out = DupDenseMatrix.make_zero(rt, 3, 2).mult(a, b)
        assert np.allclose(out.to_array(), a.to_array() @ b.to_array())
        assert out.replicas_consistent(1e-15)

    def test_transpose_from(self):
        rt = make_rt()
        a = DupDenseMatrix.make_zero(rt, 2, 3)
        a.init_from(DenseMatrix(np.arange(6.0).reshape(2, 3)))
        t = DupDenseMatrix.make_zero(rt, 3, 2).transpose_from(a)
        assert np.array_equal(t.to_array(), a.to_array().T)

    def test_reduce_sum(self):
        rt = make_rt(3)
        a = DupDenseMatrix.make_zero(rt, 2, 2)
        for i in range(3):
            a.payload_at_index(i).data[:] = i + 1
        a.reduce_sum()
        assert np.allclose(a.to_array(), 6.0)
        assert a.replicas_consistent()

    def test_norm_f(self):
        rt = make_rt(2)
        a = DupDenseMatrix.make_zero(rt, 2, 2).fill(3.0)
        assert a.norm_f() == pytest.approx(6.0)

    def test_shape_checks(self):
        rt = make_rt(2)
        a = DupDenseMatrix.make_zero(rt, 2, 2)
        b = DupDenseMatrix.make_zero(rt, 2, 3)
        with pytest.raises(ValueError):
            a.cell_add(b)
        with pytest.raises(ValueError):
            a.transpose_from(b)
        with pytest.raises(ValueError):
            DupDenseMatrix.make_zero(rt, 2, 2).mult(a, b)  # 2x2 != 2x3 result


class TestDistBlockCellwise:
    def test_chain_matches_numpy(self):
        rt = make_rt()
        A = dense_dist(rt, 12, 4, 1)
        B = dense_dist(rt, 12, 4, 2)
        Ad, Bd = A.to_dense().data.copy(), B.to_dense().data.copy()
        A.cell_mult(B).scale(3.0).cell_div(B).cell_add(B)
        assert np.allclose(A.to_dense().data, 3 * Ad + Bd)

    def test_norm_f_dense_and_sparse(self):
        rt = make_rt()
        A = dense_dist(rt, 12, 4, 1)
        assert A.norm_f() == pytest.approx(np.linalg.norm(A.to_dense().data))
        S = sparse_dist(rt, 12, 4, 2)
        assert S.norm_f() == pytest.approx(np.linalg.norm(S.to_dense().data))

    def test_binary_ops_require_dense(self):
        rt = make_rt()
        A = dense_dist(rt, 12, 4, 1)
        S = sparse_dist(rt, 12, 4, 2)
        with pytest.raises(ValueError):
            A.cell_mult(S)
        with pytest.raises(ValueError):
            S.cell_div(S)

    def test_layout_mismatch_rejected(self):
        rt = make_rt()
        A = DistBlockMatrix.make_dense(rt, 12, 4, 6, 1).init_random(1)
        B = DistBlockMatrix.make_dense(rt, 12, 4, 12, 1).init_random(2)
        with pytest.raises(ValueError):
            A.cell_add(B)


class TestDistMatmul:
    def test_matches_numpy(self):
        from repro.matrix.ops import dist_matmul

        rt = make_rt(3)
        A = DistBlockMatrix.make_dense(rt, 18, 8, 6, 1).init_random(1)
        B = DistBlockMatrix.make_dense(rt, 8, 5, 6, 1).init_random(2)
        C = DistBlockMatrix.make_dense(rt, 18, 5, 6, 1)
        dist_matmul(A, B, C)
        assert np.allclose(
            C.to_dense().data, A.to_dense().data @ B.to_dense().data
        )

    def test_repeated_calls_overwrite(self):
        from repro.matrix.ops import dist_matmul

        rt = make_rt(2)
        A = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1).init_random(1)
        B = DistBlockMatrix.make_dense(rt, 4, 3, 4, 1).init_random(2)
        C = DistBlockMatrix.make_dense(rt, 8, 3, 4, 1)
        dist_matmul(A, B, C)
        first = C.to_dense().data.copy()
        dist_matmul(A, B, C)  # must zero, not accumulate
        assert np.allclose(C.to_dense().data, first)

    def test_dimension_checks(self):
        from repro.matrix.ops import dist_matmul

        rt = make_rt(2)
        A = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1)
        B = DistBlockMatrix.make_dense(rt, 5, 3, 4, 1)  # inner mismatch
        C = DistBlockMatrix.make_dense(rt, 8, 3, 4, 1)
        with pytest.raises(ValueError):
            dist_matmul(A, B, C)
        S = DistBlockMatrix.make_sparse(rt, 4, 3, 4, 1)
        with pytest.raises(ValueError):
            dist_matmul(A, S, C)

    def test_after_shrink_restore(self):
        from repro.matrix.ops import dist_matmul

        rt = make_rt(4)
        A = DistBlockMatrix.make_dense(rt, 16, 6, 8, 1).init_random(1)
        B = DistBlockMatrix.make_dense(rt, 6, 4, 8, 1).init_random(2)
        refA, refB = A.to_dense().data, B.to_dense().data
        snapA, snapB = A.make_snapshot(), B.make_snapshot()
        rt.kill(2)
        survivors = rt.live_world()
        A.remake(survivors)
        A.restore_snapshot(snapA)
        B.remake(survivors)
        B.restore_snapshot(snapB)
        C = DistBlockMatrix.make_dense(rt, 16, 4, 8, 1, group=survivors)
        dist_matmul(A, B, C)
        assert np.allclose(C.to_dense().data, refA @ refB)
