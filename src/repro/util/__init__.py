"""Shared utilities: validation, payload sizing, LOC counting, logging.

These helpers are deliberately dependency-free (NumPy only) so every other
subpackage can import them without cycles.
"""

from repro.util.bytesize import payload_nbytes
from repro.util.loc import count_loc, loc_of_object, loc_report
from repro.util.validation import (
    check_index,
    check_positive,
    check_same_length,
    require,
)

__all__ = [
    "payload_nbytes",
    "count_loc",
    "loc_of_object",
    "loc_report",
    "check_index",
    "check_positive",
    "check_same_length",
    "require",
]
