"""Property suite: fork/resume of the simulator is bitwise exact.

For each scenario the straight-through run is executed once with a
``boundary_hook`` that captures a :class:`~repro.engine.fork.SimulatorImage`
at *every* iteration-commit boundary — with scripted kills armed, delta
checkpointing, parity placement, or a failure detector in flight.  Every
image is then resumed to completion and must reproduce the straight run's
``ExecutionReport``, final vector, virtual clock, and message counters
*bitwise* (exact float equality, not tolerances) — the invariant the chaos
prefix cache (:mod:`repro.chaos`) is built on.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.chaos import CHAOS_APPS, CampaignConfig, _build_world
from repro.engine.fork import ForkContext
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.placement import make_placement
from repro.resilience.store import AppResilientStore
from repro.runtime.cost import CostModel
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.factory import make_runtime
from repro.runtime.failure import ScriptedKill


def _fingerprint(executor, report):
    """Everything a resumed run must reproduce exactly."""
    rt = executor.runtime
    return {
        "report": asdict(report),
        "time": rt.clock.global_time(),
        "messages": rt.stats.messages,
        "bytes_sent": rt.stats.bytes_sent,
        "finishes": len(rt.stats.finish_reports),
    }


def _run_with_captures(config: CampaignConfig, kills, checkpoint_mode="blocking"):
    """Straight run with *kills* armed, capturing an image at every boundary."""
    rt, app, _, executor = _build_world(
        config, RestoreMode.SHRINK, checkpoint_mode
    )
    for kill in kills:
        rt.injector.add(kill)
    context = ForkContext()
    images = {}

    def snap(boundary: int) -> bool:
        images[boundary] = context.capture(executor)
        return True

    report = executor.run(boundary_hook=snap)
    _, _, _, result_of = CHAOS_APPS[config.app]
    return (
        _fingerprint(executor, report),
        np.asarray(result_of(app)).copy(),
        images,
        config.app,
    )


def _resume_and_check(images, expected_fp, expected_result, app_name):
    """Resume every captured boundary; each must match the straight run."""
    _, _, _, result_of = CHAOS_APPS[app_name]
    assert images, "no boundaries captured"
    for boundary, image in sorted(images.items()):
        forked = image.load()
        report = forked.run()
        fp = _fingerprint(forked, report)
        assert fp == expected_fp, f"fork at boundary {boundary} diverged"
        result = np.asarray(result_of(forked.app))
        assert np.array_equal(result, expected_result), (
            f"fork at boundary {boundary}: final vector not bitwise identical"
        )


KILLS = [
    ScriptedKill(place_id=2, iteration=3),
    ScriptedKill(place_id=4, iteration=5),
]


@pytest.mark.parametrize("app", ["linreg", "pagerank", "cg"])
def test_every_boundary_fork_is_exact_checkpoint(app):
    config = CampaignConfig(
        app=app, places=6, iterations=8, checkpoint_interval=2, schedules=1
    )
    fp, result, images, name = _run_with_captures(config, KILLS)
    _resume_and_check(images, fp, result, name)


def test_every_boundary_fork_is_exact_reconstruct():
    config = CampaignConfig(
        app="cg",
        places=6,
        iterations=8,
        checkpoint_interval=2,
        schedules=1,
        spares=2,
        recovery="reconstruct",
    )
    fp, result, images, name = _run_with_captures(config, KILLS)
    _resume_and_check(images, fp, result, name)


def test_every_boundary_fork_is_exact_overlapped_delta():
    config = CampaignConfig(
        app="linreg",
        places=6,
        iterations=8,
        checkpoint_interval=2,
        schedules=1,
        ckpt_delta=True,
    )
    fp, result, images, name = _run_with_captures(
        config, KILLS, checkpoint_mode="overlapped"
    )
    _resume_and_check(images, fp, result, name)


def test_every_boundary_fork_is_exact_parity_placement():
    config = CampaignConfig(
        app="pagerank",
        places=8,
        iterations=8,
        checkpoint_interval=2,
        schedules=1,
        replicas=1,
        placement="parity:3",
    )
    fp, result, images, name = _run_with_captures(config, KILLS)
    _resume_and_check(images, fp, result, name)


def test_fork_with_detector_suspicion_in_flight():
    """Capture boundaries while a phi-accrual detector (whose heartbeats
    move the virtual clocks) and an armed kill are live in the world."""
    app_name = "cg"
    _, res_cls, wl_factory, result_of = CHAOS_APPS[app_name]
    rt = make_runtime(6, cost=CostModel.zero(), resilient=True)
    app = res_cls(rt, wl_factory(8))
    rt.injector.add(ScriptedKill(place_id=3, iteration=4))
    detector = PhiAccrualDetector(rt, detect_timeout=5.0)
    store = AppResilientStore(rt, replicas=2, placement=make_placement("spread"))
    executor = IterativeExecutor(
        rt,
        app,
        store=store,
        checkpoint_interval=2,
        mode=RestoreMode.SHRINK,
        detector=detector,
    )
    context = ForkContext()
    images = {}

    def snap(boundary: int) -> bool:
        images[boundary] = context.capture(executor)
        return True

    report = executor.run(boundary_hook=snap)
    fp = _fingerprint(executor, report)
    result = np.asarray(result_of(app)).copy()
    _resume_and_check(images, fp, result, app_name)


def test_sibling_forks_are_independent():
    """Two forks of one image cannot perturb each other (CoW isolation):
    resuming the same boundary twice gives identical results, and the
    shared frozen arrays are never written through."""
    config = CampaignConfig(
        app="linreg", places=6, iterations=8, checkpoint_interval=2, schedules=1
    )
    fp, result, images, name = _run_with_captures(config, KILLS)
    _, _, _, result_of = CHAOS_APPS[name]
    mid = sorted(images)[len(images) // 2]
    first = images[mid].load()
    report_a = first.run()
    second = images[mid].load()
    report_b = second.run()
    assert asdict(report_a) == asdict(report_b)
    assert _fingerprint(first, report_a) == fp
    assert _fingerprint(second, report_b) == fp
    assert np.array_equal(np.asarray(result_of(first.app)), result)
    assert np.array_equal(np.asarray(result_of(second.app)), result)


def test_pause_resume_on_origin_equals_fork():
    """run() pausing at a boundary and continuing on the *origin* executor
    is the same as continuing on a fork taken there."""
    config = CampaignConfig(
        app="cg", places=6, iterations=8, checkpoint_interval=2, schedules=1
    )
    _, _, _, result_of = CHAOS_APPS[config.app]
    rt, app, _, executor = _build_world(config, RestoreMode.SHRINK, "blocking")
    for kill in KILLS:
        rt.injector.add(kill)
    context = ForkContext()
    paused = executor.run(boundary_hook=lambda b: b < 4)
    assert paused is None
    image = context.capture(executor)
    report_origin = executor.run()
    fp = _fingerprint(executor, report_origin)
    result = np.asarray(result_of(app)).copy()

    forked = image.load()
    report_fork = forked.run()
    assert _fingerprint(forked, report_fork) == fp
    assert np.array_equal(np.asarray(result_of(forked.app)), result)
