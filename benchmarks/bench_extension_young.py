"""Extension — empirical validation of Young's checkpoint interval (§V).

The paper cites Young's first-order optimum sqrt(2·T_ckpt·MTTF) for
choosing the checkpoint interval.  This benchmark validates it inside the
framework: measure the real checkpoint cost and iteration time of LogReg,
derive the optimal interval for a given MTTF, then run the application
under randomly injected exponential failures at the derived interval and
at a much shorter and a much longer one, comparing mean total runtime over
a fixed set of seeds.
"""

import numpy as np

from _common import emit
from repro.apps.data import RegressionWorkload
from repro.apps.resilient import LogRegResilient
from repro.bench.calibration import cluster_2015
from repro.resilience.executor import IterativeExecutor
from repro.resilience.young import optimal_interval_iterations
from repro.runtime import Runtime
from repro.runtime.failure import ExponentialFailureModel

PLACES = 6
WORKLOAD = RegressionWorkload(
    features=60, examples_per_place=400, iterations=60, blocks_per_place=2
)
SEEDS = range(24)


def measure_app_rates():
    rt = Runtime(PLACES, cost=cluster_2015(), resilient=True)
    app = LogRegResilient(rt, WORKLOAD)
    report = IterativeExecutor(rt, app, checkpoint_interval=10).run()
    t_iter = report.step_time / report.iterations_executed
    t_ckpt = report.checkpoint_durations[-1]  # steady state (read-only reused)
    return t_iter, t_ckpt


def mean_total_under_failures(interval: int, mttf: float, t_iter: float):
    totals = []
    for seed in SEEDS:
        rt = Runtime(PLACES, cost=cluster_2015(), resilient=True)
        app = LogRegResilient(rt, WORKLOAD)
        horizon = WORKLOAD.iterations * t_iter * 3
        for kill in ExponentialFailureModel(mttf, seed=seed).schedule(rt.world.ids, horizon):
            rt.injector.kills.append(kill)
        try:
            report = IterativeExecutor(rt, app, checkpoint_interval=interval).run()
            totals.append(report.total_time)
        except Exception:
            continue  # unrecoverable seeds (adjacent double failure) skipped
    return float(np.mean(totals)), len(totals)


def run_validation():
    t_iter, t_ckpt = measure_app_rates()
    mttf = 300 * t_iter
    k_opt = optimal_interval_iterations(t_ckpt, mttf, t_iter)
    candidates = sorted({1, k_opt, 8 * k_opt})
    results = {k: mean_total_under_failures(k, mttf, t_iter) for k in candidates}
    return t_iter, t_ckpt, mttf, k_opt, results


def test_extension_young_interval(benchmark):
    t_iter, t_ckpt, mttf, k_opt, results = benchmark.pedantic(
        run_validation, rounds=1, iterations=1
    )
    lines = [
        f"measured: {t_iter * 1e3:.2f} ms/iteration, {t_ckpt * 1e3:.2f} ms/checkpoint",
        f"MTTF {mttf * 1e3:.1f} ms → Young-optimal interval = {k_opt} iterations",
        "",
        "mean total runtime under random exponential failures:",
    ]
    for interval, (mean_total, runs) in results.items():
        mark = "  ← Young" if interval == k_opt else ""
        lines.append(f"  interval {interval:3d}: {mean_total * 1e3:9.1f} ms over {runs} runs{mark}")
    emit("Extension — Young's checkpoint-interval formula, validated", "\n".join(lines))

    young_total = results[k_opt][0]
    # First-order optimum: never worse than the extremes by any margin, and
    # strictly better than constant checkpointing (interval 1).
    assert young_total < results[1][0]
    assert young_total <= min(m for m, _ in results.values()) * 1.02
