"""Tests for GlobalRef / PlaceLocalHandle reference semantics."""

import pytest

from repro.runtime import (
    CostModel,
    DanglingReferenceError,
    DeadPlaceException,
    Place,
    PlaceGroup,
    Runtime,
)
from repro.runtime.globalref import GlobalRef, PlaceLocalHandle


def make_rt(n=4):
    return Runtime(n, cost=CostModel.zero())


class TestGlobalRef:
    def test_deref_at_home(self):
        rt = make_rt()
        ref = GlobalRef(rt, Place(2), value={"payload": 1})
        result = rt.at(Place(2), lambda ctx: ref(ctx)["payload"])
        assert result == 1

    def test_deref_at_wrong_place(self):
        rt = make_rt()
        ref = GlobalRef(rt, Place(2), value=5)
        with pytest.raises(DanglingReferenceError):
            rt.at(Place(1), lambda ctx: ref(ctx))

    def test_dangling_after_death(self):
        rt = make_rt()
        GlobalRef(rt, Place(2), value=5)
        rt.kill(2)
        with pytest.raises(DeadPlaceException):
            rt.at(Place(2), lambda ctx: None)

    def test_free(self):
        rt = make_rt()
        ref = GlobalRef(rt, Place(1), value=5)
        ref.free()
        with pytest.raises(KeyError):
            rt.at(Place(1), lambda ctx: ref(ctx))


class TestPlaceLocalHandle:
    def test_one_value_per_place(self):
        rt = make_rt()
        plh = PlaceLocalHandle(rt, rt.world, init=lambda ctx: ctx.place.id * 100)
        values = rt.finish_all(rt.world, lambda ctx: plh.local(ctx))
        assert values == [0, 100, 200, 300]

    def test_access_outside_group(self):
        rt = make_rt()
        group = PlaceGroup.of_ids([0, 1])
        plh = PlaceLocalHandle(rt, group, init=lambda ctx: 1)
        with pytest.raises(DanglingReferenceError):
            rt.at(Place(3), lambda ctx: plh.local(ctx))

    def test_set_local(self):
        rt = make_rt()
        plh = PlaceLocalHandle(rt, rt.world, init=lambda ctx: 0)
        rt.at(Place(1), lambda ctx: plh.set_local(ctx, 42))
        assert rt.at(Place(1), lambda ctx: plh.local(ctx)) == 42

    def test_remake_over_survivors(self):
        # The §IV-A fix: PLHs can be re-created over a new group.
        rt = make_rt()
        plh = PlaceLocalHandle(rt, rt.world, init=lambda ctx: "old")
        rt.kill(2)
        survivors = rt.live_world()
        plh.remake(survivors, init=lambda ctx: "new")
        values = rt.finish_all(survivors, lambda ctx: plh.local(ctx))
        assert values == ["new", "new", "new"]
        assert plh.group == survivors

    def test_remake_drops_old_entries(self):
        rt = make_rt()
        plh = PlaceLocalHandle(rt, rt.world, init=lambda ctx: "old")
        smaller = PlaceGroup.of_ids([0, 1])
        plh.remake(smaller, init=lambda ctx: "new")
        # Place 3 no longer holds an entry for this PLH.
        with pytest.raises(DanglingReferenceError):
            rt.at(Place(3), lambda ctx: plh.local(ctx))

    def test_init_failure_on_dead_place(self):
        rt = make_rt()
        rt.kill(1)
        with pytest.raises(DeadPlaceException):
            PlaceLocalHandle(rt, rt.world, init=lambda ctx: 0)

    def test_destroy(self):
        rt = make_rt()
        plh = PlaceLocalHandle(rt, rt.world, init=lambda ctx: 1)
        plh.destroy()
        with pytest.raises(KeyError):
            rt.at(Place(0), lambda ctx: ctx.heap.get(plh._key))
