"""Benchmark harness regenerating the paper's evaluation.

* :mod:`repro.bench.calibration` — the cost-model rates, how they were
  fixed from the paper's measured points, the physical→logical scales and
  the paper's headline targets;
* :mod:`repro.bench.harness` — the Figs. 2-7 / Tables III-IV sweep
  protocols;
* :mod:`repro.bench.figures` — plain-text/CSV renderers.
"""

from repro.bench.calibration import (
    PaperTargets,
    cluster_2015,
    pagerank_bench_workload,
    pagerank_cost,
    places_axis,
    regression_bench_workload,
    regression_cost,
)
from repro.bench.harness import (
    APP_REGISTRY,
    SweepSeries,
    run_checkpoint_sweep,
    run_overhead_sweep,
    run_restore_sweep,
    table4_from_reports,
)
from repro.bench.timeline import profile_finishes, render_profile, render_timeline

__all__ = [
    "PaperTargets",
    "cluster_2015",
    "pagerank_bench_workload",
    "pagerank_cost",
    "places_axis",
    "regression_bench_workload",
    "regression_cost",
    "APP_REGISTRY",
    "SweepSeries",
    "run_checkpoint_sweep",
    "run_overhead_sweep",
    "run_restore_sweep",
    "table4_from_reports",
    "profile_finishes",
    "render_profile",
    "render_timeline",
]
