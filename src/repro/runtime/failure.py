"""Fail-stop failure injection.

The paper's experiments kill one place at a chosen iteration; the framework
must also survive arbitrary additional failures (including failures *during*
checkpoint or restore).  The injector supports:

* scripted kills — "kill place *p* before iteration *n*" or "at the *k*-th
  runtime phase" (a phase is one collective finish), which lets tests kill a
  place in the middle of an iteration or mid-checkpoint;
* random kills drawn from an exponential MTTF model, as assumed by Young's
  checkpoint-interval formula.

The injector only *decides* when a place dies; the runtime performs the kill
(destroying the heap) and surfaces ``DeadPlaceException`` at the enclosing
finish, mirroring Resilient X10 semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np


@dataclass(frozen=True)
class ScriptedKill:
    """One planned failure."""

    place_id: int
    #: Fire before the executor starts this iteration (None = not used).
    iteration: Optional[int] = None
    #: Fire before the runtime executes this phase number (None = not used).
    phase: Optional[int] = None
    #: Fire once virtual global time reaches this value (None = not used).
    time: Optional[float] = None

    def __post_init__(self) -> None:
        triggers = [t is not None for t in (self.iteration, self.phase, self.time)]
        if sum(triggers) != 1:
            raise ValueError("exactly one of iteration/phase/time must be set")


class FailureInjector:
    """Decides which places die and when.

    The runtime polls :meth:`due_at_phase` at every phase boundary and the
    executor polls :meth:`due_at_iteration` at every iteration boundary.
    """

    def __init__(self, kills: Optional[List[ScriptedKill]] = None):
        self.kills: List[ScriptedKill] = list(kills or [])
        self._fired: Set[int] = set()

    # -- scripting ----------------------------------------------------------

    def kill_at_iteration(self, place_id: int, iteration: int) -> "FailureInjector":
        """Schedule *place_id* to die just before *iteration* starts."""
        self.kills.append(ScriptedKill(place_id=place_id, iteration=iteration))
        return self

    def kill_at_phase(self, place_id: int, phase: int) -> "FailureInjector":
        """Schedule *place_id* to die just before runtime phase *phase*."""
        self.kills.append(ScriptedKill(place_id=place_id, phase=phase))
        return self

    def kill_at_time(self, place_id: int, time: float) -> "FailureInjector":
        """Schedule *place_id* to die once virtual time reaches *time*."""
        self.kills.append(ScriptedKill(place_id=place_id, time=time))
        return self

    # -- polling -------------------------------------------------------------

    def _take(self, predicate) -> List[int]:
        due: List[int] = []
        for idx, kill in enumerate(self.kills):
            if idx in self._fired:
                continue
            if predicate(kill):
                self._fired.add(idx)
                due.append(kill.place_id)
        return due

    def due_at_iteration(self, iteration: int) -> List[int]:
        """Place ids that should die before this iteration."""
        return self._take(
            lambda k: k.iteration is not None and iteration >= k.iteration
        )

    def due_at_phase(self, phase: int, global_time: float) -> List[int]:
        """Place ids that should die before this phase (incl. timed kills)."""
        return self._take(
            lambda k: (k.phase is not None and phase >= k.phase)
            or (k.time is not None and global_time >= k.time)
        )

    @property
    def pending(self) -> int:
        """Number of scheduled kills that have not fired yet."""
        return len(self.kills) - len(self._fired)


@dataclass
class ExponentialFailureModel:
    """Random fail-stop model with exponential inter-failure times.

    Used by the Young's-formula utilities and by the random-failure
    integration tests.  Draws (time, victim) pairs over a given set of
    candidate places; place zero is never a victim (immortality assumption).
    """

    mttf: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ValueError("mttf must be positive")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def schedule(
        self, candidate_ids: List[int], horizon: float
    ) -> List[ScriptedKill]:
        """Sample scripted kills up to virtual time *horizon*."""
        victims = [i for i in candidate_ids if i != 0]
        if not victims:
            return []
        kills: List[ScriptedKill] = []
        t = 0.0
        remaining = list(victims)
        while remaining:
            t += float(self._rng.exponential(self.mttf))
            if t > horizon:
                break
            victim = remaining.pop(int(self._rng.integers(len(remaining))))
            kills.append(ScriptedKill(place_id=victim, time=t))
        return kills
