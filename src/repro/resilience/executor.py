"""The resilient iterative executor (paper §V-A3, §V-B).

Runs a :class:`~repro.resilience.iterative.ResilientIterativeApp`:

* calls ``step()`` in a loop until ``is_finished()``;
* calls ``checkpoint(store)`` every *checkpoint_interval* iterations
  (at the beginning of the iteration body);
* on a ``DeadPlaceException``, cancels any half-taken checkpoint, builds a
  new place group according to the **restoration mode**, and calls
  ``restore(new_places, store, snapshot_iter)``.

Restoration modes (§V-B):

* ``SHRINK`` — continue on the survivors; a ``DistBlockMatrix`` keeps its
  data grid (fast block-by-block restore, possible load imbalance);
* ``SHRINK_REBALANCE`` — continue on the survivors with a recalculated
  grid (even load, expensive overlap-copy restore);
* ``REPLACE_REDUNDANT`` — substitute pre-started spare places for the dead
  ones at the *same group indices* (no rebalancing needed); falls back to
  a shrink mode when spares run out;
* ``REPLACE_ELASTIC`` — the paper's future-work mode, implemented here as
  an extension: dynamically create brand-new places to replace dead ones.

Checkpoint modes:

* ``"blocking"`` (the paper's scheme) — the application stalls until every
  snapshot partition has reached its backup place;
* ``"overlapped"`` — the snapshot is *captured* synchronously (the local
  copy must be consistent), but the backup transfers are scheduled on the
  engine's communication resources inside an overlap scope and complete
  concurrently with the next iterations' compute.  Deferred completions
  are drained before the next checkpoint (the previous checkpoint must be
  durable before it is superseded) and at the end of the run; only the
  residual that compute could not hide stalls the application — the
  asynchronous-checkpointing win ReStore and Kohl et al. report.

The executor accounts virtual time per segment (step / checkpoint /
restore), which is exactly the decomposition Tables III–IV report, plus
``checkpoint_stall_time`` — the time the application was actually blocked
by checkpointing, the number the overlapped mode drives down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Tuple

from repro.resilience.iterative import (
    ReconstructableIterativeApp,
    ResilientIterativeApp,
    RestoreContext,
)
from repro.resilience.placement import ParityPlacement, ReplicaPlacement
from repro.resilience.reconstruct import ReconstructionStore
from repro.resilience.store import AppResilientStore
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.exceptions import (
    DataLossError,
    DeadPlaceException,
    MultipleException,
)
from repro.runtime.failure import CorruptionModel
from repro.runtime.place import PlaceGroup
from repro.runtime.pool import PlaceLease
from repro.runtime.runtime import Runtime
from repro.util.validation import check_positive, require


class RestoreMode(Enum):
    """How the application adapts to the loss of places."""

    SHRINK = "shrink"
    SHRINK_REBALANCE = "shrink-rebalance"
    REPLACE_REDUNDANT = "replace-redundant"
    REPLACE_ELASTIC = "replace-elastic"


@dataclass
class ExecutionReport:
    """Timing and event decomposition of one executor run (virtual time)."""

    iterations_executed: int = 0
    useful_iterations: int = 0
    checkpoints: int = 0
    restores: int = 0
    #: Restore attempts that a further failure aborted mid-flight (the
    #: successful retry is counted in ``restores``, not here).
    aborted_restores: int = 0
    failures_observed: int = 0
    step_time: float = 0.0
    checkpoint_time: float = 0.0
    restore_time: float = 0.0
    #: Time the application was blocked by checkpointing: the visible
    #: (synchronous) part of every checkpoint plus any overlap residue the
    #: following compute could not hide.  Equals ``checkpoint_time`` in
    #: blocking mode.
    checkpoint_stall_time: float = 0.0
    #: Time spent in step/checkpoint attempts that a failure aborted.
    lost_time: float = 0.0
    total_time: float = 0.0
    checkpoint_durations: List[float] = field(default_factory=list)
    restore_durations: List[float] = field(default_factory=list)
    #: Durations of restore attempts aborted by a further failure.
    aborted_restore_durations: List[float] = field(default_factory=list)
    #: Iteration each successful restore rolled back to (always the latest
    #: committed checkpoint's iteration — the recovery invariant).
    restored_iterations: List[int] = field(default_factory=list)
    #: Scripted kills that never fired (e.g. the run converged first).
    pending_kills: List = field(default_factory=list)
    #: Recovery reads served by the stable-storage tier because every
    #: in-memory copy of a partition was gone.
    stable_fallback_reads: int = 0
    final_group_size: int = 0
    #: Virtual time spent waiting on the failure detector's verdict
    #: (the SUSPECTED → CONFIRMED_DEAD / cleared ladder).
    detection_wait_time: float = 0.0
    #: Places evicted on a CONFIRMED_DEAD verdict (membership updates).
    evictions: int = 0
    #: Evictions that fenced a place which was actually alive — the cost
    #: of a detector false positive (the run must still converge).
    false_positive_evictions: int = 0
    #: Recoveries (checkpoint retry or rollback) triggered by a transient
    #: fault: all suspects were cleared by the detector, no place evicted.
    transient_restores: int = 0
    #: Snapshot copies quarantined by checksum verification.
    quarantined_copies: int = 0
    #: Transient-network accounting (zero on a reliable network).
    dropped_messages: int = 0
    retransmissions: int = 0
    duplicate_messages: int = 0
    comm_timeouts: int = 0
    #: Delta-checkpointing accounting: partitions adopted clean (by
    #: reference, zero virtual-time cost) vs saved dirty, and the logical
    #: bytes of each.  All partitions count as dirty in full mode.
    ckpt_clean_partitions: int = 0
    ckpt_dirty_partitions: int = 0
    ckpt_clean_bytes: float = 0.0
    ckpt_dirty_bytes: float = 0.0
    #: Checkpoint-free recovery accounting (``recovery="reconstruct"``).
    #: Successful reconstructions — failures survived with **zero** lost
    #: iterations (``restored_iterations`` stays empty for these).
    reconstructions: int = 0
    #: Partitions rebuilt across all successful reconstructions.
    reconstructed_partitions: int = 0
    #: Virtual time spent reconstructing (successful + aborted attempts).
    reconstruct_time: float = 0.0
    #: Durations of successful reconstructions.
    reconstruct_durations: List[float] = field(default_factory=list)
    #: Reconstruction attempts aborted by a further failure mid-recovery.
    aborted_reconstructions: int = 0
    #: Failures the reconstruct path could not absorb (burst beyond the
    #: published redundancy, spare shortage, or no committed generation):
    #: each one fell back to classic checkpoint/restart and shows up in
    #: ``restores`` / ``restored_iterations`` as a rollback.
    fallback_restores: int = 0
    #: Virtual time spent re-publishing redundant state each iteration —
    #: the steady-state overhead reconstruction trades for rollback-free
    #: recovery (the analogue of ``checkpoint_time``).
    redundancy_time: float = 0.0
    #: Logical bytes pushed through redundancy publishing.
    redundancy_bytes: float = 0.0
    #: Static snapshot copies re-replicated after reconstructions.
    repaired_static_keys: int = 0
    #: Restore reads served by XOR-reconstructing a partition from its
    #: parity group (the erasure-coded rung between replicas and disk).
    parity_reconstructions: int = 0
    #: Scrub/repair passes run after replace-mode restores.
    scrubs: int = 0
    #: Scrub passes aborted by a further failure (the restore-retry loop
    #: folds the new deaths into the next recovery round).
    aborted_scrubs: int = 0
    #: Virtual time spent in scrub/repair passes.
    scrub_time: float = 0.0
    #: Copies (primaries + parity blocks) re-materialized by scrubs.
    scrub_repaired_copies: int = 0

    @property
    def checkpoint_pct(self) -> float:
        """Checkpoint share of total runtime (Table IV's C%)."""
        return 100.0 * self.checkpoint_time / self.total_time if self.total_time else 0.0

    @property
    def restore_pct(self) -> float:
        """Restore share of total runtime (Table IV's R%)."""
        return 100.0 * self.restore_time / self.total_time if self.total_time else 0.0

    @property
    def mean_checkpoint_time(self) -> float:
        """Mean duration of one checkpoint (Table III's metric)."""
        if not self.checkpoint_durations:
            return 0.0
        return sum(self.checkpoint_durations) / len(self.checkpoint_durations)


@dataclass
class _LoopState:
    """Every datum of ``IterativeExecutor.run`` that lives across one
    iteration boundary.

    Keeping the loop's working set on the executor (instead of in stack
    locals) is what makes a mid-run executor a picklable object graph: a
    :func:`repro.engine.fork.ForkContext.capture` taken at a boundary hook
    snapshots the loop exactly where it stands, and calling ``run()`` on
    the resumed copy continues bit-for-bit.  Per-attempt temporaries
    (``t_attempt`` and friends) never cross a boundary and stay locals.
    """

    report: ExecutionReport
    iteration: int = 0
    last_checkpoint_iter: Optional[int] = None
    restore_attempts: int = 0
    t_begin: float = 0.0
    #: Runtime-global counter baselines, recorded at run start so the
    #: report stays per-job when several executors share one runtime.
    fallback_base: int = 0
    parity_base: int = 0
    faults_base: Tuple[int, int, int, int] = (0, 0, 0, 0)


#: Valid values of ``IterativeExecutor``'s ``checkpoint_mode``.
CHECKPOINT_MODES = ("blocking", "overlapped")

#: Valid values of ``IterativeExecutor``'s ``recovery``:
#: ``"checkpoint"`` is the paper's rollback scheme; ``"reconstruct"`` is
#: checkpoint-free (ABFT) recovery for apps implementing
#: :class:`~repro.resilience.iterative.ReconstructableIterativeApp`, with
#: checkpoint/restart kept as the fallback rung of the recovery ladder.
RECOVERY_MODES = ("checkpoint", "reconstruct")


class IterativeExecutor:
    """Drives a resilient iterative application to completion."""

    def __init__(
        self,
        runtime: Runtime,
        app: ResilientIterativeApp,
        store: Optional[AppResilientStore] = None,
        checkpoint_interval: int = 10,
        mode: RestoreMode = RestoreMode.SHRINK,
        spare_fallback: RestoreMode = RestoreMode.SHRINK,
        max_restore_attempts: int = 10,
        checkpoint_mode: str = "blocking",
        replicas: Optional[int] = None,
        placement: Optional[ReplicaPlacement] = None,
        stable_fallback: Optional[bool] = None,
        detector: Optional[PhiAccrualDetector] = None,
        corruption: Optional[CorruptionModel] = None,
        delta: bool = False,
        lease: Optional[PlaceLease] = None,
        recovery: str = "checkpoint",
    ):
        check_positive(checkpoint_interval, "checkpoint_interval")
        require(
            spare_fallback in (RestoreMode.SHRINK, RestoreMode.SHRINK_REBALANCE),
            "spare_fallback must be a shrink mode",
        )
        require(
            checkpoint_mode in CHECKPOINT_MODES,
            f"checkpoint_mode must be one of {CHECKPOINT_MODES}",
        )
        require(
            recovery in RECOVERY_MODES,
            f"recovery must be one of {RECOVERY_MODES}",
        )
        if recovery == "reconstruct":
            require(
                isinstance(app, ReconstructableIterativeApp),
                "recovery='reconstruct' needs a ReconstructableIterativeApp "
                "(publish_redundant/reconstruct)",
            )
            require(
                not isinstance(placement, ParityPlacement),
                "recovery='reconstruct' publishes per-key replicas whose "
                "placement mirrors the checkpoint store's; parity placement "
                "applies to snapshot stores only — use recovery='checkpoint' "
                "with placement=parity[:g]",
            )
        self.runtime = runtime
        self.app = app
        #: The executor's slice of the place pool.  Replacement places are
        #: claimed through the lease, never from the runtime directly —
        #: which spares the lease is entitled to is the pool's business
        #: (dedicated / pooled / borrow economics).  Single-job callers get
        #: the degenerate whole-world lease and the classic behavior.
        self.lease = lease if lease is not None else runtime.default_lease
        if store is None:
            store = AppResilientStore(
                runtime,
                replicas=replicas,
                placement=placement,
                stable_fallback=stable_fallback,
                delta=delta,
            )
        self.store = store
        self.checkpoint_interval = checkpoint_interval
        self.mode = mode
        self.spare_fallback = spare_fallback
        self.max_restore_attempts = max_restore_attempts
        self.checkpoint_mode = checkpoint_mode
        #: Without a detector, failure knowledge is the oracle model
        #: (exceptions carry ground truth); with one, recovery decisions go
        #: through the SUSPECTED → CONFIRMED_DEAD ladder and pay detection
        #: latency in virtual time.
        self.detector = detector
        if detector is not None:
            runtime.attach_detector(detector)
        #: Post-commit bit-rot injection (chaos campaigns).
        self.corruption = corruption
        self.recovery = recovery
        #: Redundant-state store for checkpoint-free recovery; replica
        #: count and placement mirror the checkpoint store's knobs.
        self.rstore: Optional[ReconstructionStore] = (
            ReconstructionStore(
                runtime,
                replicas=replicas if replicas is not None else 1,
                placement=placement,
            )
            if recovery == "reconstruct"
            else None
        )
        #: Spares claimed by an aborted reconstruction attempt, kept for
        #: the next attempt (or the fallback restore) — a lease has no
        #: un-claim, so a claimed spare must not leak.
        self._spare_stash: List = []
        #: Live loop state (:class:`_LoopState`) once ``run()`` has
        #: started; the seam simulator forking captures and resumes at.
        self._loop: Optional[_LoopState] = None

    def _evict(self, place_id: int, report: ExecutionReport) -> None:
        """Act on a CONFIRMED_DEAD verdict: fence the place out.

        For a place that really died this is pure bookkeeping; for a false
        positive the group must still converge on one membership view, so
        the live place is killed (fenced) — the cost of imperfect
        detection, paid so that split-brain is impossible.
        """
        if place_id == self.runtime.DRIVER_ID:
            return
        report.evictions += 1
        if self.runtime.is_alive(place_id):
            report.false_positive_evictions += 1
            self.runtime.kill(place_id)

    # -- group construction per mode ---------------------------------------------

    def _claim_spare(self):
        """A spare from the stash of aborted-reconstruct claims, else the
        lease (claimed spares cannot be returned, so the stash drains
        first)."""
        self._spare_stash = [
            p for p in self._spare_stash if self.runtime.is_alive(p.id)
        ]
        if self._spare_stash:
            return self._spare_stash.pop()
        return self.lease.claim_spare()

    def _replacement_group(self, group: PlaceGroup) -> tuple:
        """New group + effective mode after a failure in *group*."""
        dead = [p for p in group if not self.runtime.is_alive(p.id)]
        mode = self.mode
        if mode == RestoreMode.REPLACE_REDUNDANT:
            stashed = sum(
                1 for p in self._spare_stash if self.runtime.is_alive(p.id)
            )
            if self.lease.spares_remaining + stashed < len(dead):
                # Spares exhausted (checked before claiming any, so none
                # are wasted): fall back to the configured shrink mode.
                return self.runtime.live_group(group), self.spare_fallback
            new_group = group
            for victim in dead:
                spare = self._claim_spare()
                if spare is None:
                    # Lost the race for the last shared spare (another
                    # lease claimed it between the check and the claim):
                    # shrink with what we already replaced.
                    return self.runtime.live_group(new_group), self.spare_fallback
                new_group = new_group.replace(victim, spare)
            return new_group, mode
        if mode == RestoreMode.REPLACE_ELASTIC:
            new_group = group
            for victim in dead:
                new_group = new_group.replace(victim, self.lease.add_place())
            return new_group, mode
        return self.runtime.live_group(group), mode

    # -- checkpoint-free recovery ----------------------------------------------

    def _try_reconstruct(self, report: ExecutionReport) -> bool:
        """The rung above rollback: rebuild the lost partitions in place.

        Returns ``True`` once the application is back at the last
        published boundary (zero lost iterations, counter not rolled
        back).  Returns ``False`` when this failure cannot be absorbed —
        no committed generation, spare shortage, a burst beyond the
        published redundancy (``DataLossError`` from a fetch), or too many
        attempts aborted by further failures — and the caller falls back
        to checkpoint/restart.

        A transient verdict with no confirmed deaths also lands here with
        an empty lost set: every place resets to the boundary from its
        *local* primary copies — consistent recovery from a mid-step
        transient without any communication or rollback.
        """
        rt = self.runtime
        rstore = self.rstore
        if not rstore.ready:
            return False
        attempts = 0
        while True:
            attempts += 1
            if attempts > self.max_restore_attempts:
                return False
            # The app's group only advances on success, so the dead set is
            # recomputed from the same base group each attempt; spares
            # from an aborted attempt sit in the stash and are reused.
            group = self.app.places
            dead_idx = [
                i for i in range(group.size) if not rt.is_alive(group[i].id)
            ]
            spares = []
            for _ in dead_idx:
                spare = self._claim_spare()
                if spare is None:
                    self._spare_stash.extend(spares)
                    return False
                spares.append(spare)
            new_group = group
            for idx, spare in zip(dead_idx, spares):
                new_group = new_group.replace(group[idx], spare)
            t0 = rt.now()
            rt.injector.enter_context("reconstruct")
            try:
                self.app.reconstruct(new_group, rstore, dead_idx)
            except DataLossError:
                report.reconstruct_time += rt.now() - t0
                self._spare_stash.extend(spares)
                return False
            except (DeadPlaceException, MultipleException) as again:
                # A further failure mid-reconstruction.  Every rebuild
                # primitive (rehome / fetch-reset / re-solve / repair) is
                # idempotent, so the retry simply redoes the recovery over
                # a refreshed group.
                report.reconstruct_time += rt.now() - t0
                report.aborted_reconstructions += 1
                report.failures_observed += len(again.places)
                self._spare_stash.extend(spares)
                if self.detector is not None:
                    confirmed, _, waited = self.detector.resolve(again.places)
                    report.detection_wait_time += waited
                    for pid in confirmed:
                        self._evict(pid, report)
                continue
            finally:
                rt.injector.exit_context("reconstruct")
            dt = rt.now() - t0
            report.reconstruct_time += dt
            report.reconstruct_durations.append(dt)
            report.reconstructions += 1
            report.reconstructed_partitions += len(dead_idx)
            return True

    # -- main loop ------------------------------------------------------------

    def run(
        self, boundary_hook: Optional[Callable[[int], bool]] = None
    ) -> Optional[ExecutionReport]:
        """Execute the application to completion; returns the timing report.

        Raises :class:`DataLossError` if a failure strikes before the first
        checkpoint has committed (there is nothing to roll back to) or if
        both copies of a snapshot partition were lost.

        *boundary_hook*, when given, is called at every iteration-commit
        boundary (the loop top, before failure polling) with the upcoming
        iteration number.  Returning ``False`` pauses the run — ``run()``
        returns ``None`` with all loop state parked on the executor, and a
        later ``run()`` call (on this executor or on a fork of it, see
        :mod:`repro.engine.fork`) continues exactly where it stopped.  The
        hook is a plain argument, never stored on the executor, so a
        captured executor stays picklable even when the hook is a closure.
        """
        rt = self.runtime
        state = self._loop
        if state is None:
            state = self._loop = _LoopState(report=ExecutionReport())
            state.t_begin = rt.now()
            # Runtime-global counters are recorded as deltas over this run,
            # so a report stays per-job when several executors share one
            # runtime.
            state.fallback_base = rt.stats.stable_fallback_reads
            state.parity_base = rt.stats.parity_reconstructions
            if rt.faults is not None:
                state.faults_base = (
                    rt.faults.dropped, rt.faults.retransmissions,
                    rt.faults.duplicates, rt.faults.timeouts,
                )

            if self.rstore is not None:
                # The redundant baseline must exist before any scripted kill
                # can fire (they fire at the loop top): from iteration 0 on,
                # reconstruction always has a committed generation.  A kill
                # can still land inside this very first publish (phase/time
                # triggers); the store's atomicity leaves it uncommitted and
                # the loop's failure machinery takes over on the first
                # iteration attempt.
                t0 = rt.now()
                try:
                    self.app.publish_redundant(self.rstore, state.iteration)
                    state.report.redundancy_time += rt.now() - t0
                except (DeadPlaceException, MultipleException):
                    state.report.lost_time += rt.now() - t0

        report = state.report
        while True:
            if boundary_hook is not None and not boundary_hook(state.iteration):
                return None
            if self.app.is_finished():
                break
            for victim in rt.injector.due_at_iteration(state.iteration):
                rt.kill(victim)
            if self.detector is not None:
                # Background confirmations (e.g. a partition silently eating
                # heartbeats) are acted on even without a failed message.
                for pid in self.detector.sweep():
                    self._evict(pid, report)
            t_attempt = rt.now()
            try:
                if (
                    state.iteration % self.checkpoint_interval == 0
                    and state.iteration != state.last_checkpoint_iter
                ):
                    t0 = rt.now()
                    rt.injector.enter_context("checkpoint")
                    try:
                        if self.checkpoint_mode == "overlapped":
                            # The previous checkpoint's backups must be
                            # durable before this one supersedes it: apply
                            # any deferred completions (the residue
                            # propagates into this checkpoint's visible
                            # duration), then capture the new snapshot with
                            # its backup transfers deferred.
                            rt.engine.drain_overlap()
                            with rt.engine.overlap():
                                self.app.checkpoint(self.store)
                        else:
                            self.app.checkpoint(self.store)
                    finally:
                        rt.injector.exit_context("checkpoint")
                    dt = rt.now() - t0
                    report.checkpoint_time += dt
                    report.checkpoint_stall_time += dt
                    report.checkpoint_durations.append(dt)
                    report.checkpoints += 1
                    state.last_checkpoint_iter = state.iteration
                    if self.corruption is not None:
                        self.corruption.strike(self.store)
                    t_attempt = rt.now()

                t0 = rt.now()
                self.app.step()
                report.step_time += rt.now() - t0
                report.iterations_executed += 1
                state.iteration += 1
                state.restore_attempts = 0
                if self.rstore is not None:
                    # Refresh the redundant state to the new boundary (a
                    # failure mid-publish leaves the previous generation
                    # committed — reconstruction then redoes one step).
                    t0 = rt.now()
                    self.app.publish_redundant(self.rstore, state.iteration)
                    report.redundancy_time += rt.now() - t0
            except (DeadPlaceException, MultipleException) as failure:
                # Any backups still in flight from an overlapped checkpoint
                # must land before recovery timing starts (their residue is
                # part of the failure's cost, not of the restore).
                rt.engine.drain_overlap()
                report.lost_time += rt.now() - t_attempt
                report.failures_observed += len(failure.places)
                failed_in_checkpoint = self.store.in_progress
                if failed_in_checkpoint:
                    self.store.cancel_snapshot()
                transient_only = False
                if self.detector is not None:
                    # The suspicion ladder: wait (in virtual time) until
                    # every suspect is either CONFIRMED_DEAD (evict) or
                    # cleared by a fresh heartbeat (transient fault — the
                    # group keeps its membership and merely rolls back).
                    confirmed, cleared, waited = self.detector.resolve(
                        failure.places
                    )
                    report.detection_wait_time += waited
                    for pid in confirmed:
                        self._evict(pid, report)
                    transient_only = bool(cleared) and not confirmed
                    if transient_only:
                        report.transient_restores += 1
                if transient_only and failed_in_checkpoint:
                    # Snapshot capture reads application state but never
                    # mutates it, so a purely transient fault during a
                    # checkpoint needs no rollback: the cancelled attempt
                    # is simply retried (bounded like restore attempts —
                    # a partition that never heals must not hang the run).
                    state.restore_attempts += 1
                    if state.restore_attempts > self.max_restore_attempts:
                        raise DataLossError(
                            f"checkpoint failed {state.restore_attempts - 1} "
                            "consecutive times under transient faults"
                        ) from failure
                    continue
                if self.rstore is not None:
                    if self._try_reconstruct(report):
                        # Back at the last published boundary: no rollback,
                        # no lost iterations beyond the interrupted step.
                        state.iteration = self.rstore.state_iteration
                        state.restore_attempts = 0
                        continue
                    # The burst exceeded the published redundancy (or
                    # spares ran out): drop to the classic rung.  The
                    # committed generation is now unreliable — and a
                    # shrinking restore would orphan its group binding —
                    # so it is rebuilt from scratch by the next publish.
                    report.fallback_restores += 1
                    self.rstore.invalidate()
                if self.store.latest() is None:
                    raise DataLossError(
                        "place failed before the first checkpoint committed; "
                        "no recovery point exists"
                    ) from failure
                # Retry the restore itself until it completes: a failure
                # mid-restore leaves the application's objects on
                # inconsistent place groups, so going back to step() is not
                # an option — only a full restore re-establishes a
                # consistent state.  Each aborted attempt is accounted
                # separately (``aborted_restores``) from successful ones.
                while True:
                    state.restore_attempts += 1
                    if state.restore_attempts > self.max_restore_attempts:
                        raise DataLossError(
                            f"restore failed {state.restore_attempts - 1} "
                            "consecutive times"
                        ) from failure
                    new_group, effective_mode = self._replacement_group(
                        self.app.places
                    )
                    require(new_group.size > 0, "no live places remain")
                    self.app.restore_context = RestoreContext(
                        rebalance=(effective_mode == RestoreMode.SHRINK_REBALANCE)
                    )
                    t0 = rt.now()
                    rt.injector.enter_context("restore")
                    try:
                        self.app.restore(
                            new_group, self.store, self.store.latest_iteration
                        )
                    except (DeadPlaceException, MultipleException) as again:
                        # A further failure during restore: record the
                        # aborted attempt and go around with a fresh group.
                        # The suspects go through the same ladder — a
                        # CONFIRMED_DEAD verdict shrinks the next attempt's
                        # group, and the resolve wait advances virtual time
                        # so a healing partition is eventually ridden out.
                        dt = rt.now() - t0
                        report.restore_time += dt
                        report.aborted_restores += 1
                        report.aborted_restore_durations.append(dt)
                        report.failures_observed += len(again.places)
                        if self.detector is not None:
                            confirmed, _, waited = self.detector.resolve(
                                again.places
                            )
                            report.detection_wait_time += waited
                            for pid in confirmed:
                                self._evict(pid, report)
                        continue
                    finally:
                        rt.injector.exit_context("restore")
                    restore_dt = rt.now() - t0
                    # Scrub/repair pass: with spares installed at the dead
                    # members' indices, re-materialize the copies the
                    # failure destroyed (missing primaries, lost parity
                    # blocks) so the *next* failure faces a fully redundant
                    # checkpoint again.  Shrink modes skip it — the old
                    # snapshot's homes are gone for good and the next
                    # checkpoint over the shrunken group supersedes it.
                    if effective_mode in (
                        RestoreMode.REPLACE_REDUNDANT,
                        RestoreMode.REPLACE_ELASTIC,
                    ):
                        t_scrub = rt.now()
                        rt.injector.enter_context("scrub")
                        try:
                            repaired = 0
                            for snap in self.store.latest().all_snapshots():
                                # Scrubbing runs between finishes, so due
                                # context kills are polled explicitly.
                                rt.poll_failures()
                                repair = getattr(snap, "repair", None)
                                if repair is not None:
                                    repaired += repair(new_group)
                        except (DeadPlaceException, MultipleException) as again:
                            # A kill mid-scrub: the restored state may span
                            # the new victims, so go around the full loop —
                            # another restore, then another scrub.
                            report.scrub_time += rt.now() - t_scrub
                            report.aborted_scrubs += 1
                            report.failures_observed += len(again.places)
                            if self.detector is not None:
                                confirmed, _, waited = self.detector.resolve(
                                    again.places
                                )
                                report.detection_wait_time += waited
                                for pid in confirmed:
                                    self._evict(pid, report)
                            continue
                        finally:
                            rt.injector.exit_context("scrub")
                        report.scrubs += 1
                        report.scrub_repaired_copies += repaired
                        report.scrub_time += rt.now() - t_scrub
                    break
                dt = restore_dt
                report.restore_time += dt
                report.restore_durations.append(dt)
                report.restores += 1
                state.iteration = self.store.latest_iteration
                state.last_checkpoint_iter = state.iteration
                report.useful_iterations = state.iteration
                report.restored_iterations.append(state.iteration)

        # The run is only finished once the final checkpoint is durable:
        # drain outstanding overlapped backups and charge the driver the
        # residual wait (blocking mode has nothing pending — no-op).
        report.checkpoint_stall_time += rt.engine.drain_overlap(
            sync_place_id=rt.DRIVER_ID
        )
        report.total_time = rt.now() - state.t_begin
        report.useful_iterations = state.iteration
        report.final_group_size = self.app.places.size
        report.pending_kills = rt.injector.unfired()
        report.stable_fallback_reads = (
            rt.stats.stable_fallback_reads - state.fallback_base
        )
        report.parity_reconstructions = (
            rt.stats.parity_reconstructions - state.parity_base
        )
        report.quarantined_copies = self.store.quarantined_copies()
        report.ckpt_clean_partitions = self.store.delta_clean_partitions
        report.ckpt_dirty_partitions = self.store.delta_dirty_partitions
        report.ckpt_clean_bytes = self.store.delta_clean_bytes
        report.ckpt_dirty_bytes = self.store.delta_dirty_bytes
        if self.rstore is not None:
            report.redundancy_bytes = self.rstore.redundancy_bytes
            report.repaired_static_keys = self.rstore.repaired_keys
        if rt.faults is not None:
            report.dropped_messages = rt.faults.dropped - state.faults_base[0]
            report.retransmissions = (
                rt.faults.retransmissions - state.faults_base[1]
            )
            report.duplicate_messages = (
                rt.faults.duplicates - state.faults_base[2]
            )
            report.comm_timeouts = rt.faults.timeouts - state.faults_base[3]
        return report


class NonResilientExecutor:
    """Baseline executor: plain loop, no checkpoints, no recovery.

    Used for the "non-resilient (no failure)" baselines of Figs. 5–7 and
    for the non-resilient sides of Figs. 2–4.
    """

    def __init__(self, runtime: Runtime, app):
        self.runtime = runtime
        self.app = app

    def run(self) -> ExecutionReport:
        report = ExecutionReport()
        t_begin = self.runtime.now()
        while not self.app.is_finished():
            t0 = self.runtime.now()
            self.app.step()
            report.step_time += self.runtime.now() - t0
            report.iterations_executed += 1
        report.total_time = self.runtime.now() - t_begin
        report.useful_iterations = report.iterations_executed
        report.final_group_size = self.app.places.size
        return report
