"""Fail-stop failure injection, including correlated chaos models.

The paper's experiments kill one place at a chosen iteration; the framework
must also survive arbitrary additional failures (including failures *during*
checkpoint or restore).  The injector supports:

* scripted kills — "kill place *p* before iteration *n*" or "at the *k*-th
  runtime phase" (a phase is one collective finish), which lets tests kill a
  place in the middle of an iteration or mid-checkpoint;
* **context-triggered** kills — "kill place *p* during the *n*-th
  checkpoint (or restore)": the executor announces entering/leaving those
  phases, and the kill fires at the first finish inside the matching one;
* random kills drawn from an exponential MTTF model, as assumed by Young's
  checkpoint-interval formula;
* **correlated** burst models for the chaos campaigns: an adjacent pair of
  places dying together (the scenario that defeats the paper's double
  store) and whole-"rack" bursts where every place of a failure group dies
  at once.

Scheduling a kill of place zero (immortal by Resilient X10 assumption) or a
second kill of a place that an earlier scripted kill already condemns is
rejected with a clear error — such schedules never fire and silently turn
chaos tests into no-ops.

The injector only *decides* when a place dies; the runtime performs the kill
(destroying the heap) and surfaces ``DeadPlaceException`` at the enclosing
finish, mirroring Resilient X10 semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

#: Context names the executor announces for ``during=`` triggers.
KILL_CONTEXTS = ("checkpoint", "restore")


@dataclass(frozen=True)
class ScriptedKill:
    """One planned failure."""

    place_id: int
    #: Fire before the executor starts this iteration (None = not used).
    iteration: Optional[int] = None
    #: Fire before the runtime executes this phase number (None = not used).
    phase: Optional[int] = None
    #: Fire once virtual global time reaches this value (None = not used).
    time: Optional[float] = None
    #: Fire at the first finish inside this executor context
    #: ("checkpoint" or "restore"); see ``occurrence``.
    during: Optional[str] = None
    #: With ``during``: fire inside the *occurrence*-th entry of the context
    #: (1 = the first checkpoint/restore, 2 = the second, ...).
    occurrence: int = 1

    def __post_init__(self) -> None:
        if self.place_id == 0:
            raise ValueError(
                "cannot script a kill of place 0: Resilient X10 assumes an "
                "immortal place zero (its death aborts the whole run)"
            )
        triggers = [
            t is not None
            for t in (self.iteration, self.phase, self.time, self.during)
        ]
        if sum(triggers) != 1:
            raise ValueError(
                "exactly one of iteration/phase/time/during must be set"
            )
        if self.during is not None and self.during not in KILL_CONTEXTS:
            raise ValueError(f"during must be one of {KILL_CONTEXTS}")
        if self.occurrence < 1:
            raise ValueError("occurrence must be >= 1")


class FailureInjector:
    """Decides which places die and when.

    The runtime polls :meth:`due_at_phase` at every phase boundary and the
    executor polls :meth:`due_at_iteration` at every iteration boundary.
    The executor additionally brackets checkpoints and restores with
    :meth:`enter_context` / :meth:`exit_context` so ``during=`` kills land
    mid-protocol (while backup transfers or partition reloads are in
    flight).
    """

    def __init__(self, kills: Optional[List[ScriptedKill]] = None):
        self.kills: List[ScriptedKill] = []
        self._fired: Set[int] = set()
        self._active_contexts: List[str] = []
        self._context_counts: Dict[str, int] = {}
        for kill in kills or []:
            self.add(kill)

    # -- scripting ----------------------------------------------------------

    def add(self, kill: ScriptedKill) -> "FailureInjector":
        """Schedule one validated kill (duplicates rejected).

        A place dies exactly once under fail-stop semantics: a second
        scripted kill of the same place could never fire and would silently
        weaken the schedule, so it is an error.
        """
        for existing in self.kills:
            if existing.place_id == kill.place_id:
                raise ValueError(
                    f"duplicate scripted kill of place {kill.place_id}: it is "
                    f"already condemned by {existing} and will be dead when "
                    f"this kill fires"
                )
        self.kills.append(kill)
        return self

    def kill_at_iteration(self, place_id: int, iteration: int) -> "FailureInjector":
        """Schedule *place_id* to die just before *iteration* starts."""
        return self.add(ScriptedKill(place_id=place_id, iteration=iteration))

    def kill_at_phase(self, place_id: int, phase: int) -> "FailureInjector":
        """Schedule *place_id* to die just before runtime phase *phase*."""
        return self.add(ScriptedKill(place_id=place_id, phase=phase))

    def kill_at_time(self, place_id: int, time: float) -> "FailureInjector":
        """Schedule *place_id* to die once virtual time reaches *time*."""
        return self.add(ScriptedKill(place_id=place_id, time=time))

    def kill_during(
        self, place_id: int, context: str, occurrence: int = 1
    ) -> "FailureInjector":
        """Schedule *place_id* to die inside the *occurrence*-th *context*
        ("checkpoint" or "restore")."""
        return self.add(
            ScriptedKill(place_id=place_id, during=context, occurrence=occurrence)
        )

    # -- executor context tracking -------------------------------------------

    def enter_context(self, name: str) -> None:
        """The executor is entering a checkpoint/restore protocol."""
        self._active_contexts.append(name)
        self._context_counts[name] = self._context_counts.get(name, 0) + 1

    def exit_context(self, name: str) -> None:
        """The executor left the innermost protocol context."""
        if self._active_contexts and self._active_contexts[-1] == name:
            self._active_contexts.pop()

    def _context_due(self, kill: ScriptedKill) -> bool:
        return (
            kill.during is not None
            and kill.during in self._active_contexts
            and self._context_counts.get(kill.during, 0) >= kill.occurrence
        )

    # -- polling -------------------------------------------------------------

    def _take(self, predicate) -> List[int]:
        due: List[int] = []
        for idx, kill in enumerate(self.kills):
            if idx in self._fired:
                continue
            if predicate(kill):
                self._fired.add(idx)
                due.append(kill.place_id)
        return due

    def due_at_iteration(self, iteration: int) -> List[int]:
        """Place ids that should die before this iteration."""
        return self._take(
            lambda k: k.iteration is not None and iteration >= k.iteration
        )

    def due_at_phase(self, phase: int, global_time: float) -> List[int]:
        """Place ids that should die before this phase (incl. timed and
        context-triggered kills)."""
        return self._take(
            lambda k: (k.phase is not None and phase >= k.phase)
            or (k.time is not None and global_time >= k.time)
            or self._context_due(k)
        )

    def unfired(self) -> List[ScriptedKill]:
        """Scripted kills that have not fired (yet).

        Exposed through ``ExecutionReport.pending_kills`` so tests notice
        schedules that never triggered.
        """
        return [k for i, k in enumerate(self.kills) if i not in self._fired]

    @property
    def pending(self) -> int:
        """Number of scheduled kills that have not fired yet."""
        return len(self.unfired())


@dataclass
class ExponentialFailureModel:
    """Random fail-stop model with exponential inter-failure times.

    Used by the Young's-formula utilities and by the random-failure
    integration tests.  Draws (time, victim) pairs over a given set of
    candidate places; place zero is never a victim (immortality assumption).
    """

    mttf: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ValueError("mttf must be positive")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def schedule(
        self, candidate_ids: List[int], horizon: float
    ) -> List[ScriptedKill]:
        """Sample scripted kills up to virtual time *horizon*."""
        victims = [i for i in candidate_ids if i != 0]
        if not victims:
            return []
        kills: List[ScriptedKill] = []
        t = 0.0
        remaining = list(victims)
        while remaining:
            t += float(self._rng.exponential(self.mttf))
            if t > horizon:
                break
            victim = remaining.pop(int(self._rng.integers(len(remaining))))
            kills.append(ScriptedKill(place_id=victim, time=t))
        return kills


@dataclass
class AdjacentPairFailureModel:
    """Correlated bursts: both places of an adjacent pair die *together*.

    Adjacency is positional in *candidate_ids* (the snapshot ring order) —
    exactly the correlation that destroys both copies of a partition in the
    paper's double store.  Events arrive at exponential intervals; each
    event picks one random not-yet-condemned adjacent pair (place zero
    never participates) and schedules both members at the same instant.
    """

    mttf: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ValueError("mttf must be positive")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def schedule(
        self, candidate_ids: List[int], horizon: float
    ) -> List[ScriptedKill]:
        """Sample simultaneous adjacent-pair kills up to *horizon*."""
        kills: List[ScriptedKill] = []
        condemned: Set[int] = {0}
        t = 0.0
        while True:
            pairs = [
                (a, b)
                for a, b in zip(candidate_ids, candidate_ids[1:])
                if a not in condemned and b not in condemned
            ]
            if not pairs:
                break
            t += float(self._rng.exponential(self.mttf))
            if t > horizon:
                break
            a, b = pairs[int(self._rng.integers(len(pairs)))]
            condemned.update((a, b))
            kills.append(ScriptedKill(place_id=a, time=t))
            kills.append(ScriptedKill(place_id=b, time=t))
        return kills


@dataclass
class RackFailureModel:
    """Same-"rack" correlated failures: a whole failure group dies at once.

    Places are grouped into racks of *rack_size* consecutive ids (the
    shared-power/shared-switch unit).  Each exponential event kills every
    not-yet-dead member of one random rack simultaneously; place zero is
    spared even when its rack is hit (immortality assumption), so the
    paper's framework observes the worst legal burst.
    """

    rack_size: int
    mttf: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.mttf <= 0:
            raise ValueError("mttf must be positive")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def racks(self, candidate_ids: Sequence[int]) -> List[List[int]]:
        """The failure groups over *candidate_ids* (place zero excluded)."""
        by_rack: Dict[int, List[int]] = {}
        for pid in candidate_ids:
            if pid == 0:
                continue
            by_rack.setdefault(pid // self.rack_size, []).append(pid)
        return [by_rack[r] for r in sorted(by_rack)]

    def schedule(
        self, candidate_ids: List[int], horizon: float
    ) -> List[ScriptedKill]:
        """Sample whole-rack bursts up to virtual time *horizon*."""
        kills: List[ScriptedKill] = []
        remaining = self.racks(candidate_ids)
        t = 0.0
        while remaining:
            t += float(self._rng.exponential(self.mttf))
            if t > horizon:
                break
            rack = remaining.pop(int(self._rng.integers(len(remaining))))
            for pid in rack:
                kills.append(ScriptedKill(place_id=pid, time=t))
        return kills
