"""Figure 5 — Linear Regression: total runtime with a single failure under
the three restoration modes (plus the non-resilient no-failure baseline).

Protocol: 30 iterations, checkpoints every 10, one place killed at
iteration 15; total runtime includes resilient-X10 bookkeeping,
checkpointing, restoration and (for shrink-rebalance) rebalancing.
"""

from _restore_common import assert_shapes, run_and_report

_cache = {}


def test_fig5_linreg_restore_modes(benchmark):
    out = benchmark.pedantic(
        lambda: run_and_report("linreg", "Figure 5"), rounds=1, iterations=1
    )
    _cache["out"] = out
    assert_shapes(out)
