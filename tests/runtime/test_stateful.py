"""Hypothesis stateful testing of the runtime's core invariants.

A random interleaving of finishes, point-to-point transfers, kills, spare
claims and elastic place creation must never violate:

* virtual clocks are monotone non-decreasing per place;
* dead places stay dead and their heaps stay destroyed;
* the driver's clock is the maximum the finish protocol requires;
* statistics counters are consistent (finishes counted once, task counts
  match live places).
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.runtime import CostModel, DeadPlaceException, MultipleException, Runtime


class RuntimeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.rt = Runtime(
            5, cost=CostModel.laptop(), resilient=True, spares=1
        )
        self.clock_floor = {pid: 0.0 for pid in range(6)}
        self.finishes_seen = 0

    # -- helpers -----------------------------------------------------------

    def _live_ids(self):
        return [pid for pid in self.clock_floor if self.rt.is_alive(pid)]

    # -- rules -----------------------------------------------------------------

    @rule(data=st.data())
    def run_finish(self, data):
        group = self.rt.live_world()
        if group.size == 0:
            return
        flops = data.draw(st.floats(0, 1e6))
        try:
            self.rt.finish_all(group, lambda ctx: ctx.charge_flops(flops))
        except (DeadPlaceException, MultipleException):
            pass
        self.finishes_seen += 1

    @rule(data=st.data())
    def transfer(self, data):
        live = self._live_ids()
        if len(live) < 2:
            return
        src = data.draw(st.sampled_from(live))
        dst = data.draw(st.sampled_from([p for p in live if p != src]))
        nbytes = data.draw(st.floats(0, 1e6))
        done = self.rt.transfer(src, dst, nbytes, self.rt.clock.now(src))
        assert done >= self.rt.clock.now(src) or nbytes == 0

    @rule(data=st.data())
    def kill_place(self, data):
        candidates = [pid for pid in self._live_ids() if pid != 0]
        if not candidates:
            return
        victim = data.draw(st.sampled_from(candidates))
        self.rt.kill(victim)
        assert not self.rt.is_alive(victim)

    @rule()
    def claim_spare(self):
        spare = self.rt.claim_spare()
        if spare is not None:
            assert self.rt.is_alive(spare.id)

    @rule()
    def add_elastic_place(self):
        place = self.rt.add_place()
        self.clock_floor[place.id] = self.rt.clock.now(place.id)
        assert self.rt.is_alive(place.id)

    @rule(data=st.data())
    def heap_roundtrip(self, data):
        live = self._live_ids()
        if not live:
            return
        pid = data.draw(st.sampled_from(live))
        value = data.draw(st.integers())
        self.rt.heap_of(pid).put("probe", value)
        assert self.rt.heap_of(pid).get("probe") == value

    # -- invariants -----------------------------------------------------------

    @invariant()
    def clocks_never_go_backwards(self):
        for pid, floor in list(self.clock_floor.items()):
            if pid in self.rt.clock:
                now = self.rt.clock.now(pid)
                assert now >= floor - 1e-12
                self.clock_floor[pid] = now

    @invariant()
    def place_zero_immortal(self):
        assert self.rt.is_alive(0)

    @invariant()
    def dead_heaps_stay_destroyed(self):
        for pid in self.rt.dead_ids():
            with_pytest_raises = False
            try:
                self.rt.heap_of(pid)
            except DeadPlaceException:
                with_pytest_raises = True
            assert with_pytest_raises

    @invariant()
    def stats_consistent(self):
        assert self.rt.stats.finishes >= self.finishes_seen
        assert self.rt.stats.tasks >= 0
        assert self.rt.stats.bytes_sent >= 0


TestRuntimeMachine = RuntimeMachine.TestCase
