"""The APGAS runtime simulator — the X10 substrate of this reproduction.

A :class:`Runtime` owns a set of places (each with a private heap and a
virtual clock), executes *finish*-scoped task groups against them, injects
fail-stop failures, and — when resilient — charges the place-zero
bookkeeping ledger that Resilient X10 uses to track task lifecycles.

Execution model
---------------
The simulator is sequential and deterministic: closures run one after
another in the host interpreter, but each is bound to exactly one place's
heap via a :class:`PlaceContext`, and time is charged per place on virtual
clocks.  A ``finish_all`` models X10's ubiquitous

.. code-block:: text

    finish for (p in group) at (p) async { body(p); }

pattern (the backbone of every GML collective operation):

1. the caller (the "driver", place zero) serially spawns one task per group
   place — each spawn costs ``task_spawn_time`` plus one message;
2. each task starts when its spawn message arrives, runs ``body`` (which
   charges compute to that place's clock), and sends a termination message
   back;
3. the caller serially processes the termination messages
   (``task_join_time`` each) — the finish join;
4. under resilience, every spawn and termination additionally posts an
   event to the serialized place-zero ledger, and the finish cannot
   complete until the ledger has drained its events.

Tasks addressed to dead places are not run; X10 semantics are preserved by
letting every *live* task complete and then raising ``DeadPlaceException``
(or ``MultipleException``) at the finish.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.engine.scheduler import Scheduler
from repro.engine.timeline import Timeline
from repro.runtime.cost import CostModel, validate_cost_model
from repro.runtime.exceptions import (
    DeadPlaceException,
    PlaceZeroDeadError,
    collapse_failures,
)
from repro.runtime.failure import FailureInjector, RetryPolicy, TransientFaultModel
from repro.runtime.finish import FinishReport, PlaceZeroLedger
from repro.runtime.heap import PlaceHeap
from repro.runtime.place import Place, PlaceGroup
from repro.runtime.pool import PlaceLease, PlacePool
from repro.util.logging import TraceLog
from repro.util.validation import check_positive, require


@dataclass
class RuntimeStats:
    """Global counters exposed for tests and the overhead benchmarks."""

    finishes: int = 0
    tasks: int = 0
    messages: int = 0
    bytes_sent: float = 0.0
    kills: int = 0
    #: Snapshot restore reads that fell through every in-memory replica
    #: to the stable-storage tier (the last rung of the recovery ladder).
    stable_fallback_reads: int = 0
    #: Partitions rebuilt by XOR from a parity group (the erasure-coded
    #: rung of the ladder, between the replicas and the disk).
    parity_reconstructions: int = 0
    #: Dead places brought back by :meth:`Runtime.revive` (pool repair).
    repairs: int = 0
    finish_reports: List[FinishReport] = field(default_factory=list)

    def reset_reports(self) -> None:
        self.finish_reports.clear()


class PlaceContext:
    """Execution context of one task: bound to a single place's heap.

    Closures receive a context and may only touch their own place's heap
    directly; remote data requires :meth:`read_remote` / :meth:`write_remote`
    (the moral equivalent of X10's ``at``), which charge communication and
    honour failure semantics.
    """

    __slots__ = ("runtime", "place", "heap")

    def __init__(self, runtime: "Runtime", place: Place, heap: PlaceHeap):
        self.runtime = runtime
        self.place = place
        self.heap = heap

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """This place's current virtual time."""
        return self.runtime.clock.now(self.place.id)

    def charge_seconds(self, seconds: float) -> None:
        """Charge raw seconds of work to this place."""
        if seconds != 0.0:
            self.runtime.clock.advance(self.place.id, seconds)

    def charge_flops(self, n: float) -> None:
        """Charge *n* floating-point operations to this place."""
        dt = self.runtime.cost.flops(n)
        if dt != 0.0:
            self.runtime.clock.advance(self.place.id, dt)

    def charge_memcpy(self, nbytes: float) -> None:
        """Charge a local memory copy of *nbytes* to this place."""
        dt = self.runtime.cost.memcpy(nbytes)
        if dt != 0.0:
            self.runtime.clock.advance(self.place.id, dt)

    # -- remote access --------------------------------------------------------

    def read_remote(self, src_place_id: int, key: Any, nbytes: float) -> Any:
        """Fetch a heap entry from another place (request + reply messages).

        The transfer is served by the owner's *communication server* — it
        runs concurrently with the owner's own task, but concurrent readers
        of one owner serialize behind each other (the NIC/serialization
        bottleneck).  Raises ``DeadPlaceException`` if the owner is dead.
        """
        rt = self.runtime
        if src_place_id == self.place.id:
            return self.heap.get(key)
        rt.check_alive(src_place_id)
        if rt.engine.zero_fast():
            rt.stats.messages += 2
            rt.stats.bytes_sent += rt.cost.scaled_bytes(nbytes)
            return rt.heap_of(src_place_id).get(key)
        cost = rt.cost
        clock = rt.clock
        t_req = self.now + cost.message(0)
        t_reply = rt.transfer(src_place_id, self.place.id, nbytes, t_req)
        clock.set_at_least(self.place.id, t_reply)
        rt.stats.messages += 2
        rt.stats.bytes_sent += cost.scaled_bytes(nbytes)
        return rt.heap_of(src_place_id).get(key)

    def write_remote(self, dst_place_id: int, key: Any, value: Any, nbytes: float) -> None:
        """Push a value into another place's heap (one payload message).

        The receive is served by the destination's communication server:
        concurrent with its task, serialized against other transfers it is
        absorbing.
        """
        rt = self.runtime
        if dst_place_id == self.place.id:
            self.heap.put(key, value)
            return
        rt.check_alive(dst_place_id)
        cost = rt.cost
        clock = rt.clock
        rt.transfer(self.place.id, dst_place_id, nbytes, self.now)
        clock.set_at_least(self.place.id, self.now + cost.message(0))
        rt.stats.messages += 1
        rt.stats.bytes_sent += cost.scaled_bytes(nbytes)
        rt.heap_of(dst_place_id).put(key, value)


class Runtime:
    """A simulated APGAS world of places.

    Parameters
    ----------
    nplaces:
        Number of *active* places (the initial world).
    cost:
        Virtual-time :class:`CostModel`; defaults to all-zero rates.
    resilient:
        When True, every finish pays place-zero bookkeeping — this switch is
        the paper's "resilient X10" vs "non-resilient X10" axis (Figs. 2–4).
    spares:
        Extra *redundant* places started up-front for the replace-redundant
        restoration mode.  They are alive but hold no application data.
    """

    def __init__(
        self,
        nplaces: int,
        cost: Optional[CostModel] = None,
        resilient: bool = False,
        spares: int = 0,
        trace: bool = False,
    ):
        check_positive(nplaces, "nplaces")
        require(spares >= 0, "spares must be >= 0")
        self.cost = cost if cost is not None else CostModel.zero()
        err = validate_cost_model(self.cost)
        require(err is None, err or "")
        self.resilient = resilient

        total = nplaces + spares
        all_places = [Place(i) for i in range(total)]
        self.world = PlaceGroup(all_places[:nplaces])
        #: Ownership bookkeeping: free places, leases, and the spare
        #: reserve all live behind the pool (single-job paths see it as a
        #: degenerate one-lease pool via :attr:`default_lease`).
        self.pool = PlacePool(self, all_places[:nplaces], all_places[nplaces:])
        self._default_lease: Optional[PlaceLease] = None
        #: Every Place object ever created, by id (repair needs the object
        #: back after its pool entry went stale).
        self._places: Dict[int, Place] = {p.id: p for p in all_places}
        self._heaps: Dict[int, PlaceHeap] = {p.id: PlaceHeap(p.id) for p in all_places}
        self._alive: Dict[int, bool] = {p.id: True for p in all_places}
        #: The discrete-event engine: owns the virtual clock, every
        #: contended resource (communication servers, NICs, ledger, disk)
        #: and the typed event timeline.
        self.engine = Scheduler(self.cost, timeline=Timeline(enabled=trace))
        self.clock = self.engine.clock
        for p in all_places:
            self.engine.register_place(p.id)
        self._next_place_id = total

        self.ledger = PlaceZeroLedger(
            self.cost.ledger_event_time, resource=self.engine.ledger
        )
        self.injector = FailureInjector()
        self.stats = RuntimeStats()
        self.trace = TraceLog(enabled=trace)
        self.phase = 0
        #: Per-place context cache (contexts are stateless beyond their
        #: heap reference; a destroyed/replaced heap invalidates the entry).
        self._ctx_cache: Dict[int, PlaceContext] = {}
        #: Virtual time at which each dead place died (for the detector).
        self._death_times: Dict[int, float] = {}
        #: Heartbeat failure detector (attached by the executor / CLI).
        self.detector = None

    # -- transient faults ------------------------------------------------------

    @property
    def faults(self) -> Optional[TransientFaultModel]:
        """The transient message-fault model (owned by the engine)."""
        return self.engine.faults

    @property
    def retry_policy(self) -> RetryPolicy:
        return self.engine.retry_policy

    def set_faults(
        self,
        faults: Optional[TransientFaultModel],
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """Install (or clear) transient message faults on the engine."""
        self.engine.faults = faults
        if retry_policy is not None:
            self.engine.retry_policy = retry_policy

    def set_straggler(self, place_id: int, factor: float) -> None:
        """Make a place compute *factor* times slower (1.0 = full speed).

        The slowdown stretches work charged to the place's clock — compute
        and its share of protocol work — but not network transit; it also
        stretches the place's heartbeat emission interval, which is what a
        starving process looks like to the failure detector.
        """
        self.check_alive(place_id)
        self.clock.set_slowdown(place_id, factor)

    def attach_detector(self, detector) -> None:
        """Install a failure detector (e.g. ``PhiAccrualDetector(rt)``)."""
        self.detector = detector

    def all_place_ids(self) -> List[int]:
        """Ids of every place ever created (dead or alive, incl. spares)."""
        return sorted(self._alive)

    def death_time(self, place_id: int) -> Optional[float]:
        """Virtual time of a place's death (None while it lives)."""
        return self._death_times.get(place_id)

    # -- place management ------------------------------------------------------

    def is_alive(self, place_id: int) -> bool:
        """True if the place exists and has not been killed."""
        return self._alive.get(place_id, False)

    def check_alive(self, place_id: int) -> None:
        """Raise ``DeadPlaceException`` unless the place is alive."""
        if not self._alive.get(place_id, False):
            raise DeadPlaceException(place_id)

    def heap_of(self, place_id: int) -> PlaceHeap:
        """The heap of a live place (``DeadPlaceException`` otherwise)."""
        if self._alive.get(place_id, False):
            return self._heaps[place_id]
        raise DeadPlaceException(place_id)

    def kill(self, place_id: int) -> None:
        """Fail-stop the place: destroy its heap, mark it dead.

        The engine purges the place's scheduler state (communication-server
        frontiers, deferred overlap arrivals) and retires its resources, so
        scheduling further work on them raises ``DeadPlaceException``.
        Killing place zero aborts the whole run (Resilient X10 assumes an
        immortal place zero).
        """
        if place_id == 0:
            raise PlaceZeroDeadError()
        if not self.is_alive(place_id):
            return
        self._alive[place_id] = False
        self._death_times[place_id] = self.clock.global_time()
        self._heaps[place_id].destroy()
        self.pool.on_place_killed(place_id)
        self.engine.purge_place(place_id)
        self.stats.kills += 1
        self.trace.emit("kill", self.clock.global_time(), place=place_id)

    def revive(self, place_id: int) -> Place:
        """Repair a dead place: fresh empty heap, clock at the current time.

        Models an operator replacing the failed host (ROADMAP pool repair):
        the place id returns to service with *none* of its old state — heap
        contents died with the process — so it is only useful as a spare
        for future leases/restores.  The pool re-files it where it came
        from (reserve or free list), a detector is told to re-monitor it,
        and a startup message round-trip is charged before it is usable.
        """
        require(
            place_id in self._alive and not self._alive[place_id],
            f"revive requires a dead place, got {place_id}",
        )
        place = self._places[place_id]
        self._alive[place_id] = True
        self._heaps[place_id] = PlaceHeap(place_id)
        self._death_times.pop(place_id, None)
        self.engine.revive_place(place_id)
        self.clock.set_at_least(
            place_id, self.clock.global_time() + self.cost.message(0)
        )
        self.pool.on_place_revived(place)
        if self.detector is not None:
            self.detector.forget(place_id)
            self.detector.monitor(place_id, from_time=self.clock.now(place_id))
        self.stats.repairs += 1
        self.trace.emit("repair", self.clock.global_time(), place=place_id)
        return place

    def dead_ids(self) -> List[int]:
        """Ids of all places that have died so far."""
        return sorted(pid for pid, alive in self._alive.items() if not alive)

    def live_group(self, group: PlaceGroup) -> PlaceGroup:
        """Survivors of *group*, order preserved, indices shifted."""
        return group.filter_dead(self.dead_ids())

    def claim_spare(self) -> Optional[Place]:
        """Take one live spare place (or ``None`` if exhausted)."""
        return self.pool.claim_reserve()

    @property
    def spares_remaining(self) -> int:
        """Number of live spare places not yet claimed (O(1))."""
        return self.pool.reserve_remaining

    @property
    def default_lease(self) -> PlaceLease:
        """The degenerate whole-world lease used by single-job paths.

        Created lazily: it covers every free place (place zero included,
        which stays the driver) with ``pooled`` access to the global spare
        reserve, so executors that never heard of leases behave exactly as
        before the pool existed.
        """
        if self._default_lease is None or self._default_lease.state != "active":
            self._default_lease = self.pool.lease(
                size=self.pool.free_live,
                name="default",
                economics="pooled",
                include_place_zero=True,
            )
        return self._default_lease

    def add_place(self) -> Place:
        """Elastically create a brand-new place (Replace-Elastic extension).

        The new place starts with an empty heap and a clock at the current
        global time plus a process-startup charge.
        """
        place = Place(self._next_place_id)
        self._next_place_id += 1
        self._places[place.id] = place
        self._heaps[place.id] = PlaceHeap(place.id)
        self._alive[place.id] = True
        # Process spawn is not free: charge one message round-trip of setup.
        self.engine.register_place(
            place.id, self.clock.global_time() + self.cost.message(0)
        )
        self.trace.emit("add_place", self.clock.global_time(), place=place.id)
        if self.detector is not None:
            self.detector.monitor(place.id, from_time=self.clock.now(place.id))
        return place

    def serve_transfer(self, place_id: int, t_request: float, duration: float) -> float:
        """Schedule a transfer on a place's communication server.

        Returns the completion time.  The server is busy from the request
        until completion; subsequent transfers involving the same place
        queue behind it.  The served place's timeline is advanced to the
        completion (absorbed into its current finish task's end via the
        arrival backlog).  Delegates to the engine's per-place server
        resource.
        """
        return self.engine.serve(place_id, t_request, duration)

    def transfer(self, src_id: int, dst_id: int, nbytes: float, t_request: float) -> float:
        """Topology-aware point-to-point transfer; returns completion time.

        Without node topology (``cost.num_nodes == 0``) this is the plain
        per-place communication server.  With topology, intra-node
        transfers use the shared-memory rate and the destination place's
        server, while cross-node transfers serialize through *both*
        endpoints' node NICs — the contention that makes checkpointing
        4-places-per-node clusters slower than per-place models predict.
        All of it is served by engine resources.
        """
        return self.engine.transfer(src_id, dst_id, nbytes, t_request)

    # -- failure-injection hook ---------------------------------------------

    def _fire_due_failures(self) -> None:
        injector = self.injector
        if injector.all_fired:
            return  # nothing pending: skip the global-time max + scan
        for victim in injector.due_at_phase(self.phase, self.clock.global_time()):
            self.kill(victim)

    def poll_failures(self) -> None:
        """Fire due scripted kills outside a phase boundary.

        Kills normally land at ``finish_tasks`` entry; protocol code that
        runs *between* finishes for a long stretch (the scrub/repair pass)
        polls explicitly so ``kill_during(context=...)`` triggers can land
        inside it too.
        """
        self._fire_due_failures()

    # -- execution -----------------------------------------------------------

    DRIVER_ID = 0

    @contextmanager
    def job_context(
        self,
        lease: PlaceLease,
        injector: Optional[FailureInjector] = None,
        detector=None,
    ) -> Iterator[PlaceLease]:
        """Run one tenant's job scoped to its lease.

        Inside the context the lease's driver place plays place zero's
        role: ``DRIVER_ID`` (hence finish joins, heartbeat sinks, ``at``
        return paths and barriers) points at the lease driver, and the
        runtime's failure injector / detector are swapped for the
        job-scoped ones, so kills scripted for tenant A cannot fire while
        tenant B is executing.  Everything is restored on exit, even when
        the job aborts.
        """
        require(lease.state == "active", f"lease {lease.name!r} is released")
        self.check_alive(lease.driver.id)
        prev_driver = self.DRIVER_ID
        prev_injector = self.injector
        prev_detector = self.detector
        self.DRIVER_ID = lease.driver.id
        if injector is not None:
            self.injector = injector
        if detector is not None:
            self.detector = detector
        try:
            yield lease
        finally:
            self.DRIVER_ID = prev_driver
            self.injector = prev_injector
            self.detector = prev_detector

    def now(self) -> float:
        """The driver's (place zero's) current virtual time."""
        return self.clock.now(self.DRIVER_ID)

    def context(self, place: Place) -> PlaceContext:
        """Build a context for a live place (library-internal).

        Cached per place id: contexts carry no per-call state, and a kill
        destroys the heap (``heap.destroyed``) while a revive installs a
        *new* heap object — both make the cached entry detectably stale.
        """
        ctx = self._ctx_cache.get(place.id)
        if ctx is not None and not ctx.heap.destroyed:
            return ctx
        ctx = PlaceContext(self, place, self.heap_of(place.id))
        self._ctx_cache[place.id] = ctx
        return ctx

    def at(
        self,
        place: Place,
        fn: Callable[[PlaceContext], Any],
        arg_bytes: float = 0.0,
        ret_bytes: float = 0.0,
    ) -> Any:
        """Run ``fn`` at *place* and return its result to the driver.

        Models ``at (p) { ... }``: ship the closure, run it, ship the result
        back.  Raises ``DeadPlaceException`` if the target is dead.
        """
        self.check_alive(place.id)
        clock, cost = self.clock, self.cost
        driver = self.DRIVER_ID
        if place.id == driver:
            result = fn(self.context(place))
            return result
        t_arrive = max(clock.now(driver), clock.now(place.id)) + cost.message(arg_bytes)
        clock.set_at_least(place.id, t_arrive)
        result = fn(self.context(place))
        t_back = clock.now(place.id) + cost.message(ret_bytes)
        clock.set_at_least(driver, t_back)
        self.stats.messages += 2
        self.stats.bytes_sent += cost.scaled_bytes(arg_bytes + ret_bytes)
        return result

    def finish_all(
        self,
        group: PlaceGroup,
        fn: Callable[[PlaceContext], Any],
        arg_bytes: float = 0.0,
        ret_bytes: float = 0.0,
        label: str = "",
    ) -> List[Any]:
        """Run ``fn`` once at every place of *group* under one finish.

        Returns the per-place results in group order (``None`` in the slots
        of dead places).  After every live task has completed, raises
        ``DeadPlaceException`` / ``MultipleException`` if any group member
        was dead or died during the phase — exactly X10's finish semantics.
        """
        cost = self.cost
        if cost.is_zero and not self.clock._moved and not self.engine._tl_enabled:
            # Same zero-time fast path as :meth:`finish_tasks`, minus the
            # ``(place, fn)`` pair list — this is the hottest call in a
            # chaos campaign, so the constant-``fn`` loop is worth its own
            # copy.  Stats accumulation mirrors the slow path exactly.
            self.phase += 1
            self._fire_due_failures()
            driver = self.DRIVER_ID
            alive = self._alive
            stats = self.stats
            ctx_cache = self._ctx_cache
            arg_scaled = cost.scaled_bytes(arg_bytes)
            failures = []
            results = [None] * len(group)
            n_live = 0
            for index, place in enumerate(group):
                pid = place.id
                if not alive.get(pid, False):
                    failures.append(DeadPlaceException(pid))
                    continue
                n_live += 1
                if pid != driver:
                    stats.messages += 1
                    stats.bytes_sent += arg_scaled
                ctx = ctx_cache.get(pid)
                if ctx is None or ctx.heap.destroyed:
                    ctx = self.context(place)
                try:
                    results[index] = fn(ctx)
                except DeadPlaceException as exc:
                    failures.append(exc)
            report = self.engine.complete_finish_zero(
                self,
                label,
                n_live,
                n_live,
                2 * n_live if self.resilient else 0,
                ret_bytes=ret_bytes,
                dead_places=(
                    [pid for f in failures for pid in getattr(f, "places", [])]
                    if failures
                    else None
                ),
            )
            if self.trace.enabled:
                self.trace.emit(
                    "finish",
                    report.end,
                    label=label,
                    tasks=n_live,
                    dead=report.dead_places,
                )
            if failures:
                raise collapse_failures(failures)
            return results
        return self.finish_tasks(
            [(place, fn) for place in group],
            arg_bytes=arg_bytes,
            ret_bytes=ret_bytes,
            label=label,
        )

    def finish_tasks(
        self,
        tasks: Sequence,
        arg_bytes: float = 0.0,
        ret_bytes: float = 0.0,
        label: str = "",
    ) -> List[Any]:
        """Run an explicit list of ``(place, fn)`` tasks under one finish.

        The general form behind :meth:`finish_all` (and the ``with
        rt.finish()`` sugar): tasks may target any places, including the
        same place several times.
        """
        self.phase += 1
        self._fire_due_failures()

        clock, cost = self.clock, self.cost
        driver = self.DRIVER_ID

        if cost.is_zero and not clock._moved and not self.engine._tl_enabled:
            # Zero-time fast path: every clock read below would return 0.0
            # and every charge would write 0.0 back (see Scheduler.zero_fast
            # for the invariant), so the per-task time bookkeeping — the
            # avail map, the spawn/arrival recurrences, the ledger arrival
            # list — is dead weight.  Chaos campaigns run their thousands
            # of schedules under CostModel.zero() and live here.  Stats
            # accumulation mirrors the slow path operation for operation.
            alive = self._alive
            stats = self.stats
            ctx_cache = self._ctx_cache
            arg_scaled = cost.scaled_bytes(arg_bytes)
            failures = []
            results = [None] * len(tasks)
            n_live = 0
            for index, (place, fn) in enumerate(tasks):
                pid = place.id
                if not alive.get(pid, False):
                    failures.append(DeadPlaceException(pid))
                    continue
                n_live += 1
                if pid != driver:
                    stats.messages += 1
                    stats.bytes_sent += arg_scaled
                ctx = ctx_cache.get(pid)
                if ctx is None or ctx.heap.destroyed:
                    ctx = self.context(place)
                try:
                    results[index] = fn(ctx)
                except DeadPlaceException as exc:
                    failures.append(exc)
            report = self.engine.complete_finish_zero(
                self,
                label,
                n_live,
                n_live,
                2 * n_live if self.resilient else 0,
                ret_bytes=ret_bytes,
                dead_places=(
                    [pid for f in failures for pid in getattr(f, "places", [])]
                    if failures
                    else None
                ),
            )
            if self.trace.enabled:
                self.trace.emit(
                    "finish",
                    report.end,
                    label=label,
                    tasks=n_live,
                    dead=report.dead_places,
                )
            if failures:
                raise collapse_failures(failures)
            return results

        t_start = clock.now(driver)

        failures: List[Exception] = []
        results: List[Any] = [None] * len(tasks)
        ledger_arrivals: List[float] = []
        task_ends: List[float] = []

        # All tasks of this finish run concurrently: capture every member's
        # phase-start time up front so a message sent by an (interpreter-)
        # earlier task cannot delay a peer task's *start* — only the phase
        # end accounts for such in-flight arrivals (the backlog below).
        # avail[pid]: when the place's (single) worker can start a task —
        # the phase-start time initially, then the previous task's end when
        # one finish runs several tasks at the same place.
        # Hot loop: bind lookups once — per-task costs are constants of the
        # finish (same arg_bytes every task), and the clock/stats attribute
        # chains dominate the per-task overhead at chaos-campaign volume.
        alive = self._alive
        clock_now = clock.now
        clock_set = clock.set
        stats = self.stats
        resilient = self.resilient
        spawn_dt = cost.task_spawn_time
        arg_msg = cost.message(arg_bytes)
        arg_scaled = cost.scaled_bytes(arg_bytes)
        latency = cost.latency
        record_arrival = ledger_arrivals.append
        record_end = task_ends.append
        ctx_cache = self._ctx_cache

        avail = {}
        for place, _fn in tasks:
            if alive.get(place.id, False) and place.id not in avail:
                avail[place.id] = clock_now(place.id)

        t_spawn = t_start
        n_live = 0
        for index, (place, fn) in enumerate(tasks):
            pid = place.id
            if not alive.get(pid, False):
                failures.append(DeadPlaceException(pid))
                continue
            n_live += 1
            # Serial spawn at the caller, then the spawn message travels.
            t_spawn += spawn_dt
            if pid == driver:
                task_begin = max(t_spawn, avail[pid])
            else:
                task_begin = max(t_spawn + arg_msg, avail[pid])
                stats.messages += 1
                stats.bytes_sent += arg_scaled
            # In-phase arrivals recorded so far are merged back at the end.
            arrival_backlog = clock_now(pid)
            clock_set(pid, task_begin)
            if resilient:
                record_arrival(task_begin + latency)
            ctx = ctx_cache.get(pid)
            if ctx is None or ctx.heap.destroyed:
                ctx = self.context(place)
            try:
                results[index] = fn(ctx)
            except DeadPlaceException as exc:
                failures.append(exc)
            t_end = max(clock_now(pid), arrival_backlog)
            clock_set(pid, t_end)
            avail[pid] = t_end
            record_end(t_end)
            if resilient:
                record_arrival(t_end + latency)

        # The finish join (serial termination-message absorption at the
        # caller) and the resilient-ledger wait are completed by the engine.
        report = self.engine.complete_finish(
            self,
            label,
            t_start,
            task_ends,
            n_live,
            ledger_arrivals if self.resilient else None,
            t_floor=t_spawn,
            ret_bytes=ret_bytes,
            dead_places=(
                [pid for f in failures for pid in getattr(f, "places", [])]
                if failures
                else None
            ),
        )
        if self.trace.enabled:
            self.trace.emit(
                "finish", report.end, label=label, tasks=n_live, dead=report.dead_places
            )

        if failures:
            raise collapse_failures(failures)
        return results

    def barrier(self, group: PlaceGroup) -> float:
        """Synchronize the clocks of the group's live places (plus driver)."""
        ids = [p.id for p in group if self.is_alive(p.id)]
        ids.append(self.DRIVER_ID)
        return self.clock.barrier(ids)

    # -- convenience -----------------------------------------------------------

    def live_world(self) -> PlaceGroup:
        """Survivors of the initial world."""
        return self.live_group(self.world)

    def __repr__(self) -> str:
        return (
            f"Runtime(world={self.world.size}, spares={self.spares_remaining}, "
            f"resilient={self.resilient}, dead={self.dead_ids()})"
        )
