"""Command-line interface: run applications and regenerate experiments.

Usage::

    python -m repro list
    python -m repro run pagerank --places 8 --fail-at 15 --mode shrink
    python -m repro sweep fig2
    python -m repro sweep table4

``run`` executes one application on the simulated cluster (optionally with
an injected failure) and prints its timing report; ``sweep`` regenerates a
paper experiment and prints the series (the pytest benchmarks add the
paper-vs-measured assertions on top of the same harness); ``chaos`` runs a
seeded campaign of randomized failure schedules and checks the recovery
invariants (see :mod:`repro.chaos`)::

    python -m repro run linreg --replicas 2 --placement spread --mttf 40
    python -m repro chaos pagerank --schedules 100 --stable-fallback
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench import calibration, figures
from repro.bench.harness import (
    APP_REGISTRY,
    run_checkpoint_mode_sweep,
    run_checkpoint_sweep,
    run_overhead_sweep,
    run_restore_sweep,
    table4_from_reports,
)
from repro.matrix import sparse_backend
from repro.resilience.executor import (
    CHECKPOINT_MODES,
    RECOVERY_MODES,
    IterativeExecutor,
    NonResilientExecutor,
    RestoreMode,
)
from repro.resilience.placement import PLACEMENTS, make_placement
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.exceptions import DataLossError
from repro.runtime.failure import (
    CorruptionModel,
    ExponentialFailureModel,
    TransientFaultModel,
)
from repro.runtime.factory import make_runtime

SWEEPS = {
    "fig2": ("overhead", "linreg"),
    "fig3": ("overhead", "logreg"),
    "fig4": ("overhead", "pagerank"),
    "table3": ("checkpoint", None),
    "fig5": ("restore", "linreg"),
    "fig6": ("restore", "logreg"),
    "fig7": ("restore", "pagerank"),
    "table4": ("table4", None),
    "gnmf": ("overhead", "gnmf"),
    "overlap": ("ckpt-mode", "linreg"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resilient GML reproduction: run apps / regenerate experiments.",
    )
    parser.add_argument(
        "--sparse-backend",
        choices=["auto", "scipy", "numpy"],
        default=None,
        help=(
            "sparse kernel backend (default: $REPRO_SPARSE_BACKEND or auto; "
            "auto = scipy when available, NumPy otherwise)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and experiments")

    run = sub.add_parser("run", help="run one application on the simulated cluster")
    run.add_argument("app", choices=sorted(APP_REGISTRY))
    run.add_argument("--places", type=int, default=8)
    run.add_argument("--iterations", type=int, default=30)
    run.add_argument("--non-resilient", action="store_true", help="plain run, no framework")
    run.add_argument("--ckpt-interval", type=int, default=10)
    run.add_argument(
        "--mode",
        choices=[m.value for m in RestoreMode],
        default=RestoreMode.SHRINK.value,
    )
    run.add_argument("--spares", type=int, default=0)
    run.add_argument(
        "--fail-at",
        type=int,
        action="append",
        default=None,
        metavar="ITER",
        help="script a failure at this iteration (repeatable: pair each "
        "occurrence with a --victim to kill several places)",
    )
    run.add_argument(
        "--victim",
        type=int,
        action="append",
        default=None,
        metavar="PLACE",
        help="place to kill for the matching --fail-at (repeatable)",
    )
    run.add_argument(
        "--profile", action="store_true", help="print a per-operation time profile"
    )
    run.add_argument(
        "--timeline", action="store_true", help="print an ASCII finish timeline"
    )
    run.add_argument(
        "--recovery",
        choices=list(RECOVERY_MODES),
        default="checkpoint",
        help="recovery scheme: checkpoint rollback or checkpoint-free "
        "reconstruction (reconstructable apps only, e.g. cg)",
    )
    run.add_argument(
        "--ckpt-mode",
        choices=list(CHECKPOINT_MODES),
        default="blocking",
        help="blocking (paper) or overlapped (backups hidden behind compute)",
    )
    run.add_argument(
        "--ckpt-delta",
        action="store_true",
        help="incremental checkpoints: unchanged partitions are adopted "
        "by reference and only dirty bytes are copied/charged",
    )
    run.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="dump the engine's typed event log to PATH as JSON lines",
    )
    run.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="K",
        help="in-memory backup replicas per snapshot partition (default: 1)",
    )
    run.add_argument(
        "--placement",
        type=str,
        default=None,
        metavar="POLICY",
        help="replica placement policy, optionally parameterized "
        f"({', '.join(sorted(PLACEMENTS))}; e.g. stride:3, parity:4 — "
        "parity stores one XOR block per g partitions instead of replicas; "
        "default: ring, the paper's scheme)",
    )
    run.add_argument(
        "--stable-fallback",
        action="store_true",
        help="also write checkpoints to the disk tier; restores fall back "
        "to it when every in-memory copy of a partition is lost",
    )
    run.add_argument(
        "--mttf",
        type=float,
        default=None,
        metavar="SECONDS",
        help="inject random exponential failures with this mean time to "
        "failure (virtual seconds)",
    )
    run.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the --mttf failure schedule and transient faults",
    )
    run.add_argument(
        "--detect-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="enable the heartbeat failure detector with this detection "
        "timeout (virtual seconds); 0 keeps the oracle failure model",
    )
    run.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat emission period (default: detect-timeout / 10)",
    )
    run.add_argument(
        "--drop-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="drop each data-plane message with this probability "
        "(retransmitted with exponential backoff, at-most-once delivery)",
    )
    run.add_argument(
        "--dup-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="duplicate each delivered message with this probability",
    )
    run.add_argument(
        "--delay-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="delay each delivered message with this probability",
    )
    run.add_argument(
        "--delay-seconds",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="maximum extra delay for --delay-rate messages",
    )
    run.add_argument(
        "--straggler",
        type=str,
        action="append",
        default=None,
        metavar="PLACE:FACTOR",
        help="slow one place down by FACTOR (repeatable), e.g. 3:8 makes "
        "place 3 compute 8x slower",
    )
    run.add_argument(
        "--corrupt",
        type=float,
        default=0.0,
        metavar="P",
        help="corrupt each committed snapshot copy with this probability "
        "(verified checksums quarantine corrupt copies on restore)",
    )

    sweep = sub.add_parser("sweep", help="regenerate one paper experiment")
    sweep.add_argument("experiment", choices=sorted(SWEEPS))
    sweep.add_argument("--max-places", type=int, default=44)
    sweep.add_argument("--iterations", type=int, default=30)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan the place axis out over N worker processes (default: "
        "all cores; results are identical to a serial run)",
    )

    chaos = sub.add_parser(
        "chaos", help="run a seeded campaign of randomized failure schedules"
    )
    chaos.add_argument("app", choices=["cg", "linreg", "logreg", "pagerank"])
    chaos.add_argument("--schedules", type=int, default=50)
    chaos.add_argument("--chaos-seed", type=int, default=0)
    chaos.add_argument("--places", type=int, default=6)
    chaos.add_argument("--iterations", type=int, default=10)
    chaos.add_argument("--ckpt-interval", type=int, default=3)
    chaos.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="K",
        help="backup replicas per partition (default: 2, or 1 with parity)",
    )
    chaos.add_argument(
        "--placement",
        type=str,
        default="spread",
        metavar="POLICY",
        help="placement policy, optionally parameterized (e.g. parity:4)",
    )
    chaos.add_argument("--stable-fallback", action="store_true")
    chaos.add_argument("--spares", type=int, default=0)
    chaos.add_argument("--drop-rate", type=float, default=0.0, metavar="P")
    chaos.add_argument("--dup-rate", type=float, default=0.0, metavar="P")
    chaos.add_argument(
        "--straggler-max",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="each schedule slows one random place by up to this factor",
    )
    chaos.add_argument("--corrupt", type=float, default=0.0, metavar="P")
    chaos.add_argument(
        "--detect-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="heartbeat detection timeout; 0 keeps the oracle failure model",
    )
    chaos.add_argument(
        "--partition-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a schedule includes a healing link partition",
    )
    chaos.add_argument(
        "--ckpt-delta",
        action="store_true",
        help="run every schedule with incremental (dirty-partition-only) "
        "checkpointing",
    )
    chaos.add_argument(
        "--recovery",
        choices=list(RECOVERY_MODES),
        default="checkpoint",
        help="recovery scheme: rollback to a checkpoint, or checkpoint-free "
        "reconstruction (apps implementing the reconstructable protocol, "
        "e.g. cg; rollback stays as the fallback rung)",
    )
    chaos.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan schedules out over N worker processes (default: all "
        "cores; outcomes are bitwise identical to a serial run)",
    )
    chaos.add_argument(
        "--prefix-cache",
        choices=["on", "off"],
        default="on",
        help="fork schedules from cached failure-free prefix images instead "
        "of re-simulating the prefix per schedule (outcomes are bitwise "
        "identical either way; default: on)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a multi-job stream against one shared place pool",
    )
    serve.add_argument("--jobs-count", type=int, default=20, metavar="N")
    serve.add_argument("--streams", type=int, default=1, metavar="N")
    serve.add_argument("--service-seed", type=int, default=0)
    serve.add_argument("--places", type=int, default=17)
    serve.add_argument("--reserve", type=int, default=4)
    serve.add_argument(
        "--economics",
        choices=["dedicated", "pooled", "borrow"],
        default="pooled",
        help="spare economics: per-lease commitment, shared FCFS reserve, "
        "or shared reserve plus borrow-from-idle",
    )
    serve.add_argument("--arrival-rate", type=float, default=1.0, metavar="R")
    serve.add_argument("--max-job-places", type=int, default=6)
    serve.add_argument("--ckpt-interval", type=int, default=3)
    serve.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="K",
        help="backup replicas per partition (default: 2, or 1 with parity)",
    )
    serve.add_argument(
        "--placement",
        type=str,
        default="spread",
        metavar="POLICY",
        help="placement policy, optionally parameterized (e.g. parity:4)",
    )
    serve.add_argument(
        "--repair-mttr",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="heal killed places back into the pool after a seeded "
        "exponential mean-time-to-repair (0 = places stay dead)",
    )
    serve.add_argument("--crash-rate", type=float, default=0.0, metavar="P")
    serve.add_argument("--pair-rate", type=float, default=0.0, metavar="R")
    serve.add_argument("--rack-rate", type=float, default=0.0, metavar="R")
    serve.add_argument("--drop-rate", type=float, default=0.0, metavar="P")
    serve.add_argument("--dup-rate", type=float, default=0.0, metavar="P")
    serve.add_argument(
        "--detect-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-lease heartbeat detection timeout; 0 keeps the oracle model",
    )
    serve.add_argument(
        "--parallel-streams",
        type=int,
        default=None,
        metavar="N",
        help="fan streams out over N worker processes (outcomes are "
        "bitwise identical to a serial run)",
    )
    serve.add_argument(
        "--per-job",
        action="store_true",
        help="also print one line per job (status, latency, kills)",
    )
    return parser


def _cmd_list() -> int:
    print("applications:", ", ".join(sorted(APP_REGISTRY)))
    print("experiments: ", ", ".join(sorted(SWEEPS)))
    return 0


def _resolve_replicas(replicas: Optional[int], placement: Optional[str]) -> int:
    """Default ``--replicas`` per placement policy.

    Parity replaces per-key replicas with one XOR block per group, so it
    defaults to 1 (the primary only) where replica placements default to 2;
    parity combined with more than one replica is a configuration error.
    """
    if placement:
        try:
            make_placement(placement)  # fail fast on a bad spec
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(2) from None
    parity = bool(placement) and placement.split(":", 1)[0] == "parity"
    if replicas is None:
        return 1 if parity else 2
    if parity and replicas > 1:
        print(
            f"error: --placement {placement} stores one XOR parity block "
            f"per group instead of per-key replicas; --replicas {replicas} "
            "would double-pay for protection. Use --replicas 1 (or shrink "
            "the group via parity:g).",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return replicas


def _parse_stragglers(specs: Optional[List[str]]) -> List[tuple]:
    """Parse repeated ``--straggler PLACE:FACTOR`` values."""
    parsed = []
    for spec in specs or []:
        try:
            pid_text, factor_text = spec.split(":", 1)
            parsed.append((int(pid_text), float(factor_text)))
        except ValueError:
            raise SystemExit(
                f"error: --straggler expects PLACE:FACTOR (e.g. 3:8), got {spec!r}"
            )
    return parsed


def _cmd_run(args: argparse.Namespace) -> int:
    nonres_cls, res_cls, wl_factory, cost_factory = APP_REGISTRY[args.app]
    workload = wl_factory(args.iterations)
    if args.non_resilient:
        rt = make_runtime(args.places, cost=cost_factory())
        if args.trace_out:
            rt.engine.timeline.enabled = True
        app = nonres_cls(rt, workload)
        report = NonResilientExecutor(rt, app).run()
    else:
        rt = make_runtime(
            args.places, cost=cost_factory(), resilient=True, spares=args.spares
        )
        if args.trace_out:
            rt.engine.timeline.enabled = True
        app = res_cls(rt, workload)
        if args.fail_at:
            victims = args.victim or []
            for i, fail_at in enumerate(args.fail_at):
                victim = victims[i] if i < len(victims) else args.places // 2
                rt.injector.kill_at_iteration(victim, iteration=fail_at)
        if args.mttf is not None:
            model = ExponentialFailureModel(args.mttf, seed=args.chaos_seed)
            candidates = [pid for pid in rt.world.ids if pid != 0]
            # Event times are relative to the start of the run, not to the
            # virtual time already spent constructing the application.
            t0 = rt.now()
            for kill in model.schedule(candidates, horizon=10.0 * args.mttf):
                rt.injector.kill_at_time(kill.place_id, t0 + kill.time)
        for pid, factor in _parse_stragglers(args.straggler):
            rt.set_straggler(pid, factor)
        if args.drop_rate or args.dup_rate or args.delay_rate:
            rt.set_faults(
                TransientFaultModel(
                    drop_rate=args.drop_rate,
                    dup_rate=args.dup_rate,
                    delay_rate=args.delay_rate,
                    delay_seconds=args.delay_seconds,
                    seed=args.chaos_seed,
                )
            )
        detector = None
        if args.detect_timeout > 0:
            detector = PhiAccrualDetector(
                rt,
                detect_timeout=args.detect_timeout,
                heartbeat_interval=args.heartbeat_interval,
            )
        corruption = (
            CorruptionModel(args.corrupt, seed=args.chaos_seed)
            if args.corrupt
            else None
        )
        if args.placement:
            # Validate the spec (and parity/replicas compatibility) before
            # building anything; replicas=None still means "object default".
            _resolve_replicas(args.replicas, args.placement)
        executor = IterativeExecutor(
            rt,
            app,
            checkpoint_interval=args.ckpt_interval,
            mode=RestoreMode(args.mode),
            checkpoint_mode=args.ckpt_mode,
            replicas=args.replicas,
            placement=make_placement(args.placement) if args.placement else None,
            stable_fallback=args.stable_fallback or None,
            detector=detector,
            corruption=corruption,
            delta=args.ckpt_delta,
            recovery=args.recovery,
        )
        try:
            report = executor.run()
        except DataLossError as exc:
            print(f"unrecoverable: {exc}", file=sys.stderr)
            print(
                "hint: raise --replicas, use --placement spread, or add "
                "--stable-fallback",
                file=sys.stderr,
            )
            return 1

    print(f"app:                  {args.app} on {args.places} places")
    print(f"iterations executed:  {report.iterations_executed}")
    print(f"checkpoints/restores: {report.checkpoints}/{report.restores}")
    print(f"failures observed:    {report.failures_observed}")
    if report.aborted_restores:
        print(f"aborted restores:     {report.aborted_restores}")
    if report.stable_fallback_reads:
        print(f"disk fallback reads:  {report.stable_fallback_reads}")
    if report.dropped_messages or report.retransmissions or report.duplicate_messages:
        print(
            f"transient network:    {report.dropped_messages} dropped, "
            f"{report.retransmissions} retransmitted, "
            f"{report.duplicate_messages} duplicated, "
            f"{report.comm_timeouts} timeouts"
        )
    if report.evictions or report.transient_restores:
        print(
            f"detector verdicts:    {report.evictions} evictions "
            f"({report.false_positive_evictions} false positive), "
            f"{report.transient_restores} transient recoveries, "
            f"{report.detection_wait_time:.4f} s waited"
        )
    if report.quarantined_copies:
        print(f"quarantined copies:   {report.quarantined_copies}")
    if report.ckpt_clean_partitions:
        print(
            f"delta checkpointing:  {report.ckpt_clean_partitions} clean / "
            f"{report.ckpt_dirty_partitions} dirty partitions "
            f"({report.ckpt_clean_bytes:.0f} B skipped, "
            f"{report.ckpt_dirty_bytes:.0f} B copied)"
        )
    if report.reconstructions or report.fallback_restores:
        print(
            f"reconstructions:      {report.reconstructions} "
            f"({report.reconstructed_partitions} partitions, "
            f"{report.aborted_reconstructions} aborted, "
            f"{report.fallback_restores} fell back to rollback)"
        )
        print(
            f"redundancy overhead:  {report.redundancy_time:.4f} s, "
            f"{report.redundancy_bytes:.0f} B published, "
            f"{report.repaired_static_keys} static copies repaired"
        )
    if report.pending_kills:
        print(f"kills never fired:    {len(report.pending_kills)}")
    print(f"virtual total:        {report.total_time:.4f} s")
    print(
        f"  = step {report.step_time:.4f} + checkpoint {report.checkpoint_time:.4f}"
        f" + restore {report.restore_time:.4f} + lost {report.lost_time:.4f}"
        + (
            f" + reconstruct {report.reconstruct_time:.4f}"
            f" + redundancy {report.redundancy_time:.4f}"
            if report.reconstruct_time or report.redundancy_time
            else ""
        )
    )
    print(f"final place group:    {app.places.ids}")
    if args.profile:
        from repro.bench.timeline import render_profile

        print("\nper-operation profile:")
        print(render_profile(rt.stats.finish_reports))
    if args.timeline:
        from repro.bench.timeline import render_timeline

        print("\nfinish timeline:")
        print(render_timeline(rt.stats.finish_reports))
    if args.trace_out:
        try:
            n = rt.engine.timeline.dump_jsonl(args.trace_out)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}", file=sys.stderr)
            return 1
        print(f"engine trace:         {n} events -> {args.trace_out}")
    return 0


def _resolve_jobs(requested: Optional[int]) -> Optional[int]:
    """``--jobs`` semantics: explicit N wins, otherwise all cores."""
    if requested is not None:
        return requested
    return os.cpu_count()


def _cmd_sweep(args: argparse.Namespace) -> int:
    kind, app = SWEEPS[args.experiment]
    axis = calibration.places_axis(args.max_places)
    jobs = _resolve_jobs(args.jobs)
    if kind == "overhead":
        series = run_overhead_sweep(
            app, places_list=axis, iterations=args.iterations, jobs=jobs
        )
        print(figures.series_table(series.places, series.values, header_unit="ms/iteration"))
    elif kind == "checkpoint":
        values = {}
        for name in ("linreg", "logreg", "pagerank"):
            sweep = run_checkpoint_sweep(
                name, places_list=axis, iterations=args.iterations, jobs=jobs
            )
            values[name] = sweep.values["mean checkpoint (ms)"]
        print(figures.series_table(axis, values, header_unit="ms/checkpoint"))
    elif kind == "restore":
        out = run_restore_sweep(
            app, places_list=axis, iterations=args.iterations, jobs=jobs
        )
        series = out["series"]
        print(
            figures.series_table(
                series.places, series.values, value_format="{:10.2f}", header_unit="total s"
            )
        )
    elif kind == "ckpt-mode":
        out = run_checkpoint_mode_sweep(
            app, places_list=axis, iterations=args.iterations, jobs=jobs
        )
        series = out["series"]
        print(
            figures.series_table(
                series.places, series.values, header_unit="see row labels"
            )
        )
    elif kind == "table4":
        for name in ("linreg", "logreg", "pagerank"):
            out = run_restore_sweep(
                name,
                places_list=[args.max_places],
                iterations=args.iterations,
                jobs=jobs,
            )
            rows = table4_from_reports(out["reports"], places=args.max_places)
            for mode, row in rows.items():
                print(f"{name:<10s} {mode:<18s} C% {row['C%']:5.1f}  R% {row['R%']:5.1f}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import CampaignConfig, run_campaign

    result = run_campaign(
        CampaignConfig(
            app=args.app,
            schedules=args.schedules,
            seed=args.chaos_seed,
            places=args.places,
            iterations=args.iterations,
            checkpoint_interval=args.ckpt_interval,
            replicas=_resolve_replicas(args.replicas, args.placement),
            placement=args.placement,
            stable_fallback=args.stable_fallback,
            spares=args.spares,
            drop_rate=args.drop_rate,
            dup_rate=args.dup_rate,
            straggler_max=args.straggler_max,
            corrupt_rate=args.corrupt,
            detect_timeout=args.detect_timeout,
            partition_rate=args.partition_rate,
            ckpt_delta=args.ckpt_delta,
            recovery=args.recovery,
        ),
        jobs=_resolve_jobs(args.jobs),
        prefix_cache=args.prefix_cache == "on",
    )
    print(result.summary())
    return 1 if result.violations else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.chaos import run_service_campaign
    from repro.service import ServiceConfig, run_service

    config = ServiceConfig(
        places=args.places,
        reserve=args.reserve,
        economics=args.economics,
        n_jobs=args.jobs_count,
        seed=args.service_seed,
        arrival_rate=args.arrival_rate,
        max_places=args.max_job_places,
        checkpoint_interval=args.ckpt_interval,
        replicas=_resolve_replicas(args.replicas, args.placement),
        placement=args.placement,
        repair_mttr=args.repair_mttr,
        crash_rate=args.crash_rate,
        pair_rate=args.pair_rate,
        rack_rate=args.rack_rate,
        drop_rate=args.drop_rate,
        dup_rate=args.dup_rate,
        detect_timeout=args.detect_timeout,
    )
    if args.streams > 1:
        result = run_service_campaign(
            config, streams=args.streams, jobs=args.parallel_streams
        )
        print(result.summary())
        return 1 if (result.violations or result.cross_tenant_aborts) else 0
    report = run_service(config)
    print(report.summary())
    if args.per_job:
        for job in report.jobs:
            kills = ",".join(str(p) for p in job.kills_during_run) or "-"
            print(
                f"  job {job.job_id:>3d} {job.app:<8s} places={job.places} "
                f"{job.status:<9s} wait={job.queue_wait:.3f}s "
                f"latency={job.latency:.3f}s kills={kills}"
            )
    for violation in report.violations:
        print(f"VIOLATION: {violation}")
    return 1 if (report.violations or report.cross_tenant_aborts) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.sparse_backend is not None:
        sparse_backend.set_backend(args.sparse_backend)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_sweep(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
