"""Ablation — double in-memory snapshot store cost profile (§IV-B1).

The paper states that *saving* into the Snapshot is uniform from any place
(one local copy + one remote copy), while *loading* is non-uniform (cheap
when the requested key is local, a transfer otherwise).  This ablation
measures both halves, plus the read-only reuse optimization that makes
every checkpoint after the first nearly free for immutable inputs.
"""

from _common import emit
from repro.bench.calibration import regression_cost
from repro.matrix.distblock import DistBlockMatrix
from repro.resilience.store import AppResilientStore
from repro.runtime import Runtime

PLACES = 16


def measure():
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    g = DistBlockMatrix.make_dense(rt, PLACES * 1000, 100, PLACES * 2, 1).init_random(1)

    # Save cost (uniform across places): one full snapshot.
    t0 = rt.now()
    snap = g.make_snapshot()
    save_s = rt.now() - t0

    # Local load: same group, every key is on its own place.
    g.remake(rt.world)
    t0 = rt.now()
    g.restore_snapshot(snap)
    local_load_s = rt.now() - t0

    # Remote load: kill a place; the orphaned blocks come from backups and
    # shifted owners, paying transfers.
    rt.kill(PLACES // 2)
    g.remake(rt.live_world())
    t0 = rt.now()
    g.restore_snapshot(snap)
    remote_load_s = rt.now() - t0

    # Read-only reuse: second checkpoint of an immutable object is ~free.
    rt2 = Runtime(PLACES, cost=regression_cost(), resilient=True)
    g2 = DistBlockMatrix.make_dense(rt2, PLACES * 1000, 100, PLACES * 2, 1).init_random(1)
    store = AppResilientStore(rt2)
    t0 = rt2.now()
    store.start_new_snapshot()
    store.save_read_only(g2)
    store.commit(0)
    first_ckpt_s = rt2.now() - t0
    t0 = rt2.now()
    store.start_new_snapshot()
    store.save_read_only(g2)
    store.commit(1)
    reuse_ckpt_s = rt2.now() - t0

    return {
        "save_s": save_s,
        "local_load_s": local_load_s,
        "remote_load_s": remote_load_s,
        "first_readonly_ckpt_s": first_ckpt_s,
        "reused_readonly_ckpt_s": reuse_ckpt_s,
    }


def test_ablation_snapshot_store_costs(benchmark):
    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{k:<28s} {v:9.4f} s" for k, v in r.items()]
    emit("Ablation — double in-memory store: save/load cost profile", "\n".join(lines))

    # Loading is non-uniform: a post-failure restore (remote fetches) costs
    # more than a same-layout restore (local fetches).
    assert r["remote_load_s"] > r["local_load_s"]
    # Saving pays the remote backup copy: it exceeds the all-local load.
    assert r["save_s"] > r["local_load_s"]
    # Read-only reuse: the second checkpoint is at least 50x cheaper.
    assert r["reused_readonly_ckpt_s"] < r["first_readonly_ckpt_s"] / 50
