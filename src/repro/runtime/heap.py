"""Per-place object heaps.

Each place owns a private heap; the APGAS contract says remote data is only
reachable by shifting execution to the owning place (``at``).  The simulator
enforces that contract: closures receive a :class:`~repro.runtime.runtime.PlaceContext`
bound to exactly one heap.  Killing a place destroys its heap — this is what
makes snapshots necessary and what the double in-memory store protects
against.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List


class PlaceHeap:
    """The private object store of one place.

    Keys are arbitrary hashable values; multi-place GML objects namespace
    their entries as ``("gml", object_id, ...)`` and snapshots as
    ``("snap", snapshot_id, key)``.
    """

    __slots__ = ("place_id", "_store", "destroyed")

    def __init__(self, place_id: int):
        self.place_id = place_id
        self._store: Dict[Hashable, Any] = {}
        self.destroyed = False

    def _check_live(self) -> None:
        if self.destroyed:
            raise RuntimeError(f"heap of dead place {self.place_id} accessed")

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value* under *key*, replacing any previous entry."""
        if self.destroyed:
            self._check_live()
        self._store[key] = value

    def get(self, key: Hashable) -> Any:
        """Fetch the entry for *key*; ``KeyError`` if absent."""
        if self.destroyed:
            self._check_live()
        try:
            return self._store[key]
        except KeyError:
            raise KeyError(
                f"place {self.place_id} heap has no entry {key!r}"
            ) from None

    def get_or(self, key: Hashable, default: Any = None) -> Any:
        """Fetch the entry for *key* or *default* when absent."""
        self._check_live()
        return self._store.get(key, default)

    def contains(self, key: Hashable) -> bool:
        """True if an entry exists for *key*."""
        self._check_live()
        return key in self._store

    def remove(self, key: Hashable) -> Any:
        """Delete and return the entry for *key*; ``KeyError`` if absent."""
        self._check_live()
        if key not in self._store:
            raise KeyError(f"place {self.place_id} heap has no entry {key!r}")
        return self._store.pop(key)

    def remove_if_present(self, key: Hashable) -> None:
        """Delete the entry for *key* if it exists."""
        self._check_live()
        self._store.pop(key, None)

    def keys_with_prefix(self, prefix: tuple) -> List[Hashable]:
        """All tuple keys starting with *prefix* (for bulk eviction)."""
        self._check_live()
        return [
            k
            for k in self._store
            if isinstance(k, tuple) and len(k) >= len(prefix) and k[: len(prefix)] == prefix
        ]

    def remove_prefix(self, prefix: tuple) -> int:
        """Delete all entries whose tuple key starts with *prefix*."""
        keys = self.keys_with_prefix(prefix)
        for k in keys:
            del self._store[k]
        return len(keys)

    def destroy(self) -> None:
        """Irrevocably drop all contents (the place died)."""
        self._store.clear()
        self.destroyed = True

    def __len__(self) -> int:
        self._check_live()
        return len(self._store)

    def __iter__(self) -> Iterator[Hashable]:
        self._check_live()
        return iter(self._store)

    def __repr__(self) -> str:
        state = "destroyed" if self.destroyed else f"{len(self._store)} entries"
        return f"PlaceHeap(place={self.place_id}, {state})"
