"""Logistic Regression (resilient) — the framework version of LogReg.

Same gradient-descent algorithm as the non-resilient program; the only
mutable state that must be checkpointed is the model ``w`` (temporaries and
the tracked loss are recomputed), while ``X`` and the labels ``y`` are
saved read-only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.data import RegressionWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Grid
from repro.matrix.ops import dist_block_t_matvec
from repro.resilience.iterative import ResilientIterativeApp
from repro.resilience.store import AppResilientStore
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class LogRegResilient(ResilientIterativeApp):
    """Gradient-descent logistic regression under the resilient framework."""

    def __init__(
        self,
        runtime: Runtime,
        workload: RegressionWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        self.n_examples = workload.examples(group.size)
        d = workload.features
        self.X = DistBlockMatrix.make_dense(
            runtime, self.n_examples, d, workload.row_blocks(group.size), 1, group
        ).init_random(workload.seed)
        row_part = self.X.aligned_row_partition()
        self.y = DistVector.make(runtime, self.n_examples, group, row_part)
        self.y.init_random(workload.seed, tag=2)
        self.y.map(lambda v: (v > 0.5).astype(float), flops_per_cell=1)

        self.w = DupVector.make(runtime, d, group)
        self.grad = DupVector.make(runtime, d, group)
        self.margins = DistVector.make(runtime, self.n_examples, group, row_part)
        self.probe = DistVector.make(runtime, self.n_examples, group, row_part)
        self.loss = float("inf")

    @property
    def places(self) -> PlaceGroup:
        return self._places

    # -- the framework's four methods -----------------------------------------

    def is_finished(self) -> bool:
        return self.iteration >= self.workload.iterations

    def step(self) -> None:
        lam = self.workload.ridge_lambda
        # Batch GD with a size-normalized step so the rate is scale-free.
        eta = self.workload.learning_rate / self.n_examples
        self.margins.mult(self.X, self.w)
        self.margins.map(_sigmoid, flops_per_cell=4)
        self.margins.cell_sub(self.y)
        dist_block_t_matvec(self.X, self.margins, self.grad)
        self.grad.axpy(lam, self.w)
        self.w.axpy(-eta, self.grad)
        self.probe.mult(self.X, self.w)
        self.probe.map(_sigmoid, flops_per_cell=4)
        self.probe.cell_sub(self.y)
        self.loss = self.probe.dot_dist(self.probe)
        self.iteration += 1

    def checkpoint(self, store: AppResilientStore) -> None:
        store.start_new_snapshot()
        store.save_read_only(self.X)
        store.save_read_only(self.y)
        store.save(self.w)
        store.commit(iteration=self.iteration)

    def restore(
        self, new_places: PlaceGroup, store: AppResilientStore, snapshot_iter: int
    ) -> None:
        new_grid = None
        if self.restore_context.rebalance:
            new_grid = Grid.partition(
                self.n_examples,
                self.workload.features,
                self.workload.row_blocks(new_places.size),
                1,
            )
        self.X.remake(new_places, new_grid=new_grid)
        row_part = self.X.aligned_row_partition()
        self.y.remake(new_places, row_part)
        self.margins.remake(new_places, row_part)
        self.probe.remake(new_places, row_part)
        self.w.remake(new_places)
        self.grad.remake(new_places)
        self._places = new_places
        store.restore()
        self.loss = float("inf")
        self.iteration = snapshot_iter

    def model(self):
        """The learned weight vector (driver-side copy)."""
        return self.w.to_array()
