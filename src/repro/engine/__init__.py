"""The discrete-event resource-scheduling engine.

Public surface:

* :class:`~repro.engine.resource.Resource` — a serial server with a
  busy-until frontier (communication server, NIC direction, ledger, disk);
* :class:`~repro.engine.resource.DuplexLink` — two coupled resources
  occupied together (full-duplex transfers);
* :class:`~repro.engine.timeline.Timeline` and the typed event records
  (:class:`TransferEvent`, :class:`ServiceEvent`, :class:`DiskEvent`,
  :class:`FinishEvent`) with JSONL round-tripping;
* :class:`~repro.engine.scheduler.Scheduler` — owns the virtual clock,
  all contended resources, finish completion, and the overlap scope that
  enables overlapped checkpointing.
"""

from repro.engine.resource import DuplexLink, Resource
from repro.engine.scheduler import Scheduler
from repro.engine.timeline import (
    DiskEvent,
    EngineEvent,
    FinishEvent,
    ServiceEvent,
    Timeline,
    TransferEvent,
    event_from_record,
    load_jsonl,
)

__all__ = [
    "DuplexLink",
    "Resource",
    "Scheduler",
    "DiskEvent",
    "EngineEvent",
    "FinishEvent",
    "ServiceEvent",
    "Timeline",
    "TransferEvent",
    "event_from_record",
    "load_jsonl",
]
