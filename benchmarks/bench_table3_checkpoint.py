"""Table III — time per checkpoint for the resilient GML applications.

Protocol: the resilient apps run 30 iterations with a checkpoint every 10
(three per run, no failures); report the mean checkpoint time over 2-44
places.  The read-only inputs (the training matrix / link graph) use
``saveReadOnly`` and are snapshotted only in the first checkpoint.

Paper shape: LinReg/LogReg checkpoints are a few times more expensive than
PageRank's; time per checkpoint grows by less than 20 % from 12 to 44
places (the distributed checkpoint algorithm is scalable).
"""

from _common import emit, results_path
from repro.bench import figures
from repro.bench.calibration import PaperTargets, places_axis
from repro.bench.harness import run_checkpoint_sweep

PAPER_TABLE3 = {
    # places: (LinReg, LogReg, PageRank) mean checkpoint ms
    2: (1284, 1288, 241),
    12: (2292, 2354, 451),
    24: (2336, 2350, 478),
    44: (2464, 2534, 534),
}


def run_all():
    axis = places_axis()
    return {
        app: run_checkpoint_sweep(app, places_list=axis, iterations=30)
        for app in ("linreg", "logreg", "pagerank")
    }


def test_table3_checkpoint_time(benchmark):
    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    axis = sweeps["linreg"].places
    values = {app: s.values["mean checkpoint (ms)"] for app, s in sweeps.items()}
    lines = [figures.series_table(axis, values, header_unit="ms/checkpoint"), ""]
    lines.append("paper's Table III anchors (LinReg / LogReg / PageRank, ms):")
    for p, row in PAPER_TABLE3.items():
        i = axis.index(p)
        lines.append(
            f"  {p:3d} places: paper {row[0]:5d}/{row[1]:5d}/{row[2]:4d}"
            f"   ours {values['linreg'][i]:6.0f}/{values['logreg'][i]:6.0f}/{values['pagerank'][i]:5.0f}"
        )
    csv = figures.write_csv(results_path("table3_checkpoint.csv"), axis, values)
    lines.append(f"  series written to {csv}")
    emit("Table III — time per checkpoint (mean of 3 checkpoints)", "\n".join(lines))

    i12, i44 = axis.index(12), axis.index(44)
    for app in ("linreg", "logreg"):
        # Scalability claim: < 20 % growth from 12 to 44 places.
        assert values[app][i44] < 1.2 * values[app][i12]
    # PageRank's mutable state (the duplicated rank vector) grows with the
    # place count under weak scaling, so each place's save volume grows too;
    # our simulator shows that as ~35 % growth (the paper measured 18 % —
    # same mechanism, smaller constant; see EXPERIMENTS.md).
    assert values["pagerank"][i44] < 1.45 * values["pagerank"][i12]
    # Every run took exactly three checkpoints.
    for app in ("linreg", "logreg", "pagerank"):
        assert sweeps[app].values["checkpoints"] == [3.0] * len(axis)
    # The regressions' checkpoints dwarf PageRank's (dense 50k x 500 input
    # vs a sparse graph), as in the paper.
    assert values["linreg"][i44] > 2.0 * values["pagerank"][i44]
    assert values["logreg"][i44] > 2.0 * values["pagerank"][i44]
