"""Tests for the from-scratch CSR/CSC implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.sparse import SparseCSC, SparseCSR, flops_spmv


def random_dense(m, n, density, seed):
    rng = np.random.default_rng(seed)
    data = rng.random((m, n))
    data[rng.random((m, n)) >= density] = 0.0
    return data


sparse_case = st.tuples(
    st.integers(1, 20),  # m
    st.integers(1, 20),  # n
    st.floats(0.0, 0.6),  # density
    st.integers(0, 10_000),  # seed
)


class TestCSRConstruction:
    def test_empty(self):
        a = SparseCSR.empty(3, 4)
        assert a.nnz == 0
        assert np.all(a.to_dense() == 0)

    def test_from_coo(self):
        a = SparseCSR.from_coo(3, 3, [0, 2, 1], [1, 2, 0], [5.0, 7.0, 3.0])
        dense = np.zeros((3, 3))
        dense[0, 1], dense[2, 2], dense[1, 0] = 5, 7, 3
        assert np.array_equal(a.to_dense(), dense)

    def test_duplicates_summed(self):
        a = SparseCSR.from_coo(2, 2, [0, 0, 0], [1, 1, 0], [1.0, 2.0, 4.0])
        assert a.nnz == 2
        assert a.to_dense()[0, 1] == 3.0
        assert a.to_dense()[0, 0] == 4.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            SparseCSR.from_coo(2, 2, [0, 2], [0, 0], [1.0, 1.0])
        with pytest.raises(ValueError):
            SparseCSR.from_coo(2, 2, [0], [5], [1.0])

    def test_invalid_structure(self):
        with pytest.raises(ValueError):
            SparseCSR(2, 2, [0, 1], [0], [1.0])  # indptr too short
        with pytest.raises(ValueError):
            SparseCSR(2, 2, [0, 1, 3], [0, 1], [1.0, 2.0])  # end != nnz

    def test_density(self):
        a = SparseCSR.from_coo(2, 2, [0], [0], [1.0])
        assert a.density() == 0.25
        assert SparseCSR.empty(0, 0).density() == 0.0

    @given(sparse_case)
    def test_dense_roundtrip(self, case):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        assert np.array_equal(SparseCSR.from_dense(dense).to_dense(), dense)


class TestCSRKernels:
    @given(sparse_case)
    def test_spmv_matches_dense(self, case):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        a = SparseCSR.from_dense(dense)
        x = np.random.default_rng(seed + 1).random(n)
        assert np.allclose(a.spmv(x), dense @ x)

    @given(sparse_case)
    def test_spmv_t_matches_dense(self, case):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        a = SparseCSR.from_dense(dense)
        y = np.random.default_rng(seed + 2).random(m)
        assert np.allclose(a.spmv_t(y), dense.T @ y)

    @given(sparse_case)
    def test_transpose(self, case):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        assert np.array_equal(SparseCSR.from_dense(dense).transpose().to_dense(), dense.T)

    def test_scale(self):
        a = SparseCSR.from_coo(2, 2, [0, 1], [0, 1], [2.0, 4.0]).scale(0.5)
        assert np.array_equal(np.diag(a.to_dense()), [1.0, 2.0])

    def test_spmv_wrong_length(self):
        a = SparseCSR.empty(2, 3)
        with pytest.raises(ValueError):
            a.spmv(np.zeros(2))
        with pytest.raises(ValueError):
            a.spmv_t(np.zeros(3))


class TestCSRRegions:
    @settings(max_examples=60)
    @given(
        case=sparse_case,
        cuts=st.tuples(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)),
    )
    def test_sub_matrix_matches_dense(self, case, cuts):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        a = SparseCSR.from_dense(dense)
        r0, r1 = sorted((int(cuts[0] * m), int(cuts[1] * m)))
        c0, c1 = sorted((int(cuts[2] * n), int(cuts[3] * n)))
        sub = a.sub_matrix(r0, r1, c0, c1)
        assert np.array_equal(sub.to_dense(), dense[r0:r1, c0:c1])
        # The counting pass agrees with the extraction.
        assert a.count_nnz_region(r0, r1, c0, c1) == sub.nnz

    def test_region_bounds(self):
        a = SparseCSR.empty(3, 3)
        with pytest.raises(ValueError):
            a.sub_matrix(0, 4, 0, 3)
        with pytest.raises(ValueError):
            a.count_nnz_region(0, 3, 2, 1)


class TestCSRAssembly:
    def test_hstack_vstack(self):
        d = random_dense(6, 8, 0.4, 3)
        a = SparseCSR.from_dense(d)
        left = a.sub_matrix(0, 6, 0, 3)
        right = a.sub_matrix(0, 6, 3, 8)
        assert np.array_equal(SparseCSR.hstack([left, right]).to_dense(), d)
        top = a.sub_matrix(0, 2, 0, 8)
        bottom = a.sub_matrix(2, 6, 0, 8)
        assert np.array_equal(SparseCSR.vstack([top, bottom]).to_dense(), d)

    def test_assemble_tiles(self):
        d = random_dense(7, 9, 0.5, 4)
        a = SparseCSR.from_dense(d)
        tiles = [
            [a.sub_matrix(0, 3, 0, 4), a.sub_matrix(0, 3, 4, 9)],
            [a.sub_matrix(3, 7, 0, 4), a.sub_matrix(3, 7, 4, 9)],
        ]
        assert np.array_equal(SparseCSR.assemble(tiles).to_dense(), d)

    def test_stack_validation(self):
        with pytest.raises(ValueError):
            SparseCSR.hstack([])
        with pytest.raises(ValueError):
            SparseCSR.hstack([SparseCSR.empty(2, 2), SparseCSR.empty(3, 2)])
        with pytest.raises(ValueError):
            SparseCSR.vstack([SparseCSR.empty(2, 2), SparseCSR.empty(2, 3)])


class TestCSC:
    @given(sparse_case)
    def test_dense_roundtrip(self, case):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        assert np.array_equal(SparseCSC.from_dense(dense).to_dense(), dense)

    @given(sparse_case)
    def test_spmv(self, case):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        a = SparseCSC.from_dense(dense)
        x = np.random.default_rng(seed + 1).random(n)
        y = np.random.default_rng(seed + 2).random(m)
        assert np.allclose(a.spmv(x), dense @ x)
        assert np.allclose(a.spmv_t(y), dense.T @ y)

    @given(sparse_case)
    def test_format_conversion_roundtrip(self, case):
        m, n, density, seed = case
        dense = random_dense(m, n, density, seed)
        csr = SparseCSR.from_dense(dense)
        assert np.array_equal(csr.to_csc().to_csr().to_dense(), dense)

    def test_sub_matrix_and_count(self):
        dense = random_dense(8, 8, 0.4, 7)
        a = SparseCSC.from_dense(dense)
        sub = a.sub_matrix(2, 6, 1, 7)
        assert np.array_equal(sub.to_dense(), dense[2:6, 1:7])
        assert a.count_nnz_region(2, 6, 1, 7) == sub.nnz

    def test_duplicates_summed(self):
        a = SparseCSC.from_coo(2, 2, [1, 1], [0, 0], [1.5, 2.5])
        assert a.nnz == 1
        assert a.to_dense()[1, 0] == 4.0

    def test_scale_and_copy(self):
        a = SparseCSC.from_coo(2, 2, [0], [1], [2.0])
        b = a.copy().scale(2.0)
        assert a.to_dense()[0, 1] == 2.0
        assert b.to_dense()[0, 1] == 4.0


def test_flops_spmv():
    assert flops_spmv(10) == 20
