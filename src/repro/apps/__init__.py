"""The paper's three benchmark applications in two forms each.

``repro.apps.nonresilient`` — plain GML programs (abort on failure);
``repro.apps.resilient`` — framework versions with checkpoint/restore.
Workload shapes live in :mod:`repro.apps.data`.
"""

from repro.apps.data import GnmfWorkload, PageRankWorkload, RegressionWorkload
from repro.apps.nonresilient import (
    GnmfNonResilient,
    LinRegNonResilient,
    LogRegNonResilient,
    PageRankNonResilient,
)
from repro.apps.resilient import (
    GnmfResilient,
    LinRegResilient,
    LogRegResilient,
    PageRankResilient,
)

__all__ = [
    "GnmfWorkload",
    "GnmfNonResilient",
    "GnmfResilient",
    "PageRankWorkload",
    "RegressionWorkload",
    "LinRegNonResilient",
    "LogRegNonResilient",
    "PageRankNonResilient",
    "LinRegResilient",
    "LogRegResilient",
    "PageRankResilient",
]
