"""Tests for the resilient iterative executor and restoration modes."""

import numpy as np
import pytest

from repro.matrix.dupvector import DupVector
from repro.resilience.executor import (
    ExecutionReport,
    IterativeExecutor,
    NonResilientExecutor,
    RestoreMode,
)
from repro.resilience.iterative import ResilientIterativeApp
from repro.runtime import CostModel, DataLossError, Runtime


class CountingApp(ResilientIterativeApp):
    """A minimal app: a DupVector accumulating +1 per iteration."""

    def __init__(self, runtime, iterations=10, group=None):
        self.runtime = runtime
        self.iterations = iterations
        self._places = group if group is not None else runtime.world
        self.iteration = 0
        self.state = DupVector.make(runtime, 4, self._places)
        self.step_log = []
        self.restore_log = []

    @property
    def places(self):
        return self._places

    def is_finished(self):
        return self.iteration >= self.iterations

    def step(self):
        self.state.cell_add(1.0)
        self.step_log.append(self.iteration)
        self.iteration += 1

    def checkpoint(self, store):
        store.start_new_snapshot()
        store.save(self.state)
        store.commit(iteration=self.iteration)

    def restore(self, new_places, store, snapshot_iter):
        self.state.remake(new_places)
        self._places = new_places
        store.restore()
        self.iteration = snapshot_iter
        self.restore_log.append((new_places.ids, snapshot_iter, self.restore_context.rebalance))


def run_with_failure(
    mode, iterations=10, interval=4, kill_at=6, spares=0, nplaces=4, **executor_kwargs
):
    rt = Runtime(nplaces, cost=CostModel.zero(), resilient=True, spares=spares)
    app = CountingApp(rt, iterations)
    rt.injector.kill_at_iteration(2, iteration=kill_at)
    executor = IterativeExecutor(
        rt, app, checkpoint_interval=interval, mode=mode, **executor_kwargs
    )
    report = executor.run()
    return rt, app, report


class TestHappyPath:
    def test_runs_to_completion(self):
        rt = Runtime(3, cost=CostModel.zero())
        app = CountingApp(rt, 7)
        report = IterativeExecutor(rt, app, checkpoint_interval=3).run()
        assert app.iteration == 7
        assert np.allclose(app.state.to_array(), 7.0)
        assert report.iterations_executed == 7
        assert report.restores == 0
        # Checkpoints at iterations 0, 3, 6.
        assert report.checkpoints == 3

    def test_nonresilient_executor(self):
        rt = Runtime(3, cost=CostModel.zero())
        app = CountingApp(rt, 5)
        report = NonResilientExecutor(rt, app).run()
        assert report.iterations_executed == 5
        assert report.checkpoints == 0

    def test_invalid_interval(self):
        rt = Runtime(2)
        with pytest.raises(ValueError):
            IterativeExecutor(rt, CountingApp(rt, 1), checkpoint_interval=0)

    def test_invalid_fallback(self):
        rt = Runtime(2)
        with pytest.raises(ValueError):
            IterativeExecutor(
                rt, CountingApp(rt, 1), spare_fallback=RestoreMode.REPLACE_REDUNDANT
            )


class TestFailureRecovery:
    def test_shrink_result_correct(self):
        rt, app, report = run_with_failure(RestoreMode.SHRINK)
        assert np.allclose(app.state.to_array(), 10.0)
        assert report.restores == 1
        assert report.failures_observed == 1
        assert app.places.ids == [0, 1, 3]
        # Rolled back to the checkpoint at iteration 4, redid 4..5.
        assert report.iterations_executed == 10 + (6 - 4)

    def test_rollback_repeats_iterations(self):
        rt, app, report = run_with_failure(RestoreMode.SHRINK, kill_at=7, interval=4)
        # Steps 4, 5, 6 were re-executed after the rollback to iteration 4.
        assert app.step_log.count(4) == 2
        assert app.step_log.count(6) == 2
        assert app.step_log.count(7) == 1

    def test_no_duplicate_checkpoint_after_restore(self):
        # After rolling back to iteration 4 (= the snapshot), the executor
        # must not immediately re-checkpoint the state it just restored.
        rt, app, report = run_with_failure(RestoreMode.SHRINK, kill_at=6, interval=4)
        # Checkpoints: 0, 4, 8 — exactly three, not four.
        assert report.checkpoints == 3

    def test_shrink_rebalance_sets_context_flag(self):
        rt, app, report = run_with_failure(RestoreMode.SHRINK_REBALANCE)
        assert app.restore_log[-1][2] is True

    def test_shrink_does_not_set_rebalance(self):
        rt, app, report = run_with_failure(RestoreMode.SHRINK)
        assert app.restore_log[-1][2] is False

    def test_replace_redundant_keeps_group_size(self):
        rt, app, report = run_with_failure(RestoreMode.REPLACE_REDUNDANT, spares=2)
        assert app.places.size == 4
        assert app.places.ids == [0, 1, 4, 3]  # spare took index 2
        assert np.allclose(app.state.to_array(), 10.0)

    def test_replace_redundant_falls_back_when_spares_exhausted(self):
        rt, app, report = run_with_failure(RestoreMode.REPLACE_REDUNDANT, spares=0)
        assert app.places.ids == [0, 1, 3]  # shrank instead
        assert np.allclose(app.state.to_array(), 10.0)
        assert app.restore_log[-1][2] is False  # fallback was SHRINK

    def test_replace_elastic_creates_new_place(self):
        rt, app, report = run_with_failure(RestoreMode.REPLACE_ELASTIC)
        assert app.places.size == 4
        assert app.places.ids == [0, 1, 4, 3]  # id 4 is brand new
        assert np.allclose(app.state.to_array(), 10.0)

    def test_multiple_failures_across_run(self):
        rt = Runtime(5, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 12)
        rt.injector.kill_at_iteration(2, iteration=3)
        rt.injector.kill_at_iteration(4, iteration=8)
        report = IterativeExecutor(rt, app, checkpoint_interval=3, mode=RestoreMode.SHRINK).run()
        assert report.restores == 2
        assert app.places.ids == [0, 1, 3]
        assert np.allclose(app.state.to_array(), 12.0)

    def test_two_simultaneous_failures(self):
        rt = Runtime(6, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 10)
        # Non-adjacent victims: snapshot survives.
        rt.injector.kill_at_iteration(2, iteration=5)
        rt.injector.kill_at_iteration(4, iteration=5)
        report = IterativeExecutor(rt, app, checkpoint_interval=4).run()
        assert report.restores == 1
        assert report.failures_observed == 2
        assert np.allclose(app.state.to_array(), 10.0)

    def test_failure_before_first_checkpoint_unrecoverable(self):
        rt = Runtime(3, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 5)
        # Kill during the very first checkpoint (phase-level injection):
        # save() raises before anything committed.
        rt.injector.kill_at_phase(1, phase=rt.phase + 1)
        with pytest.raises(DataLossError):
            IterativeExecutor(rt, app, checkpoint_interval=3).run()

    def test_adjacent_double_failure_raises_data_loss(self):
        rt = Runtime(5, cost=CostModel.zero(), resilient=True)
        app = CountingApp(rt, 10)
        rt.injector.kill_at_iteration(2, iteration=5)
        rt.injector.kill_at_iteration(3, iteration=5)
        with pytest.raises(DataLossError):
            IterativeExecutor(
                rt, app, checkpoint_interval=4, max_restore_attempts=2
            ).run()


class TestReportAccounting:
    def test_segment_times_sum_close_to_total(self):
        rt = Runtime(4, cost=CostModel.laptop(), resilient=True)
        app = CountingApp(rt, 8)
        rt.injector.kill_at_iteration(2, iteration=5)
        report = IterativeExecutor(rt, app, checkpoint_interval=4).run()
        assert report.total_time > 0
        parts = (
            report.step_time
            + report.checkpoint_time
            + report.restore_time
            + report.lost_time
        )
        assert parts == pytest.approx(report.total_time, rel=0.01)

    def test_percentages(self):
        report = ExecutionReport(
            step_time=6.0, checkpoint_time=3.0, restore_time=1.0, total_time=10.0
        )
        assert report.checkpoint_pct == pytest.approx(30.0)
        assert report.restore_pct == pytest.approx(10.0)

    def test_mean_checkpoint_time(self):
        report = ExecutionReport(checkpoint_durations=[1.0, 3.0])
        assert report.mean_checkpoint_time == 2.0
        assert ExecutionReport().mean_checkpoint_time == 0.0


class TestOverlappedCheckpointing:
    """checkpoint_mode="overlapped": engine overlap scope around backups."""

    def _run(self, mode, **kwargs):
        from repro.bench.calibration import regression_bench_workload, regression_cost
        from repro.apps.resilient import LinRegResilient

        rt = Runtime(4, cost=regression_cost(), resilient=True, **kwargs)
        app = LinRegResilient(rt, regression_bench_workload(9))
        executor = IterativeExecutor(
            rt, app, checkpoint_interval=3, checkpoint_mode=mode
        )
        return rt, app, executor.run()

    def test_invalid_mode_rejected(self):
        rt = Runtime(2)
        with pytest.raises(ValueError):
            IterativeExecutor(rt, CountingApp(rt, 1), checkpoint_mode="async")

    def test_same_work_and_result_as_blocking(self):
        _, app_b, rep_b = self._run("blocking")
        _, app_o, rep_o = self._run("overlapped")
        assert rep_o.iterations_executed == rep_b.iterations_executed
        assert rep_o.checkpoints == rep_b.checkpoints
        assert np.allclose(app_o.model(), app_b.model())

    def test_overlap_reduces_stall_and_total(self):
        _, _, rep_b = self._run("blocking")
        _, _, rep_o = self._run("overlapped")
        assert rep_b.checkpoint_stall_time == pytest.approx(rep_b.checkpoint_time)
        assert rep_o.checkpoint_stall_time < rep_b.checkpoint_stall_time
        assert rep_o.total_time < rep_b.total_time

    def test_nothing_pending_after_run(self):
        rt, _, _ = self._run("overlapped")
        assert rt.engine.pending_overlap() == {}
        assert not rt.engine.overlapping

    def test_failure_recovery_under_overlap(self):
        rt, app, report = run_with_failure(
            RestoreMode.SHRINK, checkpoint_mode="overlapped"
        )
        assert report.restores == 1
        assert app.iteration == 10
        assert np.allclose(app.state.to_array(), 10.0)

    def test_blocking_mode_unchanged_semantics(self):
        # Blocking runs never enter an overlap scope at all.
        rt = Runtime(3, cost=CostModel.zero())
        app = CountingApp(rt, 5)
        report = IterativeExecutor(rt, app, checkpoint_interval=2).run()
        assert report.checkpoint_stall_time == report.checkpoint_time
        assert rt.engine.pending_overlap() == {}
