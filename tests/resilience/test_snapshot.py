"""Tests for the double in-memory snapshot store (§IV-B)."""

import numpy as np
import pytest

from repro.matrix.vector import Vector
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime import CostModel, DataLossError, PlaceGroup, Runtime


def make_rt(n=4, cost=None):
    return Runtime(n, cost=cost or CostModel.zero())


def save_all(rt, snap, payload_fn):
    """Save one payload per group index from the owning places."""
    group = snap.group

    def task(ctx):
        index = group.index_of(ctx.place)
        snap.save_from(ctx, index, payload_fn(index))

    rt.finish_all(group, task)


class TestSaveLocate:
    def test_primary_and_backup_placement(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        # Primary on owner, backup on the next place (wrapping).
        assert rt.heap_of(0).contains(("snap", snap.snap_id, 0))
        assert rt.heap_of(1).contains(("snapb", snap.snap_id, 0, 1))
        assert rt.heap_of(0).contains(("snapb", snap.snap_id, 2, 1))  # wrap

    def test_locate_prefers_primary(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        pid, key = snap.locate(1)
        assert pid == 1 and key[0] == "snap"

    def test_locate_falls_back_to_backup(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        rt.kill(1)
        pid, key = snap.locate(1)
        assert pid == 2 and key[0] == "snapb"

    def test_save_from_wrong_place_rejected(self):
        rt = make_rt(2)
        snap = DistObjectSnapshot(rt, rt.world)
        with pytest.raises(ValueError):
            rt.finish_all(
                PlaceGroup.of_ids([0]),
                lambda ctx: snap.save_from(ctx, 1, Vector.make(1)),
            )

    def test_single_place_group_double_local(self):
        rt = make_rt(2)
        g = PlaceGroup.of_ids([1])
        snap = DistObjectSnapshot(rt, g)
        save_all(rt, snap, lambda i: Vector.of([7.0]))
        assert rt.heap_of(1).contains(("snap", snap.snap_id, 0))
        assert rt.heap_of(1).contains(("snapb", snap.snap_id, 0, 1))

    def test_missing_key(self):
        rt = make_rt(2)
        snap = DistObjectSnapshot(rt, rt.world)
        with pytest.raises(ValueError):
            snap.locate(0)


class TestFailureTolerance:
    def test_survives_any_single_failure(self):
        for victim in (1, 2, 3):
            rt = make_rt(4)
            snap = DistObjectSnapshot(rt, rt.world)
            save_all(rt, snap, lambda i: Vector.of([float(i) * 10]))
            rt.kill(victim)
            for key in range(4):
                pid, heap_key = snap.locate(key)
                value = rt.heap_of(pid).get(heap_key)
                assert value.data[0] == key * 10

    def test_survives_non_adjacent_double_failure(self):
        rt = make_rt(4)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        rt.kill(1)
        rt.kill(3)
        for key in range(4):
            snap.locate(key)  # no raise

    def test_adjacent_double_failure_loses_data(self):
        # Places 1 and 2 adjacent: key 1's primary (on 1) and backup (on 2)
        # are both gone — the documented limit of the double store.
        rt = make_rt(4)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([float(i)]))
        rt.kill(1)
        rt.kill(2)
        with pytest.raises(DataLossError):
            snap.locate(1)
        # Other keys are still recoverable.
        snap.locate(0)
        snap.locate(2)  # primary dead, backup on 3 alive
        snap.locate(3)


class TestFetch:
    def test_fetch_local_vs_remote(self):
        rt = make_rt(3, cost=CostModel.unit())
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([float(i)] * 4))

        fetched = {}

        def load(ctx):
            index = snap.group.index_of(ctx.place)
            fetched[index] = snap.fetch(ctx, index)

        rt.finish_all(rt.world, load)
        for i in range(3):
            assert np.all(fetched[i].data == i)

    def test_fetch_with_extractor_runs_at_source(self):
        rt = make_rt(2, cost=CostModel(flop_time=1.0))
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of(np.arange(10.0)))
        t_before = rt.clock.now(1)

        def load(ctx):
            return snap.fetch(ctx, 1, extract=lambda v: v.sub_vector(2, 5), extract_flops=50)

        piece = rt.at(rt.world[0], load)
        assert np.allclose(piece.data, [2, 3, 4])
        # Extraction cost charged at the source place (place 1).
        assert rt.clock.now(1) >= t_before + 50.0

    def test_delete_frees_copies(self):
        rt = make_rt(3)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of([1.0]))
        snap.delete()
        for pid in range(3):
            assert len(rt.heap_of(pid).keys_with_prefix(("snap",))) == 0
            assert len(rt.heap_of(pid).keys_with_prefix(("snapb",))) == 0

    def test_total_nbytes_accumulates(self):
        rt = make_rt(2)
        snap = DistObjectSnapshot(rt, rt.world)
        save_all(rt, snap, lambda i: Vector.of(np.zeros(8)))
        assert snap.total_nbytes > 0
        assert snap.num_keys == 2
