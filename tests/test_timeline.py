"""Tests for the finish-profiling and timeline rendering tools."""

import pytest

from repro.bench.timeline import (
    OpProfile,
    profile_finishes,
    render_profile,
    render_timeline,
)
from repro.runtime import CostModel, Runtime
from repro.runtime.finish import FinishReport


def make_report(label, start, end, n_tasks=2, ledger_ready=0.0, task_end_max=0.0):
    return FinishReport(
        label=label,
        start=start,
        end=end,
        n_tasks=n_tasks,
        task_end_max=task_end_max or end,
        ledger_ready=ledger_ready,
    )


class TestProfile:
    def test_groups_by_operation_suffix(self):
        reports = [
            make_report("DupVector:axpy", 0.0, 1.0),
            make_report("DistVector:axpy", 1.0, 3.0),
            make_report("matvec", 3.0, 4.0),
        ]
        profiles = {p.op: p for p in profile_finishes(reports)}
        assert profiles["axpy"].count == 2
        assert profiles["axpy"].total_time == pytest.approx(3.0)
        assert profiles["matvec"].count == 1

    def test_sorted_by_total_time(self):
        reports = [
            make_report("a", 0.0, 1.0),
            make_report("b", 0.0, 5.0),
        ]
        assert [p.op for p in profile_finishes(reports)] == ["b", "a"]

    def test_stall_fraction(self):
        # Finish ends at the ledger-ready time, 1s past the last task.
        report = make_report("x", 0.0, 3.0, ledger_ready=3.0, task_end_max=2.0)
        profile = profile_finishes([report])[0]
        assert profile.ledger_stall == pytest.approx(1.0)
        assert profile.stall_fraction == pytest.approx(1.0 / 3.0)

    def test_empty_profile(self):
        assert profile_finishes([]) == []
        assert OpProfile(op="x").mean_time == 0.0
        assert OpProfile(op="x").stall_fraction == 0.0

    def test_render_profile_table(self):
        reports = [make_report(f"op{i}", 0.0, float(i + 1)) for i in range(15)]
        text = render_profile(reports, top=5)
        assert "operation" in text
        assert "(other)" in text  # overflow row present

    def test_render_from_real_run(self):
        rt = Runtime(3, cost=CostModel.unit())
        rt.finish_all(rt.world, lambda ctx: None, label="Thing:work")
        text = render_profile(rt.stats.finish_reports)
        assert "work" in text


class TestTimeline:
    def test_empty(self):
        assert "no finishes" in render_timeline([])

    def test_bars_scale_with_duration(self):
        reports = [
            make_report("short", 0.0, 1.0),
            make_report("long", 1.0, 10.0),
        ]
        text = render_timeline(reports, width=20)
        lines = text.splitlines()
        assert "short" in lines[1] and "long" in lines[2]
        assert lines[2].count("█") > lines[1].count("█")

    def test_row_cap(self):
        reports = [make_report("x", float(i), float(i + 1)) for i in range(50)]
        text = render_timeline(reports, max_rows=10)
        assert "40 more finishes not shown" in text


class TestEngineEventConsumption:
    def test_finish_reports_from_events_round_trip(self, tmp_path):
        from repro.bench.timeline import (
            finish_reports_from_events,
            load_engine_events,
        )

        rt = Runtime(3, cost=CostModel.unit(), resilient=True, trace=True)
        rt.finish_all(rt.world, lambda ctx: None, label="Thing:work")
        path = str(tmp_path / "events.jsonl")
        rt.engine.timeline.dump_jsonl(path)

        rebuilt = finish_reports_from_events(load_engine_events(path))
        live = rt.stats.finish_reports
        assert len(rebuilt) == len(live)
        for a, b in zip(rebuilt, live):
            assert a.label == b.label
            assert a.start == b.start and a.end == b.end
            assert a.ledger_stall == b.ledger_stall

    def test_profile_matches_live_reports(self, tmp_path):
        from repro.bench.timeline import finish_reports_from_events

        rt = Runtime(3, cost=CostModel.unit(), trace=True)
        rt.finish_all(rt.world, lambda ctx: None, label="A:op1")
        rt.finish_all(rt.world, lambda ctx: None, label="B:op2")
        rebuilt = finish_reports_from_events(rt.engine.timeline)
        assert render_profile(rebuilt) == render_profile(rt.stats.finish_reports)

    def test_non_finish_events_ignored(self):
        from repro.bench.timeline import finish_reports_from_events
        from repro.engine import TransferEvent

        events = [TransferEvent(t_start=0.0, t_end=1.0, src=0, dst=1)]
        assert finish_reports_from_events(events) == []
