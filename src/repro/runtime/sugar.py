"""X10-style programming sugar: ``finish`` / ``async at`` (paper §II).

The raw runtime API (`finish_all` / `finish_tasks`) is collective-shaped;
this module exposes the constructs the paper's X10 snippets use, so the
examples and tests can be written the way a GML user would write X10:

.. code-block:: python

    with finish(rt) as f:
        for place in rt.world:
            f.async_at(place, lambda ctx: ctx.heap.put("x", 1))
    # <- blocks until all tasks terminated; DeadPlaceException surfaces here

``async_at`` only *records* the task; the whole batch executes under one
finish when the scope exits — matching the simulator's virtual-time model
(all tasks of a finish run concurrently).  Results are available from the
returned handles after the scope exits.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from repro.runtime.place import Place
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.validation import require


class AsyncHandle:
    """Future-like handle for one ``async_at`` task's result."""

    __slots__ = ("_value", "_done")

    def __init__(self) -> None:
        self._value: Any = None
        self._done = False

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._done = True

    @property
    def done(self) -> bool:
        """True once the enclosing finish has completed."""
        return self._done

    def result(self) -> Any:
        """The task's return value (after the finish scope exits)."""
        require(self._done, "result() before the enclosing finish completed")
        return self._value


class FinishScope:
    """A ``finish`` block: collects asyncs, runs them on exit."""

    def __init__(self, runtime: Runtime, label: str = "finish"):
        self.runtime = runtime
        self.label = label
        self._tasks: List[Tuple[Place, Callable[[PlaceContext], Any]]] = []
        self._handles: List[AsyncHandle] = []
        self._entered = False
        self._completed = False

    def __enter__(self) -> "FinishScope":
        require(not self._entered, "finish scope is not reentrant")
        self._entered = True
        return self

    def async_at(
        self, place: Place, fn: Callable[[PlaceContext], Any]
    ) -> AsyncHandle:
        """Record ``at (place) async { fn }`` inside this finish."""
        require(self._entered and not self._completed, "async_at outside the scope")
        handle = AsyncHandle()
        self._tasks.append((place, fn))
        self._handles.append(handle)
        return handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._completed = True
        if exc_type is not None:
            return False  # propagate the body's own exception
        if not self._tasks:
            return False
        results = self.runtime.finish_tasks(self._tasks, label=self.label)
        for handle, value in zip(self._handles, results):
            handle._resolve(value)
        return False


def finish(runtime: Runtime, label: str = "finish") -> FinishScope:
    """Open an X10-style ``finish`` scope on *runtime*."""
    return FinishScope(runtime, label)


def at(runtime: Runtime, place: Place, fn: Callable[[PlaceContext], Any]) -> Any:
    """Synchronous ``at (place) { fn }`` — ship, run, return the value."""
    return runtime.at(place, fn)
