"""Resilient GML applications (the right column of Table II).

Each application implements the framework's four-method programming model
(``is_finished`` / ``step`` / ``checkpoint`` / ``restore``) and is executed
by :class:`~repro.resilience.executor.IterativeExecutor`.  The algorithm
bodies intentionally duplicate (rather than import) the non-resilient
versions so the Table II lines-of-code comparison measures two complete,
independent programs — as the paper's benchmarks were.
"""

from repro.apps.resilient.cg import CGResilient
from repro.apps.resilient.gnmf import GnmfResilient
from repro.apps.resilient.linreg import LinRegResilient
from repro.apps.resilient.logreg import LogRegResilient
from repro.apps.resilient.pagerank import PageRankResilient

__all__ = [
    "CGResilient",
    "GnmfResilient",
    "LinRegResilient",
    "LogRegResilient",
    "PageRankResilient",
]
