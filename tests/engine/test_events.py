"""Tests for the engine's typed event timeline and its JSONL round-trip."""

import io

from repro.engine import (
    DiskEvent,
    EngineEvent,
    FinishEvent,
    Scheduler,
    ServiceEvent,
    Timeline,
    TransferEvent,
    event_from_record,
    load_jsonl,
)
from repro.runtime.cost import CostModel
from repro.runtime.runtime import Runtime


class TestTimeline:
    def test_disabled_timeline_records_nothing(self):
        tl = Timeline(enabled=False)
        tl.record(TransferEvent(t_start=0.0, t_end=1.0))
        assert len(tl) == 0

    def test_of_kind_filters(self):
        tl = Timeline(enabled=True)
        tl.record(TransferEvent(t_start=0.0, t_end=1.0, src=0, dst=1))
        tl.record(DiskEvent(t_start=1.0, t_end=2.0, place=0))
        assert [e.kind for e in tl] == ["transfer", "disk"]
        assert len(tl.of_kind("transfer")) == 1
        assert tl.of_kind("transfer")[0].dst == 1

    def test_duration(self):
        e = ServiceEvent(t_start=2.0, t_end=5.0, resource="('ledger',)")
        assert e.duration == 3.0


class TestJsonlRoundTrip:
    def test_round_trip_preserves_types_and_fields(self):
        tl = Timeline(enabled=True)
        events = [
            TransferEvent(t_start=0.0, t_end=4.0, src=0, dst=1, nbytes=3.0, route="nic"),
            ServiceEvent(t_start=4.0, t_end=5.0, resource="('ledger',)"),
            DiskEvent(t_start=5.0, t_end=9.0, place=2, nbytes=8.0, op="read"),
            FinishEvent(
                t_start=0.0, t_end=10.0, label="step", n_tasks=4,
                task_end_max=8.0, ledger_ready=9.5,
            ),
        ]
        for e in events:
            tl.record(e)
        buf = io.StringIO()
        assert tl.dump_jsonl(buf) == 4
        buf.seek(0)
        assert load_jsonl(buf) == events

    def test_unknown_kind_degrades_to_base_event(self):
        e = event_from_record({"kind": "martian", "t_start": 1.0, "t_end": 2.0, "x": 9})
        assert type(e) is EngineEvent
        assert (e.t_start, e.t_end) == (1.0, 2.0)

    def test_dump_to_path(self, tmp_path):
        tl = Timeline(enabled=True)
        tl.record(TransferEvent(t_start=0.0, t_end=1.0, src=0, dst=1))
        path = str(tmp_path / "events.jsonl")
        assert tl.dump_jsonl(path) == 1
        assert load_jsonl(path) == tl.events


class TestSchedulerRecording:
    def test_transfer_and_disk_events_recorded_when_enabled(self):
        s = Scheduler(CostModel.unit(), timeline=Timeline(enabled=True))
        s.register_place(0)
        s.register_place(1)
        s.transfer(0, 1, 3.0, t_request=0.0)
        s.stable_write(0, 2.0)
        kinds = [e.kind for e in s.timeline]
        assert kinds == ["transfer", "disk"]
        transfer = s.timeline.of_kind("transfer")[0]
        assert (transfer.src, transfer.dst, transfer.route) == (0, 1, "p2p")

    def test_runtime_trace_flag_enables_engine_timeline(self):
        rt = Runtime(3, cost=CostModel.unit(), resilient=True, trace=True)
        rt.finish_all(rt.world, lambda ctx: ctx.charge_flops(10.0), label="step")
        assert rt.engine.timeline.enabled
        finishes = rt.engine.timeline.of_kind("finish")
        assert finishes and finishes[-1].label == "step"
        # Resilient finish pushed bookkeeping through the ledger resource.
        assert rt.engine.timeline.of_kind("service")

    def test_runtime_default_keeps_timeline_off(self):
        rt = Runtime(3, cost=CostModel.unit())
        rt.finish_all(rt.world, lambda ctx: ctx.charge_flops(10.0), label="step")
        assert not rt.engine.timeline.enabled
        assert len(rt.engine.timeline) == 0
