"""Heartbeat / φ-accrual failure detection in virtual time.

Resilient X10 (and the paper's framework on top of it) assumes an *oracle*
failure model: a dead place is known dead instantly, and nothing else ever
looks dead.  Real deployments detect failures with timeouts over unreliable
links — the layer the GASPI fault-tolerance work (arXiv:1505.04628) builds
explicitly — which means detection is *imperfect*: slow places and lossy
links look like crashes, and crashes take a detection timeout to notice.

:class:`PhiAccrualDetector` reproduces that layer on the discrete-event
engine:

* every monitored place emits a heartbeat to place zero each
  ``heartbeat_interval`` of virtual time; heartbeats ride the engine's real
  communication resources (place zero's communication server absorbs them,
  so detector traffic contends with application traffic) and are subject to
  the runtime's :class:`~repro.runtime.failure.TransientFaultModel` — drops
  and partitions eat heartbeats exactly like they eat data messages;
* a straggler (clock slowdown factor *s*) emits heartbeats *s* times less
  often — the starved-process signature that tricks naive timeout
  detectors;
* suspicion is the φ-accrual level of Hayashibara et al.: with an
  exponential inter-arrival model, ``φ(Δ) = Δ / (μ · ln 10)`` where μ is
  the EWMA of observed inter-arrival times.  Because μ *adapts*, a steady
  8× straggler re-trains the detector (μ → 8 · interval) and never crosses
  the confirmation threshold, while a truly dead place's φ grows without
  bound;
* the state ladder is ``ALIVE → SUSPECTED → CONFIRMED_DEAD``:  SUSPECTED
  (φ ≥ ``phi_suspect``) means *wait and retry*; CONFIRMED_DEAD (gap ≥
  ``detect_timeout`` in φ terms) means *evict and restore*.  Confirmation
  is sticky — a confirmed place is fenced even if it was a false positive,
  because the group must converge on one membership view.

The detector is lazy: heartbeat arrivals are reconstructed on demand when a
place is polled, so an idle detector costs nothing.  Everything is
deterministic in (seed, schedule): heartbeat losses are hash-drawn per
``(place, seq)``.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime

LN10 = math.log(10.0)

#: Payload bytes of one heartbeat message (sequence number + health bits).
HEARTBEAT_NBYTES = 64.0

#: At most this many heartbeat arrivals are materialized per place per
#: poll; older ones are fast-forwarded (they can no longer change φ, which
#: only depends on the recent inter-arrival window).
_MAX_BEATS_PER_POLL = 64


class PlaceHealth(Enum):
    """The detector's view of one monitored place."""

    ALIVE = "alive"
    SUSPECTED = "suspected"
    CONFIRMED_DEAD = "confirmed-dead"


class PhiAccrualDetector:
    """φ-accrual heartbeat detector over the runtime's virtual time.

    Parameters
    ----------
    runtime:
        The runtime to monitor (attach with ``runtime.attach_detector``).
    detect_timeout:
        Heartbeat gap, in virtual seconds, at which a *healthy-history*
        place is confirmed dead.  The paper-facing knob (CLI
        ``--detect-timeout``).
    heartbeat_interval:
        Emission period; defaults to ``detect_timeout / 10``.
    phi_suspect:
        φ level at which a place becomes SUSPECTED (default 1.0 — the gap
        is ~2.3× the learned mean inter-arrival).
    max_resolve_wait:
        Upper bound on how long :meth:`resolve` waits for a verdict before
        fail-safe confirming the remaining suspects (default
        ``2 × detect_timeout``).
    places:
        Restrict monitoring to these place ids (a lease's members, minus
        its driver).  Default: every place except the runtime driver — the
        classic single-job scope.
    start_time:
        Virtual time monitoring begins (a job admitted at time *T* only
        expects heartbeats from *T* on).
    """

    def __init__(
        self,
        runtime: "Runtime",
        detect_timeout: float = 1.0,
        heartbeat_interval: Optional[float] = None,
        phi_suspect: float = 1.0,
        ewma_alpha: float = 0.2,
        max_resolve_wait: Optional[float] = None,
        places: Optional[Sequence[int]] = None,
        start_time: float = 0.0,
    ):
        if detect_timeout <= 0:
            raise ValueError("detect_timeout must be positive")
        if heartbeat_interval is None:
            heartbeat_interval = detect_timeout / 10.0
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.runtime = runtime
        self.detect_timeout = detect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.phi_suspect = phi_suspect
        #: φ at which a healthy-history place (μ ≈ interval) has been
        #: silent for ``detect_timeout``.
        self.phi_confirm = detect_timeout / (heartbeat_interval * LN10)
        self.ewma_alpha = ewma_alpha
        self.max_resolve_wait = (
            max_resolve_wait if max_resolve_wait is not None else 2.0 * detect_timeout
        )
        self.heartbeats_observed = 0
        self.heartbeats_lost = 0
        #: Confirmations already reported through :meth:`sweep`.
        self._reported: set = set()
        self._last: Dict[int, float] = {}
        self._mean: Dict[int, float] = {}
        self._next_seq: Dict[int, int] = {}
        self._state: Dict[int, PlaceHealth] = {}
        if places is None:
            places = [
                pid
                for pid in sorted(runtime.all_place_ids())
                if pid != runtime.DRIVER_ID
            ]
        for place_id in sorted(places):
            self.monitor(place_id, from_time=start_time)

    # -- membership ----------------------------------------------------------

    def monitor(self, place_id: int, from_time: float = 0.0) -> None:
        """Start monitoring a place (registration counts as heartbeat 0)."""
        if place_id in self._state:
            return
        self._last[place_id] = from_time
        self._mean[place_id] = self.heartbeat_interval * self.runtime.clock.slowdown(
            place_id
        )
        self._next_seq[place_id] = 1
        self._state[place_id] = PlaceHealth.ALIVE

    def forget(self, place_id: int) -> None:
        """Drop all knowledge of a place (repair re-registers it fresh).

        A revived place is a new process: its old heartbeat history, its
        confirmed-dead verdict and its reported mark are all stale, and
        keeping any of them would make :meth:`monitor` a no-op or condemn
        the fresh incarnation instantly.
        """
        self._state.pop(place_id, None)
        self._last.pop(place_id, None)
        self._mean.pop(place_id, None)
        self._next_seq.pop(place_id, None)
        self._reported.discard(place_id)

    def monitored(self) -> List[int]:
        return sorted(self._state)

    # -- heartbeat reconstruction --------------------------------------------

    def _effective_interval(self, place_id: int) -> float:
        return self.heartbeat_interval * self.runtime.clock.slowdown(place_id)

    def _advance(self, place_id: int, now: float) -> None:
        """Materialize heartbeat arrivals of a place up to time *now*."""
        rt = self.runtime
        interval = self._effective_interval(place_id)
        death = rt.death_time(place_id)
        seq = self._next_seq[place_id]
        # Fast-forward far-past heartbeats: only the last window of beats
        # can still influence φ at *now*.
        horizon = now - _MAX_BEATS_PER_POLL * interval
        if seq * interval < horizon:
            skipped_to = max(seq, int(horizon / interval))
            if death is None or skipped_to * interval <= death:
                seq = skipped_to
        faults = rt.faults
        latency = rt.cost.latency
        server = rt.engine.resource(("srv", rt.DRIVER_ID))
        while True:
            t_emit = seq * interval
            if t_emit > now:
                break
            if death is not None and t_emit > death:
                # The place stopped heartbeating when it died.
                seq += 1
                continue
            if faults is not None and faults.heartbeat_lost(place_id, seq, t_emit):
                self.heartbeats_lost += 1
                seq += 1
                continue
            arrival = t_emit + latency
            # The heartbeat occupies place zero's communication server
            # (contending with real transfers) without blocking its clock.
            server.acquire(arrival, rt.cost.message(HEARTBEAT_NBYTES))
            gap = arrival - self._last[place_id]
            if gap > 0:
                alpha = self.ewma_alpha
                self._mean[place_id] += alpha * (gap - self._mean[place_id])
                self._last[place_id] = arrival
            self.heartbeats_observed += 1
            seq += 1
        self._next_seq[place_id] = seq

    # -- suspicion -----------------------------------------------------------

    def phi(self, place_id: int, now: Optional[float] = None) -> float:
        """Current φ suspicion level of a place (0 = just heard from it)."""
        rt = self.runtime
        if now is None:
            now = rt.clock.now(rt.DRIVER_ID)
        self._advance(place_id, now)
        gap = now - self._last[place_id]
        if gap <= 0:
            return 0.0
        return gap / (max(self._mean[place_id], 1e-12) * LN10)

    def state(self, place_id: int, now: Optional[float] = None) -> PlaceHealth:
        """The suspicion ladder state of a place at time *now* (sticky
        once CONFIRMED_DEAD — membership decisions are never unwound)."""
        current = self._state[place_id]
        if current is PlaceHealth.CONFIRMED_DEAD:
            return current
        phi = self.phi(place_id, now)
        if phi >= self.phi_confirm:
            state = PlaceHealth.CONFIRMED_DEAD
        elif phi >= self.phi_suspect:
            state = PlaceHealth.SUSPECTED
        else:
            state = PlaceHealth.ALIVE
        self._state[place_id] = state
        return state

    def suspicion_levels(self, now: Optional[float] = None) -> Dict[int, float]:
        """``{place id: φ}`` snapshot across all monitored places."""
        return {pid: self.phi(pid, now) for pid in self.monitored()}

    # -- the executor-facing ladder -------------------------------------------

    def sweep(self, now: Optional[float] = None) -> List[int]:
        """Newly CONFIRMED_DEAD places (each reported exactly once).

        The executor polls this between iterations so confirmations that
        fire *without* a failed message (e.g. a partition that silently eats
        heartbeats) still trigger eviction and recovery.
        """
        fresh = []
        for pid in self.monitored():
            if pid in self._reported:
                continue
            if self.state(pid, now) is PlaceHealth.CONFIRMED_DEAD:
                self._reported.add(pid)
                fresh.append(pid)
        return fresh

    def resolve(
        self, place_ids: Sequence[int]
    ) -> Tuple[List[int], List[int], float]:
        """Decide the fate of suspects after a failed communication.

        Waits in *virtual* time (advancing the driver's clock in heartbeat
        intervals — the wait-and-retry rung of the ladder) until every
        place in *place_ids* is either CONFIRMED_DEAD or demonstrably alive
        (a fresh heartbeat arrived after the incident).  Suspects still
        undecided after ``max_resolve_wait`` are fail-safe confirmed: the
        group fences them and moves on rather than hanging forever.

        Returns ``(confirmed_dead, cleared_alive, waited_seconds)``.
        """
        rt = self.runtime
        driver = rt.DRIVER_ID
        pending = [p for p in place_ids if p in self._state]
        # Unmonitored suspects — place zero (the observer cannot suspect
        # itself; it is immortal by X10 assumption) — are vacuously alive.
        cleared = [p for p in place_ids if p not in self._state]
        confirmed: List[int] = []
        t_incident = rt.clock.now(driver)
        deadline = t_incident + self.max_resolve_wait
        while pending:
            now = rt.clock.now(driver)
            still: List[int] = []
            for pid in pending:
                verdict = self.state(pid, now)
                if verdict is PlaceHealth.CONFIRMED_DEAD:
                    self._reported.add(pid)
                    confirmed.append(pid)
                elif (
                    verdict is PlaceHealth.ALIVE
                    and self._last[pid] > t_incident
                ):
                    cleared.append(pid)
                else:
                    still.append(pid)
            pending = still
            if not pending:
                break
            if now >= deadline:
                # Fail-safe: fence the undecided rather than hang.
                for pid in pending:
                    self._state[pid] = PlaceHealth.CONFIRMED_DEAD
                    self._reported.add(pid)
                    confirmed.append(pid)
                break
            rt.clock.advance(driver, self.heartbeat_interval)
        waited = rt.clock.now(driver) - t_incident
        return sorted(confirmed), sorted(cleared), waited

    def __repr__(self) -> str:
        states = {pid: self._state[pid].value for pid in self.monitored()}
        return (
            f"PhiAccrualDetector(interval={self.heartbeat_interval:g}, "
            f"timeout={self.detect_timeout:g}, states={states})"
        )
