"""GlobalRef and PlaceLocalHandle — X10's remote-reference types.

``GlobalRef[T]`` names an object on one specific place; it can only be
dereferenced *at* that place (the simulator raises
``DanglingReferenceError`` for a wrong-place dereference, the static error
X10 prevents by construction, and ``DeadPlaceException`` when the home place
has died — the dangling-reference hazard the paper's §III-C describes).

``PlaceLocalHandle`` (PLH) names a *family* of objects, one per place of a
group.  Resilient GML's key fix was allowing PLHs to be re-created over a
new group (``remake``) instead of permanently binding the world.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.runtime.exceptions import DanglingReferenceError
from repro.runtime.place import Place, PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime

_ref_counter = itertools.count()


class GlobalRef:
    """A reference to an object living on one home place."""

    def __init__(self, runtime: Runtime, home: Place, value: Any):
        self.runtime = runtime
        self.home = home
        self._key = ("gref", next(_ref_counter))
        runtime.heap_of(home.id).put(self._key, value)

    def __call__(self, ctx: PlaceContext) -> Any:
        """Dereference — only legal at the home place (X10 ``gr()``)."""
        if ctx.place != self.home:
            raise DanglingReferenceError(
                f"GlobalRef home is {self.home}, dereferenced at {ctx.place}"
            )
        self.runtime.check_alive(self.home.id)
        return ctx.heap.get(self._key)

    def free(self) -> None:
        """Drop the referenced object from the home heap."""
        if self.runtime.is_alive(self.home.id):
            self.runtime.heap_of(self.home.id).remove_if_present(self._key)


class PlaceLocalHandle:
    """One value per place of a group, addressed uniformly.

    Created with an initializer that runs at every member place; a PLH over
    a group containing a place that later dies yields dangling entries — the
    condition resilient GML repairs via :meth:`remake`.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: PlaceGroup,
        init: Callable[[PlaceContext], Any],
        label: str = "plh",
    ):
        self.runtime = runtime
        self.group = group
        self._key = ("plh", next(_ref_counter))
        self._label = label
        self._initialize(group, init)

    def _initialize(self, group: PlaceGroup, init: Callable[[PlaceContext], Any]) -> None:
        key = self._key

        def store(ctx: PlaceContext) -> None:
            ctx.heap.put(key, init(ctx))

        self.runtime.finish_all(group, store, label=f"{self._label}:init")

    def local(self, ctx: PlaceContext) -> Any:
        """This place's member of the family (X10 ``plh()``)."""
        if self.group.index_of(ctx.place) < 0:
            raise DanglingReferenceError(
                f"{ctx.place} is not in this PLH's group {self.group}"
            )
        return ctx.heap.get(self._key)

    def set_local(self, ctx: PlaceContext, value: Any) -> None:
        """Replace this place's member."""
        if self.group.index_of(ctx.place) < 0:
            raise DanglingReferenceError(
                f"{ctx.place} is not in this PLH's group {self.group}"
            )
        ctx.heap.put(self._key, value)

    def remake(
        self,
        new_group: PlaceGroup,
        init: Callable[[PlaceContext], Any],
        destroy_old: bool = True,
    ) -> None:
        """Re-create the family over *new_group* (resilient GML §IV-A).

        Old entries on surviving places are dropped first; entries on dead
        places died with their heaps.
        """
        if destroy_old:
            for place in self.group:
                if self.runtime.is_alive(place.id):
                    self.runtime.heap_of(place.id).remove_if_present(self._key)
        self.group = new_group
        self._initialize(new_group, init)

    def destroy(self) -> None:
        """Free every live member of the family."""
        for place in self.group:
            if self.runtime.is_alive(place.id):
                self.runtime.heap_of(place.id).remove_if_present(self._key)
