"""Tests for DistBlockMatrix: layout, remake modes, snapshot/restore."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.grid import Grid
from repro.matrix.random import LinkMatrix
from repro.runtime import CostModel, DeadPlaceException, PlaceGroup, Runtime


def make_rt(n=4):
    return Runtime(n, cost=CostModel.zero())


class TestConstruction:
    def test_make_dense_grouped(self):
        rt = make_rt(4)
        g = DistBlockMatrix.make_dense(rt, 16, 6, 8, 1)
        assert g.blocks_per_place() == [2, 2, 2, 2]
        assert g.aligned_row_partition().sizes == [4, 4, 4, 4]

    def test_make_with_place_grid(self):
        rt = make_rt(4)
        g = DistBlockMatrix.make_dense(rt, 8, 8, 4, 4, row_places=2, col_places=2)
        assert sum(g.blocks_per_place()) == 16
        assert g.blocks_per_place() == [4, 4, 4, 4]

    def test_place_grid_must_match_group(self):
        rt = make_rt(4)
        with pytest.raises(ValueError):
            DistBlockMatrix.make_dense(rt, 8, 8, 4, 4, row_places=3, col_places=2)
        with pytest.raises(ValueError):
            DistBlockMatrix.make_dense(rt, 8, 8, 4, 4, row_places=2, col_places=None)

    def test_invalid_kind(self):
        rt = make_rt(2)
        with pytest.raises(ValueError):
            DistBlockMatrix(rt, Grid.partition(4, 4, 2, 1), rt.world, "diagonal")

    def test_subgroup(self):
        rt = make_rt(4)
        group = PlaceGroup.of_ids([1, 2])
        g = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1, group=group)
        assert g.blocks_per_place() == [2, 2]
        assert rt.heap_of(0).get_or(g.heap_key) is None


class TestInitialization:
    def test_dense_random_deterministic(self):
        a = DistBlockMatrix.make_dense(make_rt(3), 9, 4, 6, 1).init_random(5)
        b = DistBlockMatrix.make_dense(make_rt(2), 9, 4, 6, 1).init_random(5)
        # Same grid, different place counts: same logical matrix.
        assert np.array_equal(a.to_dense().data, b.to_dense().data)

    def test_sparse_random(self):
        g = DistBlockMatrix.make_sparse(make_rt(2), 10, 10, 4, 1).init_random(3, density=0.3)
        assert 0 < g.total_nnz() <= 30 + 4  # rounding per block

    def test_link_matrix_grid_independent(self):
        link = LinkMatrix(24, 4, seed=9)
        a = DistBlockMatrix.make_sparse(make_rt(3), 24, 24, 6, 1).init_link_matrix(link)
        b = DistBlockMatrix.make_sparse(make_rt(2), 24, 24, 4, 2).init_link_matrix(link)
        assert np.array_equal(a.to_dense().data, b.to_dense().data)

    def test_link_matrix_requires_sparse(self):
        rt = make_rt(2)
        g = DistBlockMatrix.make_dense(rt, 8, 8, 4, 1)
        with pytest.raises(ValueError):
            g.init_link_matrix(LinkMatrix(8, 2))

    def test_init_from_dense_roundtrip(self):
        rt = make_rt(3)
        from repro.matrix.dense import DenseMatrix

        src = DenseMatrix.from_function(9, 7, lambda i, j: i * 7.0 + j)
        g = DistBlockMatrix.make_dense(rt, 9, 7, 3, 2).init_from_dense(src)
        assert np.array_equal(g.to_dense().data, src.data)
        s = DistBlockMatrix.make_sparse(rt, 9, 7, 3, 2).init_from_dense(src)
        assert np.array_equal(s.to_dense().data, src.data)


class TestLayoutQueries:
    def test_aligned_partition_none_when_scattered(self):
        from repro.matrix.mapping import CyclicBlockMap

        rt = make_rt(3)
        grid = Grid.partition(12, 4, 6, 1)
        g = DistBlockMatrix(rt, grid, rt.world, "dense", CyclicBlockMap(grid, 3))
        assert g.aligned_row_partition() is None

    def test_row_spans(self):
        rt = make_rt(2)
        g = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1)
        assert g.row_spans() == [(0, 4), (4, 8)]


class TestRemake:
    def test_shrink_keeps_grid(self):
        rt = make_rt(4)
        g = DistBlockMatrix.make_dense(rt, 16, 4, 8, 1).init_random(1)
        rt.kill(3)
        g.remake(rt.live_world())
        # Same 8-block grid dealt over 3 places: 3/3/2.
        assert g.grid.num_row_blocks == 8
        assert g.blocks_per_place() == [3, 3, 2]

    def test_rebalance_new_grid(self):
        rt = make_rt(4)
        g = DistBlockMatrix.make_dense(rt, 16, 4, 8, 1).init_random(1)
        rt.kill(3)
        survivors = rt.live_world()
        g.remake(survivors, new_grid=DistBlockMatrix.default_regrid(16, 4, 1, survivors.size))
        assert g.grid.num_row_blocks == 3
        assert g.blocks_per_place() == [1, 1, 1]

    def test_remake_clears_data(self):
        rt = make_rt(2)
        g = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1).init_random(1)
        g.remake(rt.world)
        assert g.to_dense().norm_f() == 0.0

    def test_remake_rejects_wrong_shape_grid(self):
        rt = make_rt(2)
        g = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1)
        with pytest.raises(ValueError):
            g.remake(rt.world, new_grid=Grid.partition(9, 4, 3, 1))


class TestSnapshotRestore:
    def _matrix(self, rt, kind="dense", m=20, n=8, rbs=10, cbs=2):
        if kind == "dense":
            g = DistBlockMatrix.make_dense(rt, m, n, rbs, cbs)
            return g.init_random(7)
        g = DistBlockMatrix.make_sparse(rt, m, n, rbs, cbs)
        return g.init_random(7, density=0.3)

    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_restore_same_group(self, kind):
        rt = make_rt(4)
        g = self._matrix(rt, kind)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        g.remake(rt.world)
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_shrink_restore_block_by_block(self, kind):
        rt = make_rt(4)
        g = self._matrix(rt, kind)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        rt.kill(2)
        g.remake(rt.live_world())  # grid kept
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_rebalance_restore_regridded(self, kind):
        rt = make_rt(4)
        g = self._matrix(rt, kind)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        rt.kill(2)
        survivors = rt.live_world()
        g.remake(survivors, new_grid=DistBlockMatrix.default_regrid(20, 8, 2, survivors.size))
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    def test_restore_kind_mismatch(self):
        rt = make_rt(2)
        g = self._matrix(rt, "dense", m=8, n=4, rbs=4, cbs=1)
        snap = g.make_snapshot()
        s = DistBlockMatrix.make_sparse(rt, 8, 4, 4, 1)
        with pytest.raises(ValueError):
            s.restore_snapshot(snap)

    def test_snapshot_isolated_from_live_updates(self):
        rt = make_rt(2)
        g = self._matrix(rt, "dense", m=8, n=4, rbs=4, cbs=1)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        g.init_random(99)  # overwrite live data
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    def test_dead_member_fails_snapshot(self):
        # Two exceptions surface: place 1's own task cannot run, and place
        # 0's backup copy targets dead place 1 — X10 aggregates them.
        from repro.runtime import MultipleException

        rt = make_rt(3)
        g = self._matrix(rt, "dense", m=9, n=4, rbs=3, cbs=1)
        rt.kill(1)
        with pytest.raises((DeadPlaceException, MultipleException)) as exc_info:
            g.make_snapshot()
        assert exc_info.value.places == [1]

    @settings(max_examples=15, deadline=None)
    @given(
        kind=st.sampled_from(["dense", "sparse"]),
        m=st.integers(6, 40),
        n=st.integers(2, 12),
        rbs=st.integers(1, 8),
        cbs=st.integers(1, 3),
        new_rbs=st.integers(1, 8),
        new_cbs=st.integers(1, 3),
    )
    def test_any_regrid_restore_is_identity(self, kind, m, n, rbs, cbs, new_rbs, new_cbs):
        """Property: snapshot → remake with ANY grid → restore == identity."""
        places = 3
        rbs = max(rbs, places)
        new_rbs = max(new_rbs, places)
        rt = make_rt(places)
        g = self._matrix(rt, kind, m=m, n=n, rbs=rbs, cbs=cbs)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        g.remake(rt.world, new_grid=Grid.partition(m, n, new_rbs, new_cbs))
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)
