"""Contended resources: serial servers with a busy-until frontier.

Every shared piece of hardware the cost story depends on — a place's
communication server, a node's NIC direction, the serialized place-zero
bookkeeping ledger, the stable-storage disk — is one :class:`Resource`: a
single server that serves requests in arrival order.  A request made at
``t_request`` starts when both the requester is ready *and* the server is
free, runs for ``duration`` seconds, and pushes the server's frontier
forward.  This is the classic busy-until discrete-event server; the
simulator's sequential interpreter order is the arrival order.

A :class:`DuplexLink` couples two resources (a transmit side and a receive
side) so a transfer occupies both for its duration — the full-duplex
point-to-point and shared-NIC models of the runtime.

Resources attached to a place can be :meth:`~Resource.retire`-d when the
place dies; scheduling work on a retired resource raises
``DeadPlaceException`` — the engine-level guard against charging time to
hardware that no longer exists.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.runtime.exceptions import DeadPlaceException

#: Signature of the optional acquisition hook: (resource, t_request, start, done).
AcquireHook = Callable[["Resource", float, float, float], None]


class Resource:
    """A serial server: one request at a time, FIFO in arrival order.

    Parameters
    ----------
    key:
        Hashable identity of the resource (e.g. ``("tx", 3)`` or
        ``("ledger",)``); also its display name in event logs.
    owner:
        The place id this resource belongs to, if any.  Used by the
        dead-place guard: acquiring a retired resource raises
        ``DeadPlaceException(owner)``.
    """

    __slots__ = ("key", "owner", "free_at", "busy_time", "served", "retired", "on_acquire")

    def __init__(self, key: Any, owner: Optional[int] = None):
        self.key = key
        self.owner = owner
        #: Virtual time until which the server is busy (the frontier).
        self.free_at = 0.0
        #: Total seconds this server has spent serving requests.
        self.busy_time = 0.0
        #: Number of requests served.
        self.served = 0
        #: True once the owning place died; acquisition then raises.
        self.retired = False
        #: Optional hook invoked after every acquisition (event recording).
        self.on_acquire: Optional[AcquireHook] = None

    def check_live(self) -> None:
        """Raise ``DeadPlaceException`` if this resource has been retired."""
        if self.retired:
            raise DeadPlaceException(
                self.owner if self.owner is not None else -1
            )

    def acquire(self, t_request: float, duration: float) -> float:
        """Serve one request; returns its completion time.

        The request starts at ``max(free_at, t_request)`` and occupies the
        server for *duration* seconds.
        """
        if self.retired:
            self.check_live()
        start = self.free_at
        if t_request > start:
            start = t_request
        done = start + duration
        self.free_at = done
        self.busy_time += duration
        self.served += 1
        if self.on_acquire is not None:
            self.on_acquire(self, t_request, start, done)
        return done

    def acquire_batch(self, arrivals, duration: float) -> float:
        """Serve a batch of requests in ascending arrival order.

        Bit-exact to calling :meth:`acquire` once per sorted arrival — the
        frontier advances through the identical float operations — but
        amortizes the per-event Python call overhead:

        * ``duration == 0`` collapses to ``free_at = max(free_at,
          max(arrivals))``, exactly what the per-event loop computes
          (zero-cost models, e.g. chaos campaigns, take this O(n) max);
        * otherwise one tight local loop over the pre-sorted arrivals.

        When an ``on_acquire`` hook is installed the per-event path runs so
        event recording sees every acquisition.  Returns the new frontier.
        """
        self.check_live()
        n = len(arrivals)
        if n == 0:
            return self.free_at
        if self.on_acquire is not None:
            done = self.free_at
            for t in sorted(arrivals):
                done = self.acquire(t, duration)
            return done
        if duration == 0.0:
            top = max(arrivals)
            if top > self.free_at:
                self.free_at = top
            self.served += n
            return self.free_at
        free = self.free_at
        busy = self.busy_time
        for t in sorted(arrivals):
            if t > free:
                free = t
            free += duration
            busy += duration
        self.free_at = free
        self.busy_time = busy
        self.served += n
        return free

    def retire(self) -> None:
        """Mark the owning place dead; further acquisitions raise."""
        self.retired = True

    def reset(self) -> None:
        """Clear the frontier and counters (fresh-run reuse in tests)."""
        self.free_at = 0.0
        self.busy_time = 0.0
        self.served = 0

    def __repr__(self) -> str:
        state = "retired" if self.retired else f"free_at={self.free_at:.6f}"
        return f"Resource({self.key!r}, {state}, served={self.served})"


class DuplexLink:
    """Two coupled resources occupied together for a transfer's duration.

    Models a full-duplex channel: the sender's transmit side and the
    receiver's receive side are both busy for the whole transfer, so a
    node's outbound traffic serializes per direction while inbound traffic
    flows independently.
    """

    __slots__ = ("tx", "rx")

    def __init__(self, tx: Resource, rx: Resource):
        self.tx = tx
        self.rx = rx

    def acquire(self, t_request: float, duration: float) -> float:
        """Occupy both ends; returns the transfer's completion time."""
        tx, rx = self.tx, self.rx
        if tx.retired:
            tx.check_live()
        if rx.retired:
            rx.check_live()
        start = tx.free_at
        if rx.free_at > start:
            start = rx.free_at
        if t_request > start:
            start = t_request
        done = start + duration
        tx.free_at = done
        rx.free_at = done
        tx.busy_time += duration
        rx.busy_time += duration
        tx.served += 1
        rx.served += 1
        if tx.on_acquire is not None:
            tx.on_acquire(tx, t_request, start, done)
        if rx.on_acquire is not None:
            rx.on_acquire(rx, t_request, start, done)
        return done

    def ends(self) -> Tuple[Resource, Resource]:
        return self.tx, self.rx

    def __repr__(self) -> str:
        return f"DuplexLink(tx={self.tx.key!r}, rx={self.rx.key!r})"
