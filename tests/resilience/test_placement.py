"""Tests for replica placement policies (ring / stride / spread / parity)."""

import pytest

from repro.resilience.placement import (
    PLACEMENTS,
    ParityPlacement,
    RingPlacement,
    SpreadPlacement,
    StridePlacement,
    make_placement,
    resolve_offsets,
)

#: Policies that place per-key replicas (parity places group blocks instead,
#: so its ``offsets`` contract only accepts ``backups == 0``).
REPLICA_PLACEMENTS = {
    name: policy for name, policy in PLACEMENTS.items() if name != "parity"
}


class TestRing:
    def test_matches_the_papers_double_store(self):
        # k=1 ring is the seed scheme: the single backup on the next place.
        assert RingPlacement().offsets(1, 8) == [1]

    def test_consecutive_offsets(self):
        assert RingPlacement().offsets(3, 8) == [1, 2, 3]


class TestStride:
    def test_default_stride_two(self):
        assert StridePlacement().offsets(3, 12) == [2, 4, 6]

    def test_custom_stride(self):
        assert StridePlacement(stride=3).offsets(2, 12) == [3, 6]

    def test_colliding_stride_normalized_off_primary(self):
        # stride*k wrapping onto offset 0 would co-locate a replica with
        # its primary; normalization must move it elsewhere.
        offsets = StridePlacement(stride=4).offsets(2, 8)
        assert 0 not in offsets
        assert len(set(offsets)) == 2


class TestSpread:
    def test_evenly_spaced(self):
        assert SpreadPlacement().offsets(2, 6) == [2, 4]
        assert SpreadPlacement().offsets(3, 8) == [2, 4, 6]

    def test_survives_adjacent_pair(self):
        # For any key, primary k and replicas k+2, k+4 (mod 6): an adjacent
        # pair {j, j+1} can cover at most one of the three.
        offsets = SpreadPlacement().offsets(2, 6)
        for key in range(6):
            homes = {key} | {(key + o) % 6 for o in offsets}
            for j in range(6):
                assert not homes <= {j, (j + 1) % 6}


class TestNormalization:
    def test_no_replica_on_primary(self):
        for name, policy in REPLICA_PLACEMENTS.items():
            for size in range(2, 10):
                for k in range(1, size):
                    offsets = policy().offsets(k, size)
                    assert 0 not in offsets, (name, size, k)

    def test_distinct_offsets_up_to_group_capacity(self):
        for name, policy in REPLICA_PLACEMENTS.items():
            for size in range(2, 10):
                for k in range(1, size):
                    offsets = policy().offsets(k, size)
                    assert len(set(offsets)) == len(offsets), (name, size, k)

    def test_degenerate_single_place_group(self):
        # A 1-place group has nowhere else to put replicas: local copies.
        assert RingPlacement().offsets(2, 1) == [0, 0]

    def test_more_replicas_than_places_doubles_up_off_primary(self):
        offsets = RingPlacement().offsets(5, 3)
        assert 0 not in offsets
        assert set(offsets) == {1, 2}

    def test_resolve_shifts_collisions(self):
        assert resolve_offsets([1, 1], 6) == [1, 2]
        assert resolve_offsets([0, 3], 6) == [1, 3]


class TestParity:
    def test_rejects_per_key_replicas(self):
        with pytest.raises(ValueError, match="backups=0"):
            ParityPlacement().offsets(1, 8)

    def test_no_offsets_for_zero_backups(self):
        assert ParityPlacement().offsets(0, 8) == []

    def test_group_span_capped_below_group_size(self):
        # The parity block must live group-external, so a span can never
        # swallow the whole place group.
        assert ParityPlacement(group=4).group_span(12) == 4
        assert ParityPlacement(group=4).group_span(4) == 3
        assert ParityPlacement(group=8).group_span(2) == 1
        assert ParityPlacement(group=2).group_span(1) == 1

    def test_parity_index_is_group_external(self):
        for g in (2, 3, 4, 8):
            policy = ParityPlacement(group=g)
            for size in range(2, 12):
                span = policy.group_span(size)
                for start in range(0, size, span):
                    members = list(range(start, min(start + span, size)))
                    pidx = policy.parity_index(start, len(members), size)
                    assert 0 <= pidx < size
                    assert pidx not in members, (g, size, start)

    def test_group_of_at_least_two(self):
        with pytest.raises(ValueError):
            ParityPlacement(group=1)


class TestFactory:
    def test_named_policies(self):
        assert make_placement("ring").name == "ring"
        assert make_placement("spread").name == "spread"
        assert make_placement("stride").name == "stride"
        assert make_placement("parity").name == "parity"

    def test_stride_with_parameter(self):
        policy = make_placement("stride:3")
        assert policy.offsets(2, 12) == [3, 6]

    def test_parity_with_group_parameter(self):
        policy = make_placement("parity:8")
        assert isinstance(policy, ParityPlacement)
        assert policy.group == 8

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_placement("mirror")
        with pytest.raises(ValueError):
            make_placement("stride:zero")
        with pytest.raises(ValueError):
            make_placement("parity:1")
