"""Young's first-order optimal checkpoint interval (paper §V).

``interval = sqrt(2 * T_checkpoint * MTTF)`` — the classic trade-off between
checkpoint overhead (interval too short) and recomputation after a failure
(interval too long).  The framework exposes it both in wall-time form and as
an iteration count given a measured time per iteration.
"""

from __future__ import annotations

import math

from repro.util.validation import require


def optimal_interval(checkpoint_time: float, mttf: float) -> float:
    """Young's formula: seconds between checkpoints."""
    require(checkpoint_time >= 0, "checkpoint_time must be >= 0")
    require(mttf > 0, "mttf must be positive")
    return math.sqrt(2.0 * checkpoint_time * mttf)


def optimal_interval_iterations(
    checkpoint_time: float, mttf: float, time_per_iteration: float
) -> int:
    """Young's interval expressed in iterations (at least 1)."""
    require(time_per_iteration > 0, "time_per_iteration must be positive")
    seconds = optimal_interval(checkpoint_time, mttf)
    return max(1, int(round(seconds / time_per_iteration)))


def expected_overhead_fraction(
    checkpoint_time: float, mttf: float, restart_time: float = 0.0
) -> float:
    """First-order expected fractional runtime overhead at the optimum.

    With interval ``τ = sqrt(2 C M)``, the checkpoint overhead is ``C/τ``
    and the expected rework per failure is ``τ/2`` every ``M`` seconds —
    both equal at the optimum, giving ``sqrt(2C/M)`` plus restart costs.
    """
    require(mttf > 0, "mttf must be positive")
    base = math.sqrt(2.0 * checkpoint_time / mttf) if checkpoint_time > 0 else 0.0
    return base + restart_time / mttf
