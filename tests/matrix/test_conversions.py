"""Tests for DistVector ↔ DupVector conversions."""

import numpy as np
import pytest

from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.runtime import CostModel, PlaceGroup, Runtime


def make_rt(n=4):
    return Runtime(n, cost=CostModel.zero())


class TestToDup:
    def test_every_replica_holds_full_vector(self):
        rt = make_rt()
        v = DistVector.make(rt, 10).init_random(3)
        d = DupVector.make(rt, 10)
        v.to_dup(d)
        assert d.replicas_consistent()
        assert np.array_equal(d.to_array(), v.to_array())

    def test_counts_gather_plus_broadcast(self):
        rt = make_rt()
        v = DistVector.make(rt, 10).init_random(3)
        d = DupVector.make(rt, 10)
        before = rt.stats.finishes
        v.to_dup(d)
        assert rt.stats.finishes - before == 2  # copy_to + sync


class TestFromDup:
    def test_scatter_matches(self):
        rt = make_rt()
        d = DupVector.make(rt, 11).init_random(5)
        v = DistVector.make(rt, 11)
        v.from_dup(d)
        assert np.array_equal(v.to_array(), d.to_array())

    def test_local_only_one_finish(self):
        rt = make_rt()
        d = DupVector.make(rt, 11).init_random(5)
        v = DistVector.make(rt, 11)
        before_msgs = rt.stats.messages
        before_finishes = rt.stats.finishes
        v.from_dup(d)
        assert rt.stats.finishes - before_finishes == 1
        # No payload moves: only the finish's own task messages.
        # (zero-cost model: messages counted are spawn/join only)
        assert rt.stats.messages - before_msgs <= 2 * rt.world.size

    def test_mismatch_rejected(self):
        rt = make_rt()
        d = DupVector.make(rt, 10)
        v = DistVector.make(rt, 11)
        with pytest.raises(ValueError):
            v.from_dup(d)
        sub = DupVector.make(rt, 11, PlaceGroup.of_ids([0, 1]))
        with pytest.raises(ValueError):
            v.from_dup(sub)

    def test_roundtrip_identity(self):
        rt = make_rt(3)
        v = DistVector.make(rt, 9).init_random(7)
        ref = v.to_array()
        d = DupVector.make(rt, 9)
        v.to_dup(d)
        v.fill(0.0)
        v.from_dup(d)
        assert np.array_equal(v.to_array(), ref)
